"""Property test: stream invariants hold under random interleavings.

Draws random tenant populations (arrival shape, rate, request count,
batch, worker width, queue bound, shed mode, SLO stretch) and replays
them through the streaming engine, asserting the core invariants:

* every request is terminal exactly once -- completed XOR shed;
* completions are time-ordered per tenant and causally consistent
  (arrival <= enqueued <= started <= completed);
* the deadline-miss fraction stays in [0, 1];
* backpressure never exceeds the configured queue bound, and requests
  are only shed when shedding is enabled.

Uses hypothesis when available (derandomized, like the spec round-trip
suite); otherwise a fixed-seed random sweep over the same generator.
"""

import random

from repro.stream import StreamTenantSpec, StreamingService

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is optional
    HAVE_HYPOTHESIS = False

N_EXAMPLES = 200

PIPELINE_SPLITS = (("MP3", "decoded"), ("MP3", "unprocessed"),
                   ("FLAC", "spectrogram-encoded"), ("CV2-JPG", "resized"))
ARRIVALS = ("poisson", "burst", "diurnal")
RATES = (0.5, 2.0, 10.0)
STRETCHES = (None, 0.5, 3.0)


def make_streams(tenants):
    """Build tenant specs from drawable primitives.

    ``tenants`` is a sequence of ``(pipeline_index, arrival_index,
    rate_index, requests, batch, workers, queue_bound, shed,
    stretch_index)`` tuples.
    """
    streams = []
    for index, (pipeline_index, arrival_index, rate_index, requests,
                batch, workers, queue_bound, shed,
                stretch_index) in enumerate(tenants):
        pipeline, split = PIPELINE_SPLITS[pipeline_index]
        streams.append(StreamTenantSpec(
            tenant=f"t{index}", pipeline=pipeline, split=split,
            arrival=ARRIVALS[arrival_index], rate=RATES[rate_index],
            requests=requests, batch=batch, workers=workers,
            queue_bound=queue_bound, shed=shed,
            slo_stretch=STRETCHES[stretch_index]))
    return streams


def check_invariants(streams, seed):
    report = StreamingService().run(streams, seed=seed)
    assert len(report.tenants) == len(streams)
    for tenant in report.tenants:
        spec = tenant.spec

        # Every request is terminal exactly once: completed XOR shed.
        assert len(tenant.records) == spec.requests
        for record in tenant.records:
            assert record.terminal
            assert record.shed != (record.completed is not None)
            if record.shed:
                # Only an enabled, bounded admission queue may shed.
                assert spec.shed and spec.queue_bound > 0
                assert record.started is None
            else:
                # Causal ordering through the request lifecycle.  The
                # enqueue comparison gets a nanosecond of slack: the
                # clock reaches the intended arrival as now + (arrival
                # - now), which can land a few ulps short.
                assert record.enqueued is not None
                assert record.enqueued >= record.arrival - 1e-9
                assert record.started >= record.enqueued
                assert record.completed >= record.started
                assert 0 <= record.worker < spec.workers

        # Completions are time-ordered and cover exactly the completed
        # records (each exactly once).
        times = [record.completed for record in tenant.completions]
        assert times == sorted(times)
        assert (sorted(record.index for record in tenant.completions)
                == sorted(record.index for record in tenant.completed))

        assert 0.0 <= tenant.miss_fraction <= 1.0
        assert tenant.out_of_order >= 0

        # Backpressure never exceeds the configured queue bound.
        if spec.queue_bound:
            assert tenant.max_queue_depth <= spec.queue_bound
        assert tenant.max_queue_depth >= 0

    assert report.makespan >= 0.0
    assert 0.0 <= report.miss_fraction <= 1.0
    assert report.total_requests == sum(spec.requests for spec in streams)
    assert (report.total_completed + report.total_shed
            == report.total_requests)
    return report


if HAVE_HYPOTHESIS:
    tenant_strategy = st.tuples(
        st.integers(0, len(PIPELINE_SPLITS) - 1),
        st.integers(0, len(ARRIVALS) - 1),
        st.integers(0, len(RATES) - 1),
        st.integers(1, 10),                      # requests
        st.integers(1, 8),                       # batch
        st.integers(1, 3),                       # workers
        st.integers(0, 3),                       # queue bound
        st.booleans(),                           # shed on overflow?
        st.integers(0, len(STRETCHES) - 1))

    scenario_strategy = st.tuples(
        st.integers(0, 5),                       # schedule seed
        st.lists(tenant_strategy, min_size=1, max_size=3))

    @given(scenario_strategy)
    @settings(max_examples=N_EXAMPLES, derandomize=True, deadline=None)
    def test_stream_invariants_hold_under_random_interleavings(scenario):
        seed, tenants = scenario
        check_invariants(make_streams(tenants), seed)

else:  # pragma: no cover - exercised only without hypothesis
    def test_stream_invariants_hold_under_random_interleavings():
        rng = random.Random(0x57E3A)
        for _ in range(N_EXAMPLES):
            tenants = [(rng.randrange(len(PIPELINE_SPLITS)),
                        rng.randrange(len(ARRIVALS)),
                        rng.randrange(len(RATES)),
                        rng.randint(1, 10), rng.randint(1, 8),
                        rng.randint(1, 3), rng.randint(0, 3),
                        rng.random() < 0.5,
                        rng.randrange(len(STRETCHES)))
                       for _ in range(rng.randint(1, 3))]
            check_invariants(make_streams(tenants), rng.randint(0, 5))


def test_same_seed_reproduces_the_run_exactly():
    tenants = [(0, 1, 1, 8, 4, 2, 2, True, 1),
               (2, 0, 2, 6, 2, 1, 0, False, 0)]
    first = check_invariants(make_streams(tenants), seed=3)
    second = check_invariants(make_streams(tenants), seed=3)
    assert first.events_processed == second.events_processed
    assert first.makespan == second.makespan
    for left, right in zip(first.tenants, second.tenants):
        assert ([(r.index, r.enqueued, r.started, r.completed, r.shed)
                 for r in left.records]
                == [(r.index, r.enqueued, r.started, r.completed, r.shed)
                    for r in right.records])
