"""Behavioural tests for the streaming service engine."""

import pytest

from repro.errors import ProfilingError
from repro.stream import (RequestPlan, StreamTenantSpec, StreamingService)


def make_spec(**overrides) -> StreamTenantSpec:
    base = dict(tenant="t0", pipeline="MP3", split="decoded",
                arrival="burst", rate=10.0, requests=12, batch=4,
                workers=1)
    base.update(overrides)
    return StreamTenantSpec(**base)


def run_one(spec, **kwargs):
    report = StreamingService().run([spec], **kwargs)
    return report, report.tenant(spec.tenant)


class TestValidation:
    def test_empty_tenant_set(self):
        with pytest.raises(ProfilingError):
            StreamingService().run([])

    def test_duplicate_tenants(self):
        with pytest.raises(ProfilingError):
            StreamingService().run([make_spec(), make_spec()])

    def test_unknown_tenant_lookup(self):
        report, _ = run_one(make_spec())
        with pytest.raises(ProfilingError):
            report.tenant("nobody")


class TestBackpressure:
    def test_bounded_queue_never_exceeds_the_bound(self):
        _, tenant = run_one(make_spec(queue_bound=2, rate=50.0,
                                      requests=20))
        assert tenant.max_queue_depth <= 2
        assert tenant.shed_count == 0
        assert len(tenant.completed) == 20

    def test_blocking_delays_admission_but_loses_nothing(self):
        """Backpressure shows up as enqueued > intended arrival."""
        _, tenant = run_one(make_spec(queue_bound=1, rate=100.0,
                                      requests=16))
        assert len(tenant.completed) == 16
        assert any(record.enqueued > record.arrival + 1e-9
                   for record in tenant.records)

    def test_shedding_drops_overflow_and_counts_misses(self):
        _, tenant = run_one(make_spec(queue_bound=1, shed=True,
                                      rate=200.0, requests=24))
        assert tenant.shed_count > 0
        assert tenant.shed_count + len(tenant.completed) == 24
        assert tenant.miss_fraction >= tenant.shed_count / 24
        for record in tenant.records:
            if record.shed:
                assert record.completed is None
                assert record.missed

    def test_unbounded_queue_grows_past_any_bound(self):
        _, tenant = run_one(make_spec(queue_bound=0, rate=200.0,
                                      requests=24))
        assert tenant.max_queue_depth > 2
        assert len(tenant.completed) == 24


class TestCacheBehaviour:
    def test_rereading_a_chunk_hits_the_page_cache(self):
        spec = make_spec(requests=6)
        plans = {spec.tenant: tuple(
            RequestPlan(index=i, arrival=0.0, batch=4, chunk=0)
            for i in range(6))}
        _, tenant = run_one(spec, plans=plans)
        assert tenant.cache_misses == 1
        assert tenant.cache_hits == 5
        assert tenant.bytes_from_cache > 0
        assert 0.0 < tenant.cache_hit_ratio < 1.0

    def test_distinct_chunks_all_miss(self):
        spec = make_spec(requests=6)
        plans = {spec.tenant: tuple(
            RequestPlan(index=i, arrival=0.0, batch=4, chunk=i)
            for i in range(6))}
        _, tenant = run_one(spec, plans=plans)
        assert tenant.cache_hits == 0
        assert tenant.cache_misses == 6
        assert tenant.bytes_from_cache == 0.0


class TestDeadlines:
    def test_baseline_and_deadlines_are_set(self):
        _, tenant = run_one(make_spec(slo_stretch=2.0))
        assert tenant.baseline_batch_seconds > 0
        assert tenant.deadline_seconds == pytest.approx(
            2.0 * tenant.baseline_batch_seconds)
        per_sample = tenant.baseline_batch_seconds / tenant.spec.batch
        for record in tenant.records:
            assert record.deadline == pytest.approx(
                2.0 * record.batch * per_sample)

    def test_none_stretch_disables_deadlines(self):
        _, tenant = run_one(make_spec(slo_stretch=None))
        assert tenant.deadline_seconds is None
        assert all(record.deadline is None for record in tenant.records)
        assert tenant.miss_fraction == 0.0

    def test_tight_slo_forces_misses(self):
        _, generous = run_one(make_spec(slo_stretch=1e6))
        assert generous.miss_fraction == 0.0
        _, tight = run_one(make_spec(slo_stretch=1e-6))
        assert tight.miss_fraction == 1.0


class TestReportAggregates:
    def test_totals_partition_the_requests(self):
        streams = [make_spec(tenant="a", requests=10),
                   make_spec(tenant="b", requests=6, queue_bound=1,
                             shed=True, rate=200.0)]
        report = StreamingService().run(streams)
        assert report.total_requests == 16
        assert report.total_completed + report.total_shed == 16
        assert report.events_processed > 0
        assert report.makespan > 0
        assert report.makespan == max(tenant.makespan
                                      for tenant in report.tenants)
        assert report.bytes_from_storage == sum(
            tenant.bytes_from_storage for tenant in report.tenants)

    def test_workers_raise_throughput(self):
        _, narrow = run_one(make_spec(workers=1, requests=16, rate=100.0))
        _, wide = run_one(make_spec(workers=4, requests=16, rate=100.0))
        assert wide.makespan < narrow.makespan
        assert wide.throughput_rps > narrow.throughput_rps

    def test_out_of_order_completions_are_counted(self):
        """With multiple workers and uneven batch sizes, a later small
        request can overtake an earlier large one."""
        spec = make_spec(workers=2, requests=4)
        plans = {spec.tenant: (
            RequestPlan(index=0, arrival=0.0, batch=64, chunk=0),
            RequestPlan(index=1, arrival=0.0, batch=1, chunk=1),
            RequestPlan(index=2, arrival=0.0, batch=1, chunk=2),
            RequestPlan(index=3, arrival=0.0, batch=1, chunk=3))}
        _, tenant = run_one(spec, plans=plans)
        assert tenant.out_of_order > 0
        completions = [record.completed for record in tenant.completions]
        assert completions == sorted(completions)
