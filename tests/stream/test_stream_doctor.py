"""Tests for the stream latency doctor's rewrite findings."""

import pytest

from repro.backends.base import Environment
from repro.errors import DiagnosisError
from repro.stream import (StreamTenantSpec, StreamingService,
                          diagnose_stream)
from repro.stream.doctor import MISS_THRESHOLD
from repro.stream.report import (RequestRecord, StreamReport,
                                 TenantStreamResult)


def make_tenant(wait: float, service: float, miss: bool = True,
                **overrides) -> TenantStreamResult:
    """A synthetic tenant whose every request waited ``wait`` seconds
    and served in ``service`` seconds."""
    base = dict(tenant="t0", pipeline="MP3", split="decoded",
                batch=8, workers=2)
    base.update(overrides)
    spec = StreamTenantSpec(**base)
    records = []
    for index in range(10):
        arrival = float(index)
        records.append(RequestRecord(
            index=index, arrival=arrival, batch=spec.batch, chunk=index,
            worker=0, enqueued=arrival, started=arrival + wait,
            completed=arrival + wait + service,
            deadline=0.1 if miss else 1e9))
    result = TenantStreamResult(spec=spec, records=records,
                                completions=list(records))
    return result


def make_report(*tenants, makespan: float = 100.0,
                bytes_from_storage: float = 0.0) -> StreamReport:
    return StreamReport(environment=Environment(), tenants=list(tenants),
                        makespan=makespan,
                        bytes_from_storage=bytes_from_storage)


class TestFindings:
    def test_empty_report_raises(self):
        with pytest.raises(DiagnosisError):
            diagnose_stream(make_report())

    def test_quiet_stream_has_no_findings(self):
        diagnosis = diagnose_stream(make_report(
            make_tenant(wait=0.01, service=0.02, miss=False)))
        assert diagnosis.findings == []
        assert "no latency pressure" in diagnosis.to_markdown()
        with pytest.raises(DiagnosisError):
            diagnosis.top_finding

    def test_service_bound_stream_suggests_shrinking_the_batch(self):
        tenant = make_tenant(wait=0.1, service=5.0, queue_bound=4)
        diagnosis = diagnose_stream(make_report(tenant))
        kinds = [finding.kind for finding in diagnosis.findings]
        assert kinds == ["shrink-batch"]
        finding = diagnosis.top_finding
        assert finding.tenant == "t0"
        # Halving the batch halves the (per-sample-dominated) service leg.
        assert finding.predicted_p99 == pytest.approx(0.1 + 5.0 / 2)
        assert "halve the batch from 8 to 4" in finding.detail

    def test_wait_bound_stream_suggests_raising_prefetch(self):
        tenant = make_tenant(wait=5.0, service=0.1, queue_bound=4)
        diagnosis = diagnose_stream(make_report(tenant))
        kinds = [finding.kind for finding in diagnosis.findings]
        assert kinds == ["raise-prefetch"]
        finding = diagnosis.top_finding
        assert finding.predicted_p99 == pytest.approx(0.1 + 5.0 / 2)
        assert "raise workers from 2 to 4" in finding.detail

    def test_unbounded_queue_adds_the_shed_rewrite(self):
        tenant = make_tenant(wait=5.0, service=0.1)   # queue_bound=0
        diagnosis = diagnose_stream(make_report(tenant))
        kinds = {finding.kind for finding in diagnosis.findings}
        assert kinds == {"raise-prefetch", "shed-admission"}

    def test_saturated_read_link_is_cluster_wide(self):
        environment = Environment()
        bytes_read = 0.9 * environment.storage.aggregate_bw * 100.0
        diagnosis = diagnose_stream(make_report(
            make_tenant(wait=0.01, service=0.02, miss=False),
            makespan=100.0, bytes_from_storage=bytes_read))
        finding = diagnosis.top_finding
        assert finding.kind == "read-link-saturation"
        assert finding.tenant is None
        assert "cluster" in finding.describe()

    def test_findings_rank_by_severity(self):
        noisy = make_tenant(wait=5.0, service=0.1)
        diagnosis = diagnose_stream(make_report(noisy))
        severities = [finding.severity for finding in diagnosis.findings]
        assert severities == sorted(severities, reverse=True)
        assert diagnosis.top_finding is diagnosis.findings[0]

    def test_below_threshold_misses_stay_silent(self):
        tenant = make_tenant(wait=5.0, service=0.1, miss=False)
        assert tenant.miss_fraction <= MISS_THRESHOLD
        assert diagnose_stream(make_report(tenant)).findings == []

    def test_markdown_carries_the_prediction_anchor(self):
        diagnosis = diagnose_stream(make_report(
            make_tenant(wait=0.1, service=5.0, queue_bound=4)))
        text = diagnosis.to_markdown()
        assert text.startswith("stream diagnosis:")
        assert "predicted p99 ~" in text


class TestDoctorIntegration:
    def test_bottleneck_doctor_delegates(self):
        from repro.diagnosis.doctor import BottleneckDoctor
        report = StreamingService().run([StreamTenantSpec(
            tenant="t0", pipeline="MP3", split="decoded",
            arrival="burst", rate=50.0, requests=8, batch=4, workers=1,
            slo_stretch=1e-6)])
        diagnosis = BottleneckDoctor().diagnose_stream(report)
        assert diagnosis.miss_fraction == 1.0
        assert diagnosis.findings
        assert diagnosis.to_markdown() == diagnose_stream(
            report).to_markdown()
