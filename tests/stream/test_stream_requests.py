"""Tests for stream tenant specs and seeded arrival schedules."""

import pytest

from repro.backends.base import RunConfig
from repro.errors import ProfilingError
from repro.stream import (ARRIVAL_KINDS, StreamTenantSpec, arrival_schedule,
                          epoch_request_plans, generate_stream,
                          request_plans)


def make_spec(**overrides) -> StreamTenantSpec:
    base = dict(tenant="t0", pipeline="MP3", split="decoded")
    base.update(overrides)
    return StreamTenantSpec(**base)


class TestStreamTenantSpec:
    def test_resolve_plan_builds_from_registry(self):
        plan = make_spec().resolve_plan()
        assert plan.strategy_name == "decoded"
        assert plan.pipeline.name == "MP3"

    def test_describe_mentions_the_knobs(self):
        text = make_spec(arrival="burst", batch=8, workers=3).describe()
        assert "burst" in text
        assert "batch 8" in text

    @pytest.mark.parametrize("bad", [
        dict(arrival="lunar"),
        dict(rate=0.0),
        dict(rate=-1.0),
        dict(requests=0),
        dict(batch=0),
        dict(workers=0),
        dict(queue_bound=-1),
        dict(slo_stretch=0.0),
        dict(start=-1.0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ProfilingError):
            make_spec(**bad)


class TestArrivalSchedules:
    @pytest.mark.parametrize("kind", sorted(ARRIVAL_KINDS))
    def test_seeded_schedules_are_deterministic(self, kind):
        spec = make_spec(arrival=kind, requests=24)
        first = arrival_schedule(spec, seed=7)
        assert first == arrival_schedule(spec, seed=7)
        assert first != arrival_schedule(spec, seed=8)

    @pytest.mark.parametrize("kind", sorted(ARRIVAL_KINDS))
    def test_schedules_are_sorted_and_complete(self, kind):
        spec = make_spec(arrival=kind, requests=50, start=10.0)
        times = arrival_schedule(spec, seed=0)
        assert len(times) == 50
        assert list(times) == sorted(times)
        assert all(time >= 10.0 for time in times)

    def test_tenant_schedules_are_independent(self):
        """Namespaced RNGs: one tenant's schedule is the same no matter
        which other tenants run beside it."""
        alone = arrival_schedule(make_spec(tenant="a"), seed=0)
        other = arrival_schedule(make_spec(tenant="b"), seed=0)
        assert alone != other
        assert alone == arrival_schedule(make_spec(tenant="a"), seed=0)

    def test_burst_clusters_arrivals(self):
        spec = make_spec(arrival="burst", rate=1.0, requests=16)
        times = arrival_schedule(spec, seed=0)
        gaps = [b - a for a, b in zip(times, times[1:])]
        # Intra-burst gaps are tiny relative to the 1/rate mean.
        assert sum(1 for gap in gaps if gap <= 0.06) >= 8


class TestRequestPlans:
    def test_chunks_stride_round_robin(self):
        spec = make_spec(requests=10)
        plans = request_plans(spec, seed=0, chunk_count=3)
        assert [plan.chunk for plan in plans] == [
            index % 3 for index in range(10)]
        assert [plan.index for plan in plans] == list(range(10))
        assert all(plan.batch == spec.batch for plan in plans)
        assert all(plan.worker is None for plan in plans)

    def test_chunk_count_must_be_positive(self):
        with pytest.raises(ProfilingError):
            request_plans(make_spec(), chunk_count=0)

    def test_epoch_plans_mirror_the_job_partition(self):
        from repro.backends.simulated import partition_jobs
        plan = make_spec().resolve_plan()
        config = RunConfig(threads=4)
        requests = epoch_request_plans(plan, config)
        jobs = [job for thread in partition_jobs(
            plan.pipeline.sample_count, 4, config.max_jobs)
            for job in thread]
        assert len(requests) == len(jobs)
        assert sum(r.batch for r in requests) == plan.pipeline.sample_count
        assert all(request.arrival == 0.0 for request in requests)
        assert {request.worker for request in requests} <= set(range(4))
        chunks = [request.chunk for request in requests]
        assert len(set(chunks)) == len(chunks)
        assert all(chunk < 0 for chunk in chunks)


class TestGenerateStream:
    def test_seeded_population_is_deterministic(self):
        first = generate_stream(6, seed=3, arrival="burst")
        assert first == generate_stream(6, seed=3, arrival="burst")
        assert first != generate_stream(6, seed=4, arrival="burst")
        assert [spec.tenant for spec in first] == [
            f"tenant-{index}" for index in range(6)]

    def test_knobs_reach_every_tenant(self):
        streams = generate_stream(3, rate=4.0, requests=9, batch=16,
                                  workers=5, queue_bound=7,
                                  slo_stretch=None, shed=True)
        for spec in streams:
            assert (spec.rate, spec.requests, spec.batch,
                    spec.workers, spec.queue_bound,
                    spec.slo_stretch, spec.shed) == (
                4.0, 9, 16, 5, 7, None, True)

    def test_validation(self):
        with pytest.raises(ProfilingError):
            generate_stream(0)
        with pytest.raises(ProfilingError):
            generate_stream(2, pipelines=())

    def test_specs_resolve_against_the_registry(self):
        for spec in generate_stream(8, seed=1):
            assert spec.resolve_plan().pipeline.sample_count > 0
