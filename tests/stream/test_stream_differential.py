"""The differential wall: a zero-jitter sharded stream IS an epoch.

Replaying a training epoch's job partition through the streaming
engine -- one request per job, pinned to its thread's worker, all
arriving at t=0, every chunk cold, deadlines off -- must reproduce the
single-tenant serve run's epoch timings to ~1e-12.  This pins the
request body to the epoch body expression-for-expression: any drift in
resource acquisition order, float expression shape or accounting shows
up here as a relative error far above 1e-12.
"""

import pytest

from repro.serve import JobSpec, PreprocessingService
from repro.stream import (StreamTenantSpec, StreamingService,
                          epoch_request_plans)

#: (pipeline, strategy, reader width) corners: record-format artifacts
#: (deser path), raw file-per-sample sources (metadata open path), a
#: container source (pro-rated opens), single- and multi-reader.
CASES = [
    ("MP3", "decoded", 4),
    ("MP3", "spectrogram-encoded", 8),
    ("MP3", "unprocessed", 8),
    ("FLAC", "decoded", 6),
    ("CV2-JPG", "pixel-centered", 4),
    ("CV2-JPG", "unprocessed", 1),
    ("NILM", "aggregated", 8),
]


def serve_epoch(pipeline, split, threads):
    """The reference: one pre-materialised tenant, one epoch."""
    job = JobSpec(tenant="t0", pipeline=pipeline, split=split,
                  arrival=0.0, epochs=1, threads=threads,
                  slo_stretch=None)
    service = PreprocessingService(policy="fifo", slots=1,
                                   materialize_offline=False)
    report = service.run([job])
    return report, report.tenants[0].epochs[0]


def stream_replay(pipeline, split, threads):
    """The same epoch re-expressed as a pinned request stream."""
    spec = StreamTenantSpec(tenant="t0", pipeline=pipeline, split=split,
                            workers=threads, slo_stretch=None)
    plans = {"t0": epoch_request_plans(spec.resolve_plan(),
                                       JobSpec(tenant="t0",
                                               pipeline=pipeline,
                                               split=split,
                                               threads=threads,
                                               epochs=1).run_config())}
    return StreamingService().run([spec], plans=plans)


class TestEpochDifferential:
    @pytest.mark.parametrize("pipeline,split,threads", CASES)
    def test_stream_reproduces_epoch_timings(self, pipeline, split,
                                             threads):
        serve_report, epoch = serve_epoch(pipeline, split, threads)
        stream_report = stream_replay(pipeline, split, threads)
        assert stream_report.makespan == pytest.approx(epoch.duration,
                                                       rel=1e-12)

    @pytest.mark.parametrize("pipeline,split,threads", CASES)
    def test_stream_reproduces_epoch_bytes(self, pipeline, split,
                                           threads):
        _, epoch = serve_epoch(pipeline, split, threads)
        stream_report = stream_replay(pipeline, split, threads)
        tenant = stream_report.tenant("t0")
        assert tenant.bytes_from_storage == pytest.approx(
            epoch.bytes_from_storage, rel=1e-12)
        # Unique cold chunks: every lookup misses, as in epoch 0.
        assert tenant.bytes_from_cache == 0.0
        assert tenant.cache_hits == 0
        assert tenant.cache_misses == len(tenant.records)

    def test_every_request_served_by_its_pinned_worker(self):
        report = stream_replay("MP3", "decoded", 4)
        tenant = report.tenant("t0")
        assert all(record.worker == record.pinned
                   for record in tenant.records)
        assert all(record.completed is not None and not record.missed
                   for record in tenant.records)

    def test_metadata_accounting_matches(self):
        serve_report, _ = serve_epoch("MP3", "unprocessed", 8)
        stream_report = stream_replay("MP3", "unprocessed", 8)
        assert (stream_report.metadata_peak_in_use
                == serve_report.metadata_peak_in_use)


class TestPinnedPlanValidation:
    def test_pinned_plans_reject_admission_control(self):
        from repro.errors import ProfilingError
        spec = StreamTenantSpec(tenant="t0", pipeline="MP3",
                                split="decoded", workers=2,
                                queue_bound=4, shed=True)
        plans = {"t0": epoch_request_plans(
            spec.resolve_plan(),
            JobSpec(tenant="t0", pipeline="MP3", split="decoded",
                    threads=2, epochs=1).run_config())}
        with pytest.raises(ProfilingError):
            StreamingService().run([spec], plans=plans)

    def test_pinned_worker_ids_must_fit_width(self):
        from repro.errors import ProfilingError
        spec = StreamTenantSpec(tenant="t0", pipeline="MP3",
                                split="decoded", workers=2)
        plans = {"t0": epoch_request_plans(
            spec.resolve_plan(),
            JobSpec(tenant="t0", pipeline="MP3", split="decoded",
                    threads=8, epochs=1).run_config())}
        with pytest.raises(ProfilingError):
            StreamingService().run([spec], plans=plans)
