"""The typecheck gate (tools/typecheck.py) behaves in both worlds:
skips cleanly where mypy is absent, gates where it is installed."""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def test_typecheck_gate_exits_zero_or_fails_loud():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "typecheck.py")],
        capture_output=True, text=True)
    if importlib.util.find_spec("mypy") is None:
        assert proc.returncode == 0
        assert "skipping" in proc.stdout
    else:
        # Where mypy exists (CI), the starter subset must be clean.
        assert proc.returncode == 0, proc.stdout + proc.stderr


def test_mypy_config_is_pinned_in_pyproject():
    text = (REPO / "pyproject.toml").read_text()
    assert "[tool.mypy]" in text
    for target in ("src/repro/sim", "src/repro/faults", "src/repro/lint"):
        assert target in text
