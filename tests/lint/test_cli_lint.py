"""CLI tests for ``presto lint`` / ``tools/simlint.py``."""

import json
from pathlib import Path

from repro.cli import main
from repro.lint import RULES

FIXTURES = Path(__file__).parent / "fixtures"
REPO = Path(__file__).resolve().parents[2]


def test_lint_clean_tree_exits_zero(capsys):
    assert main(["lint", "--root", str(REPO)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_lint_findings_exit_one(capsys):
    fixture = str(FIXTURES / "wall_clock.py")
    assert main(["lint", fixture]) == 1
    out = capsys.readouterr().out
    assert "wall-clock" in out
    assert "finding(s)" in out


def test_lint_json_output(capsys):
    fixture = str(FIXTURES / "unseeded_rng.py")
    assert main(["lint", "--json", fixture]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == 1
    assert {f["rule"] for f in payload["findings"]} == {"unseeded-rng"}


def test_lint_select(capsys):
    fixture = str(FIXTURES / "wall_clock.py")
    assert main(["lint", "--select", "set-iteration", fixture]) == 0
    assert main(["lint", "--select", "wall-clock", fixture]) == 1


def test_lint_ignore(capsys):
    fixture = str(FIXTURES / "wall_clock.py")
    assert main(["lint", "--ignore", "wall-clock", fixture]) == 0


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out


def test_lint_unknown_rule_exits_two(capsys):
    assert main(["lint", "--select", "no-such-rule"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_lint_missing_path_exits_two(capsys):
    assert main(["lint", "does/not/exist.py"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_findings_carry_file_line_col(capsys):
    fixture = FIXTURES / "silent_except.py"
    assert main(["lint", str(fixture)]) == 1
    first = capsys.readouterr().out.splitlines()[0]
    # file:line:col: rule [severity] message
    assert first.count(":") >= 3
    assert "silent-except" in first


def test_standalone_tool_matches_cli(capsys):
    import subprocess
    import sys
    fixture = str(FIXTURES / "global_rng.py")
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "simlint.py"), fixture],
        capture_output=True, text=True)
    assert proc.returncode == 1
    assert main(["lint", fixture]) == 1
    assert proc.stdout == capsys.readouterr().out
