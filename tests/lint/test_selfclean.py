"""The tree simlint guards must itself be simlint-clean.

This is the acceptance gate behind ``make lint``: ``src/`` + ``tools/``
+ ``benchmarks/`` lint clean under the default config, and every
suppression pragma in that tree carries a reason (malformed pragmas
surface as ``bad-pragma`` findings, so cleanliness covers that too).
"""

from pathlib import Path

from repro.lint import DEFAULT_CONFIG, lint_paths
from repro.lint.framework import PRAGMA_RE, discover

REPO = Path(__file__).resolve().parents[2]
TARGETS = [REPO / "src", REPO / "tools", REPO / "benchmarks"]


def test_guarded_tree_is_clean():
    findings = lint_paths(TARGETS, root=REPO, config=DEFAULT_CONFIG)
    assert findings == [], (
        "simlint findings in the guarded tree:\n"
        + "\n".join(f.render() for f in findings))


def test_src_repro_is_clean_alone():
    assert lint_paths([REPO / "src" / "repro"], root=REPO) == []


def test_every_pragma_in_tree_carries_a_reason():
    pragmas = 0
    for path in discover(TARGETS):
        for match in PRAGMA_RE.finditer(path.read_text(encoding="utf-8")):
            pragmas += 1
            assert match.group("reason"), (
                f"{path}: pragma without reason: {match.group(0)!r}")
    # The triaged wall-clock suppression in exec/cache.py must exist --
    # if it disappears, either the sweep changed or the rule rotted.
    assert pragmas >= 1
