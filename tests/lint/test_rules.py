"""Per-rule fixture tests for the simlint catalog.

Every rule has a fixture file under ``fixtures/`` with three sections:
positive cases whose violation lines carry a trailing ``# BAD`` marker,
negative cases that must stay silent, and pragma-suppressed cases.  The
test runs one rule over its fixture and asserts the finding lines are
*exactly* the marked lines -- so both false negatives and false
positives fail loudly.
"""

from pathlib import Path

import pytest

from repro.lint import RULES, LintConfig, lint_source, rule_catalog

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file stem -> rule id (stems use ``_``, rule ids use ``-``).
FIXTURE_RULES = sorted(
    (path.stem.replace("_", "-"), path) for path in FIXTURES.glob("*.py"))


def expected_lines(source: str) -> set:
    return {lineno for lineno, text in enumerate(source.splitlines(), 1)
            if text.rstrip().endswith("# BAD")}


@pytest.mark.parametrize("rule_id,path", FIXTURE_RULES,
                         ids=[rule for rule, _ in FIXTURE_RULES])
def test_rule_fixture(rule_id, path):
    assert rule_id in RULES, f"fixture {path.name} names no known rule"
    source = path.read_text()
    config = LintConfig(select=(rule_id,))
    findings = lint_source(source, path.name, config=config)
    assert {f.rule for f in findings} <= {rule_id}
    assert {f.line for f in findings} == expected_lines(source), (
        f"{rule_id}: findings do not match the # BAD markers:\n"
        + "\n".join(f.render() for f in findings))


def test_every_rule_has_a_fixture():
    covered = {rule for rule, _ in FIXTURE_RULES}
    assert covered == set(RULES), (
        "rules without fixture coverage: "
        f"{sorted(set(RULES) - covered)}")


def test_catalog_has_at_least_eight_rules():
    assert len(RULES) >= 8


def test_rule_metadata_is_complete():
    for rule in rule_catalog():
        assert rule.id and rule.title and rule.rationale
        assert rule.severity in ("error", "warning")


def test_fixtures_have_all_three_sections():
    for rule_id, path in FIXTURE_RULES:
        source = path.read_text()
        assert expected_lines(source), f"{path.name}: no positive cases"
        assert "def negatives" in source, f"{path.name}: no negatives"
        assert "simlint: allow[" in source, f"{path.name}: no pragma case"
