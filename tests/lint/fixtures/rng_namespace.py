"""Fixture for the rng-namespace rule (string seeds carry a namespace)."""

import random


def positives(seed, tenant):
    bare = random.Random("my seed")  # BAD
    leading = random.Random(f"{seed}-chaos")  # BAD
    caps = random.Random("Chaos-1")  # BAD
    return bare, leading, caps


def negatives(seed, tenant):
    chaos = random.Random(f"chaos-{seed}")
    stream = random.Random(f"stream-{seed}-{tenant}")
    plain = random.Random(seed)           # non-string seeds are exempt
    literal = random.Random("faults-7")   # constant with namespace
    return chaos, stream, plain, literal


def suppressed(seed):
    odd = random.Random(f"{seed}")  # simlint: allow[rng-namespace] -- fixture: single-use legacy seed
    return odd
