"""Fixture for the silent-except rule."""


def positives(kernel):
    try:
        kernel.step()
    except:  # BAD
        pass
    try:
        kernel.step()
    except Exception:  # BAD
        pass
    try:
        kernel.step()
    except BaseException:  # BAD
        pass


def negatives(kernel, log):
    try:
        kernel.step()
    except FileNotFoundError:
        pass                      # narrow catch is fine
    try:
        kernel.step()
    except Exception as error:    # broad catch that *handles* is fine
        log.append(error)
        raise


def suppressed(kernel):
    try:
        kernel.step()
    except Exception:  # simlint: allow[silent-except] -- fixture: best-effort teardown
        pass
