"""Fixture for the telemetry-wall rule."""


def positives():
    from repro.obs import MetricsRegistry, Tracer
    tracer = Tracer()  # BAD
    detailed = Tracer(detail=True)  # BAD
    registry = MetricsRegistry()  # BAD
    return tracer, detailed, registry


def negatives(tracer, metrics, spans):
    if tracer is not None:
        span = tracer.start("epoch", "job", "t0", 0.0)
        tracer.finish(span, 1.0)
    if metrics is not None:
        metrics.counter("events").increment()
    return spans


def suppressed():
    from repro.obs import Tracer
    tracer = Tracer()  # simlint: allow[telemetry-wall] -- fixture: test helper builds its own tracer
    return tracer
