"""Fixture for the set-iteration rule."""


def positives(items, other):
    for value in set(items):  # BAD
        print(value)
    for value in {1, 2, 3}:  # BAD
        print(value)
    for value in frozenset(items):  # BAD
        print(value)
    for value in set(items) | set(other):  # BAD
        print(value)
    squares = [v * v for v in {x for x in items}]  # BAD
    return squares


def negatives(items, other):
    for value in sorted(set(items)):
        print(value)
    joined = ", ".join(sorted({str(x) for x in items}))
    member = 3 in set(items)        # membership, not iteration
    union = set(items) | set(other)  # building a set is fine
    as_list = list(items)            # lists keep insertion order
    return joined, member, union, as_list


def suppressed(items):
    # simlint: allow[set-iteration] -- fixture: aggregate min() is order-insensitive
    smallest = min(x for x in set(items))
    return smallest
