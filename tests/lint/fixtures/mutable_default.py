"""Fixture for the mutable-default rule."""

from dataclasses import dataclass, field


def positives_list(items=[]):  # BAD
    return items


def positives_dict(mapping={}):  # BAD
    return mapping


def positives_call(entries=list(), *, table=dict()):  # BAD
    return entries, table


def positives_comp(seen={x for x in range(3)}):  # BAD
    return seen


def negatives(items=None, names=(), label="x", count=0):
    if items is None:
        items = []
    return items, names, label, count


@dataclass
class NegativeSpec:
    values: list = field(default_factory=list)
    table: dict = field(default_factory=dict)


def suppressed(cache={}):  # simlint: allow[mutable-default] -- fixture: intentional memo table
    return cache
