"""Fixture for the wall-clock rule (positive / negative / pragma)."""

import time
from time import monotonic, sleep
from datetime import datetime


def positives():
    stamp = time.time()  # BAD
    tick = time.monotonic()  # BAD
    nanos = time.time_ns()  # BAD
    time.sleep(0.5)  # BAD
    taken = monotonic()  # BAD
    sleep(1)  # BAD
    today = datetime.now()  # BAD
    return stamp, tick, nanos, taken, today


def negatives(sim):
    started = time.perf_counter()  # sanctioned host-side timer
    now = sim.now                  # the sim clock
    label = "time.time() in a string is fine"
    return started, now, label, time.perf_counter() - started


def suppressed():
    cutoff = time.time()  # simlint: allow[wall-clock] -- fixture: host-side GC sweep
    # simlint: allow[wall-clock] -- fixture: whole-line pragma covers next line
    other = time.monotonic()
    return cutoff, other
