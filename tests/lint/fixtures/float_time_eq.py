"""Fixture for the float-time-eq rule."""


def positives(sim, job, other):
    if sim.now == 0.0:  # BAD
        pass
    if job.deadline != other.deadline:  # BAD
        pass
    if sim.now == job.arrival:  # BAD
        pass
    now = sim.now
    while now != 10.0:  # BAD
        now += 1.0
    return now


def negatives(sim, job, other):
    if sim.now <= job.deadline:
        pass
    if sim.now >= 0.0 and job.arrival < other.arrival:
        pass
    if job.state == "granted":      # string compare, not a timestamp
        pass
    if job.retries == 3:            # plain counter named nothing timelike
        pass
    import math
    return math.isclose(sim.now, job.deadline)


def suppressed(sim):
    if sim.now == 0.0:  # simlint: allow[float-time-eq] -- fixture: exact zero start-of-run sentinel
        pass
