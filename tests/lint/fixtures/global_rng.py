"""Fixture for the global-rng rule (no shared module-level RNG)."""

import random
from random import choice, shuffle


def positives(items):
    value = random.random()  # BAD
    pick = random.choice(items)  # BAD
    random.shuffle(items)  # BAD
    random.seed(0)  # BAD
    direct = choice(items)  # BAD
    shuffle(items)  # BAD
    return value, pick, direct


def negatives(items, seed):
    rng = random.Random(seed)
    value = rng.random()
    pick = rng.choice(items)
    rng.shuffle(items)
    return value, pick


def suppressed(items):
    pick = random.choice(items)  # simlint: allow[global-rng] -- fixture: demo
    return pick
