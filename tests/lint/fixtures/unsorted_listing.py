"""Fixture for the unsorted-listing rule."""

import glob
import os
from pathlib import Path


def positives(directory: Path):
    names = os.listdir(".")  # BAD
    for path in directory.glob("*.json"):  # BAD
        print(path)
    for path in directory.iterdir():  # BAD
        print(path)
    nested = [p for p in directory.rglob("*.py")]  # BAD
    matches = glob.glob("*.txt")  # BAD
    lazy = glob.iglob("*.txt")  # BAD
    entries = os.scandir(".")  # BAD
    return names, nested, matches, lazy, entries


def negatives(directory: Path):
    names = sorted(os.listdir("."))
    for path in sorted(directory.glob("*.json")):
        print(path)
    ordered = sorted(directory.iterdir())
    by_name = sorted(p.name for p in directory.rglob("*.py"))
    return names, ordered, by_name


def suppressed(directory: Path):
    # simlint: allow[unsorted-listing] -- fixture: order-insensitive unlink sweep
    for path in directory.glob("*.tmp"):
        path.unlink()
