"""Fixture for the unseeded-rng rule."""

import random
from random import Random


def positives():
    rng = random.Random()  # BAD
    other = Random()  # BAD
    return rng, other


def negatives(seed, spec):
    rng = random.Random(seed)
    namespaced = random.Random(f"chaos-{seed}")
    derived = Random(spec.seed * 31 + 7)
    return rng, namespaced, derived


def suppressed():
    rng = random.Random()  # simlint: allow[unseeded-rng] -- fixture: demo
    return rng
