"""Framework tests: pragmas, config, rendering, discovery."""

import json
from pathlib import Path

from repro.lint import (
    DEFAULT_CONFIG,
    LintConfig,
    PathRules,
    RULES,
    findings_to_json,
    lint_paths,
    lint_source,
    render_text,
)
from repro.lint.framework import discover, parse_pragmas

WALL = "import time\nstamp = time.time()\n"


def rules_of(findings):
    return [f.rule for f in findings]


# -- pragmas -----------------------------------------------------------------

def test_same_line_pragma_suppresses():
    src = ("import time\n"
           "stamp = time.time()  "
           "# simlint: allow[wall-clock] -- host-side GC\n")
    assert lint_source(src, "x.py") == []


def test_whole_line_pragma_covers_next_line():
    src = ("import time\n"
           "# simlint: allow[wall-clock] -- host-side GC\n"
           "stamp = time.time()\n")
    assert lint_source(src, "x.py") == []


def test_pragma_does_not_cover_later_lines():
    src = ("import time\n"
           "# simlint: allow[wall-clock] -- host-side GC\n"
           "stamp = time.time()\n"
           "other = time.time()\n")
    findings = lint_source(src, "x.py")
    assert rules_of(findings) == ["wall-clock"]
    assert findings[0].line == 4


def test_pragma_without_reason_is_a_finding():
    src = WALL.rstrip() + "  # simlint: allow[wall-clock]\n"
    findings = lint_source(src, "x.py")
    assert "bad-pragma" in rules_of(findings)
    # ... and the malformed pragma does NOT suppress the finding.
    assert "wall-clock" in rules_of(findings)


def test_pragma_with_unknown_rule_is_a_finding():
    src = WALL.rstrip() + "  # simlint: allow[no-such-rule] -- why\n"
    findings = lint_source(src, "x.py")
    assert "bad-pragma" in rules_of(findings)
    assert "wall-clock" in rules_of(findings)


def test_multi_rule_pragma():
    src = ("import time, os\n"
           "names = [time.time() for n in os.listdir('.')]  "
           "# simlint: allow[wall-clock, unsorted-listing] -- demo\n")
    assert lint_source(src, "x.py") == []


def test_pragma_in_docstring_is_ignored():
    src = ('"""Docs may say simlint: allow[wall-clock] freely."""\n'
           "x = 1\n")
    assert lint_source(src, "x.py") == []


def test_pragma_only_suppresses_named_rule():
    src = ("import time, os\n"
           "names = [time.time() for n in os.listdir('.')]  "
           "# simlint: allow[wall-clock] -- demo\n")
    assert rules_of(lint_source(src, "x.py")) == ["unsorted-listing"]


def test_parse_pragmas_table():
    src = ("# simlint: allow[wall-clock] -- one\n"
           "x = 1  # simlint: allow[set-iteration, global-rng] -- two\n")
    table = parse_pragmas("x.py", src)
    assert table.allows(1, "wall-clock")
    assert table.allows(2, "wall-clock")      # whole-line covers next
    assert table.allows(2, "set-iteration")
    assert table.allows(2, "global-rng")
    assert not table.allows(2, "unseeded-rng")
    assert table.bad == []


# -- config ------------------------------------------------------------------

def test_select_restricts_rules():
    src = "import time, os\nx = [time.time() for n in os.listdir('.')]\n"
    config = LintConfig(select=("wall-clock",))
    assert rules_of(lint_source(src, "x.py", config)) == ["wall-clock"]


def test_ignore_drops_rules():
    config = LintConfig(ignore=("wall-clock",))
    assert lint_source(WALL, "x.py", config) == []


def test_per_path_disable():
    config = LintConfig(per_path=(
        PathRules(prefix="src/special/", disable=("wall-clock",)),))
    assert lint_source(WALL, "src/special/gc.py", config) == []
    assert rules_of(lint_source(WALL, "src/other/gc.py", config)) == [
        "wall-clock"]


def test_default_config_allows_obs_to_build_tracers():
    src = "t = Tracer()\n"
    assert lint_source(src, "src/repro/obs/tracing.py",
                       DEFAULT_CONFIG) == []
    assert lint_source(src, "src/repro/api/session.py",
                       DEFAULT_CONFIG) == []
    assert rules_of(lint_source(src, "src/repro/serve/service.py",
                                DEFAULT_CONFIG)) == ["telemetry-wall"]


# -- rendering + discovery ---------------------------------------------------

def test_render_text_clean_summary():
    text = render_text([], checked=12)
    assert "clean" in text and "12 file(s)" in text


def test_render_text_lists_findings_and_breakdown():
    findings = lint_source(WALL, "x.py")
    text = render_text(findings, checked=1)
    assert "x.py:2:" in text
    assert "wall-clock x1" in text


def test_findings_to_json_schema():
    payload = findings_to_json(lint_source(WALL, "x.py"), checked=1)
    assert payload["schema"] == 1
    assert payload["files_checked"] == 1
    assert payload["rules"] == sorted(RULES)
    (finding,) = payload["findings"]
    assert finding["rule"] == "wall-clock"
    assert finding["path"] == "x.py"
    assert finding["line"] == 2
    assert json.loads(json.dumps(payload)) == payload


def test_syntax_error_is_reported_not_raised():
    findings = lint_source("def broken(:\n", "x.py")
    assert rules_of(findings) == ["syntax-error"]


def test_findings_are_ordered(tmp_path):
    (tmp_path / "b.py").write_text(WALL)
    (tmp_path / "a.py").write_text(WALL)
    findings = lint_paths([tmp_path], root=tmp_path)
    assert [f.path for f in findings] == ["a.py", "b.py"]


def test_discover_skips_pycache(tmp_path):
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
    (tmp_path / "real.py").write_text("x = 1\n")
    assert [p.name for p in discover([tmp_path])] == ["real.py"]
