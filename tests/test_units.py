"""Tests for unit helpers."""

import pytest
from hypothesis import given, strategies as st

from repro import units


def test_byte_constants():
    assert units.MB == 10**6
    assert units.GB == 10**9
    assert units.GIB == 2**30
    assert units.LINK_10GBIT == 1.25e9


def test_fmt_bytes_paper_style():
    assert units.fmt_bytes(146.9 * units.GB) == "146.9GB"
    assert units.fmt_bytes(594 * units.MB) == "594.0MB"
    assert units.fmt_bytes(1.39 * units.TB) == "1.39TB"
    assert units.fmt_bytes(512) == "512B"
    assert units.fmt_bytes(-2 * units.KB) == "-2.00KB"


def test_fmt_rate():
    assert units.fmt_rate(910 * units.MB) == "910.0 MB/s"


def test_fmt_duration():
    assert units.fmt_duration(2 * units.HOUR) == "2.00h"
    assert units.fmt_duration(90) == "1.50min"
    assert units.fmt_duration(2.5) == "2.50s"
    assert units.fmt_duration(0.005) == "5.00ms"
    assert units.fmt_duration(2e-6) == "2.0us"


def test_fmt_sps():
    assert units.fmt_sps(9053) == "9,053 SPS"
    assert units.fmt_sps(5.9) == "5.9 SPS"


def test_space_saving_examples():
    """The paper's own example: 5 GB -> 1 GB is 80% saving."""
    assert units.space_saving(5e9, 1e9) == pytest.approx(0.8)
    assert units.space_saving(5e9, 5e9) == 0.0


def test_space_saving_invalid():
    with pytest.raises(ValueError):
        units.space_saving(0, 1)


@given(st.floats(1.0, 1e15), st.floats(0.0, 1e15))
def test_space_saving_bounds(original, compressed):
    saving = units.space_saving(original, compressed)
    assert saving <= 1.0
    # Growth (negative saving) is allowed and unbounded below.
    if compressed <= original:
        assert 0.0 <= saving <= 1.0
