"""Tier-1 wiring for the sweep determinism smoke tool.

Runs ``tools/sweep_smoke.py`` exactly as CI and ``make smoke`` do: a
serial reference sweep, a ``--jobs 2`` parallel sweep that must be
byte-identical, and a warm-cache rerun that must hit >= 90%.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def test_sweep_smoke_tool_passes():
    result = subprocess.run(
        [sys.executable, str(REPO / "tools" / "sweep_smoke.py"),
         "--jobs", "2"],
        capture_output=True, text=True, timeout=600,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, (
        f"smoke tool failed\nstdout:\n{result.stdout}\n"
        f"stderr:\n{result.stderr}")
    assert "sweep smoke OK" in result.stdout
