"""Tests for the profile cache: hit/miss accounting, persistence,
round-trip fidelity and fingerprint invalidation."""

import pytest

from repro.backends import Environment, RunConfig, SimulatedBackend
from repro.core.profiler import StrategyProfile, StrategyProfiler
from repro.core.strategy import Strategy
from repro.exec.cache import ProfileCache, decode_run, encode_run
from repro.exec.fingerprint import job_fingerprint
from repro.pipelines import get_pipeline
from repro.sim.storage import DEVICE_PROFILES

BACKEND = SimulatedBackend()


def _profile(pipeline="MP3", split="decoded", **config) -> StrategyProfile:
    strategy = Strategy(get_pipeline(pipeline).split_at(split),
                        RunConfig(**config))
    return StrategyProfiler(BACKEND).profile_strategy(strategy)


class TestRoundTrip:
    def test_encode_decode_preserves_metrics(self):
        profile = _profile(epochs=2, compression="GZIP",
                           cache_mode="system")
        run = profile.result
        clone = decode_run(encode_run(run))
        assert clone.throughput == run.throughput
        assert clone.cached_throughput == run.cached_throughput
        assert clone.preprocessing_seconds == run.preprocessing_seconds
        assert clone.storage_bytes == run.storage_bytes
        assert clone.config == run.config
        assert clone.environment == run.environment
        assert len(clone.epochs) == len(run.epochs)
        assert clone.epochs[-1].cache_hit_rate \
            == run.epochs[-1].cache_hit_rate

    def test_record_identical_after_round_trip(self):
        profile = _profile()
        clone = StrategyProfile(
            strategy=profile.strategy,
            runs=[decode_run(encode_run(run)) for run in profile.runs])
        assert clone.to_record() == profile.to_record()


class TestMemoryCache:
    def test_miss_then_hit(self):
        cache = ProfileCache()
        profile = _profile()
        key = job_fingerprint(profile.strategy, Environment(), BACKEND)
        assert cache.lookup(key, profile.strategy) is None
        cache.store(key, profile)
        hit = cache.lookup(key, profile.strategy)
        assert hit is not None
        assert hit.to_record() == profile.to_record()
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_environment_fingerprint_invalidates(self):
        """A cache filled on HDD must miss when profiling targets SSD."""
        cache = ProfileCache()
        profile = _profile()
        hdd_key = job_fingerprint(profile.strategy, Environment(), BACKEND)
        cache.store(hdd_key, profile)
        ssd_env = Environment(storage=DEVICE_PROFILES["ceph-ssd"])
        ssd_key = job_fingerprint(profile.strategy, ssd_env, BACKEND)
        assert ssd_key != hdd_key
        assert cache.lookup(ssd_key, profile.strategy) is None

    def test_clear_and_len(self):
        cache = ProfileCache()
        profile = _profile()
        cache.store("key", profile)
        assert len(cache) == 1
        assert "key" in cache
        cache.clear()
        assert len(cache) == 0
        assert "key" not in cache


class TestDiskCache:
    def test_persists_across_instances(self, tmp_path):
        profile = _profile()
        key = job_fingerprint(profile.strategy, Environment(), BACKEND)
        ProfileCache(tmp_path).store(key, profile)

        fresh = ProfileCache(tmp_path)
        hit = fresh.lookup(key, profile.strategy)
        assert hit is not None
        assert hit.to_record() == profile.to_record()
        assert fresh.stats.hits == 1

    def test_entry_files_are_fingerprint_named(self, tmp_path):
        profile = _profile()
        key = job_fingerprint(profile.strategy, Environment(), BACKEND)
        ProfileCache(tmp_path).store(key, profile)
        assert (tmp_path / f"{key}.json").exists()

    def test_clear_removes_files(self, tmp_path):
        cache = ProfileCache(tmp_path)
        cache.store("abc", _profile())
        cache.clear()
        assert list(tmp_path.glob("*.json")) == []

    def test_corrupt_entry_is_a_miss_and_self_heals(self, tmp_path):
        """A mangled disk entry must read as a miss, not an error, and
        the next store must overwrite it."""
        profile = _profile()
        key = job_fingerprint(profile.strategy, Environment(), BACKEND)
        ProfileCache(tmp_path).store(key, profile)
        (tmp_path / f"{key}.json").write_text("{truncated garbage")

        cache = ProfileCache(tmp_path)
        assert cache.lookup(key, profile.strategy) is None
        assert cache.stats.misses == 1
        cache.store(key, profile)
        healed = ProfileCache(tmp_path)
        assert healed.lookup(key, profile.strategy) is not None

    def test_unwritable_directory_raises_cache_error(self):
        from repro.errors import CacheError
        with pytest.raises(CacheError):
            ProfileCache("/proc/no-such-dir/cache")
