"""Property-based tests for job fingerprints (repro.exec.fingerprint).

Stability: the same (pipeline, strategy, environment, backend) tuple
always digests to the same key, however it is rebuilt.  Uniqueness:
changing any cost-relevant knob changes the key.

Uses hypothesis when available (derandomized for run-to-run
determinism); otherwise a fixed-seed random sweep.
"""

import random
from dataclasses import replace

import pytest

from repro.backends.base import Environment, RunConfig
from repro.backends.simulated import SimulatedBackend
from repro.core.strategy import Strategy
from repro.exec.fingerprint import job_fingerprint
from repro.pipelines.registry import get_pipeline

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is optional
    HAVE_HYPOTHESIS = False

N_EXAMPLES = 40

BACKEND = SimulatedBackend()
ENVIRONMENT = Environment()
PIPELINE = get_pipeline("MP3")

CACHE_MODES = ("none", "system", "application")
COMPRESSIONS = (None, "GZIP", "ZLIB")


def make_config(threads: int, epochs: int, compression_index: int,
                cache_index: int, shuffle_buffer: int) -> RunConfig:
    return RunConfig(threads=threads, epochs=epochs,
                     compression=COMPRESSIONS[compression_index],
                     cache_mode=CACHE_MODES[cache_index],
                     shuffle_buffer=shuffle_buffer)


def make_strategy(split_index: int, config: RunConfig) -> Strategy:
    return Strategy(PIPELINE.split_at(split_index), config)


def fingerprint(strategy: Strategy, runs_total: int = 1) -> str:
    return job_fingerprint(strategy, ENVIRONMENT, BACKEND,
                           runs_total=runs_total)


def check_stability(split_index: int, config: RunConfig) -> None:
    """Identical inputs digest identically, even via fresh objects."""
    first = fingerprint(make_strategy(split_index, config))
    again = fingerprint(make_strategy(split_index, config))
    rebuilt = Strategy(get_pipeline("MP3").split_at(split_index),
                       replace(config))
    assert first == again
    assert first == fingerprint(rebuilt)
    assert len(first) == 64 and set(first) <= set("0123456789abcdef")


def check_uniqueness(split_index: int, config: RunConfig) -> None:
    """Every cost-relevant knob perturbs the digest."""
    base = fingerprint(make_strategy(split_index, config))
    variants = [
        make_strategy(split_index, replace(config,
                                           threads=config.threads + 1)),
        make_strategy(split_index, replace(config,
                                           epochs=config.epochs + 1)),
        make_strategy(split_index,
                      replace(config,
                              shuffle_buffer=config.shuffle_buffer + 16)),
        make_strategy(split_index,
                      replace(config, shards=config.effective_shards + 1)),
        make_strategy((split_index + 1) % 3, config),
    ]
    keys = [fingerprint(variant) for variant in variants]
    keys.append(fingerprint(make_strategy(split_index, config),
                            runs_total=5))
    environment = Environment(cores=ENVIRONMENT.cores + 8)
    keys.append(job_fingerprint(make_strategy(split_index, config),
                                environment, BACKEND))
    keys.append(job_fingerprint(make_strategy(split_index, config),
                                ENVIRONMENT, BACKEND,
                                extra={"caller": "test"}))
    assert base not in keys
    assert len(set(keys)) == len(keys), "variant fingerprints collided"


if HAVE_HYPOTHESIS:
    config_strategy = st.builds(
        make_config,
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=len(COMPRESSIONS) - 1),
        st.integers(min_value=0, max_value=len(CACHE_MODES) - 1),
        st.integers(min_value=0, max_value=4096))
    split_strategy = st.integers(min_value=0, max_value=2)

    @given(split_strategy, config_strategy)
    @settings(max_examples=N_EXAMPLES, derandomize=True, deadline=None)
    def test_fingerprint_stability(split_index, config):
        check_stability(split_index, config)

    @given(split_strategy, config_strategy)
    @settings(max_examples=N_EXAMPLES, derandomize=True, deadline=None)
    def test_fingerprint_uniqueness(split_index, config):
        check_uniqueness(split_index, config)

else:  # pragma: no cover - exercised only without hypothesis
    def draw(rng: random.Random):
        return (rng.randint(0, 2),
                make_config(rng.randint(1, 64), rng.randint(1, 4),
                            rng.randint(0, len(COMPRESSIONS) - 1),
                            rng.randint(0, len(CACHE_MODES) - 1),
                            rng.randint(0, 4096)))

    def test_fingerprint_stability():
        rng = random.Random(0xF1D0)
        for _ in range(N_EXAMPLES):
            check_stability(*draw(rng))

    def test_fingerprint_uniqueness():
        rng = random.Random(0xF1D1)
        for _ in range(N_EXAMPLES):
            check_uniqueness(*draw(rng))


def test_pipeline_mutation_changes_fingerprint():
    config = RunConfig()
    base = fingerprint(make_strategy(1, config))
    mutated = get_pipeline("MP3").with_representation(
        "decoded", bytes_per_sample=123456.0)
    assert fingerprint(Strategy(mutated.split_at(1), config)) != base


def test_sample_count_changes_fingerprint():
    config = RunConfig()
    base = fingerprint(make_strategy(1, config))
    subset = get_pipeline("MP3").with_sample_count(100)
    assert fingerprint(Strategy(subset.split_at(1), config)) != base
