"""Regression tests for the ProfileCache shared-directory write race.

Two processes sharing a ``--cache DIR`` used to funnel every store of
the same fingerprint through one shared temp path (``<key>.tmp``): a
writer could rename the *other* writer's half-written file into place,
or crash with FileNotFoundError when the temp it was about to rename
had already been consumed.  The fix gives every store a temp name
unique per process and per write; these tests pin the contract.
"""

import json
import threading

import pytest

from repro.backends.base import RunConfig
from repro.backends.simulated import SimulatedBackend
from repro.core.profiler import StrategyProfiler
from repro.core.strategy import Strategy
from repro.exec.cache import PAYLOAD_VERSION, ProfileCache
from repro.pipelines.registry import get_pipeline

KEY = "f" * 64


@pytest.fixture(scope="module")
def profile():
    profiler = StrategyProfiler(SimulatedBackend())
    return profiler.profile_strategy(
        Strategy(get_pipeline("MP3").split_at(2), RunConfig()))


def test_concurrent_stores_of_one_key_never_corrupt(tmp_path, profile):
    """Many writers x one fingerprint: every interleaving must leave a
    parseable, current-version entry and raise nothing."""
    writers = [ProfileCache(tmp_path) for _ in range(4)]
    errors = []
    barrier = threading.Barrier(len(writers))

    def hammer(cache):
        try:
            barrier.wait()
            for _ in range(50):
                cache.store(KEY, profile)
        except Exception as exc:  # pragma: no cover - the regression
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(cache,))
               for cache in writers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    payload = json.loads((tmp_path / f"{KEY}.json").read_text())
    assert payload["version"] == PAYLOAD_VERSION
    assert payload["fingerprint"] == KEY
    assert len(payload["runs"]) == len(profile.runs)


def test_concurrent_stores_leave_no_temp_litter(tmp_path, profile):
    writers = [ProfileCache(tmp_path) for _ in range(3)]
    threads = [threading.Thread(
        target=lambda cache=cache: [cache.store(KEY, profile)
                                    for _ in range(30)])
        for cache in writers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert list(tmp_path.glob("*.tmp")) == []


def test_temp_names_are_unique_per_write(tmp_path, profile, monkeypatch):
    """The temp path must differ between writes even within one
    process, so interrupted writes can never collide."""
    import repro.exec.cache as cache_module
    seen = []
    original = cache_module.os.replace

    def spy(src, dst):
        seen.append(str(src))
        return original(src, dst)

    monkeypatch.setattr(cache_module.os, "replace", spy)
    cache = ProfileCache(tmp_path)
    cache.store(KEY, profile)
    cache.store(KEY, profile)
    assert len(seen) == 2
    assert seen[0] != seen[1]
    assert all(path.endswith(".tmp") for path in seen)


def test_fresh_process_reads_what_racers_wrote(tmp_path, profile):
    writer = ProfileCache(tmp_path)
    writer.store(KEY, profile)
    reader = ProfileCache(tmp_path)
    hit = reader.lookup(KEY, profile.strategy)
    assert hit is not None
    assert hit.to_record() == profile.to_record()
    assert reader.stats.hits == 1
    assert reader.stats.misses == 0


def test_clear_sweeps_stale_but_spares_fresh_temp_files(tmp_path, profile):
    import os
    import time
    from repro.exec.cache import STALE_TMP_SECONDS
    cache = ProfileCache(tmp_path)
    cache.store(KEY, profile)
    stale = tmp_path / f"{KEY}.json.12345.0.tmp"
    stale.write_text("litter from a crashed writer")
    old = time.time() - STALE_TMP_SECONDS - 10
    os.utime(stale, (old, old))
    fresh = tmp_path / f"{KEY}.json.67890.0.tmp"
    fresh.write_text("a live writer is about to rename this")
    cache.clear()
    # Entries and crash litter gone; the live writer's file survives so
    # its imminent os.replace cannot crash with FileNotFoundError.
    assert list(tmp_path.glob("*")) == [fresh]


def test_reader_racing_a_writer_sees_hit_or_clean_miss(tmp_path, profile):
    """A reader polling while a writer hammers the same key must only
    ever see a full entry or a miss -- never a decode error."""
    writer_cache = ProfileCache(tmp_path)
    writer_cache.store(KEY, profile)  # the entry exists from the start
    stop = threading.Event()

    def write_loop():
        while not stop.is_set():
            writer_cache.store(KEY, profile)

    writer = threading.Thread(target=write_loop)
    writer.start()
    try:
        hits = 0
        for _ in range(200):
            reader = ProfileCache(tmp_path)
            result = reader.lookup(KEY, profile.strategy)
            if result is not None:
                hits += 1
                assert result.to_record() == profile.to_record()
    finally:
        stop.set()
        writer.join()
    assert hits > 0  # the happy path was actually exercised
