"""Tests for the sweep engine: executor resolution, parallel-vs-serial
equivalence, cache integration, events and profiler delegation."""

import pytest

from repro.backends import RunConfig, SimulatedBackend
from repro.core.analysis import StrategyAnalysis
from repro.core.autotune import AutoTuner
from repro.core.profiler import StrategyProfiler
from repro.core.strategy import Strategy, enumerate_strategies
from repro.errors import SweepError
from repro.exec import (ProcessExecutor, ProfileCache, SerialExecutor,
                        SweepEngine, ThreadExecutor, resolve_executor)
from repro.exec.events import CACHE_HIT, JOB_DONE, SWEEP_END, SWEEP_START
from repro.pipelines import get_pipeline
from repro.pipelines.registry import PAPER_PIPELINES, all_pipelines

BACKEND = SimulatedBackend()


def _records(profiles):
    return [profile.to_record() for profile in profiles]


class TestExecutorResolution:
    def test_default_is_serial(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor(1), SerialExecutor)
        assert isinstance(resolve_executor("serial"), SerialExecutor)

    def test_jobs_count_maps_to_process_pool(self):
        executor = resolve_executor(3)
        assert isinstance(executor, ProcessExecutor)
        assert executor.jobs == 3

    def test_named_pools(self):
        assert isinstance(resolve_executor("thread"), ThreadExecutor)
        assert isinstance(resolve_executor("process"), ProcessExecutor)

    def test_instance_passthrough(self):
        executor = ThreadExecutor(2)
        assert resolve_executor(executor) is executor

    def test_invalid_specs(self):
        for spec in (0, -1, "warp-drive", 2.5):
            with pytest.raises(SweepError):
                resolve_executor(spec)

    def test_map_preserves_order(self):
        for executor in (SerialExecutor(), ThreadExecutor(4),
                         ProcessExecutor(4)):
            assert executor.map(abs, [-3, -1, -2]) == [3, 1, 2]


class TestParallelEquivalence:
    @pytest.mark.parametrize("pipeline", PAPER_PIPELINES)
    def test_process_pool_matches_serial(self, pipeline):
        serial = SweepEngine(BACKEND).profile_pipeline(
            get_pipeline(pipeline))
        parallel = SweepEngine(BACKEND, executor=2).profile_pipeline(
            get_pipeline(pipeline))
        assert _records(parallel) == _records(serial)

    def test_thread_pool_matches_serial(self):
        strategies = enumerate_strategies(get_pipeline("FLAC"),
                                          threads=(4, 8))
        serial = SweepEngine(BACKEND).profile(strategies)
        threaded = SweepEngine(BACKEND, executor="thread").profile(
            strategies)
        assert _records(threaded) == _records(serial)

    def test_sweep_matches_per_pipeline_profiling(self):
        pipelines = [get_pipeline("MP3"), get_pipeline("NILM")]
        result = SweepEngine(BACKEND, executor=2).sweep(pipelines)
        assert result.pipelines == ["MP3", "NILM"]
        for pipeline in pipelines:
            expected = SweepEngine(BACKEND).profile_pipeline(pipeline)
            assert (_records(result.profiles[pipeline.name])
                    == _records(expected))

    def test_analysis_summaries_byte_identical(self):
        serial = SweepEngine(BACKEND).sweep([get_pipeline("FLAC")])
        parallel = SweepEngine(BACKEND, executor=4).sweep(
            [get_pipeline("FLAC")])
        assert (StrategyAnalysis(parallel.profiles["FLAC"]).summary()
                == StrategyAnalysis(serial.profiles["FLAC"]).summary())

    def test_duplicate_pipelines_aggregate(self):
        result = SweepEngine(BACKEND).sweep(
            [get_pipeline("MP3"), get_pipeline("MP3")])
        assert result.pipelines == ["MP3"]
        assert len(result.profiles["MP3"]) == 6
        assert result.job_count == 6

    def test_mutated_pipeline_falls_back_to_threads(self):
        """Unpicklable, non-registry pipelines must still profile
        correctly under a process-pool request."""
        mutated = get_pipeline("MP3").with_representation(
            "decoded", bytes_per_sample=123456.0)
        serial = SweepEngine(BACKEND).profile_pipeline(mutated)
        parallel = SweepEngine(BACKEND, executor=2).profile_pipeline(
            mutated)
        assert _records(parallel) == _records(serial)


class TestEngineCache:
    def test_second_profile_hits(self):
        cache = ProfileCache()
        engine = SweepEngine(BACKEND, cache=cache)
        first = engine.profile_pipeline(get_pipeline("MP3"))
        assert cache.stats.hits == 0
        second = engine.profile_pipeline(get_pipeline("MP3"))
        assert cache.stats.hits == len(second)
        assert _records(second) == _records(first)

    def test_hit_rate_at_least_90_percent_on_rerun(self, tmp_path):
        """The acceptance criterion: a second full-catalog sweep against
        a warm cache is served (almost) entirely from it."""
        cold = SweepEngine(BACKEND, executor=2,
                           cache=ProfileCache(tmp_path))
        cold.sweep(all_pipelines())
        warm_cache = ProfileCache(tmp_path)
        SweepEngine(BACKEND, executor=2, cache=warm_cache).sweep(
            all_pipelines())
        assert warm_cache.stats.hit_rate >= 0.9

    def test_cached_results_survive_disk_round_trip(self, tmp_path):
        first = SweepEngine(BACKEND, cache=ProfileCache(tmp_path))
        reference = first.profile_pipeline(get_pipeline("NILM"))
        warm_cache = ProfileCache(tmp_path)
        warm = SweepEngine(BACKEND, cache=warm_cache)
        rerun = warm.profile_pipeline(get_pipeline("NILM"))
        assert warm_cache.stats.hits == len(rerun)
        assert _records(rerun) == _records(reference)

    def test_environment_change_invalidates(self):
        from repro.backends import Environment
        from repro.sim.storage import DEVICE_PROFILES
        cache = ProfileCache()
        SweepEngine(BACKEND, cache=cache).profile_pipeline(
            get_pipeline("MP3"))
        ssd = SimulatedBackend(
            Environment(storage=DEVICE_PROFILES["ceph-ssd"]))
        SweepEngine(ssd, cache=cache).profile_pipeline(get_pipeline("MP3"))
        assert cache.stats.hits == 0

    def test_runs_total_change_invalidates(self):
        cache = ProfileCache()
        SweepEngine(BACKEND, cache=cache, runs_total=1).profile_pipeline(
            get_pipeline("MP3"))
        SweepEngine(BACKEND, cache=cache, runs_total=2).profile_pipeline(
            get_pipeline("MP3"))
        assert cache.stats.hits == 0


class TestEvents:
    def test_event_stream_shape(self):
        events = []
        engine = SweepEngine(BACKEND, cache=ProfileCache(),
                             listeners=[events.append])
        engine.profile_pipeline(get_pipeline("MP3"))
        kinds = [event.kind for event in events]
        assert kinds[0] == SWEEP_START
        assert kinds[-1] == SWEEP_END
        assert kinds.count(JOB_DONE) == 3

        events.clear()
        engine.profile_pipeline(get_pipeline("MP3"))
        kinds = [event.kind for event in events]
        assert kinds.count(CACHE_HIT) == 3
        assert kinds.count(JOB_DONE) == 0

    def test_events_carry_identity(self):
        events = []
        engine = SweepEngine(BACKEND, listeners=[events.append])
        engine.profile_pipeline(get_pipeline("FLAC"))
        done = [event for event in events if event.kind == JOB_DONE]
        assert {event.pipeline for event in done} == {"FLAC"}
        assert all(event.total == 3 for event in done)
        assert [event.index for event in done] == [1, 2, 3]


class TestProfilerDelegation:
    def test_profiler_uses_engine(self):
        profiler = StrategyProfiler(BACKEND, jobs=2)
        assert isinstance(profiler.engine, SweepEngine)
        profiles = profiler.profile_pipeline(get_pipeline("MP3"))
        reference = StrategyProfiler(BACKEND).profile_pipeline(
            get_pipeline("MP3"))
        assert _records(profiles) == _records(reference)

    def test_profiler_cache_shared_across_calls(self):
        cache = ProfileCache()
        profiler = StrategyProfiler(BACKEND, cache=cache)
        profiler.profile_pipeline(get_pipeline("MP3"))
        profiler.profile_pipeline(get_pipeline("MP3"))
        assert cache.stats.hits == 3

    def test_autotuner_threads_engine_options(self):
        cache = ProfileCache()
        tuner = AutoTuner(BACKEND, jobs=2, cache=cache)
        report = tuner.tune(get_pipeline("NILM"))
        assert cache.stats.stores == report.screened
        rerun = AutoTuner(BACKEND, cache=cache).tune(get_pipeline("NILM"))
        assert cache.stats.hits == rerun.screened

    def test_invalid_runs_total(self):
        with pytest.raises(SweepError):
            SweepEngine(BACKEND, runs_total=0)

    def test_sample_count_still_subsets(self):
        profiler = StrategyProfiler(BACKEND, jobs=2)
        strategy = Strategy(get_pipeline("CV").split_at("resized"),
                            RunConfig())
        subset = profiler.profile_strategy(strategy, sample_count=8000)
        assert subset.result.epochs[0].samples == 8000
