"""Tests for content-addressed job fingerprints."""

from repro.backends import Environment, InProcessBackend, RunConfig, \
    SimulatedBackend
from repro.core.strategy import Strategy
from repro.exec.fingerprint import (describe_backend, describe_pipeline,
                                    job_fingerprint)
from repro.pipelines import get_pipeline
from repro.sim.storage import DEVICE_PROFILES

BACKEND = SimulatedBackend()
ENV = Environment()


def _strategy(pipeline="MP3", split="decoded", **config):
    return Strategy(get_pipeline(pipeline).split_at(split),
                    RunConfig(**config))


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        a = job_fingerprint(_strategy(), ENV, BACKEND)
        b = job_fingerprint(_strategy(), ENV, BACKEND)
        assert a == b

    def test_config_changes_key(self):
        base = job_fingerprint(_strategy(threads=8), ENV, BACKEND)
        other = job_fingerprint(_strategy(threads=4), ENV, BACKEND)
        assert base != other

    def test_split_changes_key(self):
        assert (job_fingerprint(_strategy(split="decoded"), ENV, BACKEND)
                != job_fingerprint(_strategy(split="unprocessed"),
                                   ENV, BACKEND))

    def test_environment_changes_key(self):
        """Moving to different storage hardware must invalidate."""
        ssd = Environment(storage=DEVICE_PROFILES["ceph-ssd"])
        assert (job_fingerprint(_strategy(), ENV, BACKEND)
                != job_fingerprint(_strategy(), ssd, BACKEND))

    def test_backend_changes_key(self):
        inproc = InProcessBackend()
        assert (job_fingerprint(_strategy(), ENV, BACKEND)
                != job_fingerprint(_strategy(), ENV, inproc))

    def test_pipeline_mutation_changes_key(self):
        pipeline = get_pipeline("MP3")
        mutated = pipeline.with_representation("decoded",
                                               bytes_per_sample=1.0)
        a = Strategy(pipeline.split_at("decoded"), RunConfig())
        b = Strategy(mutated.split_at("decoded"), RunConfig())
        assert (job_fingerprint(a, ENV, BACKEND)
                != job_fingerprint(b, ENV, BACKEND))

    def test_runs_total_changes_key(self):
        assert (job_fingerprint(_strategy(), ENV, BACKEND, runs_total=1)
                != job_fingerprint(_strategy(), ENV, BACKEND, runs_total=3))


class TestDescriptions:
    def test_pipeline_description_is_json_safe(self):
        import json
        json.dumps(describe_pipeline(get_pipeline("CV")), sort_keys=True)

    def test_registry_rebuild_matches(self):
        """The portability check the process pool relies on."""
        assert (describe_pipeline(get_pipeline("NLP"))
                == describe_pipeline(get_pipeline("NLP")))

    def test_backend_description_carries_knobs(self):
        description = describe_backend(InProcessBackend(seed=7))
        assert description["type"] == "InProcessBackend"
        assert description["seed"] == 7
