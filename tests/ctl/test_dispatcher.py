"""Dispatcher behaviour tests: retry, DLQ, cancel, admission, preempt,
autoscale -- each feature pinned through the execution ledger."""

import pytest

from repro.ctl import (CANCELLED, DEADLETTER, SUCCEEDED, AutoscaleConfig,
                       Dispatcher, RetryPolicy, control_summary,
                       control_table)
from repro.ctl import ledger as lc
from repro.errors import ControlError
from repro.serve import JobSpec


def _spec(tenant="t0", pipeline="MP3", split="spectrogram-encoded",
          **kwargs):
    return JobSpec(tenant=tenant, pipeline=pipeline, split=split, **kwargs)


def _events(report, job_id):
    return [entry.event for entry in report.ledger.entries_for(job_id)]


class TestConstruction:
    def test_empty_trace_raises(self):
        with pytest.raises(ControlError, match="empty control trace"):
            Dispatcher().run([])

    def test_bad_admission_limit(self):
        with pytest.raises(ControlError, match="admission_limit"):
            Dispatcher(admission_limit=0)

    def test_slots_outside_autoscale_bounds(self):
        with pytest.raises(ControlError, match="outside autoscale bounds"):
            Dispatcher(slots=8,
                       autoscale=AutoscaleConfig(min_slots=1, max_slots=4))
        with pytest.raises(ControlError, match="min_slots"):
            AutoscaleConfig(min_slots=0)
        with pytest.raises(ControlError, match="max_slots"):
            AutoscaleConfig(min_slots=4, max_slots=2)

    def test_retry_policy_validation(self):
        with pytest.raises(ControlError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ControlError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ControlError):
            RetryPolicy().backoff(0)

    def test_backoff_grows_geometrically_to_the_cap(self):
        policy = RetryPolicy(max_attempts=9, backoff_base=10.0,
                             backoff_factor=2.0, backoff_cap=50.0)
        assert [policy.backoff(n) for n in (1, 2, 3, 4)] == \
            [10.0, 20.0, 40.0, 50.0]
        assert policy.should_retry(8) and not policy.should_retry(9)


class TestLifecycle:
    def test_clean_run_lifecycle(self):
        report = Dispatcher(slots=1).run([_spec()])
        assert _events(report, "job-000") == \
            [lc.SUBMIT, lc.ADMIT, lc.START, lc.SUCCEED]
        assert report.submitted == 1 and report.succeeded == 1
        assert report.ledger.state("job-000") == SUCCEEDED
        record = report.record("job-000")
        assert record.attempt == 1 and record.failures == 0
        with pytest.raises(ControlError, match="no job"):
            report.record("job-999")

    def test_submit_api_ids_are_stable(self):
        dispatcher = Dispatcher(slots=2)
        first = dispatcher.submit(_spec("a"))
        second = dispatcher.submit(_spec("b"))
        assert (first, second) == ("job-000", "job-001")
        report = dispatcher.run()
        assert {record.job_id for record in report.records} == \
            {"job-000", "job-001"}

    def test_report_rendering(self):
        report = Dispatcher(slots=1).run([_spec("a"), _spec("b")])
        summary = control_summary(report)
        assert "control [fifo]: 2 job(s)" in summary
        assert "2 succeeded" in summary
        assert "retry policy:" in summary
        table = control_table(report)
        assert table["state"] == [SUCCEEDED, SUCCEEDED]
        assert table["attempts"] == [1, 1]


class TestRetryAndDeadLetter:
    def test_transient_crash_is_retried_to_success(self):
        spec = _spec(epochs=2, crash_epoch=1, crash_attempts=1)
        report = Dispatcher(
            slots=1, retry=RetryPolicy(max_attempts=3, backoff_base=50.0,
                                       backoff_factor=3.0)).run([spec])
        assert _events(report, "job-000") == [
            lc.SUBMIT, lc.ADMIT, lc.START, lc.FAIL, lc.RETRY,
            lc.ADMIT, lc.START, lc.SUCCEED]
        record = report.record("job-000")
        assert record.failures == 1 and record.retries == 1
        assert report.ledger.attempts("job-000") == 2
        assert "injected crash at epoch 1" in report.ledger.describe()

    def test_retry_waits_the_exponential_backoff(self):
        spec = _spec(epochs=2, crash_epoch=1, crash_attempts=2)
        report = Dispatcher(
            slots=1, retry=RetryPolicy(max_attempts=3, backoff_base=50.0,
                                       backoff_factor=3.0)).run([spec])
        entries = report.ledger.entries_for("job-000")
        fails = [entry for entry in entries if entry.event == lc.FAIL]
        retries = [entry for entry in entries if entry.event == lc.RETRY]
        assert len(fails) == 2 and len(retries) == 2
        assert retries[0].time - fails[0].time == pytest.approx(50.0)
        assert retries[1].time - fails[1].time == pytest.approx(150.0)

    def test_exhausted_job_dead_letters(self):
        spec = _spec(epochs=2, crash_epoch=0, crash_attempts=99)
        report = Dispatcher(
            slots=1, retry=RetryPolicy(max_attempts=2,
                                       backoff_base=10.0)).run([spec])
        assert _events(report, "job-000")[-2:] == [lc.FAIL, lc.EXHAUST]
        assert report.ledger.state("job-000") == DEADLETTER
        assert report.ledger.dead_letters() == ("job-000",)
        assert report.dead == 1
        letter = report.dead_letters[0]
        assert letter.attempts == 2 and letter.tenant == "t0"
        assert "dead-letter queue" in control_summary(report)

    def test_retry_api_resubmits_only_dead_letters(self):
        spec = _spec(epochs=1, crash_epoch=0, crash_attempts=99)
        dispatcher = Dispatcher(slots=1,
                                retry=RetryPolicy(max_attempts=1))
        first = dispatcher.run([spec])
        assert first.ledger.state("job-000") == DEADLETTER
        new_id = dispatcher.retry("job-000")
        assert new_id == "job-001"
        second = dispatcher.run()
        record = second.record("job-001")
        assert record.parent == "job-000"
        # The crash is still in the spec, so it dead-letters again.
        assert second.ledger.state("job-001") == DEADLETTER
        with pytest.raises(ControlError, match="dead-lettered"):
            dispatcher.retry("job-001-nope")


class TestCancellation:
    def test_cancel_before_arrival(self):
        dispatcher = Dispatcher(slots=1)
        dispatcher.submit(_spec(arrival=100.0))
        dispatcher.cancel("job-000", at=10.0)
        report = dispatcher.run()
        assert _events(report, "job-000") == [lc.SUBMIT, lc.CANCEL]
        assert report.ledger.state("job-000") == CANCELLED
        assert report.cancelled == 1

    def test_cancel_while_queued(self):
        dispatcher = Dispatcher(slots=1)
        dispatcher.submit(_spec("a"))
        dispatcher.submit(_spec("b"))
        dispatcher.cancel("job-001", at=1.0)
        report = dispatcher.run()
        assert _events(report, "job-001") == \
            [lc.SUBMIT, lc.ADMIT, lc.CANCEL]
        assert report.ledger.state("job-000") == SUCCEEDED
        # The cancelled job never held a slot, so 'a' ran uncontended.
        assert report.record("job-001").job.granted is None

    def test_cancel_while_running_stops_at_epoch_boundary(self):
        # Probe the clean timeline, then cancel just after epoch 0 ends.
        clean = Dispatcher(slots=1).run([_spec(epochs=4)])
        probe = clean.record("job-000").job
        cut = (probe.granted + probe.offline.duration
               + probe.epochs[0].duration
               + 0.5 * probe.epochs[1].duration)
        dispatcher = Dispatcher(slots=1)
        dispatcher.submit(_spec(epochs=4))
        dispatcher.cancel("job-000", at=cut)
        report = dispatcher.run()
        events = _events(report, "job-000")
        assert events == [lc.SUBMIT, lc.ADMIT, lc.START, lc.CANCEL]
        job = report.record("job-000").job
        assert 0 < len(job.epochs) < 4

    def test_cancel_after_terminal_is_a_noop(self):
        dispatcher = Dispatcher(slots=1)
        dispatcher.submit(_spec(epochs=1))
        dispatcher.cancel("job-000", at=1e9)
        report = dispatcher.run()
        assert report.ledger.state("job-000") == SUCCEEDED

    def test_cancel_unknown_job_raises(self):
        dispatcher = Dispatcher(slots=1)
        dispatcher.submit(_spec())
        dispatcher.cancel("job-777")
        with pytest.raises(ControlError, match="unknown job"):
            dispatcher.run()
        with pytest.raises(ControlError, match="cancel time"):
            Dispatcher().cancel("job-000", at=-1.0)


class TestAdmissionControl:
    def test_per_tenant_inflight_never_exceeds_the_limit(self):
        trace = [_spec("hog") for _ in range(3)] + [_spec("other")]
        report = Dispatcher(slots=4, admission_limit=1).run(trace)
        inflight = {}
        for entry in report.ledger.entries:
            tenant = report.record(entry.job_id).job.spec.tenant
            if entry.event == lc.ADMIT:
                inflight[tenant] = inflight.get(tenant, 0) + 1
                assert inflight[tenant] <= 1
            elif entry.event in (lc.SUCCEED, lc.FAIL, lc.CANCEL,
                                 lc.PREEMPT):
                inflight[tenant] -= 1
        assert report.succeeded == 4
        # The hog's jobs were serialized even with slots to spare.
        hog = sorted(record.job.granted for record in report.records
                     if record.job.spec.tenant == "hog")
        finished = sorted(record.job.finished
                          for record in report.records
                          if record.job.spec.tenant == "hog")
        assert hog[1] >= finished[0] and hog[2] >= finished[1]

    def test_cancel_while_waiting_for_admission(self):
        dispatcher = Dispatcher(slots=4, admission_limit=1)
        dispatcher.submit(_spec("hog", epochs=4))
        dispatcher.submit(_spec("hog"))
        dispatcher.cancel("job-001", at=1.0)
        report = dispatcher.run()
        assert _events(report, "job-001") == [lc.SUBMIT, lc.CANCEL]
        assert report.ledger.state("job-000") == SUCCEEDED


class TestPreemption:
    def _contended_trace(self, newcomer_arrival):
        # 'hog' accumulates weighted busy-time with a short job, then
        # holds the only slot with a long one; the newcomer's weighted
        # share is zero, so fair-share preempts the hog's second job.
        return [_spec("hog", epochs=1),
                _spec("hog", epochs=6, arrival=1.0),
                _spec("new", epochs=1,
                      arrival=newcomer_arrival, priority=4.0)]

    def _mid_second_job(self):
        """An arrival instant inside epoch 1 of the hog's long job."""
        probe = Dispatcher(policy="fair-share", slots=1).run(
            self._contended_trace(1e6))
        job = probe.record("job-001").job
        offline = job.offline.duration if job.offline else 0.0
        return (job.granted + offline + job.epochs[0].duration
                + 0.5 * job.epochs[1].duration)

    def test_fair_share_preempts_the_heavy_tenant(self):
        report = Dispatcher(policy="fair-share", slots=1, preempt=True).run(
            self._contended_trace(self._mid_second_job()))
        assert report.total_preemptions >= 1
        events = _events(report, "job-001")
        assert lc.PREEMPT in events and lc.REQUEUE in events
        preempt_at = events.index(lc.PREEMPT)
        assert events[preempt_at:preempt_at + 3] == \
            [lc.PREEMPT, lc.REQUEUE, lc.ADMIT]
        # Everyone still finishes; the preempted job resumes where it
        # stopped instead of redoing epochs.
        assert report.succeeded == 3
        assert len(report.record("job-001").job.epochs) == 6

    def test_preemption_requires_the_flag(self):
        report = Dispatcher(policy="fair-share", slots=1, preempt=False).run(
            self._contended_trace(self._mid_second_job()))
        assert report.total_preemptions == 0
        assert report.succeeded == 3


class TestAutoscaling:
    def _pressure_trace(self):
        return [_spec(f"t{i}", arrival=float(i)) for i in range(6)]

    def test_grows_under_queue_pressure(self):
        dispatcher = Dispatcher(
            slots=1, autoscale=AutoscaleConfig(min_slots=1, max_slots=4,
                                               interval=200.0))
        report = dispatcher.run(self._pressure_trace())
        assert report.final_slots > report.initial_slots
        assert any(event.new_slots > event.old_slots
                   for event in report.autoscale_log)
        assert all(1 <= event.new_slots <= 4
                   for event in report.autoscale_log)
        assert report.succeeded == 6
        # The dispatcher is reusable: slot count restored after the run.
        assert dispatcher.slots == report.initial_slots == 1
        assert "autoscale:" in control_summary(report)

    def test_autoscale_log_is_deterministic(self):
        config = AutoscaleConfig(min_slots=1, max_slots=4, interval=200.0)
        first = Dispatcher(slots=1, autoscale=config).run(
            self._pressure_trace())
        second = Dispatcher(slots=1, autoscale=config).run(
            self._pressure_trace())
        assert [event.describe() for event in first.autoscale_log] == \
            [event.describe() for event in second.autoscale_log]
        assert first.events_processed == second.events_processed


class TestDeterminismAndEvents:
    def _faulty_trace(self):
        return [_spec("a", epochs=2, crash_epoch=1, crash_attempts=1),
                _spec("b", arrival=5.0),
                _spec("c", arrival=10.0, crash_epoch=0, crash_attempts=99)]

    def _run(self):
        return Dispatcher(
            policy="fair-share", slots=2,
            retry=RetryPolicy(max_attempts=2, backoff_base=30.0)).run(
                self._faulty_trace())

    def test_seeded_crash_runs_are_bit_identical(self):
        first, second = self._run(), self._run()
        assert first.ledger.describe() == second.ledger.describe()
        assert first.events_processed == second.events_processed
        assert control_summary(first) == control_summary(second)
        assert control_table(first).to_markdown() == \
            control_table(second).to_markdown()

    def test_subscribers_see_the_whole_run_in_ledger_order(self):
        dispatcher = Dispatcher(slots=1)
        seen = []
        dispatcher.subscribe(seen.append)
        report = dispatcher.run([_spec("a"), _spec("b", arrival=2.0)])
        assert seen == list(report.ledger.entries)
        times = [entry.time for entry in seen]
        assert times == sorted(times)
