"""Differential tests: the control plane with every feature off IS the
plain service.

The dispatcher's zero-overhead claim -- no retry, no admission limit,
no preemption, no autoscaler means not one extra simulation event --
pinned at the library level (identical event counts and reports) and at
the CLI level (the ``presto serve`` output is a byte-for-byte prefix of
the ``presto ctl`` output for the same arguments).
"""

from repro.cli import main
from repro.core.report import service_summary, tenant_table
from repro.ctl import Dispatcher
from repro.serve import PreprocessingService, generate_trace


def _run_pair(policy="fair-share", slots=2, tenants=5, seed=7,
              trace_kind="steady", tie_break=None):
    trace = generate_trace(trace_kind, tenants=tenants, seed=seed)
    plain = PreprocessingService(policy=policy, slots=slots,
                                 tie_break=tie_break).run(trace)
    control = Dispatcher(policy=policy, slots=slots,
                         tie_break=tie_break).run(trace)
    return plain, control


class TestLibraryDifferential:
    def test_feature_free_control_run_is_the_serve_run(self):
        plain, control = _run_pair()
        assert control.events_processed == plain.events_processed
        assert control.service.makespan == plain.makespan
        assert (tenant_table(control.service).to_markdown()
                == tenant_table(plain).to_markdown())
        assert (service_summary(control.service)
                == service_summary(plain))

    def test_differential_holds_across_policies_and_traces(self):
        for policy, trace_kind, tie_break in (
                ("fifo", "bursty", None),
                ("cache-aware", "steady", "tenant")):
            plain, control = _run_pair(policy=policy,
                                       trace_kind=trace_kind,
                                       tie_break=tie_break, tenants=4)
            assert control.events_processed == plain.events_processed
            assert (service_summary(control.service)
                    == service_summary(plain))

    def test_every_job_simply_succeeds(self):
        _, control = _run_pair(tenants=4)
        assert control.succeeded == control.submitted
        assert control.total_retries == 0
        assert control.total_preemptions == 0
        assert control.dead == 0
        # Exactly four ledger entries per job: the straight-line path.
        assert len(control.ledger) == 4 * control.submitted


class TestCliDifferential:
    def test_serve_stdout_is_a_byte_prefix_of_ctl_stdout(self, capsys):
        argv = ["--tenants", "3", "--policy", "fair-share",
                "--trace", "steady", "--seed", "11", "--slots", "2"]
        assert main(["serve"] + argv) == 0
        serve_out = capsys.readouterr().out
        assert main(["ctl"] + argv) == 0
        ctl_out = capsys.readouterr().out
        assert ctl_out.startswith(serve_out.rstrip("\n"))
        assert "## control plane" in ctl_out
        assert "## control plane" not in serve_out
