"""Property test: ledger invariants hold under random interleavings.

Replays randomly drawn submit/cancel/crash/retry schedules through the
dispatcher and asserts the control plane's core invariants on the
resulting ledger:

* legal transitions only -- replaying every entry through
  :func:`repro.ctl.ledger.next_state` from scratch reproduces the
  recorded chain;
* no lost jobs -- every submitted job reaches a terminal state;
* DLQ iff attempts exhausted -- a job rests in the dead-letter queue
  exactly when its failure count equals the retry budget;
* event order matches simulation time -- ledger sequence numbers are
  dense and timestamps never decrease.

Uses hypothesis when available (derandomized, like the spec round-trip
suite); otherwise a fixed-seed random sweep over the same generator.
"""

import random

from repro.ctl import (DEADLETTER, TERMINAL_STATES, Dispatcher,
                       RetryPolicy)
from repro.ctl import ledger as lc
from repro.ctl.ledger import next_state
from repro.serve import JobSpec

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is optional
    HAVE_HYPOTHESIS = False

N_EXAMPLES = 15

POLICIES = ("fifo", "fair-share", "cache-aware")


def make_scenario(policy_index, slots, limited, preempt, max_attempts,
                  jobs):
    """Build a (dispatcher, cancels) pair from drawable primitives.

    ``jobs`` is a sequence of ``(tenant_index, arrival, epochs,
    crash_epoch_or_none, crash_attempts, cancel_at_or_none)`` tuples.
    """
    dispatcher = Dispatcher(
        policy=POLICIES[policy_index], slots=slots,
        admission_limit=1 if limited else None, preempt=preempt,
        retry=RetryPolicy(max_attempts=max_attempts, backoff_base=5.0,
                          backoff_factor=2.0))
    cancels = []
    for (tenant, arrival, epochs, crash_epoch, crash_attempts,
         cancel_at) in jobs:
        job_id = dispatcher.submit(JobSpec(
            tenant=f"t{tenant}", pipeline="MP3",
            split="spectrogram-encoded", arrival=float(arrival),
            epochs=epochs, crash_epoch=crash_epoch,
            crash_attempts=crash_attempts))
        if cancel_at is not None:
            dispatcher.cancel(job_id, at=float(cancel_at))
            cancels.append(job_id)
    return dispatcher, cancels


def check_invariants(dispatcher):
    report = dispatcher.run()
    ledger = report.ledger
    max_attempts = dispatcher.retry_policy.max_attempts

    # Event order matches simulation time: dense seq, monotone clock.
    times = [entry.time for entry in ledger.entries]
    assert [entry.seq for entry in ledger.entries] == \
        list(range(len(ledger)))
    assert times == sorted(times)

    # Legal transitions only: replay every entry from scratch.
    state = {}
    for entry in ledger.entries:
        assert entry.from_state == state.get(entry.job_id, lc.NEW)
        assert entry.to_state == next_state(entry.from_state, entry.event)
        state[entry.job_id] = entry.to_state

    # No lost jobs: every submission shows up and terminates.
    assert set(state) == {record.job_id for record in report.records}
    for record in report.records:
        final = state[record.job_id]
        assert final in TERMINAL_STATES
        assert ledger.state(record.job_id) == final
        # Only injected crashes can fail a simulated job.
        if record.failures:
            assert record.job.spec.crash_epoch is not None
        # DLQ iff the retry budget is exhausted.
        assert (final == DEADLETTER) == (record.failures == max_attempts)
        assert record.failures <= max_attempts
    assert sorted(ledger.dead_letters()) == \
        sorted(letter.job_id for letter in report.dead_letters)
    for letter in report.dead_letters:
        assert letter.attempts == max_attempts

    # The report's outcome partition covers every job exactly once.
    assert (report.succeeded + report.cancelled + report.dead
            == report.submitted == len(report.records))

    # Admission control: per-tenant in-flight share never exceeded.
    if dispatcher.admission_limit is not None:
        inflight = {}
        by_id = {record.job_id: record for record in report.records}
        for entry in ledger.entries:
            tenant = by_id[entry.job_id].job.spec.tenant
            if entry.event == lc.ADMIT:
                inflight[tenant] = inflight.get(tenant, 0) + 1
                assert inflight[tenant] <= dispatcher.admission_limit
            elif entry.event in (lc.SUCCEED, lc.FAIL, lc.PREEMPT) or (
                    entry.event == lc.CANCEL
                    and entry.from_state != lc.PENDING):
                inflight[tenant] -= 1


if HAVE_HYPOTHESIS:
    job_strategy = st.tuples(
        st.integers(0, 1),                       # tenant
        st.integers(0, 20),                      # arrival
        st.integers(1, 3),                       # epochs
        st.one_of(st.none(), st.integers(0, 2)),  # crash epoch
        st.integers(1, 3),                       # crash attempts
        st.one_of(st.none(), st.integers(0, 40)))  # cancel time

    scenario_strategy = st.tuples(
        st.integers(0, len(POLICIES) - 1),
        st.integers(1, 2),                       # slots
        st.booleans(),                           # admission limit on?
        st.booleans(),                           # preemption on?
        st.integers(1, 3),                       # retry budget
        st.lists(job_strategy, min_size=1, max_size=4))

    @given(scenario_strategy)
    @settings(max_examples=N_EXAMPLES, derandomize=True, deadline=None)
    def test_ledger_invariants_hold_under_random_interleavings(scenario):
        dispatcher, _ = make_scenario(*scenario)
        check_invariants(dispatcher)

else:  # pragma: no cover - exercised only without hypothesis
    def test_ledger_invariants_hold_under_random_interleavings():
        rng = random.Random(0xD15BA7C)
        for _ in range(N_EXAMPLES):
            jobs = [(rng.randint(0, 1), rng.randint(0, 20),
                     rng.randint(1, 3),
                     rng.choice([None, rng.randint(0, 2)]),
                     rng.randint(1, 3),
                     rng.choice([None, rng.randint(0, 40)]))
                    for _ in range(rng.randint(1, 4))]
            dispatcher, _ = make_scenario(
                rng.randrange(len(POLICIES)), rng.randint(1, 2),
                rng.random() < 0.5, rng.random() < 0.5,
                rng.randint(1, 3), jobs)
            check_invariants(dispatcher)
