"""Exhaustive transition-table and ledger unit tests.

Walks every ``(state, event)`` pair: each one either transitions per
:data:`repro.ctl.ledger.TRANSITIONS` or raises ``LedgerError`` -- the
table is total over legality, so the dispatcher cannot silently rely on
an edge the ledger would reject.
"""

import pytest

from repro.ctl import ledger as lc
from repro.ctl.ledger import (EVENTS, STATES, TERMINAL_STATES, TRANSITIONS,
                              DeadLetter, ExecutionLedger, next_state)
from repro.errors import ControlError, LedgerError, ReproError


class TestTransitionTable:
    def test_every_pair_transitions_or_raises(self):
        """The exhaustive walk: all |STATES| x |EVENTS| pairs."""
        legal = 0
        for state in STATES:
            for event in EVENTS:
                if (state, event) in TRANSITIONS:
                    result = next_state(state, event)
                    assert result == TRANSITIONS[(state, event)]
                    assert result in STATES
                    legal += 1
                else:
                    with pytest.raises(LedgerError):
                        next_state(state, event)
        assert legal == len(TRANSITIONS)

    def test_documented_lifecycle_edges(self):
        assert next_state(lc.NEW, lc.SUBMIT) == lc.PENDING
        assert next_state(lc.PENDING, lc.ADMIT) == lc.ADMITTED
        assert next_state(lc.ADMITTED, lc.START) == lc.RUNNING
        assert next_state(lc.RUNNING, lc.SUCCEED) == lc.SUCCEEDED
        assert next_state(lc.RUNNING, lc.FAIL) == lc.FAILED
        assert next_state(lc.FAILED, lc.RETRY) == lc.PENDING
        assert next_state(lc.FAILED, lc.EXHAUST) == lc.DEADLETTER
        assert next_state(lc.RUNNING, lc.PREEMPT) == lc.PREEMPTED
        assert next_state(lc.PREEMPTED, lc.REQUEUE) == lc.PENDING
        for state in (lc.PENDING, lc.ADMITTED, lc.RUNNING):
            assert next_state(state, lc.CANCEL) == lc.CANCELLED

    def test_terminal_states_have_no_outgoing_edges(self):
        for terminal in TERMINAL_STATES:
            assert not any(state == terminal for state, _ in TRANSITIONS)

    def test_every_state_reaches_a_terminal_state(self):
        """No job can get stuck: every non-terminal state has a path out."""
        reaches = set(TERMINAL_STATES)
        changed = True
        while changed:
            changed = False
            for (state, _), target in TRANSITIONS.items():
                if target in reaches and state not in reaches:
                    reaches.add(state)
                    changed = True
        assert reaches == set(STATES)

    def test_unknown_state_and_event_raise(self):
        with pytest.raises(LedgerError, match="unknown job state"):
            next_state("LIMBO", lc.SUBMIT)
        with pytest.raises(LedgerError, match="unknown ledger event"):
            next_state(lc.NEW, "teleport")

    def test_ledger_error_is_a_control_and_repro_error(self):
        assert issubclass(LedgerError, ControlError)
        assert issubclass(ControlError, ReproError)


class TestExecutionLedger:
    def run_lifecycle(self, ledger, job_id, start=0.0):
        ledger.record(job_id, lc.SUBMIT, start)
        ledger.record(job_id, lc.ADMIT, start + 1.0, attempt=1)
        ledger.record(job_id, lc.START, start + 2.0, attempt=1)
        ledger.record(job_id, lc.SUCCEED, start + 9.0, attempt=1)

    def test_full_lifecycle_and_queries(self):
        ledger = ExecutionLedger()
        assert ledger.state("job-000") == lc.NEW
        self.run_lifecycle(ledger, "job-000")
        assert len(ledger) == 4
        assert ledger.state("job-000") == lc.SUCCEEDED
        assert ledger.jobs() == ("job-000",)
        assert ledger.attempts("job-000") == 1
        assert ledger.counts() == {lc.SUCCEEDED: 1}
        assert [entry.seq for entry in ledger.entries] == [0, 1, 2, 3]
        assert len(ledger.entries_for("job-000")) == 4
        assert ledger.entries_for("job-999") == ()
        assert ledger.dead_letters() == ()

    def test_illegal_transition_raises_and_appends_nothing(self):
        ledger = ExecutionLedger()
        ledger.record("j", lc.SUBMIT, 0.0)
        with pytest.raises(LedgerError, match="illegal transition"):
            ledger.record("j", lc.SUCCEED, 1.0)
        assert len(ledger) == 1
        assert ledger.state("j") == lc.PENDING

    def test_non_monotone_append_raises(self):
        ledger = ExecutionLedger()
        ledger.record("j", lc.SUBMIT, 5.0)
        with pytest.raises(LedgerError, match="non-monotone"):
            ledger.record("j", lc.ADMIT, 3.0)
        # Equal timestamps are fine: many transitions share an instant.
        ledger.record("j", lc.ADMIT, 5.0)
        assert len(ledger) == 2

    def test_subscribers_see_every_entry_in_order(self):
        ledger = ExecutionLedger()
        seen = []
        ledger.record("j", lc.SUBMIT, 0.0)
        ledger.subscribe(seen.append)
        ledger.record("j", lc.ADMIT, 1.0)
        ledger.record("j", lc.START, 2.0)
        assert [entry.event for entry in seen] == [lc.ADMIT, lc.START]
        assert seen == list(ledger.entries[1:])

    def test_deadletter_path(self):
        ledger = ExecutionLedger()
        ledger.record("j", lc.SUBMIT, 0.0)
        ledger.record("j", lc.ADMIT, 1.0, attempt=1)
        ledger.record("j", lc.START, 1.0, attempt=1)
        ledger.record("j", lc.FAIL, 4.0, attempt=1, detail="crash")
        ledger.record("j", lc.EXHAUST, 4.0, attempt=1)
        assert ledger.state("j") == lc.DEADLETTER
        assert ledger.dead_letters() == ("j",)
        assert "crash" in ledger.describe()

    def test_describe_renders_every_entry(self):
        ledger = ExecutionLedger()
        self.run_lifecycle(ledger, "job-007")
        text = ledger.describe()
        assert text.count("job-007") == 4
        assert "--submit-->" in text and "--succeed-->" in text

    def test_dead_letter_describe(self):
        letter = DeadLetter(job_id="job-003", tenant="t1", attempts=3,
                            reason="injected crash at epoch 1")
        assert letter.describe() == ("job-003 (tenant t1): 3 attempt(s) "
                                     "exhausted -- injected crash at "
                                     "epoch 1")
