"""Tests for the presto CLI."""

import pytest

from repro.cli import main


def test_pipelines_command(capsys):
    assert main(["pipelines"]) == 0
    out = capsys.readouterr().out
    assert "CV" in out
    assert "FLAC" in out


def test_datasets_command(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "ILSVRC2012" in out
    assert "CREAM" in out


def test_profile_command(capsys):
    assert main(["profile", "MP3"]) == 0
    out = capsys.readouterr().out
    assert "Recommended strategy" in out
    assert "spectrogram-encoded" in out


def test_profile_on_ssd(capsys):
    assert main(["profile", "MP3", "--storage", "ceph-ssd"]) == 0
    assert "Recommended" in capsys.readouterr().out


def test_tune_command(capsys):
    assert main(["tune", "NILM", "--wt", "1"]) == 0
    out = capsys.readouterr().out
    assert "best =" in out
    assert "aggregated" in out


def test_bottleneck_command(capsys):
    assert main(["bottleneck", "NLP"]) == 0
    out = capsys.readouterr().out
    assert "bound by" in out


def test_diagnose_command(capsys):
    assert main(["diagnose", "MP3"]) == 0
    out = capsys.readouterr().out
    assert "## diagnosis: MP3" in out
    assert "bound" in out
    assert "rewrites (per strategy, best first):" in out
    assert "insert-prefetch" in out


def test_diagnose_verify_top(capsys):
    assert main(["diagnose", "MP3", "--verify-top", "2"]) == 0
    out = capsys.readouterr().out
    assert "verification (top 2):" in out
    assert "measured" in out
    assert "prediction error" in out


def test_diagnose_accepts_registry_variants(capsys):
    """Sec. 4.6 variants are registered but not in the paper seven;
    diagnose must accept them."""
    assert main(["diagnose", "CV+greyscale-after",
                 "--sample-count", "2000"]) == 0
    assert "## diagnosis: CV+greyscale-after" in capsys.readouterr().out


def test_diagnose_with_jobs_and_cache(tmp_path, capsys):
    cache_dir = str(tmp_path / "diag-cache")
    assert main(["diagnose", "FLAC", "--jobs", "2",
                 "--cache", cache_dir]) == 0
    first = capsys.readouterr()
    assert "0 hits / 3 lookups" in first.err
    assert main(["diagnose", "FLAC", "--jobs", "2",
                 "--cache", cache_dir]) == 0
    second = capsys.readouterr()
    assert second.out == first.out
    assert "3 hits / 3 lookups (100%)" in second.err


def test_diagnose_sample_count_subset(capsys):
    assert main(["diagnose", "FLAC", "--sample-count", "500"]) == 0
    assert "## diagnosis: FLAC" in capsys.readouterr().out


def test_fio_command(capsys):
    assert main(["fio"]) == 0
    out = capsys.readouterr().out
    assert "MB/s" in out


def test_cost_command(capsys):
    assert main(["cost", "MP3", "--epochs", "5"]) == 0
    out = capsys.readouterr().out
    assert "total_usd" in out
    assert "dollar cost" in out


def test_amortize_command(capsys):
    assert main(["amortize", "FLAC", "--horizons", "1", "50"]) == 0
    out = capsys.readouterr().out
    assert "winner" in out
    assert "total_hours" in out


def test_fanout_command(capsys):
    assert main(["fanout", "NILM", "--trainers", "1", "8"]) == 0
    out = capsys.readouterr().out
    assert "delivered_sps" in out


def test_fanout_with_explicit_strategy(capsys):
    assert main(["fanout", "CV", "--strategy", "pixel-centered",
                 "--trainers", "1", "8"]) == 0
    assert "network_bound" in capsys.readouterr().out


def test_fanout_simulate_crosschecks_the_closed_form(capsys):
    assert main(["fanout", "MP3", "--simulate", "--trainers", "1"]) == 0
    out = capsys.readouterr().out
    assert "analytic_sps" in out
    assert "simulated_sps" in out
    assert "co-simulating" in out


def test_serve_command(capsys):
    assert main(["serve", "--tenants", "3", "--policy", "fifo",
                 "--trace", "steady", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "## serve: 3 tenants" in out
    assert "p99_epoch_s" in out
    assert "service [fifo]" in out
    assert "cluster diagnosis [fifo]" in out


def test_serve_policy_comparison(capsys):
    assert main(["serve", "--tenants", "4", "--policy", "all",
                 "--trace", "bursty", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "policies compared" in out
    assert "best policy by aggregate throughput:" in out
    for policy in ("fifo", "fair-share", "cache-aware"):
        assert f"cluster diagnosis [{policy}]" in out


def test_profile_with_jobs_and_cache(tmp_path, capsys):
    cache_dir = str(tmp_path / "profiles")
    assert main(["profile", "MP3", "--jobs", "2",
                 "--cache", cache_dir]) == 0
    first = capsys.readouterr()
    assert "Recommended strategy" in first.out
    assert "0 hits / 3 lookups" in first.err

    assert main(["profile", "MP3", "--jobs", "2",
                 "--cache", cache_dir]) == 0
    second = capsys.readouterr()
    assert second.out == first.out
    assert "3 hits / 3 lookups (100%)" in second.err


def test_profile_cache_mode_flag(capsys):
    assert main(["profile", "MP3", "--epochs", "2",
                 "--cache-mode", "system"]) == 0
    assert "Recommended strategy" in capsys.readouterr().out


def test_sweep_command(capsys):
    assert main(["sweep", "--pipelines", "MP3", "NILM"]) == 0
    captured = capsys.readouterr()
    assert "## MP3" in captured.out
    assert "## NILM" in captured.out
    assert captured.out.count("Recommended strategy") == 2
    assert "profiling job(s)" in captured.err
    assert "sweep: 6 strategies across 2 pipeline(s)" in captured.err


def test_sweep_parallel_output_matches_serial(capsys):
    assert main(["sweep", "--quiet", "--pipelines", "FLAC"]) == 0
    serial = capsys.readouterr().out
    assert main(["sweep", "--quiet", "--jobs", "2",
                 "--pipelines", "FLAC"]) == 0
    assert capsys.readouterr().out == serial


def test_sweep_cache_reports_hits(tmp_path, capsys):
    cache_dir = str(tmp_path / "sweep-cache")
    assert main(["sweep", "--quiet", "--pipelines", "MP3",
                 "--cache", cache_dir]) == 0
    capsys.readouterr()
    assert main(["sweep", "--quiet", "--pipelines", "MP3",
                 "--cache", cache_dir]) == 0
    assert "3 hits / 3 lookups (100%)" in capsys.readouterr().err


def test_tune_with_jobs(capsys):
    assert main(["tune", "NILM", "--jobs", "2", "--wt", "1"]) == 0
    assert "best =" in capsys.readouterr().out


def test_cache_rejects_old_cache_mode_values(capsys):
    """--cache used to be the epoch-caching knob; old values must fail
    loudly instead of becoming directory names."""
    assert main(["profile", "MP3", "--cache", "application"]) == 2
    err = capsys.readouterr().err
    assert "--cache-mode application" in err


def test_cli_reports_engine_errors_cleanly(capsys):
    assert main(["sweep", "--jobs", "0", "--pipelines", "MP3"]) == 2
    assert "presto: error:" in capsys.readouterr().err


def test_unknown_pipeline_exits_with_valid_names(capsys):
    """Unknown registry names exit 2 with the valid list, no traceback."""
    assert main(["profile", "VIDEO"]) == 2
    err = capsys.readouterr().err
    assert "unknown pipeline 'VIDEO'" in err
    assert "CV2-JPG" in err and "FLAC" in err


def test_unknown_names_exit_2_across_registries(capsys):
    cases = [
        (["diagnose", "CV3"], "did you mean 'CV'?"),
        (["serve", "--policy", "lru"], "valid policies:"),
        (["serve", "--trace", "spiky"], "unknown trace 'spiky'"),
        (["sweep", "--storage", "floppy"], "unknown storage device"),
        (["fanout", "CV", "--strategy", "bogus"], "valid strategies:"),
    ]
    for argv, fragment in cases:
        assert main(argv) == 2, argv
        err = capsys.readouterr().err
        assert "presto: error:" in err, argv
        assert fragment in err, (argv, err)


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
