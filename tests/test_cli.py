"""Tests for the presto CLI."""

import pytest

from repro.cli import main


def test_pipelines_command(capsys):
    assert main(["pipelines"]) == 0
    out = capsys.readouterr().out
    assert "CV" in out
    assert "FLAC" in out


def test_datasets_command(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "ILSVRC2012" in out
    assert "CREAM" in out


def test_profile_command(capsys):
    assert main(["profile", "MP3"]) == 0
    out = capsys.readouterr().out
    assert "Recommended strategy" in out
    assert "spectrogram-encoded" in out


def test_profile_on_ssd(capsys):
    assert main(["profile", "MP3", "--storage", "ceph-ssd"]) == 0
    assert "Recommended" in capsys.readouterr().out


def test_tune_command(capsys):
    assert main(["tune", "NILM", "--wt", "1"]) == 0
    out = capsys.readouterr().out
    assert "best =" in out
    assert "aggregated" in out


def test_bottleneck_command(capsys):
    assert main(["bottleneck", "NLP"]) == 0
    out = capsys.readouterr().out
    assert "bound by" in out


def test_fio_command(capsys):
    assert main(["fio"]) == 0
    out = capsys.readouterr().out
    assert "MB/s" in out


def test_cost_command(capsys):
    assert main(["cost", "MP3", "--epochs", "5"]) == 0
    out = capsys.readouterr().out
    assert "total_usd" in out
    assert "dollar cost" in out


def test_amortize_command(capsys):
    assert main(["amortize", "FLAC", "--horizons", "1", "50"]) == 0
    out = capsys.readouterr().out
    assert "winner" in out
    assert "total_hours" in out


def test_fanout_command(capsys):
    assert main(["fanout", "NILM", "--trainers", "1", "8"]) == 0
    out = capsys.readouterr().out
    assert "delivered_sps" in out


def test_fanout_with_explicit_strategy(capsys):
    assert main(["fanout", "CV", "--strategy", "pixel-centered",
                 "--trainers", "1", "8"]) == 0
    assert "network_bound" in capsys.readouterr().out


def test_unknown_pipeline_exits():
    with pytest.raises(SystemExit):
        main(["profile", "VIDEO"])


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
