"""Tests for TFRecord-style framing."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.formats.record import (RECORD_FRAMING_BYTES,
                                  RecordCorruptionError, read_records,
                                  record_overhead, write_record,
                                  write_records)


def test_round_trip_single_record():
    stream = io.BytesIO()
    written = write_record(stream, b"payload")
    assert written == len(b"payload") + RECORD_FRAMING_BYTES
    stream.seek(0)
    assert list(read_records(stream)) == [b"payload"]


def test_round_trip_many_records():
    payloads = [b"a", b"", b"x" * 1000]
    stream = io.BytesIO()
    total = write_records(stream, payloads)
    assert total == sum(len(p) for p in payloads) + record_overhead(3)
    stream.seek(0)
    assert list(read_records(stream)) == payloads


def test_empty_stream_yields_nothing():
    assert list(read_records(io.BytesIO())) == []


def test_truncated_length_detected():
    stream = io.BytesIO()
    write_record(stream, b"data")
    corrupted = io.BytesIO(stream.getvalue()[:4])
    with pytest.raises(RecordCorruptionError, match="truncated"):
        list(read_records(corrupted))


def test_truncated_payload_detected():
    stream = io.BytesIO()
    write_record(stream, b"some longer payload here")
    corrupted = io.BytesIO(stream.getvalue()[:-10])
    with pytest.raises(RecordCorruptionError, match="truncated"):
        list(read_records(corrupted))


def test_flipped_payload_bit_detected():
    stream = io.BytesIO()
    write_record(stream, b"some payload data")
    raw = bytearray(stream.getvalue())
    raw[14] ^= 0x01  # inside the payload region
    with pytest.raises(RecordCorruptionError, match="CRC"):
        list(read_records(io.BytesIO(bytes(raw))))


def test_flipped_length_bit_detected():
    stream = io.BytesIO()
    write_record(stream, b"some payload data")
    raw = bytearray(stream.getvalue())
    raw[0] ^= 0x01  # inside the length prefix
    with pytest.raises(RecordCorruptionError, match="CRC"):
        list(read_records(io.BytesIO(bytes(raw))))


def test_framing_overhead_matches_paper_concatenated_growth():
    """CV: 1.3 M records add ~20.8 MB of framing -- why the paper's
    concatenated representation is 147.0 GB vs 146.9 GB unprocessed."""
    assert record_overhead(1_300_000) == 1_300_000 * 16


@given(st.lists(st.binary(max_size=2000), max_size=40))
def test_round_trip_property(payloads):
    stream = io.BytesIO()
    write_records(stream, payloads)
    stream.seek(0)
    assert list(read_records(stream)) == payloads
