"""Tests for the synthetic source-format codecs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import CodecError
from repro.formats import codecs
from repro.datasets.synthetic import smooth_image
from repro.ops.audio import synth_waveform


def test_jpg_round_trip_is_lossy_but_close():
    image = smooth_image(np.random.default_rng(0))
    decoded = codecs.decode_jpg(codecs.encode_jpg(image))
    assert decoded.shape == image.shape
    assert decoded.dtype == np.uint8
    error = np.abs(decoded.astype(int) - image.astype(int))
    assert error.max() <= (1 << codecs.JPG_DROPPED_BITS)
    assert error.mean() > 0  # genuinely lossy


def test_jpg_compresses_smooth_images():
    image = smooth_image(np.random.default_rng(1))
    encoded = codecs.encode_jpg(image)
    assert len(encoded) < image.nbytes / 3


def test_jpg_requires_uint8():
    with pytest.raises(CodecError, match="uint8"):
        codecs.encode_jpg(np.zeros((4, 4, 3), dtype=np.float32))


def test_png_round_trip_lossless_uint8():
    image = smooth_image(np.random.default_rng(2))
    decoded = codecs.decode_png(codecs.encode_png(image))
    np.testing.assert_array_equal(decoded, image)


def test_png_round_trip_lossless_uint16():
    image = smooth_image(np.random.default_rng(3), dtype=np.uint16)
    decoded = codecs.decode_png(codecs.encode_png(image))
    np.testing.assert_array_equal(decoded, image)
    assert decoded.dtype == np.uint16


def test_png_larger_than_jpg_for_same_content():
    """Cube++ PNG is far larger than its JPG flavour (Table 2): lossless
    16-bit PNGs vs lossy 8-bit JPGs."""
    rng = np.random.default_rng(4)
    image8 = smooth_image(rng)
    image16 = (image8.astype(np.uint16) << 8)
    assert len(codecs.encode_png(image8)) > len(codecs.encode_jpg(image8))
    assert (len(codecs.encode_png(image16))
            > 2 * len(codecs.encode_jpg(image8)))


def test_mp3_round_trip_lossy_waveform():
    waveform = synth_waveform(0.25, 16_000, np.random.default_rng(5))
    decoded = codecs.decode_mp3(codecs.encode_mp3(waveform))
    assert decoded.shape == waveform.shape
    assert decoded.dtype == np.int16
    # Mu-law holds ~6% relative error on speech-like signals.
    scale = np.abs(waveform).max()
    error = np.abs(decoded.astype(float) - waveform.astype(float))
    assert error.mean() < 0.1 * scale


def test_mp3_much_smaller_than_flac():
    """The paper's decode blow-ups: MP3 ~12x, FLAC ~1.7x."""
    waveform = synth_waveform(0.5, 16_000, np.random.default_rng(6))
    mp3 = len(codecs.encode_mp3(waveform))
    flac = len(codecs.encode_flac(waveform))
    assert mp3 < flac
    assert flac < waveform.nbytes  # lossless still compresses


def test_flac_round_trip_lossless():
    waveform = synth_waveform(0.3, 16_000, np.random.default_rng(7))
    decoded = codecs.decode_flac(codecs.encode_flac(waveform))
    np.testing.assert_array_equal(decoded, waveform)


def test_hdf5_round_trip_float64():
    signal = np.random.default_rng(8).standard_normal((2, 256))
    decoded = codecs.decode_hdf5(codecs.encode_hdf5(signal))
    np.testing.assert_array_equal(decoded, signal)
    assert decoded.dtype == np.float64


def test_hdf5_requires_float64():
    with pytest.raises(CodecError, match="float64"):
        codecs.encode_hdf5(np.zeros(4, dtype=np.float32))


def test_html_round_trip_recovers_visible_text():
    text = "training bottlenecks hide in preprocessing pipelines"
    decoded = codecs.decode_html(codecs.encode_html(text))
    assert decoded == text


def test_html_strips_scripts_and_styles():
    encoded = codecs.encode_html("real content")
    assert b"script" in encoded  # boilerplate present in the page
    assert "analytics" not in codecs.decode_html(encoded)


def test_wrong_magic_rejected_everywhere():
    for decode in (codecs.decode_jpg, codecs.decode_png, codecs.decode_mp3,
                   codecs.decode_flac, codecs.decode_hdf5):
        with pytest.raises(CodecError):
            decode(b"bogus-payload")


@settings(max_examples=25, deadline=None)
@given(arrays(dtype=np.int16, shape=st.integers(2, 400),
              elements=st.integers(-30000, 30000)))
def test_flac_lossless_property(waveform):
    decoded = codecs.decode_flac(codecs.encode_flac(waveform))
    np.testing.assert_array_equal(decoded, waveform)


@settings(max_examples=25, deadline=None)
@given(arrays(dtype=np.uint16, shape=(7, 9, 3),
              elements=st.integers(0, 65535)))
def test_png_lossless_property(image):
    decoded = codecs.decode_png(codecs.encode_png(image))
    np.testing.assert_array_equal(decoded, image)
