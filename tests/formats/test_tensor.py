"""Tests for the tensor wire format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.errors import CodecError
from repro.formats.tensor import (deserialize_tensor, header_bytes,
                                  serialize_tensor)


def test_round_trip_simple():
    array = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
    restored = deserialize_tensor(serialize_tensor(array))
    np.testing.assert_array_equal(restored, array)
    assert restored.dtype == array.dtype


def test_round_trip_zero_dim():
    array = np.float64(3.5) * np.ones((), dtype=np.float64)
    restored = deserialize_tensor(serialize_tensor(array))
    assert restored.shape == ()
    assert restored == pytest.approx(3.5)


def test_round_trip_empty_tensor():
    array = np.zeros((0, 768), dtype=np.float32)
    restored = deserialize_tensor(serialize_tensor(array))
    assert restored.shape == (0, 768)


def test_non_contiguous_input_serialized_correctly():
    array = np.arange(100, dtype=np.int32).reshape(10, 10)[:, ::2]
    restored = deserialize_tensor(serialize_tensor(array))
    np.testing.assert_array_equal(restored, array)


def test_header_size_accounting():
    array = np.zeros((5, 6, 7), dtype=np.uint8)
    wire = serialize_tensor(array)
    assert len(wire) == header_bytes(3) + array.nbytes


def test_unsupported_dtype_rejected():
    with pytest.raises(CodecError, match="unsupported dtype"):
        serialize_tensor(np.zeros(3, dtype=np.complex64))


def test_bad_magic_rejected():
    with pytest.raises(CodecError, match="magic"):
        deserialize_tensor(b"XXxxxxxxxxxxxxxxxxxx")


def test_truncated_data_rejected():
    wire = serialize_tensor(np.zeros((4, 4), dtype=np.float32))
    with pytest.raises(CodecError):
        deserialize_tensor(wire[:-3])


def test_payload_shape_mismatch_rejected():
    wire = bytearray(serialize_tensor(np.zeros(4, dtype=np.uint8)))
    with pytest.raises(CodecError, match="payload size"):
        deserialize_tensor(bytes(wire) + b"extra")


@settings(max_examples=60, deadline=None)
@given(
    array=st.sampled_from(["uint8", "int16", "int32", "int64",
                           "float32", "float64", "uint16"]).flatmap(
        lambda dtype: arrays(dtype=np.dtype(dtype),
                             shape=array_shapes(max_dims=4, max_side=8),
                             elements=st.integers(0, 100))))
def test_round_trip_property(array):
    restored = deserialize_tensor(serialize_tensor(array))
    np.testing.assert_array_equal(restored, array)
    assert restored.dtype == array.dtype
    assert restored.shape == array.shape
