"""Tests for GZIP/ZLIB codecs."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CodecError
from repro.formats.compression import (CODECS, GZIP, ZLIB,
                                       compression_names, get_codec)


def test_registry_contains_paper_codecs():
    assert set(CODECS) == {"GZIP", "ZLIB"}
    assert compression_names() == [None, "GZIP", "ZLIB"]


def test_get_codec_lookup():
    assert get_codec(None) is None
    assert get_codec("GZIP") is GZIP
    assert get_codec("zlib") is ZLIB  # case-insensitive


def test_unknown_codec_rejected():
    with pytest.raises(CodecError, match="unknown"):
        get_codec("LZ4")


def test_gzip_round_trip_and_determinism():
    data = b"compressible " * 500
    once = GZIP.compress(data)
    twice = GZIP.compress(data)
    assert once == twice  # mtime pinned
    assert GZIP.decompress(once) == data
    assert len(once) < len(data)


def test_zlib_round_trip():
    data = b"another compressible payload " * 300
    assert ZLIB.decompress(ZLIB.compress(data)) == data


def test_zlib_is_smaller_framing_than_gzip():
    """Same DEFLATE stream, lighter container (RFC 1950 vs 1952)."""
    data = b"x" * 10_000
    assert len(ZLIB.compress(data)) < len(GZIP.compress(data))


def test_costs_reflect_paper_asymmetry():
    """Compression is ~10x slower than decompression (Fig. 10's offline
    inflation vs modest online decode costs)."""
    for codec in (GZIP, ZLIB):
        assert codec.costs.decompress_bw > 8 * codec.costs.compress_bw


@given(st.binary(max_size=5000))
def test_round_trip_property(data):
    for codec in (GZIP, ZLIB):
        assert codec.decompress(codec.compress(data)) == data
