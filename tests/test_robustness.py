"""Failure injection and cross-config property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import RunConfig, SimulatedBackend
from repro.core.strategy import Strategy
from repro.errors import ReproError
from repro.formats.record import RecordCorruptionError
from repro.pipeline.dataset import PipelineDataset
from repro.pipeline.io import write_shards
from repro.pipelines import all_pipelines, get_pipeline

BACKEND = SimulatedBackend()


class TestFailureInjection:
    def test_corrupted_shard_detected_on_read(self, tmp_path):
        """Bit rot in a shard must fail loudly, not feed garbage."""
        paths = write_shards([b"payload" * 100] * 8, tmp_path, n_shards=2)
        raw = bytearray(paths[0].read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        paths[0].write_bytes(bytes(raw))
        dataset = PipelineDataset.from_record_shards(paths)
        with pytest.raises(RecordCorruptionError):
            dataset.materialize()

    def test_truncated_shard_detected(self, tmp_path):
        paths = write_shards([b"x" * 500] * 4, tmp_path, n_shards=1)
        data = paths[0].read_bytes()
        paths[0].write_bytes(data[:-100])
        with pytest.raises(RecordCorruptionError):
            PipelineDataset.from_record_shards(paths).materialize()

    def test_map_error_mid_pipeline_propagates_with_threads(self):
        calls = {"n": 0}

        def flaky(x):
            calls["n"] += 1
            if x == 17:
                raise ValueError("poisoned sample")
            return x

        dataset = PipelineDataset.from_items(range(64)).map(
            flaky, num_parallel_calls=4).prefetch(2)
        with pytest.raises(ValueError, match="poisoned"):
            dataset.materialize()

    def test_all_library_errors_share_a_base(self):
        """Callers can catch ReproError for anything this library raises."""
        from repro import errors
        for name in ("SimulationError", "PipelineError", "ProfilingError",
                     "CodecError", "FrameError", "StorageError"):
            assert issubclass(getattr(errors, name), ReproError)


class TestBackendProperties:
    @settings(max_examples=10, deadline=None)
    @given(threads=st.sampled_from([1, 2, 4, 8, 16]),
           compression=st.sampled_from([None, "GZIP", "ZLIB"]),
           split=st.sampled_from(["decoded", "spectrogram-encoded"]))
    def test_runs_always_account_every_sample(self, threads, compression,
                                              split):
        plan = get_pipeline("MP3").split_at(split)
        result = BACKEND.run(plan, RunConfig(threads=threads,
                                             compression=compression))
        assert result.epochs[0].samples == plan.pipeline.sample_count
        assert result.throughput > 0
        assert result.storage_bytes > 0

    @settings(max_examples=8, deadline=None)
    @given(threads=st.sampled_from([1, 2, 4, 8]))
    def test_storage_independent_of_threads(self, threads):
        plan = get_pipeline("NILM").split_at("aggregated")
        result = BACKEND.run(plan, RunConfig(threads=threads))
        expected = plan.materialized.total_bytes(plan.pipeline.sample_count)
        assert result.storage_bytes == pytest.approx(expected, rel=1e-6)

    def test_threads_never_catastrophically_hurt(self):
        """Even GIL-bound pipelines lose at most ~20% from extra threads
        (convoy overhead), never an order of magnitude."""
        for name in ("NLP", "NILM"):
            pipeline = get_pipeline(name)
            plan = pipeline.split_at("decoded")
            single = BACKEND.run(plan, RunConfig(threads=1)).throughput
            eight = BACKEND.run(plan, RunConfig(threads=8)).throughput
            assert eight > 0.7 * single

    def test_compression_never_changes_sample_count_or_epochs(self):
        plan = get_pipeline("CV").split_at("pixel-centered")
        plain = BACKEND.run(plan, RunConfig(epochs=2, cache_mode="system"))
        gzip = BACKEND.run(plan, RunConfig(epochs=2, cache_mode="system",
                                           compression="GZIP"))
        assert len(plain.epochs) == len(gzip.epochs) == 2
        assert plain.epochs[0].samples == gzip.epochs[0].samples

    def test_strategy_uids_unique_across_grid(self):
        from repro.core.strategy import enumerate_strategies
        uids = set()
        for pipeline in all_pipelines():
            for strategy in enumerate_strategies(
                    pipeline, threads=(1, 8),
                    compressions=(None, "GZIP"),
                    cache_modes=("none", "system")):
                assert strategy.uid not in uids
                uids.add(strategy.uid)

    def test_offline_time_scales_with_sample_count(self):
        plan_full = get_pipeline("MP3").split_at("decoded")
        full = BACKEND.run(plan_full, RunConfig())
        small_pipeline = get_pipeline("MP3").with_sample_count(1_300)
        small = BACKEND.run(small_pipeline.split_at("decoded"), RunConfig())
        ratio = full.preprocessing_seconds / small.preprocessing_seconds
        assert ratio == pytest.approx(10.0, rel=0.2)
