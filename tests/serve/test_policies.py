"""Unit tests for scheduler policies (against a stub service state)."""

import pytest

from repro.errors import ProfilingError
from repro.serve import (CacheAwarePolicy, FairSharePolicy, FifoPolicy,
                         JobSpec, get_policy)
from repro.serve.service import TenantJob


class _StubState:
    """Just enough ServiceState for policy.select()."""

    def __init__(self, busy=None, warm=None):
        self._busy = busy or {}
        self._warm = warm or set()

    def tenant_busy_seconds(self, tenant):
        return self._busy.get(tenant, 0.0)

    def warm_artifacts(self):
        return set(self._warm)


def _job(tenant, index, pipeline="MP3", split="decoded", priority=1.0):
    spec = JobSpec(tenant=tenant, pipeline=pipeline, split=split,
                   priority=priority)
    job = TenantJob(spec=spec, plan=spec.resolve_plan(),
                    config=spec.run_config())
    job.enqueue_index = index
    return job


class TestGetPolicy:
    def test_resolves_names_and_instances(self):
        assert isinstance(get_policy("fifo"), FifoPolicy)
        assert isinstance(get_policy("fair-share"), FairSharePolicy)
        aware = CacheAwarePolicy()
        assert get_policy(aware) is aware

    def test_unknown_name(self):
        with pytest.raises(ProfilingError):
            get_policy("round-robin")

    def test_only_cache_aware_shares_artifacts(self):
        assert not FifoPolicy().share_artifacts
        assert not FairSharePolicy().share_artifacts
        assert CacheAwarePolicy().share_artifacts


class TestFifo:
    def test_picks_earliest_enqueued(self):
        queue = [_job("b", 1), _job("a", 0), _job("c", 2)]
        assert FifoPolicy().select(queue, _StubState()).spec.tenant == "a"


class TestFairShare:
    def test_prefers_least_served_tenant(self):
        queue = [_job("hog", 0), _job("starved", 1)]
        state = _StubState(busy={"hog": 1000.0, "starved": 0.0})
        picked = FairSharePolicy().select(queue, state)
        assert picked.spec.tenant == "starved"

    def test_priority_scales_the_share(self):
        # Premium tenant consumed twice as much but at weight 2 its
        # normalized share ties the best-effort tenant; the tie breaks
        # by enqueue order.
        queue = [_job("premium", 0, priority=2.0), _job("basic", 1)]
        state = _StubState(busy={"premium": 200.0, "basic": 100.0})
        assert FairSharePolicy().select(
            queue, state).spec.tenant == "premium"
        state = _StubState(busy={"premium": 400.0, "basic": 100.0})
        assert FairSharePolicy().select(
            queue, state).spec.tenant == "basic"

    def test_falls_back_to_fifo_when_untouched(self):
        queue = [_job("b", 1), _job("a", 0)]
        assert FairSharePolicy().select(
            queue, _StubState()).spec.tenant == "a"


class TestCacheAware:
    def test_prefers_warm_artifacts(self):
        cold = _job("cold", 0, split="spectrogram-encoded")
        warm = _job("warm", 1, split="decoded")
        state = _StubState(warm={warm.artifact})
        picked = CacheAwarePolicy().select([cold, warm], state)
        assert picked.spec.tenant == "warm"

    def test_falls_back_to_fifo_when_nothing_is_warm(self):
        queue = [_job("b", 1), _job("a", 0)]
        assert CacheAwarePolicy().select(
            queue, _StubState()).spec.tenant == "a"

    def test_warm_ties_break_by_enqueue_order(self):
        first = _job("x", 0, split="decoded")
        second = _job("y", 1, split="decoded")
        state = _StubState(warm={first.artifact})
        assert CacheAwarePolicy().select(
            [second, first], state).spec.tenant == "x"


class _PreemptState(_StubState):
    """Stub state with the running set the preempt hook inspects."""

    def __init__(self, running=(), busy=None, warm=None):
        super().__init__(busy=busy, warm=warm)
        self.running = list(running)


class TestFifoPreempt:
    def test_base_policy_and_empty_sets_decline(self):
        from repro.serve.policies import SchedulerPolicy
        runner = _job("a", 0)
        state = _PreemptState(running=[runner])
        assert SchedulerPolicy().preempt([_job("b", 1)], state) is None
        assert FifoPolicy().preempt([], state) is None
        assert FifoPolicy().preempt([_job("b", 1)],
                                    _PreemptState()) is None

    def test_equal_priorities_never_preempt(self):
        state = _PreemptState(running=[_job("a", 0), _job("b", 1)])
        assert FifoPolicy().preempt([_job("c", 2)], state) is None

    def test_evicts_youngest_lower_priority_runner(self):
        old_low = _job("old", 1, priority=1.0)
        young_low = _job("young", 3, priority=1.0)
        state = _PreemptState(running=[old_low, young_low])
        victim = FifoPolicy().preempt(
            [_job("premium", 4, priority=2.0)], state)
        assert victim is young_low   # least sunk work to replay

    def test_contender_is_the_oldest_waiter(self):
        # The oldest waiter has the *lowest* priority, so the premium
        # job queued behind it cannot trigger a preemption on its own.
        runner = _job("runner", 0, priority=1.0)
        state = _PreemptState(running=[runner])
        queue = [_job("basic", 1, priority=0.5),
                 _job("premium", 2, priority=2.0)]
        assert FifoPolicy().preempt(queue, state) is None

    def test_only_strictly_lower_priority_is_evicted(self):
        peer = _job("peer", 0, priority=2.0)
        low = _job("low", 1, priority=1.0)
        state = _PreemptState(running=[peer, low])
        victim = FifoPolicy().preempt(
            [_job("premium", 2, priority=2.0)], state)
        assert victim is low


class TestFairSharePreempt:
    def test_preempts_a_hog_past_the_deadband(self):
        hog = _job("hog", 0)
        state = _PreemptState(running=[hog],
                              busy={"hog": 1000.0, "starved": 100.0})
        assert FairSharePolicy().preempt(
            [_job("starved", 1)], state) is hog

    def test_deadband_blocks_mild_imbalance(self):
        hog = _job("hog", 0)
        state = _PreemptState(running=[hog],
                              busy={"hog": 300.0, "starved": 100.0})
        assert FairSharePolicy().preempt(
            [_job("starved", 1)], state) is None

    def test_never_preempts_its_own_tenant(self):
        runner = _job("t", 0)
        state = _PreemptState(running=[runner], busy={"t": 1000.0})
        assert FairSharePolicy().preempt([_job("t", 1)], state) is None

    def test_untouched_victim_is_safe(self):
        runner = _job("fresh", 0)
        state = _PreemptState(running=[runner],
                              busy={"fresh": 0.0, "waiting": 0.0})
        assert FairSharePolicy().preempt(
            [_job("waiting", 1)], state) is None


class TestCacheAwarePreempt:
    def test_cold_queue_never_preempts(self):
        state = _PreemptState(running=[_job("r", 0)])
        assert CacheAwarePolicy().preempt([_job("q", 1)], state) is None

    def test_evicts_the_youngest_cache_loner(self):
        warm_waiter = _job("warm", 2, split="decoded")
        loner = _job("loner", 5, split="spectrogram-encoded")
        state = _PreemptState(running=[loner],
                              warm={warm_waiter.artifact})
        assert CacheAwarePolicy().preempt([warm_waiter],
                                          state) is loner

    def test_requeued_victim_cannot_bounce_its_displacer(self):
        # The loner is *older* than the warm waiter: a job requeued by
        # a previous preemption re-enters with a fresh higher index, so
        # this guard is exactly the no-ping-pong rule.
        warm_waiter = _job("warm", 5, split="decoded")
        loner = _job("loner", 2, split="spectrogram-encoded")
        state = _PreemptState(running=[loner],
                              warm={warm_waiter.artifact})
        assert CacheAwarePolicy().preempt([warm_waiter], state) is None

    def test_co_running_artifacts_are_protected(self):
        warm_waiter = _job("warm", 0, split="decoded")
        twin_a = _job("a", 3, split="spectrogram-encoded")
        twin_b = _job("b", 4, split="spectrogram-encoded")
        state = _PreemptState(running=[twin_a, twin_b],
                              warm={warm_waiter.artifact})
        assert CacheAwarePolicy().preempt([warm_waiter], state) is None

    def test_artifacts_still_queued_are_protected(self):
        warm_waiter = _job("warm", 0, split="decoded")
        runner = _job("r", 3, split="spectrogram-encoded")
        queued_twin = _job("q", 4, split="spectrogram-encoded")
        state = _PreemptState(running=[runner],
                              warm={warm_waiter.artifact})
        assert CacheAwarePolicy().preempt(
            [warm_waiter, queued_twin], state) is None
