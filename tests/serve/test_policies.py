"""Unit tests for scheduler policies (against a stub service state)."""

import pytest

from repro.errors import ProfilingError
from repro.serve import (CacheAwarePolicy, FairSharePolicy, FifoPolicy,
                         JobSpec, get_policy)
from repro.serve.service import TenantJob


class _StubState:
    """Just enough ServiceState for policy.select()."""

    def __init__(self, busy=None, warm=None):
        self._busy = busy or {}
        self._warm = warm or set()

    def tenant_busy_seconds(self, tenant):
        return self._busy.get(tenant, 0.0)

    def warm_artifacts(self):
        return set(self._warm)


def _job(tenant, index, pipeline="MP3", split="decoded", priority=1.0):
    spec = JobSpec(tenant=tenant, pipeline=pipeline, split=split,
                   priority=priority)
    job = TenantJob(spec=spec, plan=spec.resolve_plan(),
                    config=spec.run_config())
    job.enqueue_index = index
    return job


class TestGetPolicy:
    def test_resolves_names_and_instances(self):
        assert isinstance(get_policy("fifo"), FifoPolicy)
        assert isinstance(get_policy("fair-share"), FairSharePolicy)
        aware = CacheAwarePolicy()
        assert get_policy(aware) is aware

    def test_unknown_name(self):
        with pytest.raises(ProfilingError):
            get_policy("round-robin")

    def test_only_cache_aware_shares_artifacts(self):
        assert not FifoPolicy().share_artifacts
        assert not FairSharePolicy().share_artifacts
        assert CacheAwarePolicy().share_artifacts


class TestFifo:
    def test_picks_earliest_enqueued(self):
        queue = [_job("b", 1), _job("a", 0), _job("c", 2)]
        assert FifoPolicy().select(queue, _StubState()).spec.tenant == "a"


class TestFairShare:
    def test_prefers_least_served_tenant(self):
        queue = [_job("hog", 0), _job("starved", 1)]
        state = _StubState(busy={"hog": 1000.0, "starved": 0.0})
        picked = FairSharePolicy().select(queue, state)
        assert picked.spec.tenant == "starved"

    def test_priority_scales_the_share(self):
        # Premium tenant consumed twice as much but at weight 2 its
        # normalized share ties the best-effort tenant; the tie breaks
        # by enqueue order.
        queue = [_job("premium", 0, priority=2.0), _job("basic", 1)]
        state = _StubState(busy={"premium": 200.0, "basic": 100.0})
        assert FairSharePolicy().select(
            queue, state).spec.tenant == "premium"
        state = _StubState(busy={"premium": 400.0, "basic": 100.0})
        assert FairSharePolicy().select(
            queue, state).spec.tenant == "basic"

    def test_falls_back_to_fifo_when_untouched(self):
        queue = [_job("b", 1), _job("a", 0)]
        assert FairSharePolicy().select(
            queue, _StubState()).spec.tenant == "a"


class TestCacheAware:
    def test_prefers_warm_artifacts(self):
        cold = _job("cold", 0, split="spectrogram-encoded")
        warm = _job("warm", 1, split="decoded")
        state = _StubState(warm={warm.artifact})
        picked = CacheAwarePolicy().select([cold, warm], state)
        assert picked.spec.tenant == "warm"

    def test_falls_back_to_fifo_when_nothing_is_warm(self):
        queue = [_job("b", 1), _job("a", 0)]
        assert CacheAwarePolicy().select(
            queue, _StubState()).spec.tenant == "a"

    def test_warm_ties_break_by_enqueue_order(self):
        first = _job("x", 0, split="decoded")
        second = _job("y", 1, split="decoded")
        state = _StubState(warm={first.artifact})
        assert CacheAwarePolicy().select(
            [second, first], state).spec.tenant == "x"
