"""Tests for job specs and deterministic trace generation."""

import pytest

from repro.backends.base import CACHE_SYSTEM
from repro.errors import ProfilingError
from repro.serve import (TRACE_KINDS, JobSpec, bursty_trace, diurnal_trace,
                         generate_trace, operations_trace, poisson_trace,
                         steady_trace, with_epochs)


class TestJobSpec:
    def test_run_config_uses_system_caching(self):
        spec = JobSpec(tenant="t", pipeline="MP3", split="decoded",
                       threads=4, epochs=3)
        config = spec.run_config()
        assert config.cache_mode == CACHE_SYSTEM
        assert config.threads == 4
        assert config.epochs == 3

    def test_artifact_identity_ignores_tenant_and_arrival(self):
        left = JobSpec(tenant="a", pipeline="MP3", split="decoded",
                       arrival=0.0)
        right = JobSpec(tenant="b", pipeline="MP3", split="decoded",
                        arrival=900.0)
        assert left.artifact == right.artifact
        other = JobSpec(tenant="c", pipeline="MP3",
                        split="spectrogram-encoded")
        assert other.artifact != left.artifact

    def test_resolve_plan_builds_from_registry(self):
        spec = JobSpec(tenant="t", pipeline="FLAC", split="decoded")
        plan = spec.resolve_plan()
        assert plan.strategy_name == "decoded"
        assert plan.pipeline.name == "FLAC"

    def test_resolve_plan_rejects_compressed_unprocessed(self):
        spec = JobSpec(tenant="t", pipeline="MP3", split="unprocessed",
                       compression="GZIP")
        with pytest.raises(ProfilingError):
            spec.resolve_plan()

    def test_validation(self):
        with pytest.raises(ProfilingError):
            JobSpec(tenant="t", pipeline="MP3", split="decoded",
                    arrival=-1.0)
        with pytest.raises(ProfilingError):
            JobSpec(tenant="t", pipeline="MP3", split="decoded",
                    priority=0.0)
        with pytest.raises(ProfilingError):
            JobSpec(tenant="t", pipeline="MP3", split="decoded",
                    slo_stretch=-2.0)


class TestTraceGenerators:
    @pytest.mark.parametrize("kind", sorted(TRACE_KINDS))
    def test_seeded_generation_is_deterministic(self, kind):
        first = generate_trace(kind, tenants=6, seed=42)
        second = generate_trace(kind, tenants=6, seed=42)
        assert first == second
        # operations repeats the population over its default 3 days
        # (jobs_per_tenant defaults to 2 there); the rest are one round.
        assert len(first) == (36 if kind == "operations" else 6)
        assert generate_trace(kind, tenants=6, seed=43) != first

    def test_steady_spacing(self):
        trace = steady_trace(tenants=4, seed=0, interval=100.0)
        assert [job.arrival for job in trace] == [0.0, 100.0, 200.0, 300.0]
        assert [job.tenant for job in trace] == [
            "tenant-0", "tenant-1", "tenant-2", "tenant-3"]

    def test_bursty_shares_a_hot_artifact(self):
        trace = bursty_trace(tenants=8, seed=0, burst_size=4,
                             hot_share=1.0)
        artifacts = {job.artifact for job in trace}
        assert len(artifacts) == 1
        # Two bursts of four, one burst_gap apart.
        assert trace[0].arrival == 0.0
        assert trace[4].arrival == pytest.approx(900.0)

    def test_bursty_hot_artifact_can_be_pinned(self):
        trace = bursty_trace(tenants=8, seed=0, burst_size=4,
                             hot_share=1.0, hot_pipeline="CV2-PNG",
                             hot_split="unprocessed")
        assert {job.artifact for job in trace} == {
            ("CV2-PNG", "unprocessed", None)}

    def test_bursty_hot_pin_keeps_background_jobs_stable(self):
        """Pinning the hot artifact must not perturb the seeded RNG
        stream: arrivals, priorities and every non-hot job's artifact
        stay exactly as in the default trace."""
        default = bursty_trace(tenants=16, seed=0)
        pinned = bursty_trace(tenants=16, seed=0, hot_pipeline="CV2-PNG",
                              hot_split="unprocessed")
        # CV2-PNG is not in the default mix, so every CV2-PNG job in the
        # pinned trace is a hot-share job; all others must be untouched.
        hot_jobs = [job.pipeline == "CV2-PNG" for job in pinned]
        assert sum(hot_jobs) >= 8
        for before, after, is_hot in zip(default, pinned, hot_jobs):
            assert before.tenant == after.tenant
            assert before.arrival == after.arrival
            assert before.priority == after.priority
            if is_hot:
                assert after.artifact == ("CV2-PNG", "unprocessed", None)
            else:
                assert after.artifact == before.artifact

    def test_bursty_hot_split_must_exist(self):
        with pytest.raises(ProfilingError):
            bursty_trace(tenants=2, hot_pipeline="MP3",
                         hot_split="no-such-split")

    def test_diurnal_arrivals_sorted_within_period(self):
        trace = diurnal_trace(tenants=12, seed=1, period=3600.0)
        arrivals = [job.arrival for job in trace]
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= arrival <= 3600.0 for arrival in arrivals)

    def test_unknown_kind_and_bad_counts(self):
        with pytest.raises(ProfilingError):
            generate_trace("lunar", tenants=2)
        with pytest.raises(ProfilingError):
            steady_trace(tenants=0)
        with pytest.raises(ProfilingError):
            bursty_trace(tenants=2, burst_size=0)
        with pytest.raises(ProfilingError):
            steady_trace(tenants=2, pipelines=())

    @pytest.mark.parametrize("kind", sorted(TRACE_KINDS))
    def test_jobs_per_tenant_cycles_the_population(self, kind):
        trace = generate_trace(kind, tenants=3, seed=0, jobs_per_tenant=2)
        assert len(trace) == (18 if kind == "operations" else 6)
        tenants = {job.tenant for job in trace}
        assert tenants == {"tenant-0", "tenant-1", "tenant-2"}
        with pytest.raises(ProfilingError):
            generate_trace(kind, tenants=3, jobs_per_tenant=0)

    def test_single_round_prefix_is_stable(self):
        """jobs_per_tenant=1 output is a prefix of jobs_per_tenant=2
        (same seed), so the pinned goldens are unaffected by the knob."""
        one = steady_trace(tenants=4, seed=0)
        two = steady_trace(tenants=4, seed=0, jobs_per_tenant=2)
        assert two[:4] == one

    def test_with_epochs_rewrites_every_job(self):
        trace = with_epochs(steady_trace(tenants=3, seed=0), epochs=5)
        assert all(job.epochs == 5 for job in trace)

    def test_traces_resolve_against_the_registry(self):
        for kind in TRACE_KINDS:
            for job in generate_trace(kind, tenants=5, seed=7):
                plan = job.resolve_plan()
                assert plan.pipeline.sample_count > 0


class TestPoissonTrace:
    def test_arrivals_strictly_increase(self):
        trace = poisson_trace(tenants=32, seed=3, interval=100.0)
        arrivals = [job.arrival for job in trace]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))
        assert arrivals[0] > 0.0

    def test_mean_gap_tracks_the_interval(self):
        trace = poisson_trace(tenants=200, seed=0, interval=100.0)
        mean_gap = trace[-1].arrival / len(trace)
        assert 60.0 < mean_gap < 160.0

    def test_registered_in_trace_kinds(self):
        assert "poisson" in TRACE_KINDS
        direct = poisson_trace(tenants=6, seed=11)
        assert generate_trace("poisson", tenants=6, seed=11) == direct

    def test_interval_must_be_positive(self):
        with pytest.raises(ProfilingError):
            poisson_trace(tenants=2, interval=0.0)


class TestFaultInjectionInteraction:
    @pytest.mark.parametrize("kind", sorted(TRACE_KINDS))
    def test_faults_never_perturb_the_arrival_stream(self, kind):
        """inject_faults draws from its own namespaced RNG, so a faulty
        trace is the clean trace plus crash annotations -- nothing
        else moves."""
        clean = generate_trace(kind, tenants=16, seed=5)
        faulty = generate_trace(kind, tenants=16, seed=5, fault_rate=0.5)
        assert len(faulty) == len(clean)
        crashed = 0
        for before, after in zip(clean, faulty):
            assert after.tenant == before.tenant
            assert after.arrival == before.arrival
            assert after.artifact == before.artifact
            assert after.priority == before.priority
            if after.crash_epoch is not None:
                crashed += 1
                assert 0 <= after.crash_epoch < after.epochs
                assert after.crash_attempts >= 1
        assert 0 < crashed < len(faulty)

    def test_faulty_traces_are_seed_deterministic(self):
        first = generate_trace("poisson", tenants=12, seed=9,
                               fault_rate=0.4)
        second = generate_trace("poisson", tenants=12, seed=9,
                                fault_rate=0.4)
        assert first == second
        assert generate_trace("poisson", tenants=12, seed=10,
                              fault_rate=0.4) != first

    def test_zero_rate_is_byte_identical(self):
        clean = generate_trace("poisson", tenants=8, seed=2)
        assert generate_trace("poisson", tenants=8, seed=2,
                              fault_rate=0.0) == clean


class TestOperationsTrace:
    def test_registered_in_trace_kinds(self):
        assert "operations" in TRACE_KINDS
        assert generate_trace("operations", tenants=4, seed=0) == \
            operations_trace(tenants=4, seed=0)

    def test_spans_the_requested_days_sorted(self):
        trace = operations_trace(tenants=6, seed=1, days=3,
                                 day_length=1000.0)
        arrivals = [job.arrival for job in trace]
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= arrival <= 3000.0 for arrival in arrivals)
        # Load actually lands on every day of the horizon.
        days_hit = {int(arrival // 1000.0) for arrival in arrivals}
        assert days_hit == {0, 1, 2}

    def test_morning_bursts_share_one_hot_artifact(self):
        trace = operations_trace(tenants=8, seed=2, days=2,
                                 day_length=1000.0)
        # The burst: arrivals exactly a quarter into each day, whole
        # seconds apart (background arrivals carry random fractions).
        offsets = {250.0 + slot for slot in range(4)}
        bursts = [job for job in trace
                  if (job.arrival % 1000.0) in offsets]
        assert len(bursts) >= 2
        assert len({job.artifact for job in bursts}) == 1

    def test_tenants_recur_across_days(self):
        trace = operations_trace(tenants=4, seed=3, days=3,
                                 day_length=1000.0)
        per_day = {}
        for job in trace:
            per_day.setdefault(int(job.arrival // 1000.0),
                               set()).add(job.tenant)
        recurring = set.intersection(*per_day.values())
        assert recurring   # history accumulates over the horizon

    def test_validation(self):
        with pytest.raises(ProfilingError):
            operations_trace(tenants=4, days=0)
        with pytest.raises(ProfilingError):
            operations_trace(tenants=4, day_length=0.0)
        with pytest.raises(ProfilingError):
            operations_trace(tenants=0)
