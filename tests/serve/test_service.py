"""Tests for the multi-tenant service simulation itself."""

import pytest

from repro.backends import RunConfig, SimulatedBackend
from repro.core.report import service_summary, tenant_table
from repro.errors import ProfilingError
from repro.pipelines import get_pipeline
from repro.serve import (JobSpec, PreprocessingService, bursty_trace,
                         percentile, steady_trace)


def _spec(tenant="t0", pipeline="MP3", split="spectrogram-encoded",
          **kwargs):
    return JobSpec(tenant=tenant, pipeline=pipeline, split=split, **kwargs)


class TestPercentile:
    def test_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)

    def test_single_value_and_validation(self):
        assert percentile([7.0], 99) == 7.0
        with pytest.raises(ProfilingError):
            percentile([], 50)
        with pytest.raises(ProfilingError):
            percentile([1.0], 101)


class TestServiceBasics:
    def test_empty_trace_and_bad_slots(self):
        with pytest.raises(ProfilingError):
            PreprocessingService().run([])
        with pytest.raises(ProfilingError):
            PreprocessingService(slots=0)

    def test_single_tenant_matches_the_single_job_backend(self):
        """The uncontended limit: a one-tenant service run is exactly a
        SimulatedBackend run under system caching."""
        spec = _spec(epochs=2)
        report = PreprocessingService(policy="fifo", slots=1).run([spec])
        plan = spec.resolve_plan()
        reference = SimulatedBackend().run(plan, spec.run_config())
        job = report.tenants[0]
        assert len(job.epochs) == 2
        for served, single in zip(job.epochs, reference.epochs):
            assert served.duration == pytest.approx(single.duration,
                                                    rel=1e-9)
        assert job.offline.duration == pytest.approx(
            reference.offline.duration, rel=1e-9)
        assert report.makespan == pytest.approx(
            reference.offline.duration
            + sum(epoch.duration for epoch in reference.epochs), rel=1e-9)

    def test_runs_are_deterministic(self):
        trace = bursty_trace(tenants=6, seed=3)
        service = PreprocessingService(policy="cache-aware", slots=2)
        first = service.run(trace)
        second = PreprocessingService(policy="cache-aware",
                                      slots=2).run(trace)
        assert first.makespan == second.makespan
        assert (tenant_table(first).to_markdown()
                == tenant_table(second).to_markdown())
        assert service_summary(first) == service_summary(second)

    def test_queueing_with_one_slot(self):
        """Two t=0 arrivals on one slot: the second waits for the first."""
        trace = [_spec("a"), _spec("b")]
        report = PreprocessingService(policy="fifo", slots=1).run(trace)
        first, second = report.tenants
        assert first.queue_delay == 0.0
        assert second.queue_delay > 0.0
        assert second.queue_delay == pytest.approx(
            first.finished - second.arrival)

    def test_second_epoch_hits_the_shared_cache(self):
        report = PreprocessingService(slots=1).run([_spec(epochs=2)])
        cold, warm = report.tenants[0].epochs
        assert cold.bytes_from_cache == 0.0
        assert warm.bytes_from_storage == 0.0
        assert warm.duration < cold.duration


class TestArtifactSharing:
    def _same_artifact_trace(self):
        return [_spec("a"), _spec("b", arrival=1.0), _spec("c", arrival=2.0)]

    def test_cache_aware_dedupes_offline(self):
        report = PreprocessingService(policy="cache-aware", slots=3).run(
            self._same_artifact_trace())
        assert report.offline_runs == 1
        assert report.offline_deduped == 2
        shared = [job for job in report.tenants if job.offline_shared]
        assert len(shared) == 2
        assert all(job.offline is None for job in shared)

    def test_fifo_duplicates_offline(self):
        report = PreprocessingService(policy="fifo", slots=3).run(
            self._same_artifact_trace())
        assert report.offline_runs == 3
        assert report.offline_deduped == 0

    def test_shared_namespace_serves_followers_from_cache(self):
        """Under dedup, follower tenants read the leader's cached chunks."""
        aware = PreprocessingService(policy="cache-aware", slots=1).run(
            self._same_artifact_trace())
        followers = [job for job in aware.tenants if job.offline_shared]
        assert followers and all(job.cache_hit_ratio == pytest.approx(1.0)
                                 for job in followers)
        fifo = PreprocessingService(policy="fifo", slots=1).run(
            self._same_artifact_trace())
        # Private copies: every tenant's first epoch re-reads storage.
        for job in fifo.tenants:
            assert job.epochs[0].bytes_from_storage > 0.0


class TestFairShareScheduling:
    def _trace(self):
        """Tenant a floods the service; tenant b arrives behind it."""
        return [_spec("a", epochs=1),
                _spec("a", arrival=1.0, epochs=1),
                _spec("b", arrival=2.0, epochs=1)]

    def test_fair_share_lets_the_starved_tenant_jump_the_queue(self):
        fair = PreprocessingService(policy="fair-share", slots=1).run(
            self._trace())
        # Once a's first job finishes, b (zero consumed service) beats
        # a's second job despite the later arrival.
        assert fair.tenants[2].granted < fair.tenants[1].granted

    def test_fifo_serves_the_flood_first(self):
        fifo = PreprocessingService(policy="fifo", slots=1).run(
            self._trace())
        assert fifo.tenants[1].granted < fifo.tenants[2].granted


class TestSloTracking:
    def test_tight_slo_flags_contended_epochs(self):
        trace = [_spec("a", slo_stretch=1e-6),
                 _spec("b", slo_stretch=1e-6, arrival=1.0)]
        report = PreprocessingService(policy="fifo", slots=2).run(trace)
        assert report.total_slo_violations == 4  # every epoch of both

    def test_disabled_slo_counts_nothing(self):
        trace = [_spec("a", slo_stretch=None)]
        report = PreprocessingService(slots=1).run(trace)
        assert report.total_slo_violations == 0
        assert report.tenants[0].slo_seconds is None


class TestReportRendering:
    def test_tenant_table_and_summary(self):
        report = PreprocessingService(policy="fair-share", slots=2).run(
            steady_trace(tenants=3, seed=0))
        frame = tenant_table(report)
        assert len(frame) == 3
        assert {"tenant", "p50_epoch_s", "p99_epoch_s", "sps",
                "stall_frac", "cache_hit",
                "slo_viol"} <= set(frame.columns)
        summary = service_summary(report)
        assert "fair-share" in summary
        assert "3 tenant(s)" in summary

    def test_tenant_lookup(self):
        report = PreprocessingService(slots=1).run([_spec("solo")])
        assert report.tenant("solo").spec.tenant == "solo"
        with pytest.raises(ProfilingError):
            report.tenant("nobody")


class TestTenantTieBreak:
    """The explicit (timestamp, tenant id) completion tie-break."""

    def test_invalid_tie_break_rejected(self):
        with pytest.raises(ProfilingError, match="tie_break"):
            PreprocessingService(tie_break="random")

    def test_arrival_is_an_alias_for_the_default(self):
        """The CLI/spec spelling works at the library layer too."""
        assert PreprocessingService(tie_break="arrival").tie_break is None
        assert PreprocessingService().tie_break is None
        assert PreprocessingService(tie_break="tenant").tie_break \
            == "tenant"

    def test_tenant_tie_break_pins_knife_edge_runs(self):
        """Full co-tenancy on one hot raw artifact (the page-cache
        thrash regime): the tenant tie-break must give bit-identical
        reports across repeated runs."""
        def run():
            trace = bursty_trace(tenants=6, seed=0, burst_size=6,
                                 pipelines=("CV2-JPG",),
                                 hot_pipeline="CV2-JPG",
                                 hot_split="unprocessed", epochs=1)
            service = PreprocessingService(policy="fifo", slots=6,
                                           tie_break="tenant")
            return service.run(trace)

        first, second = run(), run()
        assert first.makespan == second.makespan
        assert first.events_processed == second.events_processed
        assert [job.epoch_durations for job in first.tenants] \
            == [job.epoch_durations for job in second.tenants]

    def test_tenant_tie_break_preserves_single_tenant_results(self):
        """With one tenant there are no cross-tenant ties to break, so
        the kernel option must not perturb the simulation at all."""
        trace = [_spec("solo")]
        default = PreprocessingService(slots=1).run(trace)
        tagged = PreprocessingService(slots=1, tie_break="tenant").run(trace)
        assert tagged.makespan == default.makespan
        assert tagged.events_processed == default.events_processed
        assert tagged.tenants[0].epoch_durations \
            == default.tenants[0].epoch_durations
