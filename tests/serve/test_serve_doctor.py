"""Tests for cluster-level service diagnosis."""

import pytest

from repro.diagnosis import BottleneckDoctor
from repro.errors import DiagnosisError
from repro.serve import (JobSpec, PreprocessingService, bursty_trace,
                         diagnose_service)
from repro.serve.doctor import ServiceDiagnosis, cluster_fractions
from repro.serve.service import ServiceReport


@pytest.fixture(scope="module")
def contended_reports():
    """One bursty 6-tenant trace under fifo and cache-aware."""
    trace = bursty_trace(tenants=6, seed=0)
    return {
        policy: PreprocessingService(policy=policy, slots=2).run(trace)
        for policy in ("fifo", "cache-aware")
    }


class TestClusterFractions:
    def test_fractions_sum_to_one(self, contended_reports):
        for report in contended_reports.values():
            fractions = cluster_fractions(report)
            assert set(fractions) == {"cpu", "storage", "decode", "stall"}
            assert all(value >= 0 for value in fractions.values())
            assert sum(fractions.values()) == pytest.approx(1.0)

    def test_traceless_report_is_all_stall(self):
        report = ServiceReport(policy="fifo", slots=1, environment=None)
        assert cluster_fractions(report)["stall"] == 1.0


class TestDiagnoseService:
    def test_findings_ranked_by_severity(self, contended_reports):
        diagnosis = diagnose_service(contended_reports["fifo"])
        assert isinstance(diagnosis, ServiceDiagnosis)
        severities = [finding.severity for finding in diagnosis.findings]
        assert severities == sorted(severities, reverse=True)
        assert diagnosis.top_finding is diagnosis.findings[0]

    def test_duplicate_offline_flagged_only_without_dedup(
            self, contended_reports):
        fifo_kinds = {finding.kind for finding in diagnose_service(
            contended_reports["fifo"]).findings}
        aware_kinds = {finding.kind for finding in diagnose_service(
            contended_reports["cache-aware"]).findings}
        assert "duplicate-offline" in fifo_kinds
        assert "duplicate-offline" not in aware_kinds

    def test_markdown_contains_policy_and_findings(self, contended_reports):
        diagnosis = diagnose_service(contended_reports["fifo"])
        text = diagnosis.to_markdown()
        assert "cluster diagnosis [fifo]" in text
        assert "bound on" in text
        for rank in range(1, len(diagnosis.findings) + 1):
            assert f"{rank}." in text

    def test_empty_report_raises(self):
        with pytest.raises(DiagnosisError):
            diagnose_service(ServiceReport(policy="fifo", slots=1,
                                           environment=None))

    def test_queue_pressure_on_starved_slots(self):
        """Many simultaneous arrivals on one slot must surface queueing."""
        trace = [JobSpec(tenant=f"t{i}", pipeline="MP3",
                         split="spectrogram-encoded", epochs=1)
                 for i in range(4)]
        report = PreprocessingService(policy="fifo", slots=1).run(trace)
        kinds = {finding.kind
                 for finding in diagnose_service(report).findings}
        assert "queue-pressure" in kinds


class TestBottleneckDoctorIntegration:
    def test_doctor_delegates_to_the_serve_layer(self, contended_reports):
        doctor = BottleneckDoctor()
        diagnosis = doctor.diagnose_service(contended_reports["fifo"])
        reference = diagnose_service(contended_reports["fifo"])
        assert diagnosis.policy == reference.policy
        assert diagnosis.fractions == reference.fractions
        assert [finding.kind for finding in diagnosis.findings] == \
            [finding.kind for finding in reference.findings]
