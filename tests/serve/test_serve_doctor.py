"""Tests for cluster-level service diagnosis."""

import pytest

from repro.diagnosis import BottleneckDoctor
from repro.errors import DiagnosisError
from repro.serve import (JobSpec, PreprocessingService, bursty_trace,
                         diagnose_service)
from repro.serve.doctor import ServiceDiagnosis, cluster_fractions
from repro.serve.service import ServiceReport


@pytest.fixture(scope="module")
def contended_reports():
    """One bursty 6-tenant trace under fifo and cache-aware."""
    trace = bursty_trace(tenants=6, seed=0)
    return {
        policy: PreprocessingService(policy=policy, slots=2).run(trace)
        for policy in ("fifo", "cache-aware")
    }


class TestClusterFractions:
    def test_fractions_sum_to_one(self, contended_reports):
        for report in contended_reports.values():
            fractions = cluster_fractions(report)
            assert set(fractions) == {"cpu", "storage", "decode", "stall"}
            assert all(value >= 0 for value in fractions.values())
            assert sum(fractions.values()) == pytest.approx(1.0)

    def test_traceless_report_is_all_stall(self):
        report = ServiceReport(policy="fifo", slots=1, environment=None)
        assert cluster_fractions(report)["stall"] == 1.0


class TestDiagnoseService:
    def test_findings_ranked_by_severity(self, contended_reports):
        diagnosis = diagnose_service(contended_reports["fifo"])
        assert isinstance(diagnosis, ServiceDiagnosis)
        severities = [finding.severity for finding in diagnosis.findings]
        assert severities == sorted(severities, reverse=True)
        assert diagnosis.top_finding is diagnosis.findings[0]

    def test_duplicate_offline_flagged_only_without_dedup(
            self, contended_reports):
        fifo_kinds = {finding.kind for finding in diagnose_service(
            contended_reports["fifo"]).findings}
        aware_kinds = {finding.kind for finding in diagnose_service(
            contended_reports["cache-aware"]).findings}
        assert "duplicate-offline" in fifo_kinds
        assert "duplicate-offline" not in aware_kinds

    def test_markdown_contains_policy_and_findings(self, contended_reports):
        diagnosis = diagnose_service(contended_reports["fifo"])
        text = diagnosis.to_markdown()
        assert "cluster diagnosis [fifo]" in text
        assert "bound on" in text
        for rank in range(1, len(diagnosis.findings) + 1):
            assert f"{rank}." in text

    def test_empty_report_raises(self):
        with pytest.raises(DiagnosisError):
            diagnose_service(ServiceReport(policy="fifo", slots=1,
                                           environment=None))

    def test_queue_pressure_on_starved_slots(self):
        """Many simultaneous arrivals on one slot must surface queueing."""
        trace = [JobSpec(tenant=f"t{i}", pipeline="MP3",
                         split="spectrogram-encoded", epochs=1)
                 for i in range(4)]
        report = PreprocessingService(policy="fifo", slots=1).run(trace)
        kinds = {finding.kind
                 for finding in diagnose_service(report).findings}
        assert "queue-pressure" in kinds


class TestBottleneckDoctorIntegration:
    def test_doctor_delegates_to_the_serve_layer(self, contended_reports):
        doctor = BottleneckDoctor()
        diagnosis = doctor.diagnose_service(contended_reports["fifo"])
        reference = diagnose_service(contended_reports["fifo"])
        assert diagnosis.policy == reference.policy
        assert diagnosis.fractions == reference.fractions
        assert [finding.kind for finding in diagnosis.findings] == \
            [finding.kind for finding in reference.findings]


class TestFaultFindings:
    """Chaos-engine windows surface as ranked findings with the
    predicted epoch-time stretch anchored to the injected magnitude."""

    @pytest.fixture(scope="class")
    def chaos_report(self):
        from repro.faults import (Brownout, DeviceSlowdown, FaultPlan,
                                  StragglerWindow)
        plan = FaultPlan(
            stragglers=(StragglerWindow(start=50.0, duration=400.0,
                                        cores=6),),
            slowdowns=(DeviceSlowdown(start=100.0, duration=300.0,
                                      factor=3.0),),
            brownouts=(Brownout(start=200.0, duration=250.0,
                                factor=4.0),))
        trace = bursty_trace(tenants=6, seed=0)
        return PreprocessingService(policy="fifo", slots=2,
                                    faults=plan).run(trace)

    def test_each_window_kind_surfaces(self, chaos_report):
        kinds = {finding.kind
                 for finding in diagnose_service(chaos_report).findings}
        assert {"brownout-detected", "straggler-detected",
                "device-degraded"} <= kinds

    def test_predicted_impact_anchors_to_injected_magnitude(
            self, chaos_report):
        findings = {finding.kind: finding
                    for finding in diagnose_service(chaos_report).findings}
        # Brownout: 1/4 capacity -> storage-bound epochs stretch 4x.
        assert "stretch up to 4.0x" in findings["brownout-detected"].detail
        # Straggler: 6 of 8 cores parked -> CPU-bound epochs stretch 4x.
        assert "6 of 8 cores" in findings["straggler-detected"].detail
        assert "stretch up to 4.00x" in \
            findings["straggler-detected"].detail
        # Slowdown: read link at 1/3 -> I/O-bound epochs stretch 3x.
        assert "stretch up to 3.0x" in findings["device-degraded"].detail

    def test_fault_free_diagnosis_has_no_fault_findings(
            self, contended_reports):
        for report in contended_reports.values():
            kinds = {finding.kind
                     for finding in diagnose_service(report).findings}
            assert not kinds & {"brownout-detected", "straggler-detected",
                                "device-degraded"}
