"""Cross-checks: DES service vs the Sec. 7 closed forms, and the
acceptance scenario (cache-aware beats FIFO under contention)."""

import pytest

from repro.backends import RunConfig, SimulatedBackend
from repro.core.distributed import estimate_fan_out
from repro.pipelines import get_pipeline
from repro.serve import (bursty_trace, fan_out_frame_simulated,
                         simulate_fan_out, sweep_policies)


class TestSingleTenantLimit:
    """The DES serve result converges to the analytic estimate when
    there is nothing to contend with (ISSUE acceptance: within 5%)."""

    @pytest.mark.parametrize("pipeline,split", [
        ("MP3", "spectrogram-encoded"),
        ("FLAC", "decoded"),
        ("NILM", "aggregated"),
    ])
    def test_single_tenant_matches_estimate_fan_out(self, pipeline, split):
        plan = get_pipeline(pipeline).split_at(split)
        config = RunConfig(threads=8, epochs=1)
        single_sps = SimulatedBackend().run(plan, config).throughput
        analytic = estimate_fan_out(plan, config, trainers=1,
                                    single_job_sps=single_sps)
        report = simulate_fan_out(plan, config, trainers=1)
        served = report.tenants[0].throughput
        assert served == pytest.approx(analytic.delivered_sps, rel=0.05)
        # The agreement is in fact exact up to float noise: the service
        # reuses the backend's own epoch process.
        assert served == pytest.approx(analytic.delivered_sps, rel=1e-9)


class TestFanOutFrame:
    def test_simulated_frame_shape_and_bounds(self):
        plan = get_pipeline("MP3").split_at("spectrogram-encoded")
        config = RunConfig(threads=8, epochs=1)
        frame = fan_out_frame_simulated(plan, config,
                                        trainer_counts=(1, 4))
        rows = {row["trainers"]: row for row in frame.rows()}
        assert set(rows) == {1, 4}
        assert rows[1]["ratio"] == pytest.approx(1.0, abs=1e-3)
        # The closed form is an optimistic bound: co-simulation charges
        # metadata queueing and CPU-pool contention on top of the link.
        assert rows[4]["simulated_sps"] <= rows[4]["analytic_sps"] * 1.001
        assert rows[4]["simulated_sps"] < rows[1]["simulated_sps"]


class TestPolicyOrdering:
    def test_cache_aware_beats_fifo_on_the_contended_scenario(self):
        """The golden-pinned contended scenario: 8 bursty tenants on 2
        slots, most wanting one hot artifact.  Dedup plus co-location
        must win on aggregate throughput (ISSUE acceptance)."""
        trace = bursty_trace(tenants=8, seed=0)
        result = sweep_policies(trace, policies=("fifo", "cache-aware"),
                                slots=2)
        fifo = result.report("fifo")
        aware = result.report("cache-aware")
        assert aware.offline_deduped > 0
        assert aware.aggregate_sps > fifo.aggregate_sps * 1.1
        assert aware.makespan < fifo.makespan
        assert result.best_policy() == "cache-aware"

    def test_sweep_frame_lists_every_policy(self):
        trace = bursty_trace(tenants=4, seed=1)
        result = sweep_policies(trace, slots=2)
        frame = result.frame()
        assert frame["policy"] == ["fifo", "fair-share", "cache-aware"]
        assert {"aggregate_sps", "p99_epoch_s", "deduped",
                "bound"} <= set(frame.columns)

    def test_parallel_sweep_matches_serial(self):
        trace = bursty_trace(tenants=4, seed=2)
        serial = sweep_policies(trace, slots=2, executor=None)
        threaded = sweep_policies(trace, slots=2, executor="thread")
        assert (serial.frame().to_markdown()
                == threaded.frame().to_markdown())
