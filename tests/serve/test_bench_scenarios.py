"""Tier-1 pins for the perf suite's serve scenarios.

The full ``serve64_hot_raw`` benchmark is too heavy for the unit tier,
so this suite pins (a) the scenario *definition* -- it must run under
the ``tenant`` tie-break and stay in the CI bench-check set, (b) the
recorded baseline numbers, and (c) the deterministic cost of a
scaled-down (8-tenant) replica of the same trace shape, which any
kernel or model drift moves long before the 64-tenant run does.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.serve import PreprocessingService, generate_trace

REPO = Path(__file__).resolve().parents[2]


def _load_scenarios():
    spec = importlib.util.spec_from_file_location(
        "bench_scenarios", REPO / "benchmarks" / "perf" / "scenarios.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestHotRawScenarioDefinition:
    def test_runs_under_the_tenant_tie_break(self):
        scenarios = _load_scenarios()
        spec = scenarios.SERVE_SCENARIOS["serve64_hot_raw"]
        assert spec["tie_break"] == "tenant"
        assert spec["slots"] == 64
        assert spec["trace"]["hot_split"] == "unprocessed"
        assert "serve64_hot_raw" in scenarios.CHECK_SCENARIOS

    def test_baseline_pins_the_hot_raw_cost(self):
        baseline = json.loads(
            (REPO / "benchmarks" / "perf" / "baseline.json").read_text())
        pinned = baseline["serve"]["serve64_hot_raw"]["cache-aware"]
        assert pinned["events"] == 3802598
        assert pinned["makespan_s"] == pytest.approx(20030.355)


class TestStreamScenarioDefinition:
    def test_stream64_is_in_the_check_set(self):
        scenarios = _load_scenarios()
        spec = scenarios.STREAM_SCENARIOS["stream64"]
        assert spec["arrival"] == "burst"
        assert spec["queue_bound"] == 8
        assert "stream64" in scenarios.STREAM_CHECK_SCENARIOS

    def test_baseline_pins_the_stream_cost(self):
        baseline = json.loads(
            (REPO / "benchmarks" / "perf" / "baseline.json").read_text())
        pinned = baseline["stream"]["stream64"]
        assert pinned["events"] == 34970
        assert pinned["makespan_s"] == pytest.approx(666.923)


class TestScaledStream:
    """An 8-tenant replica of the stream64 trace shape: cheap enough
    for the unit tier, and any engine or arrival-schedule drift moves
    its deterministic cost long before the 64-tenant run does."""

    def test_event_count_is_pinned(self):
        from repro.stream import StreamingService, generate_stream
        streams = generate_stream(8, seed=0, arrival="burst", rate=2.0,
                                  requests=48, batch=32, workers=4,
                                  queue_bound=8)
        report = StreamingService().run(streams, seed=0)
        assert report.events_processed == 4231
        assert report.makespan == pytest.approx(121.515326, abs=1e-3)
        assert report.total_requests == 8 * 48
        assert report.total_completed + report.total_shed == 8 * 48


class TestScaledHotRaw:
    def _run(self, tie_break):
        trace = generate_trace(
            "bursty", tenants=8, seed=0, burst_size=4,
            pipelines=("CV2-PNG", "CV2-JPG"),
            hot_pipeline="CV2-PNG", hot_split="unprocessed")
        return PreprocessingService(policy="cache-aware", slots=8,
                                    tie_break=tie_break).run(trace)

    def test_event_count_is_pinned(self):
        report = self._run("tenant")
        assert report.events_processed == 524250
        assert report.makespan == pytest.approx(2963.639, abs=1e-3)

    def test_tie_break_changes_the_schedule(self):
        """The tenant tie-break is live: arrival ordering differs."""
        assert self._run(None).makespan == pytest.approx(2963.643,
                                                         abs=1e-3)
