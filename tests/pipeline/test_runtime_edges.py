"""Edge-case tests for the dataset runtime (repro.pipeline.runtime).

Covers the previously-untested corners named in ISSUE 2: prefetch
producer exception propagation, the ``AppCacheOverflowError`` boundary
at exactly the cache budget, and shuffle determinism under a fixed
seed.
"""

import threading
import time

import pytest

from repro.pipeline.dataset import PipelineDataset
from repro.pipeline.runtime import AppCacheOverflowError


class BoomError(RuntimeError):
    """Marker exception raised inside producers."""


def failing_source(good: int):
    """Yields ``good`` elements, then blows up."""
    def factory():
        yield from range(good)
        raise BoomError("producer died")
    return PipelineDataset.from_generator(factory)


class TestPrefetchExceptionPropagation:
    def test_producer_exception_reaches_the_consumer(self):
        dataset = failing_source(3).prefetch(2)
        with pytest.raises(BoomError, match="producer died"):
            list(dataset)

    def test_elements_before_the_failure_are_delivered(self):
        dataset = failing_source(3).prefetch(2)
        seen = []
        with pytest.raises(BoomError):
            for element in dataset:
                seen.append(element)
        assert seen == [0, 1, 2]

    def test_map_worker_exception_propagates_through_prefetch(self):
        def explode(value):
            if value == 2:
                raise BoomError("map failed")
            return value

        dataset = (PipelineDataset.from_items([0, 1, 2, 3])
                   .map(explode, num_parallel_calls=2)
                   .prefetch(2))
        with pytest.raises(BoomError, match="map failed"):
            list(dataset)

    def test_producer_thread_terminates_after_failure(self):
        before = threading.active_count()
        with pytest.raises(BoomError):
            list(failing_source(1).prefetch(1))
        deadline = time.time() + 5.0
        while threading.active_count() > before:
            if time.time() > deadline:  # pragma: no cover - diagnostics
                living = [t.name for t in threading.enumerate()]
                pytest.fail(f"prefetch producer leaked: {living}")
            time.sleep(0.01)

    def test_prefetch_preserves_order_and_completes(self):
        items = list(range(100))
        dataset = PipelineDataset.from_items(items).prefetch(4)
        assert list(dataset) == items


class TestAppCacheBudgetBoundary:
    """The overflow contract: spending exactly the budget is legal,
    one byte more fails the run (paper Sec. 4.2 obs. 4)."""

    ELEMENTS = [b"x" * 100] * 4  # 400 bytes total

    def test_exactly_at_budget_caches_successfully(self):
        dataset = PipelineDataset.from_items(self.ELEMENTS).cache(
            capacity_bytes=400)
        assert list(dataset) == self.ELEMENTS
        # Second pass replays from memory (source exhausted -> still ok).
        assert list(dataset) == self.ELEMENTS

    def test_one_byte_under_budget_overflows(self):
        dataset = PipelineDataset.from_items(self.ELEMENTS).cache(
            capacity_bytes=399)
        with pytest.raises(AppCacheOverflowError):
            list(dataset)

    def test_overflow_reports_usage_and_budget(self):
        dataset = PipelineDataset.from_items(self.ELEMENTS).cache(
            capacity_bytes=250)
        with pytest.raises(AppCacheOverflowError, match="250"):
            list(dataset)

    def test_overflow_leaves_no_partial_cache_behind(self):
        dataset = PipelineDataset.from_items(self.ELEMENTS).cache(
            capacity_bytes=399)
        with pytest.raises(AppCacheOverflowError):
            list(dataset)
        # The failed pass must not have marked the cache filled; a
        # retry re-reads the source and fails the same way rather than
        # serving a truncated dataset.
        with pytest.raises(AppCacheOverflowError):
            list(dataset)

    def test_elements_stream_through_while_filling(self):
        dataset = PipelineDataset.from_items(self.ELEMENTS).cache(
            capacity_bytes=400)
        iterator = iter(dataset)
        assert next(iterator) == self.ELEMENTS[0]


class TestShuffleDeterminism:
    ITEMS = list(range(50))

    def shuffled(self, seed: int) -> list:
        return list(PipelineDataset.from_items(self.ITEMS)
                    .shuffle(buffer_size=16, seed=seed))

    def test_same_seed_same_order(self):
        assert self.shuffled(7) == self.shuffled(7)

    def test_same_seed_same_order_across_iterations(self):
        dataset = PipelineDataset.from_items(self.ITEMS).shuffle(
            buffer_size=16, seed=7)
        assert list(dataset) == list(dataset)

    def test_different_seeds_differ(self):
        assert self.shuffled(7) != self.shuffled(8)

    def test_shuffle_is_a_permutation(self):
        result = self.shuffled(7)
        assert sorted(result) == self.ITEMS
        assert result != self.ITEMS

    def test_determinism_survives_prefetch(self):
        def build():
            return (PipelineDataset.from_items(self.ITEMS)
                    .shuffle(buffer_size=16, seed=42)
                    .prefetch(2))
        assert list(build()) == list(build())
