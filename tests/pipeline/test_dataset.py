"""Tests for the tf.data-style runtime (PipelineDataset)."""

import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PipelineError
from repro.pipeline.dataset import PipelineDataset
from repro.pipeline.runtime import AppCacheOverflowError


def test_from_items_and_materialize():
    dataset = PipelineDataset.from_items([1, 2, 3])
    assert dataset.materialize() == [1, 2, 3]
    assert dataset.count() == 3


def test_reiteration_restarts_source():
    dataset = PipelineDataset.from_items([1, 2])
    assert dataset.materialize() == [1, 2]
    assert dataset.materialize() == [1, 2]


def test_map_applies_function():
    dataset = PipelineDataset.from_items([1, 2, 3]).map(lambda x: x * 10)
    assert dataset.materialize() == [10, 20, 30]


def test_parallel_map_preserves_order():
    items = list(range(100))

    def slow_even(x):
        if x % 2 == 0:
            time.sleep(0.001)
        return x * 2

    dataset = PipelineDataset.from_items(items).map(slow_even,
                                                    num_parallel_calls=8)
    assert dataset.materialize() == [x * 2 for x in items]


def test_parallel_map_actually_uses_threads():
    seen_threads = set()

    def record_thread(x):
        seen_threads.add(threading.current_thread().name)
        time.sleep(0.002)
        return x

    PipelineDataset.from_items(range(32)).map(
        record_thread, num_parallel_calls=4).materialize()
    assert len(seen_threads) > 1


def test_map_exception_propagates():
    def boom(x):
        raise ValueError("bad sample")

    dataset = PipelineDataset.from_items([1]).map(boom,
                                                  num_parallel_calls=2)
    with pytest.raises(ValueError, match="bad sample"):
        dataset.materialize()


def test_batching():
    dataset = PipelineDataset.from_items(range(7)).batch(3)
    assert dataset.materialize() == [[0, 1, 2], [3, 4, 5], [6]]


def test_batching_drop_remainder():
    dataset = PipelineDataset.from_items(range(7)).batch(3,
                                                         drop_remainder=True)
    assert dataset.materialize() == [[0, 1, 2], [3, 4, 5]]


def test_cache_replays_without_upstream_work():
    calls = []

    def tracked(x):
        calls.append(x)
        return x

    dataset = PipelineDataset.from_items([1, 2, 3]).map(tracked).cache()
    assert dataset.materialize() == [1, 2, 3]
    assert dataset.materialize() == [1, 2, 3]
    assert calls == [1, 2, 3]  # second epoch never touched the map


def test_cache_overflow_mirrors_paper_oom():
    """Datasets exceeding the cache budget fail like the paper's CV/NLP
    app-cache runs."""
    dataset = PipelineDataset.from_items(
        [b"x" * 100] * 10).cache(capacity_bytes=500)
    with pytest.raises(AppCacheOverflowError):
        dataset.materialize()


def test_shuffle_is_permutation():
    items = list(range(50))
    shuffled = PipelineDataset.from_items(items).shuffle(
        buffer_size=16, seed=3).materialize()
    assert sorted(shuffled) == items
    assert shuffled != items  # astronomically unlikely to be identity


def test_shuffle_deterministic_for_seed():
    items = list(range(30))
    first = PipelineDataset.from_items(items).shuffle(8, seed=5).materialize()
    second = PipelineDataset.from_items(items).shuffle(8, seed=5).materialize()
    assert first == second


def test_shuffle_different_seeds_differ():
    items = list(range(30))
    a = PipelineDataset.from_items(items).shuffle(8, seed=1).materialize()
    b = PipelineDataset.from_items(items).shuffle(8, seed=2).materialize()
    assert a != b


def test_shuffle_buffer_bounds_displacement():
    """Buffer shuffling can delay an element arbitrarily (it may sit in
    the buffer), but can never emit one before it has streamed in: the
    value at output position i is at most i + buffer_size."""
    items = list(range(100))
    buffer_size = 10
    shuffled = PipelineDataset.from_items(items).shuffle(
        buffer_size, seed=7).materialize()
    for position, value in enumerate(shuffled):
        assert value <= position + buffer_size


def test_prefetch_preserves_order_and_content():
    dataset = PipelineDataset.from_items(range(200)).prefetch(4)
    assert dataset.materialize() == list(range(200))


def test_prefetch_propagates_errors():
    def factory():
        yield 1
        raise RuntimeError("source died")

    dataset = PipelineDataset.from_generator(factory).prefetch(2)
    with pytest.raises(RuntimeError, match="source died"):
        dataset.materialize()


def test_invalid_parameters_rejected():
    dataset = PipelineDataset.from_items([1])
    with pytest.raises(PipelineError):
        dataset.map(lambda x: x, num_parallel_calls=0).materialize()
    with pytest.raises(PipelineError):
        dataset.shuffle(0).materialize()
    with pytest.raises(PipelineError):
        dataset.batch(0).materialize()
    with pytest.raises(PipelineError):
        dataset.prefetch(0).materialize()


def test_composed_pipeline():
    dataset = (PipelineDataset.from_items(range(20))
               .map(lambda x: x + 1, num_parallel_calls=4)
               .cache()
               .batch(5)
               .prefetch(2))
    batches = dataset.materialize()
    assert [item for batch in batches for item in batch] == list(range(1, 21))


@settings(max_examples=30, deadline=None)
@given(items=st.lists(st.integers(), max_size=60),
       buffer_size=st.integers(1, 20), batch=st.integers(1, 7))
def test_shuffle_batch_property(items, buffer_size, batch):
    """Shuffle+batch never loses or duplicates elements."""
    dataset = (PipelineDataset.from_items(items)
               .shuffle(buffer_size, seed=11)
               .batch(batch))
    flattened = [item for group in dataset for item in group]
    assert sorted(flattened) == sorted(items)
