"""Tests for shard writing/reading on the local filesystem."""

import pytest

from repro.errors import CodecError
from repro.pipeline.dataset import PipelineDataset
from repro.pipeline.io import (iter_shard_records, read_shards, shard_sizes,
                               write_shards)


def _payloads(n=10):
    return [f"payload-{i}".encode() * (i + 1) for i in range(n)]


def test_write_and_read_round_trip(tmp_path):
    payloads = _payloads()
    paths = write_shards(payloads, tmp_path, n_shards=3)
    assert len(paths) == 3
    assert all(path.exists() for path in paths)
    restored = read_shards(paths)
    assert sorted(restored) == sorted(payloads)


def test_round_robin_distribution(tmp_path):
    payloads = [b"x"] * 9
    paths = write_shards(payloads, tmp_path, n_shards=3)
    for path in paths:
        assert len(read_shards([path])) == 3


def test_shard_sizes_accounts_framing(tmp_path):
    payloads = [b"abcd"] * 5
    paths = write_shards(payloads, tmp_path, n_shards=1)
    assert shard_sizes(paths) == 5 * (4 + 16)


def test_compressed_shards_round_trip(tmp_path):
    payloads = [b"compress me " * 50] * 8
    for compression in ("GZIP", "ZLIB"):
        paths = write_shards(payloads, tmp_path / compression,
                             n_shards=2, compression=compression)
        assert read_shards(paths) == read_shards(paths)  # deterministic
        assert sorted(read_shards(paths)) == sorted(payloads)
        # Compressed shards are smaller than framed raw payloads.
        raw_size = sum(len(p) + 16 for p in payloads)
        assert shard_sizes(paths) < raw_size


def test_zero_shards_rejected(tmp_path):
    with pytest.raises(CodecError):
        write_shards([b"x"], tmp_path, n_shards=0)


def test_dataset_from_shards(tmp_path):
    payloads = _payloads(12)
    paths = write_shards(payloads, tmp_path, n_shards=4)
    dataset = PipelineDataset.from_record_shards(paths)
    assert sorted(dataset.materialize()) == sorted(payloads)
    # Re-iteration re-reads from disk.
    assert sorted(dataset.materialize()) == sorted(payloads)


def test_iter_is_lazy(tmp_path):
    paths = write_shards(_payloads(100), tmp_path, n_shards=2)
    iterator = iter_shard_records(paths)
    assert next(iterator) is not None  # no full materialisation needed
