"""Tests for the synthetic sweep pipelines (Figs. 7/9/11/13)."""

import pytest

from repro.pipelines.synthetic import (SWEEP_TOTAL_BYTES,
                                       build_read_sweep_pipeline,
                                       build_rms_sweep_pipeline,
                                       sweep_sample_sizes)
from repro.units import GB, MB


def test_sweep_axis_matches_paper():
    assert sweep_sample_sizes() == (20.5, 10.2, 5.1, 2.6, 1.3, 0.64, 0.32,
                                    0.16, 0.08, 0.04, 0.02, 0.01)


def test_total_volume_constant_across_sweep():
    """The paper keeps 15 GB while sample sizes vary."""
    for sample_mb in sweep_sample_sizes():
        pipeline = build_read_sweep_pipeline(sample_mb)
        total = pipeline.source.total_bytes(pipeline.sample_count)
        assert total == pytest.approx(SWEEP_TOTAL_BYTES, rel=0.002)


def test_sample_counts_match_paper_extremes():
    """732 samples at 20.5 MB, ~1.5 M at 0.01 MB (paper Sec. 4.1)."""
    assert build_read_sweep_pipeline(20.5).sample_count == 732
    assert build_read_sweep_pipeline(0.01).sample_count == 1_500_000


def test_read_sweep_has_no_steps():
    pipeline = build_read_sweep_pipeline(1.3)
    assert pipeline.steps == ()
    assert pipeline.strategy_names() == [pipeline.source.name]
    assert pipeline.source.record_format


def test_rms_sweep_implementations():
    numpy_pipe = build_rms_sweep_pipeline(1.3, "numpy")
    native_pipe = build_rms_sweep_pipeline(1.3, "native")
    assert numpy_pipe.step("rms").holds_gil
    assert not native_pipe.step("rms").holds_gil
    # NumPy is ~19x cheaper per byte (Fig. 13 discussion).
    ratio = (native_pipe.step("rms").cpu_seconds
             / numpy_pipe.step("rms").cpu_seconds)
    assert ratio == pytest.approx(19.2, rel=0.05)


def test_rms_cost_scales_with_sample_size():
    small = build_rms_sweep_pipeline(0.5, "numpy").step("rms").cpu_seconds
    large = build_rms_sweep_pipeline(5.0, "numpy").step("rms").cpu_seconds
    assert large == pytest.approx(10 * small, rel=1e-6)


def test_bad_impl_rejected():
    with pytest.raises(ValueError):
        build_rms_sweep_pipeline(1.0, "gpu")
