"""The seven pipeline specs must match the paper's published numbers."""

import pytest

from repro.datasets.catalog import CATALOG
from repro.pipelines.registry import PAPER_PIPELINES, all_pipelines, get_pipeline
from repro.units import GB, MB


def test_registry_has_the_seven_paper_pipelines():
    assert PAPER_PIPELINES == ("CV", "CV2-JPG", "CV2-PNG", "NLP", "NILM",
                               "MP3", "FLAC")
    assert len(all_pipelines()) == 7


def test_unknown_pipeline_rejected():
    with pytest.raises(KeyError, match="unknown pipeline"):
        get_pipeline("VIDEO")


def test_sample_counts_match_table2():
    for name in PAPER_PIPELINES:
        assert get_pipeline(name).sample_count == CATALOG[name].sample_count


def test_source_sizes_match_table2():
    for name in PAPER_PIPELINES:
        pipeline = get_pipeline(name)
        total = pipeline.source.total_bytes(pipeline.sample_count)
        assert total == pytest.approx(CATALOG[name].total_bytes, rel=1e-6)


@pytest.mark.parametrize("name, strategies", [
    ("CV", ["unprocessed", "concatenated", "decoded", "resized",
            "pixel-centered"]),
    ("CV2-JPG", ["unprocessed", "concatenated", "decoded", "resized",
                 "pixel-centered"]),
    ("CV2-PNG", ["unprocessed", "concatenated", "decoded", "resized",
                 "pixel-centered"]),
    ("NLP", ["unprocessed", "concatenated", "decoded", "bpe-encoded",
             "embedded"]),
    ("NILM", ["unprocessed", "decoded", "aggregated"]),
    ("MP3", ["unprocessed", "decoded", "spectrogram-encoded"]),
    ("FLAC", ["unprocessed", "decoded", "spectrogram-encoded"]),
])
def test_strategy_lists_match_fig6_axes(name, strategies):
    assert get_pipeline(name).strategy_names() == strategies


#: (pipeline, representation) -> paper storage consumption (Fig. 6).
_FIG6_STORAGE = [
    ("CV", "decoded", 842.5 * GB),
    ("CV", "resized", 347.3 * GB),
    ("CV", "pixel-centered", 1_390 * GB),
    ("CV2-JPG", "decoded", 65.7 * GB),
    ("CV2-JPG", "resized", 1.4 * GB),
    ("CV2-JPG", "pixel-centered", 5.8 * GB),
    ("CV2-PNG", "decoded", 65.7 * GB),
    ("NLP", "decoded", 594 * MB),
    ("NLP", "bpe-encoded", 647 * MB),
    ("NLP", "embedded", 490.7 * GB),
    ("NILM", "decoded", 262.5 * GB),
    ("NILM", "aggregated", 3.1 * GB),
    ("MP3", "decoded", 3.0 * GB),
    ("MP3", "spectrogram-encoded", 995 * MB),
    ("FLAC", "decoded", 11.6 * GB),
    ("FLAC", "spectrogram-encoded", 11.6 * GB),
]


@pytest.mark.parametrize("name, rep, paper_bytes", _FIG6_STORAGE)
def test_representation_sizes_match_fig6(name, rep, paper_bytes):
    pipeline = get_pipeline(name)
    total = pipeline.representation(rep).total_bytes(pipeline.sample_count)
    assert total == pytest.approx(paper_bytes, rel=1e-3)


def test_cv_random_crop_is_nondeterministic():
    """Random-crop is the paper's only CV step that must stay online."""
    pipeline = get_pipeline("CV")
    crop = pipeline.step("random-crop")
    assert not crop.deterministic
    assert pipeline.max_offline_index() == 4  # up to pixel-centered


def test_nlp_gil_bound_steps():
    """decode (newspaper) and bpe run via py_function -> hold the GIL."""
    pipeline = get_pipeline("NLP")
    assert pipeline.step("decode").holds_gil
    assert pipeline.step("bpe-encode").holds_gil
    assert not pipeline.step("embed").holds_gil


def test_nilm_all_steps_external():
    pipeline = get_pipeline("NILM")
    assert all(step.holds_gil for step in pipeline.steps)


def test_audio_pipelines_have_no_concatenate_step():
    """Concatenation was 'technically not feasible' for audio; NILM's
    source already ships as concatenated binary containers."""
    for name in ("MP3", "FLAC", "NILM"):
        assert "concatenate" not in get_pipeline(name).step_names()


def test_nilm_source_is_container_files():
    pipeline = get_pipeline("NILM")
    assert pipeline.source.n_files == 744
    assert not pipeline.source.record_format


def test_file_per_sample_sources():
    for name in ("CV", "CV2-JPG", "CV2-PNG", "NLP", "MP3", "FLAC"):
        pipeline = get_pipeline(name)
        assert pipeline.source.n_files == pipeline.sample_count


def test_every_step_has_a_real_implementation():
    for pipeline in all_pipelines():
        for step in pipeline.steps:
            assert step.fn is not None, (pipeline.name, step.name)


def test_nlp_embedded_blowup_factor():
    """bpe-encoded -> embedded grows ~64x less 13x... the paper quotes
    the NLP pipeline's 64x growth over the initial dataset."""
    pipeline = get_pipeline("NLP")
    source = pipeline.source.total_bytes(pipeline.sample_count)
    embedded = pipeline.representation("embedded").total_bytes(
        pipeline.sample_count)
    assert embedded / source == pytest.approx(64, rel=0.01)


def test_nilm_shrink_factor():
    """NILM's aggregated strategy shrinks the initial dataset ~12x."""
    pipeline = get_pipeline("NILM")
    source = pipeline.source.total_bytes(pipeline.sample_count)
    aggregated = pipeline.representation("aggregated").total_bytes(
        pipeline.sample_count)
    assert source / aggregated == pytest.approx(12.8, rel=0.02)


def test_greyscale_variants():
    before = get_pipeline("CV+greyscale-before")
    after = get_pipeline("CV+greyscale-after")
    assert before.step_names() == ["concatenate", "decode", "resize",
                                   "greyscale", "pixel-center",
                                   "random-crop"]
    assert after.step_names() == ["concatenate", "decode", "resize",
                                  "pixel-center", "greyscale",
                                  "random-crop"]
    # Fig. 14a: greyscale before centering shrinks the materialised
    # pixel-centered representation 3x (1.39 TB -> 463 GB).
    count = before.sample_count
    assert before.representation("pixel-centered").total_bytes(
        count) == pytest.approx(463 * GB, rel=1e-3)
    assert after.representation("pixel-centered").total_bytes(
        count) == pytest.approx(1_390 * GB, rel=1e-3)
