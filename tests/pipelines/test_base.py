"""Tests for PipelineSpec / Representation / StepSpec / SplitPlan."""

import pytest

from repro.errors import (NonDeterministicSplitError, PipelineError,
                          StepNotFoundError)
from repro.pipelines.base import (EXTERNAL, NATIVE, PipelineSpec,
                                  Representation, StepSpec)


def _tiny_pipeline():
    reps = [
        Representation("raw", 100.0, n_files=10, record_format=False),
        Representation("mid", 400.0),
        Representation("final", 50.0),
    ]
    steps = [
        StepSpec("grow", cpu_seconds=0.001),
        StepSpec("shrink", cpu_seconds=0.002, impl=EXTERNAL),
    ]
    return PipelineSpec("tiny", reps, steps, sample_count=10)


def test_construction_validates_lengths():
    with pytest.raises(PipelineError, match="representations"):
        PipelineSpec("bad", [Representation("a", 1.0)],
                     [StepSpec("s", 0.0)], sample_count=1)


def test_duplicate_step_names_rejected():
    reps = [Representation(str(i), 1.0) for i in range(3)]
    steps = [StepSpec("dup", 0.0), StepSpec("dup", 0.0)]
    with pytest.raises(PipelineError, match="duplicate"):
        PipelineSpec("bad", reps, steps, sample_count=1)


def test_empty_dataset_rejected():
    with pytest.raises(PipelineError):
        PipelineSpec("bad", [Representation("a", 1.0)], [], sample_count=0)


def test_step_impl_validated():
    with pytest.raises(PipelineError, match="impl"):
        StepSpec("s", 0.0, impl="gpu")


def test_negative_cost_rejected():
    with pytest.raises(PipelineError):
        StepSpec("s", -1.0)


def test_step_and_representation_lookup():
    pipeline = _tiny_pipeline()
    assert pipeline.step("grow").cpu_seconds == 0.001
    assert pipeline.representation("mid").bytes_per_sample == 400.0
    with pytest.raises(StepNotFoundError):
        pipeline.step("nope")
    with pytest.raises(StepNotFoundError):
        pipeline.representation("nope")


def test_split_points_and_names():
    pipeline = _tiny_pipeline()
    assert pipeline.strategy_names() == ["raw", "mid", "final"]
    plan = pipeline.split_at("mid")
    assert [s.name for s in plan.offline_steps] == ["grow"]
    assert [s.name for s in plan.online_steps] == ["shrink"]
    assert not plan.is_unprocessed
    assert pipeline.split_at(0).is_unprocessed


def test_split_completeness():
    """Offline + online steps always reassemble the full chain."""
    pipeline = _tiny_pipeline()
    for plan in pipeline.split_points():
        names = ([s.name for s in plan.offline_steps]
                 + [s.name for s in plan.online_steps])
        assert names == pipeline.step_names()


def test_nondeterministic_step_blocks_later_splits():
    reps = [Representation(str(i), 1.0) for i in range(4)]
    steps = [
        StepSpec("a", 0.0),
        StepSpec("augment", 0.0, deterministic=False),
        StepSpec("b", 0.0),
    ]
    pipeline = PipelineSpec("p", reps, steps, sample_count=5)
    assert pipeline.max_offline_index() == 1
    assert pipeline.strategy_names() == ["0", "1"]
    with pytest.raises(NonDeterministicSplitError):
        pipeline.split_at(2)


def test_split_out_of_range():
    with pytest.raises(PipelineError):
        _tiny_pipeline().split_at(99)


def test_with_step_inserted():
    pipeline = _tiny_pipeline()
    new_rep = Representation("greyed", 30.0)
    modified = pipeline.with_step_inserted(
        1, StepSpec("grey", 0.0005), new_rep)
    assert modified.step_names() == ["grow", "grey", "shrink"]
    assert [r.name for r in modified.representations] == [
        "raw", "mid", "greyed", "final"]
    # Original untouched.
    assert pipeline.step_names() == ["grow", "shrink"]


def test_with_representation_override():
    modified = _tiny_pipeline().with_representation("mid",
                                                    bytes_per_sample=999.0)
    assert modified.representation("mid").bytes_per_sample == 999.0
    with pytest.raises(StepNotFoundError):
        _tiny_pipeline().with_representation("nope", bytes_per_sample=1.0)


def test_with_sample_count():
    assert _tiny_pipeline().with_sample_count(3).sample_count == 3


def test_compressed_bytes_per_sample():
    rep = Representation("r", 1000.0, compressibility={"GZIP": 0.8})
    assert rep.compressed_bytes_per_sample("GZIP") == pytest.approx(200.0)
    assert rep.compressed_bytes_per_sample("ZLIB") == pytest.approx(1000.0)
    assert rep.compressed_bytes_per_sample(None) == pytest.approx(1000.0)


def test_total_bytes():
    rep = Representation("r", 10.0)
    assert rep.total_bytes(100) == pytest.approx(1000.0)
