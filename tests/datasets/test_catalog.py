"""Tests for the Table 2 dataset catalog."""

import pytest

from repro.datasets.catalog import (CATALOG, SWEEP_SAMPLE_MB, get_dataset,
                                    synthetic_sweep_spec, table2_frame)
from repro.units import GB, MB


def test_catalog_has_seven_datasets():
    assert len(CATALOG) == 7


#: Paper Table 2, transcribed.
_TABLE2 = [
    ("CV", "ILSVRC2012", 1_300_000, 146.90, 0.1130, "JPG"),
    ("CV2-JPG", "Cube++ JPG", 4_890, 2.54, 0.5194, "JPG"),
    ("CV2-PNG", "Cube++ PNG", 4_890, 85.17, 17.4171, "PNG"),
    ("NLP", "OpenWebText", 181_000, 7.71, 0.0426, "TXT"),
    ("NILM", "CREAM", 268_000, 39.56, 0.1476, "HDF5"),
    ("MP3", "Commonvoice (en)", 13_000, 0.25, 0.0192, "MP3"),
    ("FLAC", "Librispeech", 29_000, 6.61, 0.2279, "FLAC"),
]


@pytest.mark.parametrize(
    "pipeline, name, count, size_gb, avg_mb, fmt", _TABLE2)
def test_table2_rows(pipeline, name, count, size_gb, avg_mb, fmt):
    spec = get_dataset(pipeline)
    assert spec.name == name
    assert spec.sample_count == count
    assert spec.total_bytes / GB == pytest.approx(size_gb, rel=1e-6)
    assert spec.avg_sample_mb == pytest.approx(avg_mb, rel=0.01)
    assert spec.source_format == fmt


def test_unknown_pipeline_rejected():
    with pytest.raises(KeyError):
        get_dataset("VIDEO")


def test_table2_frame_renders():
    frame = table2_frame()
    assert len(frame) == 7
    assert "Sample Count" in frame.columns
    markdown = frame.to_markdown()
    assert "ILSVRC2012" in markdown
    assert "Librispeech" in markdown


def test_synthetic_sweep_spec_counts():
    spec = synthetic_sweep_spec(20.5)
    assert spec.sample_count == 732
    spec = synthetic_sweep_spec(0.01)
    assert spec.sample_count == 1_500_000


def test_sweep_points_are_halvings():
    """The paper's sweep roughly halves at every point."""
    for larger, smaller in zip(SWEEP_SAMPLE_MB, SWEEP_SAMPLE_MB[1:]):
        assert larger / smaller == pytest.approx(2.0, rel=0.3)
