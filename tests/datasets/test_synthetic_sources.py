"""Tests for the synthetic sample generators."""

import numpy as np
import pytest

from repro.datasets.synthetic import (SyntheticSource, smooth_image, prose,
                                      supported_pipelines)
from repro.errors import PipelineError
from repro.formats import codecs


def test_supported_pipelines_cover_the_seven():
    supported = supported_pipelines()
    for name in ("CV", "CV2-JPG", "CV2-PNG", "NLP", "NILM", "MP3", "FLAC"):
        assert name in supported


def test_generation_is_deterministic():
    first = list(SyntheticSource("CV", 3, seed=9).generate())
    second = list(SyntheticSource("CV", 3, seed=9).generate())
    assert first == second


def test_different_seeds_differ():
    a = list(SyntheticSource("NLP", 2, seed=1).generate())
    b = list(SyntheticSource("NLP", 2, seed=2).generate())
    assert a != b


def test_samples_within_a_source_differ():
    samples = list(SyntheticSource("MP3", 4, seed=0).generate())
    assert len(set(samples)) == 4


def test_unknown_pipeline_rejected():
    with pytest.raises(PipelineError):
        SyntheticSource("VIDEO", 1)


def test_bad_count_rejected():
    with pytest.raises(PipelineError):
        SyntheticSource("CV", 0)


@pytest.mark.parametrize("pipeline, decoder", [
    ("CV", codecs.decode_jpg),
    ("CV2-JPG", codecs.decode_jpg),
    ("CV2-PNG", codecs.decode_png),
    ("NILM", codecs.decode_hdf5),
    ("MP3", codecs.decode_mp3),
    ("FLAC", codecs.decode_flac),
])
def test_payloads_decode_with_their_codec(pipeline, decoder):
    payload = next(SyntheticSource(pipeline, 1, seed=3).generate())
    decoded = decoder(payload)
    assert decoded.size > 0


def test_nlp_payload_is_html_with_recoverable_text():
    payload = next(SyntheticSource("NLP", 1, seed=4).generate())
    assert payload.startswith(b"<!DOCTYPE html>")
    text = codecs.decode_html(payload)
    assert len(text.split()) > 50


def test_cv2_png_payload_is_16bit():
    payload = next(SyntheticSource("CV2-PNG", 1, seed=5).generate())
    assert codecs.decode_png(payload).dtype == np.uint16


def test_nilm_window_period_compatible():
    payload = next(SyntheticSource("NILM", 1, seed=6).generate())
    window = codecs.decode_hdf5(payload)
    assert window.shape[0] == 2
    assert window.shape[1] % 128 == 0


def test_smooth_image_shape_and_range():
    image = smooth_image(np.random.default_rng(0), 20, 30, 3)
    assert image.shape == (20, 30, 3)
    assert image.dtype == np.uint8


def test_prose_is_wordy():
    text = prose(np.random.default_rng(1), n_words=50)
    assert len(text.split()) == 50
