"""Tests for the audio operators (waveform synth, STFT, mel bank)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PipelineError
from repro.ops import audio as ops


class TestSynthWaveform:
    def test_shape_and_dtype(self):
        waveform = ops.synth_waveform(0.5, 16_000, np.random.default_rng(0))
        assert waveform.shape == (8_000,)
        assert waveform.dtype == np.int16

    def test_amplitude_bounded(self):
        waveform = ops.synth_waveform(0.2, 16_000, np.random.default_rng(1))
        assert np.abs(waveform).max() <= np.iinfo(np.int16).max

    def test_has_harmonic_structure(self):
        """The dominant frequency must sit in the speech F0 band."""
        rate = 16_000
        waveform = ops.synth_waveform(1.0, rate, np.random.default_rng(2))
        spectrum = np.abs(np.fft.rfft(waveform.astype(np.float64)))
        dominant_hz = np.argmax(spectrum[1:]) + 1  # skip DC
        assert 60 <= dominant_hz <= 1600  # F0 or a strong harmonic

    def test_bad_args_rejected(self):
        with pytest.raises(PipelineError):
            ops.synth_waveform(0.0, 16_000, np.random.default_rng(0))


class TestFrameCount:
    def test_matches_paper_formula(self):
        """(l - 20 ms + 10 ms) / 10 ms frames for an l-second clip."""
        rate = 16_000
        n = int(2.0 * rate)
        assert ops.frame_count(n, rate) == 199  # (2000-20+10)/10 = 199

    def test_too_short_yields_zero(self):
        assert ops.frame_count(10, 16_000) == 0


class TestSTFT:
    def test_shape(self):
        rate = 16_000
        waveform = ops.synth_waveform(0.5, rate, np.random.default_rng(3))
        magnitudes = ops.stft_magnitude(waveform, rate)
        window = int(0.020 * rate)
        assert magnitudes.shape == (ops.frame_count(waveform.size, rate),
                                    window // 2 + 1)
        assert magnitudes.dtype == np.float32

    def test_pure_tone_peaks_at_its_bin(self):
        rate = 16_000
        t = np.arange(rate, dtype=np.float64) / rate
        tone_hz = 1_000
        waveform = (10_000 * np.sin(2 * np.pi * tone_hz * t)).astype(np.int16)
        magnitudes = ops.stft_magnitude(waveform, rate)
        window = int(0.020 * rate)
        peak_bin = int(np.argmax(magnitudes.mean(axis=0)))
        expected_bin = round(tone_hz * window / rate)
        assert abs(peak_bin - expected_bin) <= 1

    def test_non_mono_rejected(self):
        with pytest.raises(PipelineError):
            ops.stft_magnitude(np.zeros((2, 100), dtype=np.int16), 16_000)


class TestMelScale:
    def test_round_trip(self):
        freqs = np.array([100.0, 440.0, 4000.0])
        np.testing.assert_allclose(ops.mel_to_hz(ops.hz_to_mel(freqs)),
                                   freqs, rtol=1e-9)

    def test_monotonic(self):
        mels = ops.hz_to_mel(np.linspace(0, 8000, 50))
        assert (np.diff(mels) > 0).all()


class TestMelFilterbank:
    def test_shape_and_coverage(self):
        bank = ops.mel_filterbank(80, 161, 16_000)
        assert bank.shape == (161, 80)
        assert bank.min() >= 0.0
        # Every mel bin must collect energy from somewhere.
        assert (bank.sum(axis=0) > 0).all()

    def test_bad_bins_rejected(self):
        with pytest.raises(PipelineError):
            ops.mel_filterbank(0, 100, 16_000)


class TestSpectrogramEncode:
    def test_output_is_frames_by_80(self):
        """The paper's spectrogram-encoded tensor: frames x 80 float32."""
        rate = 16_000
        waveform = ops.synth_waveform(0.6, rate, np.random.default_rng(4))
        spec = ops.spectrogram_encode(waveform, rate)
        assert spec.shape == (ops.frame_count(waveform.size, rate), 80)
        assert spec.dtype == np.float32

    def test_nonnegative(self):
        rate = 16_000
        waveform = ops.synth_waveform(0.3, rate, np.random.default_rng(5))
        assert ops.spectrogram_encode(waveform, rate).min() >= 0.0

    def test_louder_signal_more_energy(self):
        rate = 16_000
        quiet = (ops.synth_waveform(0.3, rate, np.random.default_rng(6))
                 // 8).astype(np.int16)
        loud = ops.synth_waveform(0.3, rate, np.random.default_rng(6))
        assert (ops.spectrogram_encode(loud, rate).sum()
                > ops.spectrogram_encode(quiet, rate).sum())

    @settings(max_examples=15, deadline=None)
    @given(duration_ms=st.integers(40, 400))
    def test_frames_scale_with_duration(self, duration_ms):
        rate = 8_000
        waveform = ops.synth_waveform(duration_ms / 1000.0, rate,
                                      np.random.default_rng(7))
        spec = ops.spectrogram_encode(waveform, rate)
        assert spec.shape[0] == ops.frame_count(waveform.size, rate)
