"""Tests for the NLP text operators (extraction, BPE, embedding)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ops import text as ops

CORPUS = [
    "the training pipeline reads the dataset",
    "the dataset feeds the training process",
    "preprocessing the dataset takes time and storage",
    "pipelines trade storage for throughput",
]


@pytest.fixture(scope="module")
def vocab():
    return ops.train_bpe(CORPUS, n_merges=80)


class TestExtractText:
    def test_strips_tags(self):
        assert ops.extract_text("<p>hello <b>world</b></p>") == "hello world"

    def test_strips_scripts_entirely(self):
        html = "<script>var x = 'secret';</script><p>visible</p>"
        extracted = ops.extract_text(html)
        assert "secret" not in extracted
        assert "visible" in extracted

    def test_strips_styles(self):
        html = "<style>.x { color: red; }</style>content"
        assert ops.extract_text(html) == "content"

    def test_collapses_whitespace(self):
        assert ops.extract_text("a   \n\n  b") == "a b"


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert ops.tokenize_words("The Quick fox!") == ["the", "quick", "fox"]

    def test_keeps_digits_and_apostrophes(self):
        assert ops.tokenize_words("it's 42") == ["it's", "42"]


class TestBPE:
    def test_training_learns_merges(self, vocab):
        assert len(vocab.merges) > 0
        assert vocab.vocab_size > 30

    def test_frequent_words_become_few_tokens(self, vocab):
        ids_frequent = ops.bpe_encode("the", vocab)
        ids_rare = ops.bpe_encode("xylophone", vocab)
        assert len(ids_frequent) < len(ids_rare)

    def test_round_trip(self, vocab):
        text = "the training pipeline reads the dataset"
        decoded = ops.bpe_decode(ops.bpe_encode(text, vocab), vocab)
        assert decoded == text

    def test_round_trip_unseen_words(self, vocab):
        decoded = ops.bpe_decode(ops.bpe_encode("zebra quagga", vocab), vocab)
        assert decoded == "zebra quagga"

    def test_encode_dtype_is_int32(self, vocab):
        """The paper: each word is encoded into an int32 via BPE."""
        assert ops.bpe_encode("storage", vocab).dtype == np.int32

    def test_empty_text(self, vocab):
        assert ops.bpe_encode("", vocab).size == 0
        assert ops.bpe_decode(np.array([], dtype=np.int32), vocab) == ""

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from(
        "the dataset training pipeline storage throughput epoch".split()),
        min_size=1, max_size=12))
    def test_round_trip_property(self, vocab, words):
        text = " ".join(words)
        assert ops.bpe_decode(ops.bpe_encode(text, vocab), vocab) == text


class TestEmbedding:
    def test_shape_is_n_by_768(self, vocab):
        """The paper's word2vec output: an n x 768 float32 tensor."""
        table = ops.EmbeddingTable()
        ids = ops.bpe_encode("storage trade offs", vocab)
        embedded = table.embed(ids)
        assert embedded.shape == (len(ids), 768)
        assert embedded.dtype == np.float32

    def test_deterministic_per_id(self):
        table_a = ops.EmbeddingTable(seed=3)
        table_b = ops.EmbeddingTable(seed=3)
        np.testing.assert_array_equal(table_a.vector(42), table_b.vector(42))

    def test_different_ids_differ(self):
        table = ops.EmbeddingTable()
        assert not np.array_equal(table.vector(1), table.vector(2))

    def test_empty_sequence(self):
        assert ops.EmbeddingTable(dim=16).embed(
            np.array([], dtype=np.int32)).shape == (0, 16)

    def test_storage_blowup_matches_paper_magnitude(self, vocab):
        """int32 token -> 768 float32: the 64x-class blow-up behind the
        embedded strategy's 491 GB."""
        ids = ops.bpe_encode("the dataset feeds the training process", vocab)
        embedded = ops.EmbeddingTable().embed(ids)
        assert embedded.nbytes == ids.size * 768 * 4
        assert embedded.nbytes > 500 * ids.nbytes

    def test_bad_dim_rejected(self):
        from repro.errors import PipelineError
        with pytest.raises(PipelineError):
            ops.EmbeddingTable(dim=0)
