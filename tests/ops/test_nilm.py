"""Tests for the NILM operators (windows, power features, CUSUM)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PipelineError
from repro.ops import nilm as ops


def _window(seed=0, n=2_560):
    return ops.synth_mains_window(np.random.default_rng(seed), n_samples=n)


class TestSynthWindow:
    def test_shape_and_dtype(self):
        window = _window()
        assert window.shape == (2, 2_560)
        assert window.dtype == np.float64

    def test_voltage_is_mains_sine(self):
        window = ops.synth_mains_window(np.random.default_rng(1))
        voltage = window[0]
        # 230 V RMS mains: amplitude 325 V.
        assert np.abs(voltage).max() == pytest.approx(325.0, rel=0.01)

    def test_full_scale_window_matches_paper_shape(self):
        window = ops.synth_mains_window(np.random.default_rng(2))
        assert window.shape == (2, 64_000)  # 10 s at 6.4 kHz


class TestSliceWindows:
    def test_slices_and_truncates(self):
        signal = np.zeros((2, 1_050))
        windows = ops.slice_windows(signal, window_samples=256)
        assert windows.shape == (4, 2, 256)

    def test_bad_shape_rejected(self):
        with pytest.raises(PipelineError):
            ops.slice_windows(np.zeros((3, 100)))


class TestFeatures:
    def test_rms_of_constant(self):
        assert ops.rms(np.full(256, 3.0), period=128) == pytest.approx(
            [3.0, 3.0])

    def test_rms_of_sine_is_amplitude_over_sqrt2(self):
        t = np.arange(1280) / 6_400
        sine = 10.0 * np.sin(2 * np.pi * 50 * t)
        values = ops.rms(sine, period=128)
        np.testing.assert_allclose(values, 10 / np.sqrt(2), rtol=1e-2)

    def test_period_mismatch_rejected(self):
        with pytest.raises(PipelineError):
            ops.rms(np.zeros(100), period=128)

    def test_active_power_resistive_load(self):
        """In-phase voltage and current: P = Vrms * Irms, Q ~ 0."""
        t = np.arange(1280) / 6_400
        voltage = 325 * np.sin(2 * np.pi * 50 * t)
        current = 5 * np.sin(2 * np.pi * 50 * t)
        p = ops.active_power(voltage, current)
        q = ops.reactive_power(voltage, current)
        np.testing.assert_allclose(p, 325 * 5 / 2, rtol=1e-2)
        assert np.abs(q).max() < 0.15 * np.abs(p).max()

    def test_reactive_power_quadrature_load(self):
        """90-degree phase shift: all power is reactive."""
        t = np.arange(1280) / 6_400
        voltage = 325 * np.sin(2 * np.pi * 50 * t)
        current = 5 * np.cos(2 * np.pi * 50 * t)
        p = ops.active_power(voltage, current)
        q = ops.reactive_power(voltage, current)
        assert np.abs(p).max() < 0.15 * q.max()
        np.testing.assert_allclose(q, 325 * 5 / 2, rtol=0.05)

    def test_reactive_power_never_nan(self):
        window = _window(3)
        q = ops.reactive_power(window[0], window[1])
        assert np.isfinite(q).all()

    def test_cusum_is_cumulative(self):
        series = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(ops.cusum(series), [1.0, 3.0, 6.0])


class TestAggregateWindow:
    def test_output_shape_matches_paper(self):
        """2 x 64000 float64 -> 3 x 500 float64 with period 128."""
        window = ops.synth_mains_window(np.random.default_rng(4))
        features = ops.aggregate_window(window)
        assert features.shape == (3, 500)
        assert features.dtype == np.float64

    def test_storage_reduction_matches_paper_factor(self):
        """The aggregated step shrinks NILM data by ~85x per window
        (262.5 GB -> 3.1 GB across the dataset)."""
        window = ops.synth_mains_window(np.random.default_rng(5))
        features = ops.aggregate_window(window)
        assert window.nbytes / features.nbytes == pytest.approx(85.3, rel=0.01)

    def test_row_semantics(self):
        window = _window(6)
        features = ops.aggregate_window(window)
        np.testing.assert_allclose(
            features[1], ops.rms(window[1], ops.PERIOD))
        np.testing.assert_allclose(features[2], np.cumsum(features[1]))

    def test_load_step_visible_in_cusum_slope(self):
        """An appliance switching mid-window bends the CUSUM curve."""
        rng = np.random.default_rng(11)
        window = ops.synth_mains_window(rng)
        features = ops.aggregate_window(window)
        rms_row = features[1]
        # RMS is positive; CUSUM is strictly increasing.
        assert (rms_row > 0).all()
        assert (np.diff(features[2]) > 0).all()

    def test_bad_window_rejected(self):
        with pytest.raises(PipelineError):
            ops.aggregate_window(np.zeros((3, 128)))


@settings(max_examples=20, deadline=None)
@given(amps=st.floats(0.5, 50.0), periods=st.sampled_from([64, 128, 256]))
def test_rms_scales_linearly_with_amplitude(amps, periods):
    t = np.arange(periods * 4) / 6_400
    base = np.sin(2 * np.pi * 50 * t)
    np.testing.assert_allclose(ops.rms(amps * base, periods),
                               amps * ops.rms(base, periods), rtol=1e-9)
