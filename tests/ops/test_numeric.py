"""Tests for the Fig. 13 RMS implementation pair."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import PipelineError
from repro.ops.numeric import (DEFAULT_PERIOD, rms_framework, rms_vectorized)


def test_vectorized_known_values():
    series = np.concatenate([np.full(500, 2.0), np.full(500, 4.0)])
    np.testing.assert_allclose(rms_vectorized(series), [2.0, 4.0])


def test_framework_known_values():
    series = np.concatenate([np.full(500, 2.0), np.full(500, 4.0)])
    np.testing.assert_allclose(rms_framework(series), [2.0, 4.0])


def test_default_period_matches_paper():
    """The paper applies RMS with a period of 500."""
    assert DEFAULT_PERIOD == 500


def test_implementations_agree_exactly():
    """PRESTO's Fig. 13 advice only holds if both implementations are
    interchangeable: they must agree to float precision."""
    rng = np.random.default_rng(0)
    series = rng.standard_normal(500 * 64)
    np.testing.assert_allclose(rms_vectorized(series),
                               rms_framework(series), rtol=1e-12)


def test_indivisible_length_rejected():
    for fn in (rms_vectorized, rms_framework):
        with pytest.raises(PipelineError):
            fn(np.zeros(501))


def test_non_1d_rejected():
    for fn in (rms_vectorized, rms_framework):
        with pytest.raises(PipelineError):
            fn(np.zeros((10, 50)))


def test_bad_period_rejected():
    with pytest.raises(PipelineError):
        rms_vectorized(np.zeros(500), period=0)


@settings(max_examples=40, deadline=None)
@given(arrays(dtype=np.float64, shape=st.integers(1, 8).map(lambda k: 100 * k),
              elements=st.floats(-1e6, 1e6)))
def test_agreement_property(series):
    np.testing.assert_allclose(rms_vectorized(series, period=100),
                               rms_framework(series, period=100),
                               rtol=1e-9, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(arrays(dtype=np.float64, shape=st.just(1000),
              elements=st.floats(-1e3, 1e3)))
def test_rms_bounds_property(series):
    """Each RMS value lies between 0 and the max |value| of its segment."""
    values = rms_vectorized(series, period=100)
    segments = series.reshape(-1, 100)
    assert (values >= 0).all()
    assert (values <= np.abs(segments).max(axis=1) + 1e-12).all()
