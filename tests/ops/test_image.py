"""Tests for the CV image operators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PipelineError
from repro.ops import image as ops


def _image(h=10, w=12, c=3, dtype=np.uint8, seed=0):
    rng = np.random.default_rng(seed)
    info = np.iinfo(dtype)
    return rng.integers(0, info.max, size=(h, w, c)).astype(dtype)


class TestResize:
    def test_shape_and_dtype(self):
        resized = ops.resize_bilinear(_image(), 5, 7)
        assert resized.shape == (5, 7, 3)
        assert resized.dtype == np.uint8

    def test_identity_resize_preserves_pixels(self):
        image = _image(6, 6)
        np.testing.assert_array_equal(
            ops.resize_bilinear(image, 6, 6), image)

    def test_constant_image_stays_constant(self):
        image = np.full((9, 9, 3), 77, dtype=np.uint8)
        resized = ops.resize_bilinear(image, 3, 15)
        assert (resized == 77).all()

    def test_upscale_interpolates_between_values(self):
        image = np.zeros((1, 2, 1), dtype=np.uint8)
        image[0, 1, 0] = 100
        resized = ops.resize_bilinear(image, 1, 4)
        values = resized[0, :, 0].tolist()
        assert values[0] <= values[1] <= values[2] <= values[3]

    def test_bad_target_rejected(self):
        with pytest.raises(PipelineError):
            ops.resize_bilinear(_image(), 0, 5)

    def test_non_hwc_rejected(self):
        with pytest.raises(PipelineError):
            ops.resize_bilinear(np.zeros((5, 5)), 2, 2)

    @settings(max_examples=30, deadline=None)
    @given(h=st.integers(1, 20), w=st.integers(1, 20),
           th=st.integers(1, 30), tw=st.integers(1, 30))
    def test_output_range_bounded_by_input_range(self, h, w, th, tw):
        image = _image(h, w)
        resized = ops.resize_bilinear(image, th, tw)
        assert resized.min() >= image.min()
        assert resized.max() <= image.max()


class TestPixelCenter:
    def test_maps_to_minus_one_one(self):
        image = _image()
        centred = ops.pixel_center(image)
        assert centred.dtype == np.float32
        assert centred.min() >= -1.0
        assert centred.max() <= 1.0

    def test_midpoint_maps_to_zero(self):
        image = np.full((2, 2, 3), 128, dtype=np.uint8)
        assert ops.pixel_center(image) == pytest.approx(0.0)

    def test_quadruples_storage(self):
        """uint8 -> float32: the 4x blow-up behind the paper's
        pixel-centered strategy losing to resized (Sec. 4.1 obs. 2)."""
        image = _image()
        assert ops.pixel_center(image).nbytes == 4 * image.nbytes

    def test_float_input_rejected(self):
        with pytest.raises(PipelineError):
            ops.pixel_center(np.zeros((2, 2, 3), dtype=np.float32))


class TestRandomCrop:
    def test_shape(self):
        cropped = ops.random_crop(_image(10, 10), 4, 6,
                                  np.random.default_rng(0))
        assert cropped.shape == (4, 6, 3)

    def test_is_a_window_of_the_source(self):
        image = np.arange(100, dtype=np.uint8).reshape(10, 10, 1)
        cropped = ops.random_crop(image, 3, 3, np.random.default_rng(1))
        # Every cropped row must appear contiguously in the image.
        first = int(cropped[0, 0, 0])
        row, col = divmod(first, 10)
        np.testing.assert_array_equal(
            cropped, image[row:row + 3, col:col + 3])

    def test_nondeterministic_across_draws(self):
        image = _image(50, 50)
        rng = np.random.default_rng(2)
        crops = {ops.random_crop(image, 8, 8, rng).tobytes()
                 for _ in range(10)}
        assert len(crops) > 1

    def test_oversized_window_rejected(self):
        with pytest.raises(PipelineError):
            ops.random_crop(_image(4, 4), 8, 8, np.random.default_rng(0))


class TestGreyscale:
    def test_single_channel_output(self):
        grey = ops.greyscale(_image())
        assert grey.shape == (10, 12, 1)
        assert grey.dtype == np.uint8

    def test_cuts_storage_by_three(self):
        """The Sec. 4.6 selling point of the greyscale insertion."""
        image = _image()
        assert ops.greyscale(image).nbytes * 3 == image.nbytes

    def test_grey_input_passthrough(self):
        grey = _image(c=1)
        np.testing.assert_array_equal(ops.greyscale(grey), grey)

    def test_luma_weights(self):
        pure_green = np.zeros((1, 1, 3), dtype=np.uint8)
        pure_green[..., 1] = 255
        assert ops.greyscale(pure_green)[0, 0, 0] == round(0.587 * 255)


class TestCenterCrop:
    def test_center_window(self):
        image = np.arange(25, dtype=np.uint8).reshape(5, 5, 1)
        cropped = ops.center_crop(image, 3, 3)
        np.testing.assert_array_equal(cropped, image[1:4, 1:4])

    def test_deterministic(self):
        image = _image(9, 9)
        first = ops.center_crop(image, 4, 4)
        second = ops.center_crop(image, 4, 4)
        np.testing.assert_array_equal(first, second)
