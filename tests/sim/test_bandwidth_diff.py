"""Differential tests: heap link vs the historical O(n) rescan link.

``_ReferenceSharedBandwidth`` is the pre-optimization implementation,
kept verbatim in test code as the executable specification of max-min
fair sharing.  The property test drives both implementations through
identical random arrival schedules and asserts matching completion
times, completion order and byte accounting.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.bandwidth import SharedBandwidth
from repro.sim.events import Event, Simulation
from repro.units import GB, MB

_EPSILON_BYTES = 1e-6


class _RefTransfer:
    __slots__ = ("event", "remaining")

    def __init__(self, event, remaining):
        self.event = event
        self.remaining = remaining


class _ReferenceSharedBandwidth:
    """The historical O(n)-rescan implementation (executable spec)."""

    def __init__(self, sim, aggregate_bw, per_stream_bw=None, name="link"):
        self.sim = sim
        self.name = name
        self.aggregate_bw = float(aggregate_bw)
        self.per_stream_bw = float(per_stream_bw or aggregate_bw)
        self._active = []
        self._last_update = 0.0
        self._version = 0
        self.bytes_moved = 0.0
        self.total_transfers = 0
        self.peak_streams = 0

    @property
    def active_streams(self):
        return len(self._active)

    def stream_rate(self, n_active=None):
        n = self.active_streams if n_active is None else n_active
        if n <= 0:
            return 0.0
        return min(self.per_stream_bw, self.aggregate_bw / n)

    def transfer(self, nbytes):
        event = Event(self.sim)
        self.total_transfers += 1
        if nbytes <= _EPSILON_BYTES:
            return event.succeed()
        self._advance()
        self._active.append(_RefTransfer(event, float(nbytes)))
        self.peak_streams = max(self.peak_streams, len(self._active))
        self._reschedule()
        return event

    def _advance(self):
        elapsed = self.sim.now - self._last_update
        self._last_update = self.sim.now
        if elapsed <= 0 or not self._active:
            return
        rate = self.stream_rate()
        progress = elapsed * rate
        for item in self._active:
            step = min(progress, item.remaining)
            item.remaining -= step
            self.bytes_moved += step

    def _reschedule(self):
        self._version += 1
        if not self._active:
            return
        version = self._version
        rate = self.stream_rate()
        shortest = min(item.remaining for item in self._active)
        delay = max(shortest, 0.0) / rate
        wake = self.sim.timeout(delay)
        wake.add_callback(lambda _event: self._on_wake(version))

    def _on_wake(self, version):
        if version != self._version:
            return
        self._advance()
        if not self._active:
            return
        shortest = min(item.remaining for item in self._active)
        threshold = shortest + _EPSILON_BYTES
        finished = [t for t in self._active if t.remaining <= threshold]
        finished_ids = {id(t) for t in finished}
        self._active = [t for t in self._active
                        if id(t) not in finished_ids]
        for item in finished:
            self.bytes_moved += item.remaining
            item.event.succeed()
        self._reschedule()


def _run_schedule(link_cls, schedule, aggregate, per_stream):
    """Run an arrival schedule; returns per-transfer completion times."""
    sim = Simulation()
    link = link_cls(sim, aggregate, per_stream)
    completions = {}

    def stream(index, arrival, sizes):
        if arrival > 0:
            yield sim.timeout(arrival)
        for step, size in enumerate(sizes):
            yield link.transfer(size)
            completions[(index, step)] = sim.now

    for index, (arrival, sizes) in enumerate(schedule):
        sim.process(stream(index, arrival, sizes), name=f"s{index}")
    sim.run()
    return completions, link


# A schedule: streams of (arrival_time, [transfer sizes]).  Sizes reach
# tens of GB so the progress integral leaves the regime where absolute
# and relative float error coincide (the serve-at-scale workloads).
_SCHEDULES = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=30.0),
        st.lists(st.floats(min_value=1.0, max_value=20 * GB),
                 min_size=1, max_size=8),
    ),
    min_size=1, max_size=16,
)


@settings(deadline=None, max_examples=120, derandomize=True)
@given(
    schedule=_SCHEDULES,
    aggregate=st.floats(min_value=50 * MB, max_value=2000 * MB),
    per_stream=st.floats(min_value=10 * MB, max_value=500 * MB),
)
def test_heap_link_matches_reference(schedule, aggregate, per_stream):
    """The O(log n) link reproduces the O(n) link's completion times
    and byte accounting on arbitrary arrival schedules."""
    new_times, new_link = _run_schedule(SharedBandwidth, schedule,
                                        aggregate, per_stream)
    ref_times, ref_link = _run_schedule(_ReferenceSharedBandwidth,
                                        schedule, aggregate, per_stream)
    assert new_times.keys() == ref_times.keys()
    for key, expected in ref_times.items():
        assert new_times[key] == pytest.approx(expected, rel=1e-9,
                                               abs=1e-9), key
    assert new_link.bytes_moved == pytest.approx(ref_link.bytes_moved,
                                                 rel=1e-9)
    assert new_link.total_transfers == ref_link.total_transfers
    assert new_link.peak_streams == ref_link.peak_streams


@settings(deadline=None, max_examples=60, derandomize=True)
@given(
    sizes=st.lists(st.floats(min_value=1.0, max_value=500 * MB),
                   min_size=1, max_size=8),
    aggregate=st.floats(min_value=50 * MB, max_value=2000 * MB),
)
def test_heap_link_matches_reference_simultaneous(sizes, aggregate):
    """Simultaneous admissions (the barrier pattern every epoch uses)."""
    schedule = [(0.0, [size]) for size in sizes]
    new_times, _ = _run_schedule(SharedBandwidth, schedule, aggregate, None)
    ref_times, _ = _run_schedule(_ReferenceSharedBandwidth, schedule,
                                 aggregate, None)
    for key, expected in ref_times.items():
        assert new_times[key] == pytest.approx(expected, rel=1e-9), key
