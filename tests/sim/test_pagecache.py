"""Tests for the LRU page cache."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import StorageError
from repro.sim.pagecache import PageCache


def test_insert_and_lookup():
    cache = PageCache(100)
    assert not cache.lookup("a")
    cache.insert("a", 40)
    assert cache.lookup("a")
    assert cache.used_bytes == 40
    assert cache.hits == 1
    assert cache.misses == 1


def test_eviction_is_lru():
    cache = PageCache(100)
    cache.insert("a", 40)
    cache.insert("b", 40)
    cache.lookup("a")          # refresh a; b is now least recent
    cache.insert("c", 40)      # evicts b
    assert "a" in cache
    assert "b" not in cache
    assert "c" in cache
    assert cache.evictions == 1


def test_oversized_object_not_admitted():
    cache = PageCache(100)
    cache.insert("huge", 200)
    assert len(cache) == 0
    assert cache.used_bytes == 0


def test_reinsert_updates_size():
    cache = PageCache(100)
    cache.insert("a", 30)
    cache.insert("a", 50)
    assert cache.used_bytes == 50
    assert len(cache) == 1


def test_drop_clears_contents_keeps_stats():
    cache = PageCache(100)
    cache.insert("a", 10)
    cache.lookup("a")
    cache.drop()
    assert len(cache) == 0
    assert cache.hits == 1
    cache.reset_stats()
    assert cache.hits == 0


def test_negative_inputs_rejected():
    with pytest.raises(StorageError):
        PageCache(-1)
    cache = PageCache(10)
    with pytest.raises(StorageError):
        cache.insert("a", -5)


def test_scan_thrashing_no_second_epoch_hits():
    """A dataset slightly larger than the cache gets zero re-read hits.

    This is the mechanism behind paper Sec. 4.2 obs. 1: strategies whose
    storage consumption exceeds RAM see no caching benefit at all.
    """
    cache = PageCache(100)
    chunks = [(f"chunk-{i}", 10) for i in range(11)]  # 110 bytes total
    for key, size in chunks:
        assert not cache.lookup(key)
        cache.insert(key, size)
    # Epoch 2 re-reads sequentially, inserting on every miss (as the
    # kernel does): each miss evicts exactly the chunk needed next.
    hits = 0
    for key, size in chunks:
        if cache.lookup(key):
            hits += 1
        else:
            cache.insert(key, size)
    assert hits == 0


def test_fitting_dataset_hits_fully_on_second_epoch():
    cache = PageCache(100)
    chunks = [(f"chunk-{i}", 10) for i in range(10)]  # exactly fits
    for key, size in chunks:
        cache.lookup(key)
        cache.insert(key, size)
    hits = sum(cache.lookup(key) for key, _ in chunks)
    assert hits == 10
    assert cache.hit_rate == pytest.approx(0.5)


@given(st.lists(st.tuples(st.integers(0, 30), st.floats(1.0, 50.0)),
                max_size=200))
def test_invariants_hold_under_random_workload(operations):
    """Used bytes equals the sum of live entries and never exceeds capacity."""
    cache = PageCache(120)
    live = {}
    for key, size in operations:
        cache.lookup(key)
        cache.insert(key, size)
        live[key] = size
    assert cache.used_bytes <= cache.capacity_bytes
    total_live = sum(cache._entries.values())
    assert cache.used_bytes == pytest.approx(total_live)
    # Every cached entry must have the size of its most recent insert.
    for key, size in cache._entries.items():
        assert live[key] == pytest.approx(size)
