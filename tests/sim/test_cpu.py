"""Tests for the Machine model (cores, GIL, dispatch)."""

import pytest

from repro.sim.cpu import Machine
from repro.sim.events import Simulation, all_of
from repro.units import GB


def test_native_work_scales_with_cores():
    def run(threads):
        sim = Simulation()
        machine = Machine(sim, cores=8)

        def worker():
            for _ in range(4):
                yield from machine.compute_native(1.0)

        def main():
            yield all_of(sim, [sim.process(worker())
                               for _ in range(threads)])

        sim.run_process(main())
        return sim.now

    assert run(1) == pytest.approx(4.0)
    assert run(8) == pytest.approx(4.0)   # 8 cores absorb 8 threads
    assert run(16) == pytest.approx(8.0)  # oversubscription queues


def test_external_work_serializes_on_gil():
    def run(threads, items=8):
        sim = Simulation()
        machine = Machine(sim, cores=8, gil_convoy=0.0)
        per_thread = items // threads

        def worker():
            for _ in range(per_thread):
                yield from machine.compute_external(1.0)

        def main():
            yield all_of(sim, [sim.process(worker())
                               for _ in range(threads)])

        sim.run_process(main())
        return sim.now

    assert run(1) == pytest.approx(8.0)
    assert run(8) == pytest.approx(8.0)  # no speedup whatsoever


def test_gil_convoy_makes_threads_slower():
    """With convoy overhead, multi-threaded GIL work is slower than
    single-threaded -- the paper's speedup < 1.0 (Fig. 12g/i, 13a)."""
    def run(threads, items=8):
        sim = Simulation()
        machine = Machine(sim, cores=8, gil_convoy=0.05)
        per_thread = items // threads

        def worker():
            for _ in range(per_thread):
                yield from machine.compute_external(1.0)

        def main():
            yield all_of(sim, [sim.process(worker())
                               for _ in range(threads)])

        sim.run_process(main())
        return sim.now

    assert run(8) > run(1)


def test_dispatch_is_serialized():
    sim = Simulation()
    machine = Machine(sim, dispatch_cost=0.01, dispatch_convoy=0.0)

    def worker():
        yield from machine.dispatch_samples(100)

    def main():
        yield all_of(sim, [sim.process(worker()) for _ in range(4)])

    sim.run_process(main())
    assert sim.now == pytest.approx(4 * 100 * 0.01)


def test_memory_read_uses_memory_link():
    sim = Simulation()
    machine = Machine(sim, memory_stream_bw=20 * GB)

    def worker():
        yield from machine.read_memory(20 * GB)

    sim.run_process(worker())
    assert sim.now == pytest.approx(1.0)


def test_page_cache_sized_below_ram():
    sim = Simulation()
    machine = Machine(sim, ram_bytes=80 * GB)
    assert machine.page_cache.capacity_bytes < 80 * GB
    assert machine.page_cache.capacity_bytes > 70 * GB


def test_busy_counters():
    sim = Simulation()
    machine = Machine(sim)

    def worker():
        yield from machine.compute_native(2.0)
        yield from machine.compute_external(3.0)

    sim.run_process(worker())
    assert machine.cpu_busy_seconds == pytest.approx(2.0)
    assert machine.gil_busy_seconds == pytest.approx(3.0)
