"""Unit and property tests for the discrete-event kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DeadlockError, SimulationError
from repro.sim.events import Simulation, all_of


def test_clock_starts_at_zero():
    sim = Simulation()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulation()

    def proc():
        yield sim.timeout(1.5)
        yield sim.timeout(2.5)
        return sim.now

    assert sim.run_process(proc()) == 4.0
    assert sim.now == 4.0


def test_timeout_value_passthrough():
    sim = Simulation()

    def proc():
        value = yield sim.timeout(1.0, value="payload")
        return value

    assert sim.run_process(proc()) == "payload"


def test_negative_timeout_rejected():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_event_succeed_resumes_waiter():
    sim = Simulation()
    gate = sim.event()
    log = []

    def waiter():
        value = yield gate
        log.append((sim.now, value))

    def opener():
        yield sim.timeout(3.0)
        gate.succeed("open")

    sim.process(waiter(), name="waiter")
    sim.process(opener(), name="opener")
    sim.run()
    assert log == [(3.0, "open")]


def test_event_double_trigger_raises():
    sim = Simulation()
    gate = sim.event()
    gate.succeed(1)
    with pytest.raises(SimulationError):
        gate.succeed(2)


def test_event_fail_raises_inside_process():
    sim = Simulation()
    gate = sim.event()

    def waiter():
        with pytest.raises(ValueError, match="boom"):
            yield gate
        return "handled"

    def failer():
        yield sim.timeout(1.0)
        gate.fail(ValueError("boom"))

    sim.process(failer(), name="failer")
    assert sim.run_process(waiter(), name="waiter") == "handled"


def test_process_is_waitable_event():
    sim = Simulation()

    def inner():
        yield sim.timeout(2.0)
        return 42

    def outer():
        result = yield sim.process(inner(), name="inner")
        return result, sim.now

    assert sim.run_process(outer(), name="outer") == (42, 2.0)


def test_yielding_non_event_raises():
    sim = Simulation()

    def bad():
        yield 1.0  # floats are not events

    with pytest.raises(SimulationError, match="expected an Event"):
        sim.run_process(bad())


def test_deadlock_detected():
    sim = Simulation()
    never = sim.event()

    def stuck():
        yield never

    with pytest.raises(DeadlockError):
        sim.run_process(stuck())


def test_run_until_stops_early():
    sim = Simulation()

    def proc():
        yield sim.timeout(10.0)

    sim.process(proc())
    assert sim.run(until=4.0) == 4.0
    assert sim.now == 4.0


def test_all_of_collects_values_in_order():
    sim = Simulation()

    def proc(delay, value):
        yield sim.timeout(delay)
        return value

    def main():
        procs = [sim.process(proc(3.0, "a")), sim.process(proc(1.0, "b"))]
        values = yield all_of(sim, procs)
        return values, sim.now

    values, now = sim.run_process(main())
    assert values == ["a", "b"]
    assert now == 3.0


def test_all_of_empty_is_immediate():
    sim = Simulation()

    def main():
        values = yield all_of(sim, [])
        return values

    assert sim.run_process(main()) == []


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=30))
def test_parallel_processes_finish_at_max_delay(delays):
    """N parallel sleeps complete at exactly max(delays)."""
    sim = Simulation()

    def sleeper(delay):
        yield sim.timeout(delay)

    def main():
        yield all_of(sim, [sim.process(sleeper(d)) for d in delays])

    sim.run_process(main())
    assert sim.now == pytest.approx(max(delays))


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e4,
                                 allow_nan=False), min_size=1, max_size=30))
def test_sequential_timeouts_sum(delays):
    """Sequential sleeps accumulate; the clock never goes backwards."""
    sim = Simulation()
    observed = []

    def proc():
        for delay in delays:
            yield sim.timeout(delay)
            observed.append(sim.now)

    sim.run_process(proc())
    assert sim.now == pytest.approx(sum(delays), rel=1e-9, abs=1e-9)
    assert observed == sorted(observed)
