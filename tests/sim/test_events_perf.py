"""Kernel tests for partial runs, the event counter and merge ordering.

The event counter is the CI-safe perf proxy: the kernel is
deterministic, so ``events_processed`` must be identical across runs
and hosts for the same workload (``make bench-check`` relies on this).
"""

import pytest

from repro.sim.events import Event, Simulation, all_of


def _workload(sim):
    """A small mixed workload touching timeouts, events and barriers."""
    gate = sim.event()

    def opener():
        yield sim.timeout(2.0)
        gate.succeed("open")

    def waiter():
        value = yield gate
        yield sim.timeout(1.0)
        return value

    def sleeper(delay):
        yield sim.timeout(delay)

    def main():
        procs = [sim.process(sleeper(d)) for d in (0.5, 1.5, 2.5)]
        procs.append(sim.process(opener()))
        procs.append(sim.process(waiter()))
        yield all_of(sim, procs)

    return sim.process(main(), name="main")


# -- run(until=...) partial-run semantics --------------------------------


def test_run_until_leaves_future_events_queued():
    sim = Simulation()
    fired = []

    def proc():
        yield sim.timeout(1.0)
        fired.append(sim.now)
        yield sim.timeout(9.0)
        fired.append(sim.now)

    sim.process(proc())
    assert sim.run(until=5.0) == 5.0
    assert fired == [1.0]
    # Resuming without a bound finishes the remaining events.
    assert sim.run() == 10.0
    assert fired == [1.0, 10.0]


def test_run_until_processes_same_instant_events():
    """Events triggered with zero delay at exactly ``until`` still run."""
    sim = Simulation()
    log = []

    def proc():
        yield sim.timeout(3.0)
        log.append("timeout")
        gate = Event(sim).succeed("now")
        value = yield gate
        log.append(value)

    sim.process(proc())
    sim.run(until=3.0)
    assert log == ["timeout", "now"]


def test_run_until_is_resumable_in_slices():
    """Slicing a run into windows reaches the same final state."""
    whole = Simulation()
    _workload(whole)
    whole.run()

    sliced = Simulation()
    process = _workload(sliced)
    for bound in (0.5, 1.0, 2.0, 2.75, 10.0):
        sliced.run(until=bound)
    sliced.run()
    assert process.triggered
    assert sliced.now == whole.now
    assert sliced.events_processed == whole.events_processed


# -- the event counter ---------------------------------------------------


def test_events_processed_starts_at_zero():
    assert Simulation().events_processed == 0


def test_events_processed_is_deterministic_across_runs():
    counts = []
    for _ in range(3):
        sim = Simulation()
        _workload(sim)
        sim.run()
        counts.append(sim.events_processed)
    assert len(set(counts)) == 1
    assert counts[0] > 0


def test_events_processed_counts_step_and_run_identically():
    run_sim = Simulation()
    _workload(run_sim)
    run_sim.run()

    step_sim = Simulation()
    process = _workload(step_sim)
    while True:
        try:
            step_sim.step()
        except IndexError:
            break
    assert process.triggered
    assert step_sim.events_processed == run_sim.events_processed


def test_step_on_empty_simulation_raises():
    with pytest.raises(IndexError):
        Simulation().step()


def test_serve_event_count_is_deterministic():
    """The service-level counter (what bench-check pins) is stable."""
    from repro.serve import PreprocessingService, bursty_trace
    counts = set()
    for _ in range(2):
        report = PreprocessingService(policy="cache-aware", slots=2).run(
            bursty_trace(tenants=4, seed=0))
        counts.add(report.events_processed)
    assert len(counts) == 1
    assert counts.pop() > 0


# -- FIFO/heap merge ordering --------------------------------------------


def test_same_instant_events_process_in_schedule_order():
    """Zero-delay triggers and timeouts landing at the same instant
    resolve in exact scheduling order (the heap/FIFO merge contract)."""
    sim = Simulation()
    order = []

    def a():
        yield sim.timeout(1.0)     # scheduled first -> runs first at t=1
        order.append("a")
        gate = Event(sim).succeed()  # zero-delay, same instant, later seq
        yield gate
        order.append("a-gate")

    def b():
        yield sim.timeout(1.0)     # scheduled second, same timestamp
        order.append("b")

    sim.process(a(), name="a")
    sim.process(b(), name="b")
    sim.run()
    # a's zero-delay gate was scheduled *after* b's timeout existed but
    # b's timeout carries an earlier sequence number, so b runs between
    # a's two steps -- exactly like a single global priority queue.
    assert order == ["a", "b", "a-gate"]


def test_multiple_callbacks_fire_in_attach_order():
    sim = Simulation()
    seen = []
    event = sim.event()
    event.add_callback(lambda e: seen.append("first"))
    event.add_callback(lambda e: seen.append("second"))
    event.add_callback(lambda e: seen.append("third"))
    event.succeed()
    sim.run()
    assert seen == ["first", "second", "third"]


def test_all_of_with_already_processed_events():
    sim = Simulation()

    def early():
        yield sim.timeout(1.0)
        return "early"

    def main(done):
        late = sim.process(_sleep(sim, 1.0, "late"))
        values = yield all_of(sim, [done, late])
        return values

    def _sleep(sim, delay, value):
        yield sim.timeout(delay)
        return value

    done = sim.process(early())
    sim.run()  # early has completed and been processed
    assert sim.run_process(main(done)) == ["early", "late"]
