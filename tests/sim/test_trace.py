"""Tests for the unified resource trace (repro.sim.trace)."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Simulation
from repro.sim.resources import Resource
from repro.sim.trace import (TRACE_CATEGORIES, ResourceTrace, timed,
                             timed_wait)


def make_trace(**overrides):
    base = dict(duration=10.0, threads=4, open_seconds=2.0,
                read_seconds=10.0, memory_seconds=1.0, decode_seconds=4.0,
                cpu_seconds=12.0, gil_seconds=3.0, dispatch_seconds=2.0,
                shuffle_seconds=1.0, bytes_from_storage=1e9,
                bytes_from_cache=0.0, cache_hit_rate=0.0)
    base.update(overrides)
    return ResourceTrace(**base)


class TestAccounting:
    def test_add_accumulates_categories(self):
        trace = ResourceTrace(duration=1.0, threads=1)
        trace.add("read", 0.25)
        trace.add("read", 0.25)
        assert trace.read_seconds == 0.5

    def test_add_rejects_unknown_category(self):
        with pytest.raises(SimulationError):
            ResourceTrace().add("gpu", 1.0)

    def test_stall_is_the_unaccounted_remainder(self):
        trace = make_trace()
        assert trace.total_thread_seconds == 40.0
        assert trace.accounted_seconds == 35.0
        assert trace.stall_seconds == pytest.approx(5.0)

    def test_stall_never_negative(self):
        trace = make_trace(duration=1.0, threads=1)  # accounted > budget
        assert trace.stall_seconds == 0.0


class TestFractions:
    def test_fractions_sum_to_one(self):
        shares = make_trace().fractions()
        assert sum(shares.values()) == pytest.approx(1.0, abs=1e-12)
        assert all(value >= 0 for value in shares.values())

    def test_category_mapping(self):
        shares = make_trace().fractions()
        assert shares["cpu"] == pytest.approx(15.0 / 40.0)        # cpu+gil
        assert shares["storage"] == pytest.approx(13.0 / 40.0)    # o+r+m
        assert shares["decode"] == pytest.approx(4.0 / 40.0)
        assert shares["stall"] == pytest.approx(8.0 / 40.0)       # d+s+idle

    def test_empty_trace_is_pure_stall(self):
        assert ResourceTrace().fractions() == {
            "cpu": 0.0, "storage": 0.0, "decode": 0.0, "stall": 1.0}

    def test_overaccounted_trace_renormalizes(self):
        trace = make_trace(duration=1.0, threads=1)
        shares = trace.fractions()
        assert sum(shares.values()) == pytest.approx(1.0, abs=1e-12)
        assert shares["stall"] == 0.0

    def test_dominant_names_largest_share(self):
        assert make_trace().dominant() == "cpu"
        assert make_trace(cpu_seconds=0.0, gil_seconds=0.0,
                          read_seconds=30.0).dominant() == "storage"


class TestCombination:
    def test_merged_sums_times_and_bytes(self):
        merged = make_trace().merged(make_trace(bytes_from_cache=1e9))
        assert merged.duration == 20.0
        assert merged.read_seconds == 20.0
        assert merged.bytes_from_storage == 2e9
        assert merged.cache_hit_rate == pytest.approx(1e9 / 3e9)

    def test_merged_rejects_thread_mismatch(self):
        with pytest.raises(SimulationError):
            make_trace().merged(make_trace(threads=8))

    def test_scaled_preserves_fractions(self):
        trace = make_trace()
        assert trace.scaled(3.5).fractions() == pytest.approx(
            trace.fractions())

    def test_scaled_rejects_nonpositive_factor(self):
        with pytest.raises(SimulationError):
            make_trace().scaled(0.0)

    def test_dict_roundtrip(self):
        trace = make_trace()
        assert ResourceTrace.from_dict(trace.to_dict()) == trace


class TestBracketHelpers:
    def test_timed_charges_elapsed_generator_time(self):
        sim = Simulation()
        trace = ResourceTrace(threads=1)
        resource = Resource(sim, capacity=1)

        def process():
            yield from timed(sim, trace, "cpu", resource.use(2.5))

        sim.run_process(process())
        assert trace.cpu_seconds == pytest.approx(2.5)

    def test_timed_wait_charges_event_wait(self):
        sim = Simulation()
        trace = ResourceTrace(threads=1)

        def process():
            yield from timed_wait(sim, trace, "read", sim.timeout(1.5))

        sim.run_process(process())
        assert trace.read_seconds == pytest.approx(1.5)

    def test_none_trace_is_passthrough(self):
        sim = Simulation()
        resource = Resource(sim, capacity=1)

        def process():
            yield from timed(sim, None, "cpu", resource.use(1.0))
            yield from timed_wait(sim, None, "read", sim.timeout(1.0))

        sim.run_process(process())
        assert sim.now == pytest.approx(2.0)

    def test_contention_is_charged_to_the_waiting_category(self):
        sim = Simulation()
        trace = ResourceTrace(threads=2)
        resource = Resource(sim, capacity=1)

        def process():
            yield from timed(sim, trace, "read", resource.use(1.0))

        sim.process(process())
        sim.process(process())
        sim.run()
        # First holds 1s; second waits 1s then holds 1s -> 3 elapsed.
        assert trace.read_seconds == pytest.approx(3.0)

    def test_every_category_has_a_field(self):
        trace = ResourceTrace()
        for category in TRACE_CATEGORIES:
            assert hasattr(trace, f"{category}_seconds")


class TestEdgeCases:
    """Boundary behaviour: empty traces, nested brackets, zero-duration
    spans (previously only covered incidentally)."""

    def test_empty_trace_budgets_are_zero(self):
        trace = ResourceTrace()
        assert trace.total_thread_seconds == 0.0
        assert trace.accounted_seconds == 0.0
        assert trace.stall_seconds == 0.0
        assert trace.dominant() == "stall"

    def test_empty_trace_merges_and_scales(self):
        merged = ResourceTrace().merged(make_trace(threads=1))
        assert merged.read_seconds == 10.0
        assert merged.cache_hit_rate == 0.0
        scaled = ResourceTrace().scaled(10.0)
        assert scaled.fractions()["stall"] == 1.0

    def test_nested_brackets_charge_both_categories(self):
        """A ``timed`` bracket inside another charges the elapsed time
        to *both* categories -- nesting double-counts by design (the
        outer bracket measures the whole phase), so engines bracket
        disjoint phases only."""
        sim = Simulation()
        trace = ResourceTrace(threads=1)

        def wait(seconds):
            yield sim.timeout(seconds)

        def inner():
            yield from timed(sim, trace, "decode", wait(2.0))

        def outer():
            yield from timed(sim, trace, "cpu", inner())

        sim.run_process(outer())
        assert trace.decode_seconds == pytest.approx(2.0)
        assert trace.cpu_seconds == pytest.approx(2.0)
        assert trace.accounted_seconds == pytest.approx(4.0)

    def test_nested_bracket_charges_only_the_inner_span(self):
        """Work before/after an inner bracket stays with the outer
        category: the inner bracket reads the clock on entry/exit."""
        sim = Simulation()
        trace = ResourceTrace(threads=1)

        def wait(seconds):
            yield sim.timeout(seconds)

        def body():
            yield sim.timeout(1.0)                               # outer
            yield from timed(sim, trace, "read", wait(2.0))
            yield sim.timeout(4.0)                               # outer

        def outer():
            yield from timed(sim, trace, "cpu", body())

        sim.run_process(outer())
        assert trace.read_seconds == pytest.approx(2.0)
        assert trace.cpu_seconds == pytest.approx(7.0)

    def test_zero_duration_span_charges_nothing(self):
        sim = Simulation()
        trace = ResourceTrace(threads=1)

        def instant():
            return
            yield  # pragma: no cover -- makes this a generator

        def process():
            yield from timed(sim, trace, "cpu", instant())
            yield from timed_wait(sim, trace, "read", sim.timeout(0.0))

        sim.run_process(process())
        assert trace.cpu_seconds == 0.0
        assert trace.read_seconds == 0.0
        assert sim.now == 0.0

    def test_zero_duration_add_keeps_fractions_finite(self):
        trace = ResourceTrace(duration=1.0, threads=1)
        trace.add("cpu", 0.0)
        shares = trace.fractions()
        assert shares["cpu"] == 0.0
        assert sum(shares.values()) == pytest.approx(1.0)
