"""Tests for Resource and Lock (capacity, FIFO order, convoy overhead)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ResourceError
from repro.sim.events import Simulation, all_of
from repro.sim.resources import Lock, Resource


def test_capacity_must_be_positive():
    sim = Simulation()
    with pytest.raises(ResourceError):
        Resource(sim, capacity=0)


def test_release_without_acquire_raises():
    sim = Simulation()
    resource = Resource(sim, capacity=1)
    with pytest.raises(ResourceError):
        resource.release()


def test_uncontended_use_takes_service_time():
    sim = Simulation()
    resource = Resource(sim, capacity=2)

    def proc():
        yield from resource.use(5.0)
        return sim.now

    assert sim.run_process(proc()) == 5.0


def test_contended_resource_queues_fifo():
    sim = Simulation()
    resource = Resource(sim, capacity=1)
    completion_order = []

    def proc(name):
        yield from resource.use(1.0)
        completion_order.append((name, sim.now))

    def main():
        procs = [sim.process(proc(i)) for i in range(3)]
        yield all_of(sim, procs)

    sim.run_process(main())
    assert completion_order == [(0, 1.0), (1, 2.0), (2, 3.0)]


def test_capacity_two_runs_pairs():
    sim = Simulation()
    resource = Resource(sim, capacity=2)

    def proc():
        yield from resource.use(1.0)

    def main():
        yield all_of(sim, [sim.process(proc()) for _ in range(4)])

    sim.run_process(main())
    # 4 jobs of 1 s on 2 slots -> 2 s total.
    assert sim.now == pytest.approx(2.0)
    assert resource.peak_in_use == 2
    assert resource.total_acquisitions == 4


@given(n_jobs=st.integers(1, 20), capacity=st.integers(1, 8),
       service=st.floats(min_value=0.01, max_value=10.0))
def test_makespan_matches_bank_teller_formula(n_jobs, capacity, service):
    """Identical jobs on a k-server queue finish in ceil(n/k) waves."""
    sim = Simulation()
    resource = Resource(sim, capacity=capacity)

    def proc():
        yield from resource.use(service)

    def main():
        yield all_of(sim, [sim.process(proc()) for _ in range(n_jobs)])

    sim.run_process(main())
    waves = -(-n_jobs // capacity)  # ceil division
    assert sim.now == pytest.approx(waves * service, rel=1e-9)
    assert resource.in_use == 0
    assert resource.queued == 0


def test_lock_without_convoy_behaves_like_mutex():
    sim = Simulation()
    lock = Lock(sim)

    def proc():
        yield from lock.hold(2.0)

    def main():
        yield all_of(sim, [sim.process(proc()) for _ in range(3)])

    sim.run_process(main())
    assert sim.now == pytest.approx(6.0)


def test_lock_convoy_overhead_grows_with_waiters():
    """Each grant pays overhead per waiting thread: contention hurts."""
    sim = Simulation()
    lock = Lock(sim, convoy_overhead=0.1)

    def proc():
        yield from lock.hold(1.0)

    def main():
        yield all_of(sim, [sim.process(proc()) for _ in range(3)])

    sim.run_process(main())
    # Grants see 2, 1, 0 waiters -> holds of 1.2, 1.1, 1.0 seconds.
    assert sim.now == pytest.approx(3.3)


def test_lock_convoy_capped_by_max_waiters():
    sim = Simulation()
    lock = Lock(sim, convoy_overhead=1.0, max_convoy_waiters=2)

    def proc():
        yield from lock.hold(1.0)

    def main():
        yield all_of(sim, [sim.process(proc()) for _ in range(10)])

    sim.run_process(main())
    # Waiter counts: 9,8,...,0 but capped at 2 -> 8 grants pay +2, one +1.
    expected = 10 * 1.0 + 8 * 2.0 + 1 * 2.0 + 1.0
    # Grant i sees min(10 - 1 - i, 2): 2 for i in 0..7, then 1, then 0.
    expected = 10 * 1.0 + sum(min(10 - 1 - i, 2) for i in range(10)) * 1.0
    assert sim.now == pytest.approx(expected)


def test_serialized_lock_defeats_parallelism():
    """A GIL-style lock makes 8 threads no faster than 1 (paper Fig. 12)."""

    def run(n_threads):
        sim = Simulation()
        lock = Lock(sim, convoy_overhead=0.01)
        work_items = 40

        def worker(items):
            for _ in range(items):
                yield from lock.hold(1.0)

        per_thread = work_items // n_threads

        def main():
            yield all_of(sim, [sim.process(worker(per_thread))
                               for _ in range(n_threads)])

        sim.run_process(main())
        return sim.now

    assert run(8) >= run(1)
