"""Tests for the max-min fair shared bandwidth link."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sim.bandwidth import SharedBandwidth
from repro.sim.events import Simulation, all_of
from repro.units import MB


def test_single_stream_runs_at_per_stream_cap():
    sim = Simulation()
    link = SharedBandwidth(sim, aggregate_bw=910 * MB, per_stream_bw=219 * MB)

    def proc():
        yield link.transfer(219 * MB)

    sim.run_process(proc())
    assert sim.now == pytest.approx(1.0)


def test_aggregate_cap_binds_with_many_streams():
    sim = Simulation()
    link = SharedBandwidth(sim, aggregate_bw=800 * MB, per_stream_bw=200 * MB)

    def proc():
        yield link.transfer(100 * MB)

    def main():
        yield all_of(sim, [sim.process(proc()) for _ in range(8)])

    sim.run_process(main())
    # 8 streams share 800 MB/s -> 100 MB/s each -> 1 s.
    assert sim.now == pytest.approx(1.0)
    assert link.bytes_moved == pytest.approx(800 * MB)


def test_two_streams_unconstrained_by_aggregate():
    sim = Simulation()
    link = SharedBandwidth(sim, aggregate_bw=1000 * MB, per_stream_bw=200 * MB)

    def proc():
        yield link.transfer(200 * MB)

    def main():
        yield all_of(sim, [sim.process(proc()) for _ in range(2)])

    sim.run_process(main())
    assert sim.now == pytest.approx(1.0)  # both at full per-stream rate


def test_late_joiner_slows_existing_stream():
    """Rates are recomputed when a stream joins mid-flight."""
    sim = Simulation()
    link = SharedBandwidth(sim, aggregate_bw=100 * MB, per_stream_bw=100 * MB)
    finish_times = {}

    def early():
        yield link.transfer(100 * MB)
        finish_times["early"] = sim.now

    def late():
        yield sim.timeout(0.5)
        yield link.transfer(50 * MB)
        finish_times["late"] = sim.now

    def main():
        yield all_of(sim, [sim.process(early()), sim.process(late())])

    sim.run_process(main())
    # Early: 50 MB alone in 0.5 s, then shares 50 MB/s; both need 50 MB
    # at 50 MB/s -> 1 more second. Both finish at t=1.5.
    assert finish_times["early"] == pytest.approx(1.5)
    assert finish_times["late"] == pytest.approx(1.5)


def test_departure_speeds_up_remaining_stream():
    sim = Simulation()
    link = SharedBandwidth(sim, aggregate_bw=100 * MB, per_stream_bw=100 * MB)
    finish_times = {}

    def small():
        yield link.transfer(25 * MB)
        finish_times["small"] = sim.now

    def large():
        yield link.transfer(100 * MB)
        finish_times["large"] = sim.now

    def main():
        yield all_of(sim, [sim.process(small()), sim.process(large())])

    sim.run_process(main())
    # Shared at 50 each: small done at 0.5. Large has 75 MB left at full
    # 100 MB/s -> finishes at 0.5 + 0.75 = 1.25.
    assert finish_times["small"] == pytest.approx(0.5)
    assert finish_times["large"] == pytest.approx(1.25)


def test_zero_byte_transfer_is_instant():
    sim = Simulation()
    link = SharedBandwidth(sim, aggregate_bw=100 * MB)

    def proc():
        yield link.transfer(0)
        return sim.now

    assert sim.run_process(proc()) == 0.0


def test_zero_byte_transfer_counter_semantics():
    """Zero-byte transfers count as transfers but never become active:
    ``peak_streams`` and ``bytes_moved`` must not move (explicit counter
    contract; the historical implementation was ambiguous here)."""
    sim = Simulation()
    link = SharedBandwidth(sim, aggregate_bw=100 * MB)

    def proc():
        yield link.transfer(0)
        yield link.transfer(0.0)
        return sim.now

    sim.run_process(proc())
    assert link.total_transfers == 2
    assert link.peak_streams == 0
    assert link.bytes_moved == 0.0
    assert link.active_streams == 0


def test_zero_byte_transfers_do_not_slow_active_streams():
    """A zero-byte transfer admitted mid-flight must not change the fair
    share of real streams (it never joins the active set)."""
    sim = Simulation()
    link = SharedBandwidth(sim, aggregate_bw=100 * MB)
    finish = {}

    def real():
        yield link.transfer(100 * MB)
        finish["real"] = sim.now

    def phantom():
        yield sim.timeout(0.25)
        yield link.transfer(0)
        finish["phantom"] = sim.now

    def main():
        yield all_of(sim, [sim.process(real()), sim.process(phantom())])

    sim.run_process(main())
    assert finish["phantom"] == pytest.approx(0.25)
    assert finish["real"] == pytest.approx(1.0)
    assert link.total_transfers == 2
    assert link.peak_streams == 1


def test_bytes_moved_includes_in_flight_progress():
    """``bytes_moved`` is live: mid-transfer reads see pro-rata bytes."""
    sim = Simulation()
    link = SharedBandwidth(sim, aggregate_bw=100 * MB)
    observed = {}

    def mover():
        yield link.transfer(100 * MB)

    def sampler():
        yield sim.timeout(0.5)
        observed["mid"] = link.bytes_moved

    def main():
        yield all_of(sim, [sim.process(mover()), sim.process(sampler())])

    sim.run_process(main())
    assert observed["mid"] == pytest.approx(50 * MB)
    assert link.bytes_moved == pytest.approx(100 * MB)


def test_equal_transfers_complete_together_in_admission_order():
    """Equal concurrent transfers finish in one batch, resumed in
    admission order (the heap must not reorder ties)."""
    sim = Simulation()
    link = SharedBandwidth(sim, aggregate_bw=80 * MB, per_stream_bw=20 * MB)
    order = []

    def proc(index):
        yield link.transfer(20 * MB)
        order.append(index)

    def main():
        yield all_of(sim, [sim.process(proc(i)) for i in range(4)])

    sim.run_process(main())
    assert sim.now == pytest.approx(1.0)
    assert order == [0, 1, 2, 3]


def test_tag_tie_break_orders_simultaneous_completions_by_tag():
    """Under tie_break="tag", a batch of mathematically simultaneous
    completions resolves in (timestamp, tag) order -- tenant identity,
    not admission order or float ulps, decides knife-edge scenarios."""
    sim = Simulation()
    link = SharedBandwidth(sim, aggregate_bw=80 * MB,
                           per_stream_bw=20 * MB, tie_break="tag")
    order = []

    def proc(tag):
        yield link.transfer(20 * MB, tag)
        order.append(tag)

    def main():
        # Admitted in reverse-tag order; completion must sort by tag.
        yield all_of(sim, [sim.process(proc(tag))
                           for tag in ("t3", "t2", "t1", "t0")])

    sim.run_process(main())
    assert sim.now == pytest.approx(1.0)
    assert order == ["t0", "t1", "t2", "t3"]


def test_tag_tie_break_falls_back_to_admission_within_a_tag():
    sim = Simulation()
    link = SharedBandwidth(sim, aggregate_bw=80 * MB,
                           per_stream_bw=20 * MB, tie_break="tag")
    order = []

    def proc(tag, index):
        yield link.transfer(20 * MB, tag)
        order.append((tag, index))

    def main():
        yield all_of(sim, [sim.process(proc(tag, index))
                           for index, tag in enumerate(
                               ("b", "a", "b", "a"))])

    sim.run_process(main())
    assert order == [("a", 1), ("a", 3), ("b", 0), ("b", 2)]


def test_default_tie_break_ignores_tags():
    """Admission mode is byte-compatible: tags ride along unused."""
    sim = Simulation()
    link = SharedBandwidth(sim, aggregate_bw=80 * MB,
                           per_stream_bw=20 * MB)
    order = []

    def proc(tag):
        yield link.transfer(20 * MB, tag)
        order.append(tag)

    def main():
        yield all_of(sim, [sim.process(proc(tag))
                           for tag in ("t3", "t2", "t1", "t0")])

    sim.run_process(main())
    assert order == ["t3", "t2", "t1", "t0"]  # admission order


def test_tag_tie_break_leaves_timestamps_unchanged():
    """The tie-break only permutes within a same-instant batch; every
    completion timestamp and byte counter is identical to default."""
    def run(tie_break):
        sim = Simulation()
        link = SharedBandwidth(sim, aggregate_bw=60 * MB,
                               per_stream_bw=30 * MB,
                               tie_break=tie_break)
        finishes = []

        def proc(tag, nbytes):
            yield link.transfer(nbytes, tag)
            finishes.append((tag, sim.now))

        def main():
            jobs = [("z", 30 * MB), ("y", 30 * MB), ("x", 45 * MB)]
            yield all_of(sim, [sim.process(proc(tag, nbytes))
                               for tag, nbytes in jobs])

        sim.run_process(main())
        return {tag: when for tag, when in finishes}, link.bytes_moved

    default_times, default_bytes = run("admission")
    tagged_times, tagged_bytes = run("tag")
    assert tagged_times == default_times
    assert tagged_bytes == default_bytes


def test_unknown_tie_break_rejected():
    sim = Simulation()
    with pytest.raises(SimulationError, match="tie_break"):
        SharedBandwidth(sim, aggregate_bw=10 * MB, tie_break="random")


def test_no_active_rescan_attributes_remain():
    """The O(n) hot path is gone: the link keeps a heap, not a list of
    actives that arrival/completion must rescan."""
    sim = Simulation()
    link = SharedBandwidth(sim, aggregate_bw=100 * MB)
    assert not hasattr(link, "_active")
    assert hasattr(link, "_heap")


def test_progress_integral_rebases_when_idle():
    """Draining the link resets the progress integral so thresholds stay
    small over arbitrarily long simulations (float-resolution guard)."""
    sim = Simulation()
    link = SharedBandwidth(sim, aggregate_bw=100 * MB)

    def proc():
        for _ in range(3):
            yield link.transfer(50 * MB)
            yield sim.timeout(1.0)

    sim.run_process(proc())
    assert link._progress == 0.0
    assert link.bytes_moved == pytest.approx(150 * MB)


def test_negative_transfer_rejected():
    sim = Simulation()
    link = SharedBandwidth(sim, aggregate_bw=100 * MB)
    with pytest.raises(SimulationError):
        link.transfer(-1)


def test_bad_capacity_rejected():
    sim = Simulation()
    with pytest.raises(SimulationError):
        SharedBandwidth(sim, aggregate_bw=0)
    with pytest.raises(SimulationError):
        SharedBandwidth(sim, aggregate_bw=10, per_stream_bw=-1)


def test_stream_rate_query():
    sim = Simulation()
    link = SharedBandwidth(sim, aggregate_bw=910 * MB, per_stream_bw=219 * MB)
    assert link.stream_rate(1) == pytest.approx(219 * MB)
    assert link.stream_rate(8) == pytest.approx(910 * MB / 8)
    assert link.stream_rate(0) == 0.0


@settings(deadline=None, max_examples=40)
@given(
    sizes=st.lists(st.floats(min_value=1.0, max_value=500 * MB),
                   min_size=1, max_size=12),
    aggregate=st.floats(min_value=50 * MB, max_value=2000 * MB),
    per_stream=st.floats(min_value=10 * MB, max_value=500 * MB),
)
def test_work_conservation_and_caps(sizes, aggregate, per_stream):
    """Property: all bytes arrive, and the makespan respects both caps.

    The total time can never beat total_bytes/aggregate_bw nor
    max_size/per_stream_bw, and with max-min fairness every transfer
    completes (work conservation).
    """
    sim = Simulation()
    link = SharedBandwidth(sim, aggregate, per_stream)
    done = []

    def proc(nbytes):
        yield link.transfer(nbytes)
        done.append(nbytes)

    def main():
        yield all_of(sim, [sim.process(proc(size)) for size in sizes])

    sim.run_process(main())
    assert len(done) == len(sizes)
    assert link.bytes_moved == pytest.approx(sum(sizes), rel=1e-6)
    effective_per_stream = min(per_stream, aggregate)
    lower_bound = max(sum(sizes) / aggregate,
                      max(sizes) / effective_per_stream)
    assert sim.now >= lower_bound * (1 - 1e-9)
    # And fairness cannot be worse than fully-serial execution.
    assert sim.now <= sum(sizes) / min(per_stream, aggregate) + 1e-9
