"""Tests for the storage cluster, fio probe (Table 3) and sysbench probe."""

import pytest

from repro.sim.cluster import StorageCluster
from repro.sim.cpu import Machine
from repro.sim.events import Simulation
from repro.sim.fio import TABLE3_WORKLOADS, FioWorkload, run_fio, run_workload
from repro.sim.pagecache import PageCache
from repro.sim.storage import HDD_CEPH, SSD_CEPH
from repro.sim.sysbench import run_memory_probe
from repro.units import GB, MB


def test_sequential_read_single_stream():
    sim = Simulation()
    cluster = StorageCluster(sim, HDD_CEPH)

    def proc():
        source = yield from cluster.read("k", 219 * MB)
        return source

    assert sim.run_process(proc()) == "storage"
    assert sim.now == pytest.approx(1.0)
    assert cluster.bytes_read_from_storage == pytest.approx(219 * MB)


def test_page_cache_round_trip():
    sim = Simulation()
    machine = Machine(sim)
    cluster = StorageCluster(sim, HDD_CEPH, memory_link=machine.memory_link)
    cache = PageCache(1 * GB)

    def proc():
        first = yield from cluster.read("k", 100 * MB, page_cache=cache)
        t_first = sim.now
        second = yield from cluster.read("k", 100 * MB, page_cache=cache)
        return first, second, t_first, sim.now

    first, second, t_first, t_second = sim.run_process(proc())
    assert (first, second) == ("storage", "cache")
    # The cache hit is served at memory speed: far faster than the miss.
    assert (t_second - t_first) < t_first / 10


def test_file_open_goes_through_metadata_service():
    sim = Simulation()
    cluster = StorageCluster(sim, HDD_CEPH)

    def proc():
        yield from cluster.read("k", 0.2 * MB, open_file=True,
                                pipeline_path=False)

    sim.run_process(proc())
    assert cluster.files_opened == 1
    expected = HDD_CEPH.open_latency + 0.2 * MB / HDD_CEPH.stream_bw
    assert sim.now == pytest.approx(expected)


# -- Table 3 reproduction ----------------------------------------------------

#: Paper Table 3 bandwidths (MB/s): seq x1, seq x8, rand x1, rand x8.
_PAPER_TABLE3 = (219.0, 910.0, 6.6, 40.4)


@pytest.mark.parametrize("workload, paper_mb_s",
                         list(zip(TABLE3_WORKLOADS, _PAPER_TABLE3)))
def test_fio_matches_paper_table3(workload, paper_mb_s):
    result = run_workload(HDD_CEPH, workload)
    assert result.bandwidth / MB == pytest.approx(paper_mb_s, rel=0.10)


def test_fio_iops_match_paper_order_of_magnitude():
    results = run_fio(HDD_CEPH)
    paper_iops = (53_400, 222_000, 1_629, 9_853)
    for result, expected in zip(results, paper_iops):
        assert result.iops == pytest.approx(expected, rel=0.12)


def test_fio_sequential_beats_random_by_paper_factor():
    """Sec 4.1: sequential is ~33x (1 thread) and ~22x (8 threads) faster."""
    results = {(w.threads, w.is_sequential): r.bandwidth
               for w, r in zip(TABLE3_WORKLOADS, run_fio(HDD_CEPH))}
    single = results[(1, True)] / results[(1, False)]
    multi = results[(8, True)] / results[(8, False)]
    assert single == pytest.approx(33, rel=0.15)
    assert multi == pytest.approx(22.5, rel=0.15)


def test_fio_ssd_random_access_much_faster_than_hdd():
    workload = FioWorkload(threads=8, files_per_thread=500,
                           file_bytes=0.2 * MB)
    hdd = run_workload(HDD_CEPH, workload)
    ssd = run_workload(SSD_CEPH, workload)
    assert ssd.bandwidth > 5 * hdd.bandwidth


def test_sysbench_memory_bandwidth_near_150_gb_s():
    result = run_memory_probe(threads=8, block_bytes=16 * GB)
    assert result.bandwidth == pytest.approx(150 * GB, rel=0.05)


def test_sysbench_single_thread_limited_by_stream_bw():
    result = run_memory_probe(threads=1, block_bytes=16 * GB)
    assert result.bandwidth == pytest.approx(20 * GB, rel=0.05)
