"""Tests for the dstat sampler."""

import pytest

from repro.sim.cluster import StorageCluster
from repro.sim.cpu import Machine
from repro.sim.dstat import Dstat
from repro.sim.events import Simulation
from repro.sim.storage import HDD_CEPH
from repro.units import MB


def _run_with_dstat(total_mb=910, interval=0.5):
    sim = Simulation()
    machine = Machine(sim)
    cluster = StorageCluster(sim, HDD_CEPH, memory_link=machine.memory_link)
    dstat = Dstat(sim, cluster, machine, interval=interval)

    def workload():
        for index in range(10):
            yield from cluster.read(("k", index), total_mb / 10 * MB)
        dstat.stop()

    sim.run_process(workload(), name="workload")
    sim.run()  # let the sampler drain
    return dstat


def test_summary_accounts_all_bytes():
    dstat = _run_with_dstat()
    summary = dstat.summary()
    assert summary.bytes_read == pytest.approx(910 * MB, rel=1e-6)
    assert summary.avg_read_bw > 0
    assert summary.duration > 0


def test_samples_recorded():
    dstat = _run_with_dstat()
    assert len(dstat.samples) >= 2
    times = [sample.time for sample in dstat.samples]
    assert times == sorted(times)


def test_average_matches_theory():
    """910 MB over a 219 MB/s stream: the average must be ~219 MB/s."""
    dstat = _run_with_dstat()
    assert dstat.summary().avg_read_bw == pytest.approx(219 * MB, rel=0.05)


def test_stop_terminates_sampler():
    dstat = _run_with_dstat()
    # The simulation drained: no further events pending.
    assert dstat._stopped


def test_adaptive_interval_limits_samples():
    dstat = _run_with_dstat(total_mb=910, interval=0.001)
    assert len(dstat.samples) <= dstat.max_samples


def test_describe_renders():
    summary = _run_with_dstat().summary()
    assert "MB/s" in summary.describe()
