"""End-to-end integration tests pinning the paper's headline claims."""

import pytest

from repro import (AutoTuner, ObjectiveWeights, RunConfig, SimulatedBackend,
                   StrategyAnalysis, StrategyProfiler, get_pipeline)
from repro.core.analysis import DEADLINE, THROUGHPUT_ONLY
from repro.core.report import tradeoff_table
from repro.core.training import devices_unblocked_by

BACKEND = SimulatedBackend()
PROFILER = StrategyProfiler(BACKEND)


def test_abstract_claim_3x_to_13x_over_untuned():
    """Abstract: tuned strategies beat fully-preprocessing-once by
    3x (CV) to 13x (NLP), keeping the pipeline functionally identical."""
    cv = PROFILER.profile_pipeline(get_pipeline("CV"))
    by_name = {p.strategy.split_name: p.throughput for p in cv}
    cv_gain = by_name["resized"] / by_name["pixel-centered"]
    assert 2.0 < cv_gain < 4.5  # paper: ~3.1x

    nlp = PROFILER.profile_pipeline(get_pipeline("NLP"))
    by_name = {p.strategy.split_name: p.throughput for p in nlp}
    nlp_gain = by_name["bpe-encoded"] / by_name["embedded"]
    assert 6.0 < nlp_gain < 20.0  # paper: ~13x


def test_table1_tradeoffs():
    """Table 1's three CV rows: the intro's motivating numbers."""
    pipeline = get_pipeline("CV")
    by_name = {p.strategy.split_name: p
               for p in PROFILER.profile_pipeline(pipeline)}
    online = by_name["unprocessed"]
    full = by_name["pixel-centered"]
    resized = by_name["resized"]
    # "all steps once" is ~5.4x faster than "every iteration"...
    assert full.throughput / online.throughput == pytest.approx(5.4,
                                                                rel=0.35)
    # ...but costs >9x the storage...
    assert full.storage_bytes / online.storage_bytes > 9.0
    # ...while stopping at resize is ~16.7x faster at only 2.4x storage.
    assert resized.throughput / online.throughput > 10.0
    assert resized.storage_bytes / online.storage_bytes < 4.0
    table = tradeoff_table([online, full, resized])
    assert len(table) == 3


def test_fig3_stall_story():
    """The tuned strategy feeds three of the five accelerators."""
    by_name = {p.strategy.split_name: p.throughput
               for p in PROFILER.profile_pipeline(get_pipeline("CV"))}
    assert devices_unblocked_by(by_name["pixel-centered"]) == []
    assert len(devices_unblocked_by(by_name["resized"])) == 3


def test_end_to_end_tuning_flow():
    """The README quickstart flow: profile -> analyse -> recommend."""
    profiles = PROFILER.profile_pipeline(get_pipeline("CV2-PNG"))
    analysis = StrategyAnalysis(profiles)
    assert analysis.best_strategy_name(THROUGHPUT_ONLY) == "resized"
    summary = analysis.summary(DEADLINE)
    assert "Recommended strategy" in summary


def test_objective_weights_shift_recommendations():
    """The paper's Sec. 3.1 example: deadlines change the answer."""
    profiles = PROFILER.profile_pipeline(get_pipeline("CV"))
    analysis = StrategyAnalysis(profiles)
    throughput_best = analysis.best_strategy_name(ObjectiveWeights(0, 0, 1))
    deadline_best = analysis.best_strategy_name(ObjectiveWeights(5, 0, 1))
    assert throughput_best == "resized"
    assert deadline_best != "pixel-centered"


def test_autotuner_full_grid_nlp():
    """Tuning NLP across compressions reproduces the paper's advice:
    materialise bpe-encoded, never embedded."""
    tuner = AutoTuner(BACKEND)
    report = tuner.tune(get_pipeline("NLP"),
                        compressions=(None, "GZIP", "ZLIB"))
    assert report.best_strategy.split_name == "bpe-encoded"


def test_fig14_greyscale_insertion():
    """Sec. 4.6: greyscale before pixel-center nearly triples peak
    throughput; after pixel-center it only helps the final strategy."""
    before = {p.strategy.split_name: p.throughput
              for p in PROFILER.profile_pipeline(
                  get_pipeline("CV+greyscale-before"))}
    base = {p.strategy.split_name: p.throughput
            for p in PROFILER.profile_pipeline(get_pipeline("CV"))}
    # The new peak (applied-greyscale) beats the old peak (resized).
    assert max(before.values()) > 1.8 * base["resized"]
    assert max(before, key=before.get) == "applied-greyscale"

    after = {p.strategy.split_name: p.throughput
             for p in PROFILER.profile_pipeline(
                 get_pipeline("CV+greyscale-after"))}
    # Fig. 14b: materialising greyscale after centering still beats
    # materialising the 1.39 TB pixel-centered representation.
    assert after["applied-greyscale"] > 2.0 * after["pixel-centered"]


def test_compression_lessons():
    """Lesson 4: compression helps pixel-centered CV (high saving, no
    CPU wall) but never helps NLP (CPU-bound or low saving)."""
    cv = get_pipeline("CV")
    plain = BACKEND.run(cv.split_at("pixel-centered"), RunConfig())
    gzip = BACKEND.run(cv.split_at("pixel-centered"),
                       RunConfig(compression="GZIP"))
    assert 1.2 < gzip.throughput / plain.throughput < 3.0

    nlp = get_pipeline("NLP")
    for strategy in ("concatenated", "decoded", "bpe-encoded", "embedded"):
        plain = BACKEND.run(nlp.split_at(strategy), RunConfig())
        gzip = BACKEND.run(nlp.split_at(strategy),
                           RunConfig(compression="GZIP"))
        assert gzip.throughput <= plain.throughput * 1.1


def test_public_api_surface():
    import repro
    for name in repro.__all__:
        assert getattr(repro, name) is not None
