"""The analytic model must agree with the DES within tolerance."""

import pytest

from repro.backends import (AnalyticModel, Environment, RunConfig,
                            SimulatedBackend)
from repro.errors import ProfilingError
from repro.pipelines import all_pipelines, get_pipeline
from repro.sim.storage import SSD_CEPH

MODEL = AnalyticModel()
BACKEND = SimulatedBackend()


def test_cross_validation_against_des():
    """Every (pipeline, strategy) estimate lands within 45% of the DES.

    The analytic model ignores queueing transients, so it is a screening
    tool, not a replacement -- but it must stay in the same ballpark.
    """
    config = RunConfig()
    for pipeline in all_pipelines():
        for plan in pipeline.split_points():
            estimate = MODEL.estimate(plan, config).throughput
            simulated = BACKEND.run(plan, config).throughput
            ratio = estimate / simulated
            assert 0.55 < ratio < 1.8, (
                f"{pipeline.name}/{plan.strategy_name}: "
                f"analytic {estimate:.0f} vs DES {simulated:.0f}")


def test_rank_correlation_with_des():
    """Within a pipeline, the analytic ranking matches the DES ranking
    for the top strategy (what screening relies on)."""
    config = RunConfig()
    for pipeline in all_pipelines():
        plans = pipeline.split_points()
        analytic_best = max(
            plans, key=lambda plan: MODEL.estimate(plan, config).throughput)
        des_best = max(
            plans, key=lambda plan: BACKEND.run(plan, config).throughput)
        assert analytic_best.strategy_name == des_best.strategy_name


def test_bottleneck_identification():
    config = RunConfig()
    nlp = get_pipeline("NLP")
    assert MODEL.estimate(nlp.split_at("unprocessed"),
                          config).bottleneck == "gil"
    nilm = get_pipeline("NILM")
    assert MODEL.estimate(nilm.split_at("aggregated"),
                          config).bottleneck == "dispatch"
    cv = get_pipeline("CV")
    assert MODEL.estimate(
        cv.split_at("unprocessed"), config).bottleneck in (
            "metadata", "threads(cpu+io)")


def test_offline_estimate_positive_and_ordered():
    config = RunConfig()
    cv = get_pipeline("CV")
    decoded = MODEL.estimate(cv.split_at("decoded"), config)
    unprocessed = MODEL.estimate(cv.split_at("unprocessed"), config)
    assert unprocessed.offline_seconds == 0.0
    assert decoded.offline_seconds > 0.0


def test_compression_affects_estimate():
    config = RunConfig(compression="GZIP")
    cv = get_pipeline("CV")
    plain = MODEL.estimate(cv.split_at("pixel-centered"), RunConfig())
    compressed = MODEL.estimate(cv.split_at("pixel-centered"), config)
    # Fig. 10a: compression helps the bloated pixel-centered strategy.
    assert compressed.throughput > plain.throughput
    assert compressed.storage_bytes < plain.storage_bytes


def test_unprocessed_compression_rejected():
    with pytest.raises(ProfilingError):
        MODEL.estimate(get_pipeline("CV").split_at("unprocessed"),
                       RunConfig(compression="GZIP"))


def test_environment_swap_changes_estimates():
    ssd_model = AnalyticModel(Environment(storage=SSD_CEPH))
    cv = get_pipeline("CV")
    config = RunConfig()
    hdd = MODEL.estimate(cv.split_at("unprocessed"), config).throughput
    ssd = ssd_model.estimate(cv.split_at("unprocessed"), config).throughput
    assert ssd > 3.0 * hdd
