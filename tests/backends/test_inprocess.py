"""Tests for the in-process backend (real execution, miniature scale)."""

import numpy as np
import pytest

from repro.backends import InProcessBackend, RunConfig
from repro.backends.inprocess import _pack, _unpack
from repro.errors import CodecError, ProfilingError
from repro.pipelines import get_pipeline


@pytest.fixture(scope="module")
def backend():
    with InProcessBackend(sample_count=12, seed=1) as instance:
        yield instance


class TestPacking:
    def test_tensor_round_trip(self):
        array = np.arange(6, dtype=np.float32).reshape(2, 3)
        np.testing.assert_array_equal(_unpack(_pack(array)), array)

    def test_bytes_round_trip(self):
        assert _unpack(_pack(b"raw")) == b"raw"

    def test_str_round_trip(self):
        assert _unpack(_pack("text")) == "text"

    def test_unknown_type_rejected(self):
        with pytest.raises(CodecError):
            _pack(3.14)
        with pytest.raises(CodecError):
            _unpack(b"Zbogus")


class TestExecution:
    def test_all_samples_consumed_every_strategy(self, backend):
        pipeline = get_pipeline("MP3")
        for plan in pipeline.split_points():
            result = backend.run(plan, RunConfig(threads=2))
            assert result.epochs[0].samples == 12

    def test_storage_is_real_bytes_on_disk(self, backend):
        result = backend.run(get_pipeline("NILM").split_at("aggregated"),
                             RunConfig(threads=2))
        assert result.storage_bytes > 0

    def test_nilm_aggregation_shrinks_storage(self, backend):
        """The aggregated representation must be much smaller than the
        decoded one -- with real bytes, not a size model."""
        pipeline = get_pipeline("NILM")
        decoded = backend.run(pipeline.split_at("decoded"),
                              RunConfig(threads=2))
        aggregated = backend.run(pipeline.split_at("aggregated"),
                                 RunConfig(threads=2))
        assert aggregated.storage_bytes < decoded.storage_bytes / 20

    def test_nlp_embedding_blows_up_storage(self, backend):
        pipeline = get_pipeline("NLP")
        bpe = backend.run(pipeline.split_at("bpe-encoded"),
                          RunConfig(threads=2))
        embedded = backend.run(pipeline.split_at("embedded"),
                               RunConfig(threads=2))
        assert embedded.storage_bytes > 100 * bpe.storage_bytes

    def test_compression_reduces_real_bytes(self, backend):
        pipeline = get_pipeline("CV")
        plain = backend.run(pipeline.split_at("pixel-centered"),
                            RunConfig(threads=2))
        compressed = backend.run(
            pipeline.split_at("pixel-centered"),
            RunConfig(threads=2, compression="GZIP"))
        assert compressed.storage_bytes < plain.storage_bytes

    def test_multi_epoch_app_cache(self, backend):
        result = backend.run(
            get_pipeline("FLAC").split_at("spectrogram-encoded"),
            RunConfig(threads=2, epochs=2, cache_mode="application"))
        assert len(result.epochs) == 2
        assert result.epochs[1].served_from_app_cache

    def test_unprocessed_compression_rejected(self, backend):
        with pytest.raises(ProfilingError):
            backend.run(get_pipeline("CV").split_at("unprocessed"),
                        RunConfig(compression="GZIP"))

    def test_offline_result_only_for_materialised(self, backend):
        pipeline = get_pipeline("CV2-JPG")
        assert backend.run(pipeline.split_at("unprocessed"),
                           RunConfig(threads=2)).offline is None
        assert backend.run(pipeline.split_at("decoded"),
                           RunConfig(threads=2)).offline is not None

    def test_cleanup_removes_workdir(self):
        local = InProcessBackend(sample_count=2)
        workdir = local.workdir
        assert workdir.exists()
        local.cleanup()
        assert not workdir.exists()
