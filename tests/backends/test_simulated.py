"""Tests for the discrete-event backend: mechanics and paper orderings."""

import pytest

from repro.backends import Environment, RunConfig, SimulatedBackend
from repro.backends.simulated import partition_jobs
from repro.errors import ProfilingError
from repro.pipelines import get_pipeline
from repro.sim.storage import SSD_CEPH

BACKEND = SimulatedBackend()


def _run(pipeline, strategy, **config):
    plan = get_pipeline(pipeline).split_at(strategy)
    return BACKEND.run(plan, RunConfig(**config))


class TestPartitionJobs:
    def test_all_samples_covered(self):
        plans = partition_jobs(1000, 8, 64)
        total = sum(job.samples for jobs in plans for job in jobs)
        assert total == 1000

    def test_thread_balance(self):
        plans = partition_jobs(1001, 8, 64)
        per_thread = [sum(job.samples for job in jobs) for jobs in plans]
        assert max(per_thread) - min(per_thread) <= 1

    def test_more_threads_than_samples(self):
        plans = partition_jobs(3, 8, 64)
        assert len(plans) == 3

    def test_empty_rejected(self):
        with pytest.raises(ProfilingError):
            partition_jobs(0, 8, 64)

    def test_job_cap_respected(self):
        plans = partition_jobs(10_000, 8, 100)
        assert sum(len(jobs) for jobs in plans) <= 104


class TestRunMechanics:
    def test_unprocessed_has_no_offline_phase(self):
        result = _run("CV", "unprocessed")
        assert result.offline is None
        assert result.preprocessing_seconds == 0.0

    def test_materialised_strategies_pay_offline_time(self):
        result = _run("CV", "resized")
        assert result.offline is not None
        assert result.offline.duration > 0
        assert result.offline.bytes_written == pytest.approx(
            result.storage_bytes, rel=1e-6)

    def test_storage_matches_representation(self):
        pipeline = get_pipeline("CV")
        result = _run("CV", "decoded")
        expected = pipeline.representation("decoded").total_bytes(
            pipeline.sample_count)
        assert result.storage_bytes == pytest.approx(expected, rel=1e-6)

    def test_compression_shrinks_storage(self):
        plain = _run("CV", "pixel-centered")
        compressed = _run("CV", "pixel-centered", compression="GZIP")
        assert compressed.storage_bytes < 0.3 * plain.storage_bytes

    def test_unprocessed_compression_rejected(self):
        with pytest.raises(ProfilingError):
            _run("CV", "unprocessed", compression="GZIP")

    def test_epochs_recorded(self):
        result = _run("NILM", "aggregated", epochs=3, cache_mode="system")
        assert [e.epoch for e in result.epochs] == [0, 1, 2]

    def test_network_reads_match_storage_on_cold_epoch(self):
        result = _run("MP3", "spectrogram-encoded")
        assert result.epochs[0].bytes_from_storage == pytest.approx(
            result.storage_bytes, rel=1e-6)

    def test_deterministic(self):
        first = _run("FLAC", "decoded")
        second = _run("FLAC", "decoded")
        assert first.throughput == pytest.approx(second.throughput)


class TestPaperOrderings:
    """The qualitative results that define the paper's story."""

    def test_cv_resized_is_best_not_full_preprocessing(self):
        """Sec. 4.1 obs. 2: resized beats pixel-centered by ~3x."""
        resized = _run("CV", "resized").throughput
        pixel = _run("CV", "pixel-centered").throughput
        assert resized > 2.0 * pixel

    def test_cv_concatenation_is_a_big_win(self):
        """Table 4: concatenated ~9x unprocessed for CV."""
        unprocessed = _run("CV", "unprocessed").throughput
        concatenated = _run("CV", "concatenated").throughput
        assert 5.0 < concatenated / unprocessed < 13.0

    def test_nlp_bpe_beats_embedded_by_a_wide_margin(self):
        """Sec. 4.1: the embedding step's 64x blow-up makes the fully
        preprocessed NLP strategy far slower than bpe-encoded."""
        bpe = _run("NLP", "bpe-encoded").throughput
        embedded = _run("NLP", "embedded").throughput
        assert bpe > 5.0 * embedded

    def test_nlp_concatenation_useless_under_cpu_bottleneck(self):
        unprocessed = _run("NLP", "unprocessed").throughput
        concatenated = _run("NLP", "concatenated").throughput
        assert concatenated == pytest.approx(unprocessed, rel=0.1)

    def test_last_step_offline_wins_for_nilm_and_audio(self):
        """NILM/MP3/FLAC: the last step is the most expensive, so full
        offline preprocessing gives the best throughput."""
        for pipeline in ("NILM", "MP3", "FLAC"):
            strategies = get_pipeline(pipeline).strategy_names()
            throughputs = [
                _run(pipeline, strategy).throughput
                for strategy in strategies
            ]
            assert throughputs[-1] == max(throughputs)

    def test_never_best_to_not_preprocess_at_all(self):
        """Paper conclusion: unprocessed is never the best strategy."""
        for pipeline in ("CV", "CV2-JPG", "CV2-PNG", "NLP", "NILM",
                         "MP3", "FLAC"):
            strategies = get_pipeline(pipeline).strategy_names()
            throughputs = {
                strategy: _run(pipeline, strategy).throughput
                for strategy in strategies
            }
            assert max(throughputs, key=throughputs.get) != "unprocessed"

    def test_ssd_fixes_cv_random_access_but_not_sequential(self):
        """Table 4: SSD lifts CV unprocessed ~6x; concatenated is
        link-bound so SSD changes nothing."""
        ssd = SimulatedBackend(Environment(storage=SSD_CEPH))
        config = RunConfig()
        cv = get_pipeline("CV")
        hdd_unprocessed = _run("CV", "unprocessed").throughput
        ssd_unprocessed = ssd.run(cv.split_at("unprocessed"),
                                  config).throughput
        assert 3.0 < ssd_unprocessed / hdd_unprocessed < 9.0
        hdd_concat = _run("CV", "concatenated").throughput
        ssd_concat = ssd.run(cv.split_at("concatenated"), config).throughput
        assert ssd_concat == pytest.approx(hdd_concat, rel=0.1)

    def test_ssd_does_not_fix_nlp(self):
        """Table 4: NLP stays at ~6 SPS on SSD (CPU bottleneck)."""
        ssd = SimulatedBackend(Environment(storage=SSD_CEPH))
        result = ssd.run(get_pipeline("NLP").split_at("concatenated"),
                         RunConfig())
        assert result.throughput == pytest.approx(6.0, rel=0.35)


class TestCaching:
    def test_caching_helps_only_if_dataset_fits(self):
        """Sec. 4.2 obs. 1: >80 GB representations see no benefit."""
        big = _run("CV", "pixel-centered", epochs=2, cache_mode="system")
        assert big.epochs[1].throughput == pytest.approx(
            big.epochs[0].throughput, rel=0.05)
        small = _run("CV2-JPG", "pixel-centered", epochs=2,
                     cache_mode="system")
        assert small.epochs[1].throughput > 2.0 * small.epochs[0].throughput

    def test_caching_does_not_remove_cpu_bottlenecks(self):
        """Sec. 4.2 obs. 2: NLP's early strategies stay at 6 SPS."""
        result = _run("NLP", "concatenated", epochs=2, cache_mode="system")
        assert result.epochs[1].throughput == pytest.approx(
            result.epochs[0].throughput, rel=0.05)

    def test_cache_mode_none_drops_between_epochs(self):
        result = _run("CV2-JPG", "resized", epochs=2, cache_mode="none")
        assert result.epochs[1].throughput == pytest.approx(
            result.epochs[0].throughput, rel=0.05)

    def test_app_cache_beats_sys_cache(self):
        """Sec. 4.2 obs. 4 / Table 5: app-level caching skips
        deserialization and wins."""
        sys_cache = _run("CV2-JPG", "pixel-centered", epochs=2,
                         cache_mode="system")
        app_cache = _run("CV2-JPG", "pixel-centered", epochs=2,
                         cache_mode="application")
        assert (app_cache.epochs[1].throughput
                > 2.0 * sys_cache.epochs[1].throughput)

    def test_app_cache_fails_when_dataset_exceeds_ram(self):
        """The paper's CV/NLP last strategies failed to run app-cached."""
        result = _run("CV", "pixel-centered", epochs=2,
                      cache_mode="application")
        assert result.app_cache_failed
        ok = _run("CV2-JPG", "pixel-centered", epochs=2,
                  cache_mode="application")
        assert not ok.app_cache_failed

    def test_page_cache_hit_rate_reported(self):
        result = _run("FLAC", "spectrogram-encoded", epochs=2,
                      cache_mode="system")
        assert result.epochs[1].cache_hit_rate > 0.99


class TestThreading:
    def test_native_pipelines_scale(self):
        """CV concatenated gains substantially from 1 -> 8 threads."""
        single = _run("CV", "concatenated", threads=1).throughput
        eight = _run("CV", "concatenated", threads=8).throughput
        assert 4.0 < eight / single <= 8.0

    def test_gil_pipelines_do_not_scale(self):
        """Fig. 12i: NILM decoded barely gains from threads (external
        steps hold the GIL); contrast with native CV's 4-8x."""
        single = _run("NILM", "decoded", threads=1).throughput
        eight = _run("NILM", "decoded", threads=8).throughput
        assert eight / single < 1.6

    def test_dispatch_bound_strategies_plateau(self):
        """NILM aggregated under system caching (the Fig. 12 condition):
        tiny samples pin throughput near the dispatch limit however many
        threads run (Sec. 4.4 obs. 1)."""
        single = _run("NILM", "aggregated", threads=1, epochs=2,
                      cache_mode="system").epochs[1].throughput
        eight = _run("NILM", "aggregated", threads=8, epochs=2,
                     cache_mode="system").epochs[1].throughput
        assert eight / single < 2.5


class TestShuffleConfig:
    def test_shuffle_costs_throughput_slightly(self):
        plain = _run("MP3", "spectrogram-encoded").throughput
        shuffled = _run("MP3", "spectrogram-encoded",
                        shuffle_buffer=10_000).throughput
        assert shuffled < plain
        assert shuffled > 0.8 * plain
