"""FaultEngine window mechanics against a minimal machine/cluster."""

import pytest

from repro.errors import InjectedFaultError
from repro.faults import (Brownout, DeviceSlowdown, FaultEngine,
                          FaultPlan, StragglerWindow)
from repro.sim.bandwidth import SharedBandwidth
from repro.sim.events import Simulation
from repro.sim.resources import Resource


class _Machine:
    def __init__(self, sim, cores=4):
        self.n_cores = cores
        self.cores = Resource(sim, cores, name="cores")


class _Cluster:
    def __init__(self, sim):
        self.read_link = SharedBandwidth(sim, aggregate_bw=100.0,
                                         per_stream_bw=50.0, name="read")
        self.write_link = SharedBandwidth(sim, aggregate_bw=80.0,
                                          per_stream_bw=40.0, name="write")


def _engine(plan, cores=4):
    sim = Simulation()
    machine = _Machine(sim, cores=cores)
    cluster = _Cluster(sim)
    engine = FaultEngine(plan, sim, machine, cluster)
    engine.start()
    return sim, machine, cluster, engine


class TestEmptyPlan:
    def test_spawns_nothing(self):
        sim, _, _, engine = _engine(FaultPlan())
        assert not engine.enabled
        sim.run()
        assert sim.events_processed == 0
        assert engine.events == []
        assert engine.capacity_stretch() == 1.0

    def test_none_plan_treated_as_empty(self):
        sim = Simulation()
        engine = FaultEngine(None, sim, _Machine(sim), _Cluster(sim))
        engine.start()
        sim.run()
        assert sim.events_processed == 0


class TestStraggler:
    def test_parks_and_releases_cores(self):
        plan = FaultPlan(stragglers=(
            StragglerWindow(start=10.0, duration=20.0, cores=3),))
        sim, machine, _, engine = _engine(plan)
        sim.run(until=15.0)
        assert machine.cores.in_use == 3
        assert engine.active_count == 1
        assert engine.capacity_stretch() == pytest.approx(4.0)
        sim.run()
        assert machine.cores.in_use == 0
        assert engine.active_count == 0
        assert engine.capacity_stretch() == 1.0
        (event,) = engine.events
        assert event.kind == "straggler"
        assert event.start == 10.0
        assert event.magnitude == 3.0

    def test_queues_behind_running_work(self):
        # Cores are busy until t=20: the straggler window opens at 10
        # but only parks cores as they free, like a real slow worker.
        plan = FaultPlan(stragglers=(
            StragglerWindow(start=10.0, duration=30.0, cores=2),))
        sim, machine, _, engine = _engine(plan, cores=2)

        def hog():
            yield machine.cores.acquire()
            yield machine.cores.acquire()
            yield sim.timeout(20.0)
            machine.cores.release()
            machine.cores.release()

        sim.process(hog(), name="hog")
        sim.run(until=15.0)
        assert engine.capacity_stretch() == 1.0   # nothing stolen yet
        sim.run(until=25.0)
        assert machine.cores.in_use == 2          # straggler holds both
        assert engine.capacity_stretch() == float("inf")
        sim.run()
        assert machine.cores.in_use == 0


class TestSlowdown:
    def test_scales_and_restores_read_link(self):
        plan = FaultPlan(slowdowns=(
            DeviceSlowdown(start=10.0, duration=10.0, factor=2.0),))
        sim, _, cluster, engine = _engine(plan)
        sim.run(until=15.0)
        assert cluster.read_link.aggregate_bw == pytest.approx(50.0)
        assert cluster.read_link.per_stream_bw == pytest.approx(25.0)
        assert engine.capacity_stretch() == pytest.approx(2.0)
        sim.run()
        assert cluster.read_link.aggregate_bw == pytest.approx(100.0)
        assert engine.capacity_stretch() == 1.0

    def test_ramp_degrades_in_stages(self):
        plan = FaultPlan(slowdowns=(
            DeviceSlowdown(start=0.0, duration=100.0, factor=5.0,
                           ramp=40.0, ramp_steps=4),))
        sim, _, cluster, _ = _engine(plan)
        sim.run(until=5.0)    # stage 1 applied at t=0: factor 2 of 5
        assert cluster.read_link.aggregate_bw == pytest.approx(100.0 / 2.0)
        sim.run(until=45.0)   # ramp done: full factor
        assert cluster.read_link.aggregate_bw == pytest.approx(20.0)
        sim.run()
        assert cluster.read_link.aggregate_bw == pytest.approx(100.0)


class TestBrownout:
    def test_scales_both_links(self):
        plan = FaultPlan(brownouts=(
            Brownout(start=5.0, duration=10.0, factor=4.0),))
        sim, _, cluster, engine = _engine(plan)
        sim.run(until=10.0)
        assert cluster.read_link.aggregate_bw == pytest.approx(25.0)
        assert cluster.write_link.aggregate_bw == pytest.approx(20.0)
        assert engine.capacity_stretch() == pytest.approx(4.0)
        sim.run()
        assert cluster.read_link.aggregate_bw == pytest.approx(100.0)
        assert cluster.write_link.aggregate_bw == pytest.approx(80.0)

    def test_overlapping_windows_compose(self):
        plan = FaultPlan(
            slowdowns=(DeviceSlowdown(start=0.0, duration=20.0,
                                      factor=2.0),),
            brownouts=(Brownout(start=5.0, duration=10.0, factor=3.0),))
        sim, _, cluster, engine = _engine(plan)
        sim.run(until=10.0)
        assert cluster.read_link.aggregate_bw == pytest.approx(100.0 / 6.0)
        assert engine.capacity_stretch() == pytest.approx(6.0)
        sim.run(until=18.0)   # brownout closed, slowdown still on
        assert cluster.read_link.aggregate_bw == pytest.approx(50.0)


class TestBlackout:
    def test_fails_new_and_inflight_transfers(self):
        plan = FaultPlan(brownouts=(
            Brownout(start=10.0, duration=10.0, factor=100.0,
                     blackout=True),))
        sim, _, cluster, engine = _engine(plan)
        outcomes = []

        def early():
            # In flight when the lights go out (needs ~8s of the link's
            # 50/s per-stream rate, started at t=5).
            try:
                yield cluster.read_link.transfer(400.0)
                outcomes.append("early-ok")
            except InjectedFaultError:
                outcomes.append("early-aborted")

        def during():
            yield sim.timeout(15.0)
            try:
                yield cluster.read_link.transfer(10.0)
                outcomes.append("during-ok")
            except InjectedFaultError:
                outcomes.append("during-failed")

        def after():
            yield sim.timeout(25.0)
            yield cluster.read_link.transfer(10.0)
            outcomes.append("after-ok")

        def starter():
            yield sim.timeout(5.0)
            yield sim.process(early(), name="early")

        sim.process(starter(), name="starter")
        sim.process(during(), name="during")
        sim.process(after(), name="after")
        sim.run()
        assert sorted(outcomes) == ["after-ok", "during-failed",
                                    "early-aborted"]
        assert engine.transfers_aborted == 1
        assert engine.plan.has_blackout

    def test_capacity_stretch_is_infinite_inside_window(self):
        plan = FaultPlan(brownouts=(
            Brownout(start=10.0, duration=10.0, factor=100.0,
                     blackout=True),))
        sim, _, _, engine = _engine(plan)
        sim.run(until=15.0)
        assert engine.capacity_stretch() == float("inf")
        sim.run()
        assert engine.capacity_stretch() == 1.0


class TestBackoffStretch:
    def test_stretches_past_active_brownout(self):
        plan = FaultPlan(brownouts=(
            Brownout(start=10.0, duration=10.0, factor=4.0),))
        sim, _, _, engine = _engine(plan)
        assert engine.stretch_backoff(15.0, 30.0) == pytest.approx(35.0)
        assert engine.stretch_backoff(2.0, 30.0) == 30.0
        assert engine.stretch_backoff(25.0, 30.0) == 30.0
