"""The chaos engine's differential wall, in both directions.

Faults **off** (no plan, or an empty plan) must be byte-identical to a
build without the faults module at all: same event counts, same
rendered reports, same ledger -- at the library level and through the
CLI.  Faults **on** must be a pure function of the seed: running the
same chaos timeline twice reproduces every report byte and every
ledger transition.
"""

from repro.cli import main
from repro.core.report import service_summary
from repro.ctl import Dispatcher
from repro.ctl.report import control_summary, control_table
from repro.faults import FaultPlan, generate_fault_plan
from repro.serve import PreprocessingService, generate_trace


def _chain(report):
    return [(entry.job_id, entry.event, entry.time, entry.detail)
            for entry in report.ledger.entries]


class TestFaultsOffIsByteIdentical:
    def test_empty_plan_adds_zero_events_to_the_service(self):
        trace = generate_trace("steady", tenants=4, seed=3)
        plain = PreprocessingService(policy="fifo", slots=2).run(trace)
        armed = PreprocessingService(policy="fifo", slots=2,
                                     faults=FaultPlan()).run(trace)
        assert armed.events_processed == plain.events_processed
        assert armed.makespan == plain.makespan
        assert service_summary(armed) == service_summary(plain)
        assert list(armed.fault_events) == list(plain.fault_events) == []

    def test_empty_plan_adds_zero_events_to_the_control_plane(self):
        trace = generate_trace("steady", tenants=4, seed=3)
        base = Dispatcher(policy="fifo", slots=2).run(trace)
        armed = Dispatcher(policy="fifo", slots=2,
                           faults=FaultPlan()).run(trace)
        assert armed.events_processed == base.events_processed
        assert control_summary(armed) == control_summary(base)
        assert _chain(armed) == _chain(base)

    def test_disabled_faults_flag_leaves_ctl_stdout_untouched(self, capsys):
        # All-zero window counts disable the engine even when tuning
        # knobs are set: the flagged run is the unflagged run.
        argv = ["ctl", "--tenants", "3", "--policy", "fifo",
                "--trace", "steady", "--seed", "2"]
        assert main(argv) == 0
        base = capsys.readouterr().out
        assert main(argv + ["--faults", "severity=0.9,horizon=50"]) == 0
        assert capsys.readouterr().out == base


class TestChaosIsDeterministic:
    def _run(self):
        trace = generate_trace("bursty", tenants=4, seed=5)
        plan = generate_fault_plan(9, 2000.0, stragglers=1, slowdowns=1,
                                   brownouts=1, blackouts=1,
                                   crash_windows=1, severity=0.6)
        dispatcher = Dispatcher(policy="cache-aware", slots=2,
                                faults=plan, checkpoint_epochs=2,
                                shed_slo=True)
        return dispatcher.run(trace)

    def test_same_seed_reproduces_the_run_byte_for_byte(self):
        first, second = self._run(), self._run()
        assert first.events_processed == second.events_processed
        assert first.service.makespan == second.service.makespan
        assert control_summary(first) == control_summary(second)
        assert (control_table(first).to_markdown()
                == control_table(second).to_markdown())
        assert _chain(first) == _chain(second)
        assert (list(first.service.fault_events)
                == list(second.service.fault_events))
        assert first.service.fault_events       # the plan actually bit
