"""SLO-aware admission shedding: the analytic gate decision."""

from repro.faults import slo_shed_decision


class TestSloShedDecision:
    def test_healthy_capacity_admits(self):
        assert slo_shed_decision(10.0, 30.0, 1.0) is None

    def test_degraded_but_within_slo_admits(self):
        # Predicted 20s against a 30s SLO: still feasible.
        assert slo_shed_decision(10.0, 30.0, 2.0) is None

    def test_degraded_past_slo_sheds(self):
        reason = slo_shed_decision(10.0, 30.0, 4.0)
        assert reason is not None
        assert reason.startswith("slo-shed:")
        assert "40.000s" in reason
        assert "4.00x" in reason

    def test_blackout_sheds_with_dedicated_reason(self):
        reason = slo_shed_decision(10.0, 30.0, float("inf"))
        assert reason is not None
        assert "blackout" in reason

    def test_missing_baseline_or_slo_admits(self):
        assert slo_shed_decision(0.0, 30.0, 100.0) is None
        assert slo_shed_decision(10.0, 0.0, 100.0) is None
