"""Property test: control-plane invariants survive chaos timelines.

The companion to ``tests/ctl/test_properties.py``: the same ledger
invariants, but with the failure source being a seeded fault plan
(stragglers, slowdowns, brownouts, blackouts, crash windows) instead of
per-job injected crashes:

* legal transitions only, dense sequence numbers, monotone clock;
* no lost jobs -- every submission reaches a terminal state even when
  windows abort its transfers mid-flight;
* DLQ iff attempts exhausted, regardless of what failed the attempts;
* lost-epoch accounting -- replay cost is only ever charged when a
  checkpoint interval is configured;
* SLO shedding lands jobs in CANCELLED, inside the outcome partition.

Uses hypothesis when available (derandomized); otherwise a fixed-seed
random sweep over the same generator.
"""

import random

from repro.ctl import (DEADLETTER, TERMINAL_STATES, Dispatcher,
                       RetryPolicy)
from repro.ctl import ledger as lc
from repro.ctl.ledger import next_state
from repro.faults import generate_fault_plan
from repro.serve import JobSpec

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is optional
    HAVE_HYPOTHESIS = False

N_EXAMPLES = 12

POLICIES = ("fifo", "fair-share", "cache-aware")
HORIZON = 1500.0


def make_scenario(policy_index, slots, max_attempts, fault_seed, counts,
                  checkpoint, shed, preempt, jobs):
    """Build a dispatcher under a drawn chaos timeline.

    ``counts`` is ``(stragglers, slowdowns, brownouts, blackouts,
    crash_windows)``; ``jobs`` is a sequence of ``(tenant_index,
    arrival, epochs)`` tuples.
    """
    plan = generate_fault_plan(
        fault_seed, HORIZON, stragglers=counts[0], slowdowns=counts[1],
        brownouts=counts[2], blackouts=counts[3],
        crash_windows=counts[4], severity=0.6)
    dispatcher = Dispatcher(
        policy=POLICIES[policy_index], slots=slots,
        faults=plan or None, checkpoint_epochs=checkpoint,
        shed_slo=shed, preempt=preempt,
        retry=RetryPolicy(max_attempts=max_attempts, backoff_base=5.0,
                          backoff_factor=2.0))
    for tenant, arrival, epochs in jobs:
        dispatcher.submit(JobSpec(
            tenant=f"t{tenant}", pipeline="MP3",
            split="spectrogram-encoded", arrival=float(arrival),
            epochs=epochs))
    return dispatcher


def check_invariants(dispatcher):
    report = dispatcher.run()
    ledger = report.ledger
    max_attempts = dispatcher.retry_policy.max_attempts

    # Event order matches simulation time: dense seq, monotone clock.
    times = [entry.time for entry in ledger.entries]
    assert [entry.seq for entry in ledger.entries] == \
        list(range(len(ledger)))
    assert times == sorted(times)

    # Legal transitions only: replay every entry from scratch.
    state = {}
    for entry in ledger.entries:
        assert entry.from_state == state.get(entry.job_id, lc.NEW)
        assert entry.to_state == next_state(entry.from_state, entry.event)
        state[entry.job_id] = entry.to_state

    # No lost jobs: every submission shows up and terminates.
    assert set(state) == {record.job_id for record in report.records}
    for record in report.records:
        final = state[record.job_id]
        assert final in TERMINAL_STATES
        assert ledger.state(record.job_id) == final
        # These jobs carry no injected crash: only the fault plan
        # (crash windows, blackout-aborted transfers) can fail them.
        if record.failures:
            assert dispatcher.fault_plan
        # DLQ iff the retry budget is exhausted.
        assert (final == DEADLETTER) == (record.failures == max_attempts)
        assert record.failures <= max_attempts
        # Shed jobs are cancellations, and vice versa stay counted.
        if record.shed:
            assert final == lc.CANCELLED
    assert sorted(ledger.dead_letters()) == \
        sorted(letter.job_id for letter in report.dead_letters)

    # Replay cost is only charged under a checkpoint interval.
    assert report.total_lost_epochs == sum(
        record.lost_epochs for record in report.records)
    if dispatcher.checkpoint_epochs == 0:
        assert report.total_lost_epochs == 0
    assert report.total_shed == sum(
        1 for record in report.records if record.shed)

    # The report's outcome partition covers every job exactly once.
    assert (report.succeeded + report.cancelled + report.dead
            == report.submitted == len(report.records))


def test_full_chaos_timeline_keeps_invariants():
    """One pinned worst case: every window shape at once, shedding and
    checkpointing on, preemption armed."""
    dispatcher = make_scenario(
        2, 2, 2, 3, (1, 1, 1, 1, 1), 2, True, True,
        [(0, 0, 3), (1, 5, 2), (0, 10, 3), (1, 15, 1)])
    check_invariants(dispatcher)


if HAVE_HYPOTHESIS:
    counts_strategy = st.tuples(
        st.integers(0, 1), st.integers(0, 1), st.integers(0, 1),
        st.integers(0, 1), st.integers(0, 1))

    job_strategy = st.tuples(
        st.integers(0, 1),                       # tenant
        st.integers(0, 30),                      # arrival
        st.integers(1, 3))                       # epochs

    scenario_strategy = st.tuples(
        st.integers(0, len(POLICIES) - 1),
        st.integers(1, 2),                       # slots
        st.integers(1, 3),                       # retry budget
        st.integers(0, 3),                       # fault seed
        counts_strategy,
        st.integers(0, 2),                       # checkpoint interval
        st.booleans(),                           # SLO shedding on?
        st.booleans(),                           # preemption on?
        st.lists(job_strategy, min_size=1, max_size=4))

    @given(scenario_strategy)
    @settings(max_examples=N_EXAMPLES, derandomize=True, deadline=None)
    def test_invariants_hold_under_fault_interleavings(scenario):
        check_invariants(make_scenario(*scenario))

else:  # pragma: no cover - exercised only without hypothesis
    def test_invariants_hold_under_fault_interleavings():
        rng = random.Random(0xFA17)
        for _ in range(N_EXAMPLES):
            jobs = [(rng.randint(0, 1), rng.randint(0, 30),
                     rng.randint(1, 3))
                    for _ in range(rng.randint(1, 4))]
            counts = tuple(rng.randint(0, 1) for _ in range(5))
            check_invariants(make_scenario(
                rng.randrange(len(POLICIES)), rng.randint(1, 2),
                rng.randint(1, 3), rng.randint(0, 3), counts,
                rng.randint(0, 2), rng.random() < 0.5,
                rng.random() < 0.5, jobs))
