"""Checkpoint-aware recovery: resume epochs, replay cost, stretched
backoff.

A crashed or preempted attempt resumes from the last checkpoint
(``checkpoint_epochs = k``) and the finished epochs past it are charged
as lost work; with ``k = 0`` the historical model holds (crashes
restart from scratch for free, preemptions resume in place).  Retry
backoff stretches past an active brownout so attempts are not burned
into a degraded tier.
"""

import types

import pytest

from repro.ctl import Dispatcher, RetryPolicy
from repro.ctl import ledger as lc
from repro.errors import ControlError
from repro.faults import Brownout, CrashWindow, FaultPlan
from repro.serve import JobSpec


def _job(epochs=4, crash_epoch=None, crash_attempts=1, arrival=0.0):
    return JobSpec(tenant="t0", pipeline="MP3",
                   split="spectrogram-encoded", epochs=epochs,
                   arrival=arrival, crash_epoch=crash_epoch,
                   crash_attempts=crash_attempts)


class TestCheckpointResume:
    def test_crash_resumes_from_last_checkpoint(self):
        dispatcher = Dispatcher(slots=1, checkpoint_epochs=2,
                                retry=RetryPolicy(max_attempts=3,
                                                  backoff_base=30.0))
        job_id = dispatcher.submit(_job(epochs=4, crash_epoch=3))
        report = dispatcher.run()
        record = report.record(job_id)
        assert report.succeeded == 1
        assert record.failures == 1
        assert record.resume_epoch == 2      # last multiple of 2 before 3
        assert record.lost_epochs == 1       # epoch 2 was done, replayed
        assert report.total_lost_epochs == 1

    def test_without_checkpoints_a_crash_restarts_from_scratch(self):
        dispatcher = Dispatcher(slots=1,
                                retry=RetryPolicy(max_attempts=3,
                                                  backoff_base=30.0))
        job_id = dispatcher.submit(_job(epochs=4, crash_epoch=3))
        report = dispatcher.run()
        record = report.record(job_id)
        assert report.succeeded == 1
        assert record.resume_epoch == 0
        assert record.lost_epochs == 0       # historical free model
        assert report.total_lost_epochs == 0

    def test_resume_arithmetic_charges_replay(self):
        dispatcher = Dispatcher(checkpoint_epochs=3)
        record = types.SimpleNamespace(lost_epochs=0)
        assert dispatcher._resume_epoch(record, 7, crashed=True) == 6
        assert record.lost_epochs == 1
        assert dispatcher._resume_epoch(record, 7, crashed=False) == 6
        assert record.lost_epochs == 2
        # Interrupted exactly on a checkpoint: nothing to replay.
        assert dispatcher._resume_epoch(record, 6, crashed=True) == 6
        assert record.lost_epochs == 2

    def test_zero_interval_keeps_historical_model(self):
        dispatcher = Dispatcher()
        record = types.SimpleNamespace(lost_epochs=0)
        assert dispatcher._resume_epoch(record, 7, crashed=True) == 0
        assert dispatcher._resume_epoch(record, 7, crashed=False) == 7
        assert record.lost_epochs == 0

    def test_negative_interval_rejected(self):
        with pytest.raises(ControlError):
            Dispatcher(checkpoint_epochs=-1)


class TestCrashWindow:
    def test_window_fails_the_epoch_and_replay_is_charged(self):
        # The MP3/spectrogram-encoded job reaches its epoch boundaries
        # around t in [207, 212]; this window catches exactly epoch 3.
        plan = FaultPlan(crash_windows=(
            CrashWindow(start=211.0, duration=49.0),))
        dispatcher = Dispatcher(slots=1, faults=plan, checkpoint_epochs=2,
                                retry=RetryPolicy(max_attempts=3,
                                                  backoff_base=60.0))
        job_id = dispatcher.submit(_job(epochs=4))
        report = dispatcher.run()
        record = report.record(job_id)
        (fail,) = [entry for entry in report.ledger.entries
                   if entry.event == lc.FAIL]
        assert "crash window" in fail.detail
        assert record.failures == 1
        assert record.resume_epoch == 2
        assert record.lost_epochs == 1
        assert report.succeeded == 1


class TestStretchedBackoff:
    def test_retry_waits_out_an_active_brownout(self):
        plan = FaultPlan(brownouts=(
            Brownout(start=0.0, duration=900.0, factor=2.0),))
        dispatcher = Dispatcher(slots=1, faults=plan,
                                retry=RetryPolicy(max_attempts=3,
                                                  backoff_base=30.0))
        job_id = dispatcher.submit(_job(epochs=2, crash_epoch=0))
        report = dispatcher.run()
        (retry,) = [entry for entry in report.ledger.entries
                    if entry.event == lc.RETRY]
        assert "stretched to" in retry.detail
        assert "(brownout active)" in retry.detail
        assert retry.time >= 900.0           # re-admitted after the window
        assert report.record(job_id).failures == 1
        assert report.succeeded == 1

    def test_backoff_unchanged_outside_any_window(self):
        plan = FaultPlan(brownouts=(
            Brownout(start=5000.0, duration=100.0, factor=2.0),))
        dispatcher = Dispatcher(slots=1, faults=plan,
                                retry=RetryPolicy(max_attempts=3,
                                                  backoff_base=30.0))
        dispatcher.submit(_job(epochs=2, crash_epoch=0))
        report = dispatcher.run()
        (retry,) = [entry for entry in report.ledger.entries
                    if entry.event == lc.RETRY]
        assert retry.detail == "backoff 30s"
        assert report.succeeded == 1
