"""Fault-plan construction: validation, seeding, determinism."""

import pytest

from repro.errors import FaultError
from repro.faults import (Brownout, CrashWindow, DeviceSlowdown,
                          FaultPlan, StragglerWindow, generate_fault_plan)


class TestWindows:
    def test_end_and_describe(self):
        window = StragglerWindow(start=10.0, duration=5.0, cores=2)
        assert window.end == 15.0
        assert "2 core" in window.describe()

    def test_negative_start_rejected(self):
        with pytest.raises(FaultError):
            StragglerWindow(start=-1.0, duration=5.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(FaultError):
            DeviceSlowdown(start=0.0, duration=0.0)

    def test_slowdown_factor_must_degrade(self):
        with pytest.raises(FaultError):
            DeviceSlowdown(start=0.0, duration=5.0, factor=1.0)

    def test_slowdown_ramp_must_fit_window(self):
        with pytest.raises(FaultError):
            DeviceSlowdown(start=0.0, duration=5.0, factor=2.0, ramp=5.0)

    def test_brownout_kind(self):
        assert Brownout(start=0.0, duration=1.0).kind == "brownout"
        assert Brownout(start=0.0, duration=1.0,
                        blackout=True).kind == "blackout"

    def test_active_at_is_half_open(self):
        window = Brownout(start=10.0, duration=5.0)
        assert not window.active_at(9.999)
        assert window.active_at(10.0)
        assert window.active_at(14.999)
        assert not window.active_at(15.0)

    def test_straggler_needs_a_core(self):
        with pytest.raises(FaultError):
            StragglerWindow(start=0.0, duration=1.0, cores=0)


class TestFaultPlan:
    def test_empty_plan_is_falsy(self):
        plan = FaultPlan()
        assert not plan
        assert plan.fault_count == 0
        assert not plan.has_blackout

    def test_crash_active_finds_covering_window(self):
        plan = FaultPlan(crash_windows=(
            CrashWindow(start=10.0, duration=5.0),
            CrashWindow(start=30.0, duration=5.0)))
        assert plan.crash_active(12.0).start == 10.0
        assert plan.crash_active(20.0) is None
        assert plan.crash_active(31.0).start == 30.0

    def test_brownout_end_covers_active_window_only(self):
        plan = FaultPlan(brownouts=(
            Brownout(start=10.0, duration=5.0),))
        assert plan.brownout_end(12.0) == 15.0
        assert plan.brownout_end(20.0) == 0.0

    def test_describe_lists_windows(self):
        plan = FaultPlan(stragglers=(
            StragglerWindow(start=1.0, duration=2.0),))
        assert "straggler" in plan.describe()


class TestGenerate:
    def test_zero_counts_yield_empty_plan(self):
        assert not generate_fault_plan(0, 100.0)

    def test_counts_respected(self):
        plan = generate_fault_plan(7, 10_000.0, stragglers=2, slowdowns=3,
                                   brownouts=1, blackouts=1,
                                   crash_windows=2)
        assert len(plan.stragglers) == 2
        assert len(plan.slowdowns) == 3
        # Blackouts ride in the brownout tuple, flagged.
        assert len(plan.brownouts) == 2
        assert sum(w.blackout for w in plan.brownouts) == 1
        assert len(plan.crash_windows) == 2
        assert plan.fault_count == 9
        assert plan.has_blackout

    def test_same_seed_same_plan(self):
        kwargs = dict(stragglers=1, slowdowns=2, brownouts=1,
                      blackouts=1, crash_windows=1, severity=0.7)
        assert generate_fault_plan(42, 5000.0, **kwargs) == \
            generate_fault_plan(42, 5000.0, **kwargs)

    def test_different_seed_different_plan(self):
        assert generate_fault_plan(1, 5000.0, brownouts=2) != \
            generate_fault_plan(2, 5000.0, brownouts=2)

    def test_windows_sorted_and_inside_horizon(self):
        plan = generate_fault_plan(3, 2000.0, stragglers=4, slowdowns=4,
                                   brownouts=4, crash_windows=4)
        for group in (plan.stragglers, plan.slowdowns, plan.brownouts,
                      plan.crash_windows):
            starts = [w.start for w in group]
            assert starts == sorted(starts)
            for window in group:
                assert 0.0 <= window.start
                assert window.end <= 2000.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(FaultError):
            generate_fault_plan(0, 100.0, stragglers=-1)
        with pytest.raises(FaultError):
            generate_fault_plan(0, 0.0, stragglers=1)
        with pytest.raises(FaultError):
            generate_fault_plan(0, 100.0, stragglers=1, severity=0.0)
        with pytest.raises(FaultError):
            generate_fault_plan(0, 100.0, stragglers=1, severity=1.5)
        with pytest.raises(FaultError):
            generate_fault_plan(0, 100.0, stragglers=1, cores=0)

    def test_straggler_leaves_one_core(self):
        for seed in range(20):
            plan = generate_fault_plan(seed, 1000.0, stragglers=3,
                                       severity=1.0, cores=8)
            for window in plan.stragglers:
                assert 1 <= window.cores <= 7
