"""``faults:`` spec section and the ``--faults`` CLI parser.

Covers FaultsSpec validation and plan resolution, the spec-tree wiring
(round trip, unknown keys, kind gating) and the fingerprint contract:
a disabled faults section never moves a digest; an enabled one always
does.
"""

import pytest

from repro.api import ExperimentSpec, FaultsSpec
from repro.cli import _parse_faults
from repro.errors import ReproError, SpecError


class TestFaultsSpec:
    def test_defaults_are_disabled(self):
        spec = FaultsSpec()
        assert not spec.enabled
        spec.validate()

    def test_any_window_count_enables(self):
        for field in ("stragglers", "slowdowns", "brownouts",
                      "blackouts", "crash_windows"):
            assert FaultsSpec(**{field: 1}).enabled

    @pytest.mark.parametrize("kwargs", [
        dict(stragglers=-1),
        dict(slowdowns=1.5),
        dict(severity=0.0),
        dict(severity=1.5),
        dict(horizon=0.0),
        dict(checkpoint_epochs=-1),
        dict(shed_slo="yes"),
    ])
    def test_validation_rejects(self, kwargs):
        with pytest.raises(SpecError):
            FaultsSpec(**kwargs).validate()

    def test_to_plan_disabled_is_none(self):
        assert FaultsSpec().to_plan(seed=1) is None
        assert FaultsSpec(severity=0.9, horizon=10.0).to_plan(seed=1) \
            is None

    def test_to_plan_draws_the_seeded_plan(self):
        spec = FaultsSpec(stragglers=2, brownouts=1, blackouts=1,
                          horizon=5000.0, severity=0.7)
        plan = spec.to_plan(seed=4, cores=8)
        assert len(plan.stragglers) == 2
        assert len(plan.brownouts) == 2      # blackouts ride flagged
        assert plan.has_blackout
        assert plan == spec.to_plan(seed=4, cores=8)
        assert plan != spec.to_plan(seed=5, cores=8)


class TestSpecTree:
    def test_round_trip_preserves_the_section(self):
        spec = ExperimentSpec.from_dict({
            "kind": "control",
            "faults": {"stragglers": 1, "blackouts": 1,
                       "severity": 0.6, "horizon": 9000.0,
                       "checkpoint_epochs": 2, "shed_slo": True},
        })
        assert spec.faults == FaultsSpec(
            stragglers=1, blackouts=1, severity=0.6, horizon=9000.0,
            checkpoint_epochs=2, shed_slo=True)
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_faults_key_rejected(self):
        with pytest.raises(SpecError, match="bogus"):
            ExperimentSpec.from_dict({"kind": "control",
                                      "faults": {"bogus": 1}})

    def test_faults_only_on_simulated_service_kinds(self):
        with pytest.raises(SpecError, match="serve/control/stream"):
            ExperimentSpec(kind="sweep",
                           faults=FaultsSpec(stragglers=1)).validate()
        ExperimentSpec(kind="stream",
                       faults=FaultsSpec(stragglers=1)).validate()

    def test_fail_stop_shapes_need_the_control_plane(self):
        for kwargs in (dict(blackouts=1), dict(crash_windows=1)):
            with pytest.raises(SpecError, match="retry path"):
                ExperimentSpec(kind="serve",
                               faults=FaultsSpec(**kwargs)).validate()
            ExperimentSpec(kind="control",
                           faults=FaultsSpec(**kwargs)).validate()

    def test_recovery_knobs_need_the_control_plane(self):
        for kwargs in (dict(checkpoint_epochs=2), dict(shed_slo=True)):
            with pytest.raises(SpecError, match="control-plane knobs"):
                ExperimentSpec(kind="stream",
                               faults=FaultsSpec(**kwargs)).validate()


class TestFingerprint:
    def test_disabled_section_never_moves_the_digest(self):
        base = ExperimentSpec(kind="control").fingerprint()
        tuned = ExperimentSpec(
            kind="control",
            faults=FaultsSpec(severity=0.9, horizon=50.0)).fingerprint()
        assert tuned == base

    def test_enabled_section_always_moves_the_digest(self):
        base = ExperimentSpec(kind="control").fingerprint()
        armed = ExperimentSpec(
            kind="control",
            faults=FaultsSpec(stragglers=1)).fingerprint()
        heavier = ExperimentSpec(
            kind="control",
            faults=FaultsSpec(stragglers=2)).fingerprint()
        assert len({base, armed, heavier}) == 3


class TestCliParser:
    def test_none_and_empty_disable(self):
        assert _parse_faults(None) == FaultsSpec()
        assert _parse_faults("") == FaultsSpec()

    def test_full_spec_with_dashed_keys(self):
        spec = _parse_faults("stragglers=2,slowdowns=1,brownouts=1,"
                             "blackouts=1,crash-windows=1,severity=0.6,"
                             "horizon=9000,checkpoint-epochs=2,"
                             "shed-slo=true")
        assert spec == FaultsSpec(stragglers=2, slowdowns=1, brownouts=1,
                                  blackouts=1, crash_windows=1,
                                  severity=0.6, horizon=9000.0,
                                  checkpoint_epochs=2, shed_slo=True)

    def test_underscored_keys_and_whitespace_accepted(self):
        assert _parse_faults(" crash_windows = 1 , shed_slo = on ") == \
            FaultsSpec(crash_windows=1, shed_slo=True)

    def test_falsy_shed_slo_strings(self):
        assert _parse_faults("shed-slo=0").shed_slo is False
        assert _parse_faults("shed-slo=off").shed_slo is False

    def test_unknown_key_rejected_with_the_valid_list(self):
        with pytest.raises(ReproError, match="crash-windows"):
            _parse_faults("stragglers=1,bogus=2")

    def test_missing_separator_rejected(self):
        with pytest.raises(ReproError, match="key=value"):
            _parse_faults("stragglers")

    def test_bad_value_rejected(self):
        with pytest.raises(ReproError, match="stragglers"):
            _parse_faults("stragglers=two")
