"""Tests for the Session facade: plan -> run -> artifact."""

import pytest

from repro.api import (ExecSpec, ExperimentSpec, RunSpec, ServeSpec,
                       Session, comparison_frame)


def test_profile_artifact_matches_cli_output(capsys):
    from repro.cli import main
    assert main(["profile", "MP3"]) == 0
    cli_stdout = capsys.readouterr().out
    artifact = Session(stderr=None).run(
        ExperimentSpec(kind="profile", pipelines=("MP3",)))
    assert artifact.report + "\n" == cli_stdout
    assert len(artifact.frame) == 3
    assert artifact.events_processed > 0
    assert artifact.provenance.kind == "profile"
    assert artifact.provenance.version
    assert artifact.provenance.spec["pipelines"] == ["MP3"]


def test_plan_counts_match_execution():
    spec = ExperimentSpec(kind="sweep", pipelines=("MP3", "FLAC"))
    session = Session(stderr=None)
    plan = session.plan(spec)
    assert [p.name for p in plan.pipelines] == ["MP3", "FLAC"]
    assert plan.job_count == 6
    assert plan.fingerprint == spec.fingerprint()
    artifact = plan.run(session)
    assert len(artifact.frame) == plan.job_count
    assert artifact.fingerprint == plan.fingerprint
    # The event estimate is order-of-magnitude, not exact.
    assert 0.1 < artifact.events_processed / plan.estimated_events < 10


def test_tune_plan_job_count_matches_execution_exactly():
    """The plan runs the real analytic screen (split-point coverage
    included), so planned and profiled strategy counts are identical."""
    spec = ExperimentSpec(kind="tune", pipelines=("CV",))
    session = Session(stderr=None)
    plan = session.plan(spec)
    artifact = session.run(spec)
    assert plan.job_count == len(artifact.frame)


def test_diagnose_plan_reports_verification_as_upper_bound():
    from repro.api import DiagnoseSpec
    spec = ExperimentSpec(kind="diagnose", pipelines=("MP3",),
                          diagnose=DiagnoseSpec(verify_top=10))
    plan = Session(stderr=None).plan(spec)
    assert plan.job_count == 3  # exactly the profiling jobs
    assert plan.verify_jobs == 10
    assert "up to 10" in plan.describe()


def test_plan_describe_is_inspectable():
    plan = Session().plan(ExperimentSpec(kind="serve", seed=4,
                                         serve=ServeSpec(tenants=12)))
    text = plan.describe()
    assert "experiment: serve" in text
    assert "12 tenants" in text
    assert "bursty" not in text  # default trace is steady
    assert f"fingerprint: {plan.fingerprint}" in text
    assert "estimated kernel events" in text


def test_serve_artifact_counts_kernel_events():
    artifact = Session(stderr=None).run(ExperimentSpec(
        kind="serve", serve=ServeSpec(tenants=2, slots=2),
        run=RunSpec(epochs=1)))
    assert artifact.events_processed > 0
    assert "## serve: 2 tenants" in artifact.report
    assert "tenant" in artifact.frame.columns


def test_tune_artifact():
    artifact = Session(stderr=None).run(ExperimentSpec(
        kind="tune", pipelines=("NILM",)))
    assert "best =" in artifact.report
    assert "throughput_sps" in artifact.frame.columns
    assert artifact.events_processed > 0


def test_fanout_artifact():
    artifact = Session(stderr=None).run(ExperimentSpec(
        kind="fanout", pipelines=("NILM",)))
    assert "fanning out NILM/" in artifact.report
    assert "delivered_sps" in artifact.frame.columns


def test_fanout_simulate_counts_events_and_respects_environment():
    from repro.api import EnvironmentSpec, FanoutSpec
    spec = ExperimentSpec(kind="fanout", pipelines=("MP3",),
                          fanout=FanoutSpec(strategy="unprocessed",
                                            trainers=(1, 2),
                                            simulate=True))
    session = Session(stderr=None)
    hdd = session.run(spec)
    assert hdd.events_processed > 0
    ssd = session.run(spec.with_overrides(
        environment=EnvironmentSpec(storage="ceph-ssd")))
    assert ssd.report != hdd.report  # the storage device matters


def test_diagnose_verify_events_are_counted():
    from repro.api import DiagnoseSpec
    session = Session(stderr=None)
    base = session.run(ExperimentSpec(kind="diagnose",
                                      pipelines=("MP3",)))
    verified = session.run(ExperimentSpec(
        kind="diagnose", pipelines=("MP3",),
        diagnose=DiagnoseSpec(verify_top=2)))
    assert verified.events_processed > base.events_processed


def test_session_cache_note_and_reuse(tmp_path, capsys):
    spec = ExperimentSpec(
        kind="profile", pipelines=("MP3",),
        executor=ExecSpec(jobs=2, cache_dir=str(tmp_path / "c")))
    first = Session().run(spec)
    assert "0 hits / 3 lookups" in capsys.readouterr().err
    second = Session().run(spec)
    assert "3 hits / 3 lookups (100%)" in capsys.readouterr().err
    assert second.report == first.report
    # Cached profiles restore the deterministic event counts too.
    assert second.events_processed == first.events_processed > 0


def test_last_artifact_is_retained():
    session = Session(stderr=None)
    assert session.last_artifact is None
    artifact = session.run(ExperimentSpec(kind="profile",
                                          pipelines=("MP3",)))
    assert session.last_artifact is artifact


def test_invalid_spec_is_rejected_before_running():
    from repro.errors import SpecError
    with pytest.raises(SpecError):
        Session(stderr=None).run(ExperimentSpec(kind="profile"))


def test_comparison_frame_composes_workloads():
    session = Session(stderr=None)
    profile = session.run(ExperimentSpec(kind="profile",
                                         pipelines=("MP3",),
                                         name="mp3-profile"))
    serve = session.run(ExperimentSpec(
        kind="serve", serve=ServeSpec(tenants=2), run=RunSpec(epochs=1)))
    combined = comparison_frame([profile, serve])
    assert len(combined) == len(profile.frame) + len(serve.frame)
    assert set(combined["workload"]) == {"profile", "serve"}
    assert "mp3-profile" in combined["experiment"]
    # Columns union: profile rows have no 'tenant', serve rows do.
    assert "tenant" in combined.columns
    assert "throughput_sps" in combined.columns
