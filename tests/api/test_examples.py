"""The shipped example specs stay valid and reproduce their subcommands.

Acceptance contract of the declarative API: ``presto run`` on each spec
in ``examples/experiments/`` produces the same report (and the same
spec fingerprint in provenance) as the equivalent classic subcommand.
The cheap validity half (every example loads and plans) runs for all
files; the execution-equivalence half runs the real workloads, the
64-tenant serve scenario included.
"""

from pathlib import Path

import pytest

from repro.api import Session, build_plan, load_spec

EXAMPLES_DIR = Path(__file__).resolve().parents[2] \
    / "examples" / "experiments"

#: Example spec -> the classic subcommand argv it must reproduce.
EQUIVALENTS = {
    "sweep_cv.json": ["sweep", "--quiet", "--pipelines", "CV"],
    "diagnose_verify_flac.json": ["diagnose", "FLAC", "--verify-top", "2"],
    "serve_bursty_64.yaml": ["serve", "--tenants", "64", "--trace",
                             "bursty", "--policy", "cache-aware",
                             "--slots", "16", "--seed", "0"],
    "control_faulty_8.yaml": ["ctl", "--tenants", "8", "--trace",
                              "steady", "--policy", "fair-share",
                              "--fault-rate", "0.25",
                              "--admission-limit", "2", "--autoscale",
                              "--max-slots", "4", "--seed", "1"],
}


def example_files() -> list:
    return sorted(EXAMPLES_DIR.glob("*.*"))


def test_examples_directory_is_populated():
    names = [path.name for path in example_files()]
    assert set(EQUIVALENTS) <= set(names)


@pytest.mark.parametrize("path", example_files(),
                         ids=lambda path: path.name)
def test_every_shipped_example_loads_and_plans(path):
    plan = build_plan(load_spec(path))
    assert plan.job_count > 0
    assert plan.fingerprint
    assert plan.describe()


@pytest.mark.parametrize("name", sorted(EQUIVALENTS))
def test_run_reproduces_the_equivalent_subcommand(name, capsys):
    from repro.cli import main
    spec_path = EXAMPLES_DIR / name
    assert main(["run", str(spec_path)]) == 0
    via_spec = capsys.readouterr().out
    assert main(EQUIVALENTS[name]) == 0
    via_flags = capsys.readouterr().out
    assert via_spec == via_flags


class _Stop(Exception):
    """Abort the shim after capturing its spec (no execution)."""


@pytest.mark.parametrize("name", sorted(EQUIVALENTS))
def test_example_fingerprint_matches_the_shim_spec(name, monkeypatch):
    """The spec file and the CLI shim describe the same experiment."""
    from repro import cli
    spec = load_spec(EXAMPLES_DIR / name)
    captured = {}

    def capture(self, shim_spec):
        captured["fingerprint"] = shim_spec.fingerprint()
        raise _Stop()

    monkeypatch.setattr(Session, "run", capture)
    args = cli._build_parser().parse_args(EQUIVALENTS[name])
    with pytest.raises(_Stop):
        cli._dispatch(args)
    assert captured["fingerprint"] == spec.fingerprint()
