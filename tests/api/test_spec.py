"""Unit tests for the ExperimentSpec tree (repro.api.spec)."""

import pytest

from repro.api import (DiagnoseSpec, EnvironmentSpec, ExecSpec,
                       ExperimentSpec, FanoutSpec, RunSpec, ServeSpec,
                       SpecError, TuneSpec)
from repro.api.spec import SINGLE_PIPELINE_KINDS, WORKLOAD_KINDS


def spec_for(kind: str) -> ExperimentSpec:
    pipelines = ("MP3",) if kind in SINGLE_PIPELINE_KINDS else ()
    return ExperimentSpec(kind=kind, pipelines=pipelines)


# -- round trips --------------------------------------------------------------

@pytest.mark.parametrize("kind", WORKLOAD_KINDS)
def test_default_spec_round_trips(kind):
    spec = spec_for(kind)
    assert ExperimentSpec.from_dict(spec.to_dict()) == spec


def test_fully_populated_spec_round_trips():
    spec = ExperimentSpec(
        kind="tune", pipelines=("CV",),
        run=RunSpec(threads=16, epochs=3, compression="GZIP",
                    cache_mode="system", shuffle_buffer=512),
        environment=EnvironmentSpec(storage="ceph-ssd",
                                    backend="simulated"),
        executor=ExecSpec(jobs=4, cache_dir="/tmp/cache", progress=True),
        tune=TuneSpec(preprocessing_weight=1.0, storage_weight=0.5,
                      threads=(4, 8), compressions=(None, "ZLIB"),
                      cache_modes=("none", "system"), screen_keep=0.8),
        seed=7, name="populated")
    rebuilt = ExperimentSpec.from_dict(spec.to_dict())
    assert rebuilt == spec
    assert rebuilt.tune.threads == (4, 8)  # lists coerced back to tuples


def test_to_dict_is_json_plain():
    import json
    payload = spec_for("serve").to_dict()
    assert json.loads(json.dumps(payload)) == payload


def test_lists_coerce_to_tuples_on_construction():
    spec = ExperimentSpec(kind="sweep", pipelines=["MP3", "FLAC"])
    assert spec.pipelines == ("MP3", "FLAC")
    fanout = FanoutSpec(trainers=[1, 2])
    assert fanout.trainers == (1, 2)


# -- validation ---------------------------------------------------------------

def test_unknown_workload_kind():
    with pytest.raises(SpecError, match="unknown workload kind 'train'"):
        ExperimentSpec(kind="train").validate()


def test_unknown_top_level_key_lists_valid_keys():
    with pytest.raises(SpecError, match="valid keys:.*pipelines"):
        ExperimentSpec.from_dict({"kind": "sweep", "pipeline": ["MP3"]})


def test_unknown_section_key_names_the_section():
    with pytest.raises(SpecError, match="section 'run'"):
        ExperimentSpec.from_dict({"kind": "sweep",
                                  "run": {"thread": 8}})


def test_missing_kind_is_actionable():
    with pytest.raises(SpecError, match="needs a 'kind'"):
        ExperimentSpec.from_dict({"pipelines": ["MP3"]})


def test_single_pipeline_kinds_enforce_arity():
    with pytest.raises(SpecError, match="exactly one pipeline"):
        ExperimentSpec(kind="profile").validate()
    with pytest.raises(SpecError, match="exactly one pipeline"):
        ExperimentSpec(kind="diagnose",
                       pipelines=("MP3", "FLAC")).validate()


def test_unknown_pipeline_suggests_close_match():
    with pytest.raises(SpecError, match="did you mean 'CV'"):
        ExperimentSpec(kind="profile", pipelines=("CV3",)).validate()


@pytest.mark.parametrize("section,payload,fragment", [
    ("run", RunSpec(threads=0), "run.threads"),
    ("run", RunSpec(compression="LZ4"), "run.compression"),
    ("serve", ServeSpec(tenants=0), "serve.tenants"),
    ("serve", ServeSpec(trace="spiky"), "unknown trace"),
    ("serve", ServeSpec(policy="lru"), "unknown policy"),
    ("serve", ServeSpec(tie_break="random"), "serve.tie_break"),
    ("diagnose", DiagnoseSpec(verify_top=-1), "diagnose.verify_top"),
    ("tune", TuneSpec(screen_keep=0.0), "tune.screen_keep"),
    ("tune", TuneSpec(compressions=()), "tune.compressions"),
    ("tune", TuneSpec(preprocessing_weight=0.0, storage_weight=0.0,
                      throughput_weight=0.0), "weight"),
    ("fanout", FanoutSpec(trainers=(0,)), "fanout.trainers"),
    ("environment", EnvironmentSpec(storage="floppy"),
     "unknown storage device"),
    ("environment", EnvironmentSpec(backend="cuda"), "unknown backend"),
    ("executor", ExecSpec(jobs=0), "executor.jobs"),
])
def test_section_validation_errors_are_actionable(section, payload,
                                                  fragment):
    kind = {"serve": "serve", "diagnose": "diagnose", "tune": "tune",
            "fanout": "fanout"}.get(section, "profile")
    pipelines = ("MP3",) if kind in SINGLE_PIPELINE_KINDS else ()
    spec = ExperimentSpec(kind=kind, pipelines=pipelines,
                          **{section: payload})
    with pytest.raises(SpecError, match=fragment):
        spec.validate()


def test_fanout_strategy_validated_against_pipeline():
    spec = ExperimentSpec(kind="fanout", pipelines=("CV",),
                          fanout=FanoutSpec(strategy="bogus"))
    with pytest.raises(SpecError, match="valid strategies"):
        spec.validate()


# -- pipeline selection -------------------------------------------------------

def test_sweep_defaults_to_the_paper_seven():
    from repro.pipelines.registry import PAPER_PIPELINES
    assert spec_for("sweep").pipeline_names() == tuple(PAPER_PIPELINES)


def test_serve_reports_the_trace_mix():
    from repro.serve.jobs import DEFAULT_PIPELINE_MIX
    assert spec_for("serve").pipeline_names() \
        == tuple(DEFAULT_PIPELINE_MIX)


# -- fingerprinting -----------------------------------------------------------

def test_fingerprint_is_stable_across_rebuilds():
    first = spec_for("sweep").fingerprint()
    again = ExperimentSpec.from_dict(spec_for("sweep").to_dict()
                                     ).fingerprint()
    assert first == again
    assert len(first) == 64 and set(first) <= set("0123456789abcdef")


def test_fingerprint_tracks_resolved_work():
    base = spec_for("profile")
    assert base.fingerprint() \
        != base.with_overrides(run=RunSpec(threads=16)).fingerprint()
    assert base.fingerprint() \
        != base.with_overrides(pipelines=("FLAC",)).fingerprint()
    assert base.fingerprint() \
        != base.with_overrides(kind="diagnose").fingerprint()
    assert base.fingerprint() != base.with_overrides(
        environment=EnvironmentSpec(storage="ceph-ssd")).fingerprint()


def test_fingerprint_ignores_executor_settings():
    """jobs/cache/progress change *how* work runs, never its result."""
    base = spec_for("sweep")
    parallel = base.with_overrides(
        executor=ExecSpec(jobs=8, cache_dir="/tmp/x", progress=True))
    assert base.fingerprint() == parallel.fingerprint()


def test_serve_seed_is_part_of_the_fingerprint():
    base = spec_for("serve")
    assert base.fingerprint() \
        != base.with_overrides(seed=1).fingerprint()
