"""Tests for spec-file loading (JSON + the YAML subset)."""

import pytest

from repro.api import (ExperimentSpec, SpecError, dump_spec, load_spec,
                       parse_simple_yaml)
from repro.api.loader import load_spec_dict


# -- the YAML subset ----------------------------------------------------------

def test_yaml_subset_parses_nested_mappings_and_lists():
    parsed = parse_simple_yaml("""\
# experiment header comment
kind: sweep
name: 'quoted name'   # trailing comment
pipelines:
  - MP3
  - FLAC
run:
  threads: 16
  epochs: 2
  compression: null
  shuffle_buffer: 0
serve:
  policy: cache-aware
  tie_break: arrival
tune:
  threads: [4, 8, 16]
  screen_keep: 0.5
flag: true
other: ~
""")
    assert parsed == {
        "kind": "sweep",
        "name": "quoted name",
        "pipelines": ["MP3", "FLAC"],
        "run": {"threads": 16, "epochs": 2, "compression": None,
                "shuffle_buffer": 0},
        "serve": {"policy": "cache-aware", "tie_break": "arrival"},
        "tune": {"threads": [4, 8, 16], "screen_keep": 0.5},
        "flag": True,
        "other": None,
    }


def test_yaml_subset_scalar_types():
    parsed = parse_simple_yaml(
        "a: -3\nb: 2.5\nc: false\nd: \"x # not a comment\"\ne: bare-word\n")
    assert parsed == {"a": -3, "b": 2.5, "c": False,
                      "d": "x # not a comment", "e": "bare-word"}


def test_yaml_block_list_at_key_indent_is_standard_yaml():
    parsed = parse_simple_yaml(
        "kind: sweep\npipelines:\n- MP3\n- FLAC\nseed: 2\n")
    assert parsed == {"kind": "sweep", "pipelines": ["MP3", "FLAC"],
                      "seed": 2}


def test_yaml_inline_list_respects_quoted_commas():
    parsed = parse_simple_yaml('x: ["a,b", c, \'d,e\']\n')
    assert parsed == {"x": ["a,b", "c", "d,e"]}


def test_yaml_inline_list_unterminated_quote_is_rejected():
    with pytest.raises(SpecError, match="unterminated quote"):
        parse_simple_yaml('x: ["a,b, c]\n')


def test_yaml_inline_list_trailing_comma_and_empty_elements():
    assert parse_simple_yaml("x: [1, 2,]") == {"x": [1, 2]}
    with pytest.raises(SpecError, match="empty element"):
        parse_simple_yaml("x: [1, , 2]")


def test_yaml_inline_list_apostrophe_in_bare_word_is_plain_text():
    """A quote only opens an element-initial quoted span; apostrophes
    inside bare words never swallow list separators."""
    assert parse_simple_yaml("x: [don't, won't]") \
        == {"x": ["don't", "won't"]}


def test_yaml_comment_after_bare_apostrophe_word_is_stripped():
    assert parse_simple_yaml("name: it's fine # note") \
        == {"name": "it's fine"}


def test_yaml_inline_list_inside_block_list_is_rejected():
    with pytest.raises(SpecError, match="line 2.*unsupported"):
        parse_simple_yaml("trainers:\n  - [1, 2]\n")


@pytest.mark.parametrize("text,fragment", [
    ("a:\n\tb: 1", "tabs are not allowed"),
    ("a: 1\n  b: 2", "unexpected indentation"),
    ("a: 1\na: 2", "duplicate key"),
    ("just a line", "expected 'key: value'"),
    ("a: &anchor", "unsupported YAML syntax"),
    ("a: {flow: map}", "unsupported YAML syntax"),
])
def test_yaml_subset_rejects_unsupported_syntax(text, fragment):
    with pytest.raises(SpecError, match=fragment):
        parse_simple_yaml(text)


def test_yaml_line_numbers_in_errors():
    with pytest.raises(SpecError, match="line 3"):
        parse_simple_yaml("a: 1\nb: 2\nboom\n")


# -- file loading -------------------------------------------------------------

def test_load_json_spec(tmp_path):
    path = tmp_path / "exp.json"
    path.write_text('{"kind": "profile", "pipelines": ["MP3"]}')
    spec = load_spec(path)
    assert spec.kind == "profile"
    assert spec.pipelines == ("MP3",)


def test_load_yaml_spec(tmp_path):
    path = tmp_path / "exp.yaml"
    path.write_text("kind: serve\nseed: 3\nserve:\n  tenants: 4\n")
    spec = load_spec(path)
    assert spec.kind == "serve"
    assert spec.seed == 3
    assert spec.serve.tenants == 4


def test_dump_then_load_is_identity(tmp_path):
    spec = ExperimentSpec(kind="diagnose", pipelines=("FLAC",), seed=2)
    path = tmp_path / "exp.json"
    dump_spec(spec, path)
    assert load_spec(path) == spec


@pytest.mark.parametrize("name,content,fragment", [
    ("missing.json", None, "spec file not found"),
    ("bad.json", "{not json", "invalid JSON"),
    ("bad.txt", "kind: sweep", "must end in .json"),
    ("list.json", '[1, 2]', "top level must be a mapping"),
    ("badkind.yaml", "kind: training\n", "unknown workload kind"),
])
def test_loading_errors_are_spec_errors(tmp_path, name, content, fragment):
    path = tmp_path / name
    if content is not None:
        path.write_text(content)
    with pytest.raises(SpecError, match=fragment):
        load_spec(path)


def test_load_spec_dict_skips_validation(tmp_path):
    path = tmp_path / "raw.yaml"
    path.write_text("kind: nonsense\nextra: 1\n")
    assert load_spec_dict(path) == {"kind": "nonsense", "extra": 1}
