"""Deprecation hygiene: the classic entry points stay first-class.

The Session facade fronts StrategyProfiler / SweepEngine / AutoTuner /
BottleneckDoctor / PreprocessingService, but direct construction of any
of them remains supported and silent -- no DeprecationWarning,
FutureWarning or any other warning is emitted by either the classic
paths or the new declarative path (warnings are escalated to errors
here, so a regression fails loudly).
"""

import warnings

import pytest


@pytest.fixture(autouse=True)
def escalate_warnings():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        yield


def test_classic_profiler_and_engine_paths_emit_no_warnings():
    from repro import (ProfileCache, SimulatedBackend, StrategyProfiler,
                       SweepEngine, get_pipeline)
    profiler = StrategyProfiler(SimulatedBackend())
    profiles = profiler.profile_pipeline(get_pipeline("MP3"))
    assert len(profiles) == 3
    engine = SweepEngine(SimulatedBackend(), cache=ProfileCache())
    result = engine.sweep([get_pipeline("MP3")])
    assert result.job_count == 3


def test_classic_tuner_doctor_and_service_emit_no_warnings():
    from repro import (AutoTuner, BottleneckDoctor, PreprocessingService,
                       SimulatedBackend, get_pipeline)
    from repro.serve import steady_trace
    report = AutoTuner(SimulatedBackend()).tune(get_pipeline("NILM"))
    assert report.best is not None
    diagnosis = BottleneckDoctor().diagnose(get_pipeline("MP3"))
    assert diagnosis.strategies
    service_report = PreprocessingService(slots=2).run(
        steady_trace(tenants=2, seed=0, epochs=1))
    assert service_report.makespan > 0


def test_declarative_path_emits_no_warnings():
    from repro.api import ExperimentSpec, Session
    artifact = Session(stderr=None).run(
        ExperimentSpec(kind="profile", pipelines=("MP3",)))
    assert artifact.report
