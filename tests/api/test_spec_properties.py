"""Property test: spec round-trips are identity for every workload kind.

``ExperimentSpec.from_dict(spec.to_dict()) == spec`` over randomly
populated spec trees -- the lossless-serialization contract of the
declarative API.  Uses hypothesis when available (derandomized, like
the fingerprint property suite); otherwise a fixed-seed random sweep.
"""

import random

from repro.api import (ControlSpec, DiagnoseSpec, EnvironmentSpec,
                       ExecSpec, ExperimentSpec, FanoutSpec, RunSpec,
                       ServeSpec, StreamSpec, TuneSpec)
from repro.api.spec import SINGLE_PIPELINE_KINDS, WORKLOAD_KINDS

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is optional
    HAVE_HYPOTHESIS = False

N_EXAMPLES = 60

PIPELINES = ("CV", "CV2-JPG", "NLP", "NILM", "MP3", "FLAC")
STORAGES = ("ceph-hdd", "ceph-ssd")
COMPRESSIONS = (None, "GZIP", "ZLIB")
CACHE_MODES = ("none", "system", "application")
TRACES = ("steady", "bursty", "diurnal", "poisson")
POLICIES = ("fifo", "fair-share", "cache-aware", "all")
TIE_BREAKS = ("arrival", "tenant")
ARRIVALS = ("poisson", "burst", "diurnal")


def make_spec(kind_index: int, pipeline_indices: tuple, threads: int,
              epochs: int, compression_index: int, cache_index: int,
              jobs: int, progress: bool, tenants: int, trace_index: int,
              policy_index: int, slots: int, tie_index: int,
              arrival_index: int, verify_top: int, sample_count: int,
              wp: float, ws: float,
              tune_threads: tuple, screen_keep: float, trainers: tuple,
              simulate: bool, storage_index: int, seed: int,
              name: str) -> ExperimentSpec:
    """Build a valid spec from plain drawable primitives."""
    kind = WORKLOAD_KINDS[kind_index]
    if kind in SINGLE_PIPELINE_KINDS:
        pipelines = (PIPELINES[pipeline_indices[0]],)
    elif kind in ("serve", "control", "stream"):
        pipelines = ()
    else:
        pipelines = tuple(dict.fromkeys(
            PIPELINES[i] for i in pipeline_indices))
    return ExperimentSpec(
        kind=kind,
        pipelines=pipelines,
        run=RunSpec(threads=threads, epochs=epochs,
                    compression=COMPRESSIONS[compression_index],
                    cache_mode=CACHE_MODES[cache_index]),
        environment=EnvironmentSpec(storage=STORAGES[storage_index]),
        executor=ExecSpec(jobs=jobs, progress=progress),
        tune=TuneSpec(preprocessing_weight=wp, storage_weight=ws,
                      threads=tuple(tune_threads),
                      screen_keep=screen_keep),
        diagnose=DiagnoseSpec(verify_top=verify_top,
                              sample_count=sample_count or None),
        serve=ServeSpec(tenants=tenants, trace=TRACES[trace_index],
                        policy=POLICIES[policy_index], slots=slots,
                        tie_break=TIE_BREAKS[tie_index]),
        control=ControlSpec(tenants=tenants, trace=TRACES[trace_index],
                            # "all" is serve-only; control runs one policy
                            policy=POLICIES[policy_index % 3],
                            slots=slots, tie_break=TIE_BREAKS[tie_index],
                            max_attempts=epochs,
                            fault_rate=min(wp / 4.0, 1.0),
                            admission_limit=verify_top or None,
                            preempt=progress, autoscale=simulate),
        stream=StreamSpec(tenants=tenants,
                          arrival=ARRIVALS[arrival_index],
                          rate=ws, requests=(sample_count % 64) + 1,
                          batch=threads, workers=slots,
                          queue_bound=verify_top,
                          slo_stretch=(wp + 0.5) if progress else None,
                          shed=simulate),
        fanout=FanoutSpec(trainers=tuple(trainers), simulate=simulate),
        seed=seed, name=name)


def check_round_trip(spec: ExperimentSpec) -> None:
    spec.validate()
    payload = spec.to_dict()
    rebuilt = ExperimentSpec.from_dict(payload)
    assert rebuilt == spec
    assert rebuilt.to_dict() == payload
    assert rebuilt.fingerprint() == spec.fingerprint()


if HAVE_HYPOTHESIS:
    spec_strategy = st.builds(
        make_spec,
        st.integers(0, len(WORKLOAD_KINDS) - 1),
        st.lists(st.integers(0, len(PIPELINES) - 1), min_size=1,
                 max_size=3).map(tuple),
        st.integers(1, 64),
        st.integers(1, 4),
        st.integers(0, len(COMPRESSIONS) - 1),
        st.integers(0, len(CACHE_MODES) - 1),
        st.integers(1, 8),
        st.booleans(),
        st.integers(1, 128),
        st.integers(0, len(TRACES) - 1),
        st.integers(0, len(POLICIES) - 1),
        st.integers(1, 16),
        st.integers(0, len(TIE_BREAKS) - 1),
        st.integers(0, len(ARRIVALS) - 1),
        st.integers(0, 3),
        st.integers(0, 4096),
        st.floats(0.0, 4.0, allow_nan=False),
        st.floats(0.1, 4.0, allow_nan=False),
        st.lists(st.integers(1, 32), min_size=1, max_size=3).map(tuple),
        st.floats(0.1, 1.0, allow_nan=False),
        st.lists(st.integers(1, 32), min_size=1, max_size=4).map(tuple),
        st.booleans(),
        st.integers(0, len(STORAGES) - 1),
        st.integers(0, 2 ** 31),
        st.text(alphabet="abc-", max_size=8))

    @given(spec_strategy)
    @settings(max_examples=N_EXAMPLES, derandomize=True, deadline=None)
    def test_spec_round_trip_is_identity(spec):
        check_round_trip(spec)

else:  # pragma: no cover - exercised only without hypothesis
    def test_spec_round_trip_is_identity():
        rng = random.Random(0xC0FFEE)
        for _ in range(N_EXAMPLES):
            spec = make_spec(
                rng.randrange(len(WORKLOAD_KINDS)),
                tuple(rng.randrange(len(PIPELINES))
                      for _ in range(rng.randint(1, 3))),
                rng.randint(1, 64), rng.randint(1, 4),
                rng.randrange(len(COMPRESSIONS)),
                rng.randrange(len(CACHE_MODES)),
                rng.randint(1, 8), rng.random() < 0.5,
                rng.randint(1, 128), rng.randrange(len(TRACES)),
                rng.randrange(len(POLICIES)), rng.randint(1, 16),
                rng.randrange(len(TIE_BREAKS)),
                rng.randrange(len(ARRIVALS)), rng.randint(0, 3),
                rng.randint(0, 4096), rng.uniform(0, 4),
                rng.uniform(0.1, 4),
                tuple(rng.randint(1, 32)
                      for _ in range(rng.randint(1, 3))),
                rng.uniform(0.1, 1.0),
                tuple(rng.randint(1, 32)
                      for _ in range(rng.randint(1, 4))),
                rng.random() < 0.5, rng.randrange(len(STORAGES)),
                rng.randrange(2 ** 31), "seeded")
            check_round_trip(spec)
