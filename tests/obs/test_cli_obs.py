"""CLI and Session wiring for the telemetry flags and ``presto trend``."""

import json

import pytest

from repro.cli import main
from repro.obs.tracing import validate_chrome_trace

SERVE = ["serve", "--tenants", "2", "--trace", "steady", "--seed", "0"]
CTL = ["ctl", "--tenants", "3", "--trace", "steady", "--seed", "0",
       "--fault-rate", "0.3"]
STREAM = ["stream", "--tenants", "2", "--requests", "8", "--seed", "0"]


class TestExports:
    def test_metrics_out_writes_schema_file(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        assert main([*SERVE, "--metrics-out", str(out),
                     "--metrics-interval", "300"]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == 1
        assert payload["samples"]
        assert capsys.readouterr().out.startswith("## serve")

    def test_trace_out_writes_valid_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main([*SERVE, "--trace-out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert validate_chrome_trace(payload) > 0
        cats = {event.get("cat") for event in payload["traceEvents"]
                if event["ph"] == "X"}
        assert {"job", "queue", "epoch", "offline"} <= cats

    def test_dash_appends_export_to_stdout(self, capsys):
        assert main([*SERVE, "--trace-out", "-"]) == 0
        stdout = capsys.readouterr().out
        lines = stdout.splitlines()
        payload = json.loads("\n".join(lines[lines.index("{"):]))
        validate_chrome_trace(payload)

    def test_telemetry_flags_leave_report_unchanged(self, tmp_path,
                                                    capsys):
        for argv in (SERVE, CTL, STREAM):
            assert main(argv) == 0
            baseline = capsys.readouterr().out
            out = tmp_path / "export.json"
            assert main([*argv, "--trace-out", str(out),
                         "--metrics-out", str(tmp_path / "m.json")]) == 0
            assert capsys.readouterr().out == baseline

    def test_policy_comparison_rejects_telemetry(self, tmp_path, capsys):
        argv = ["serve", "--tenants", "2", "--policy", "all",
                "--trace-out", str(tmp_path / "t.json")]
        assert main(argv) == 2
        assert "policy comparison" in capsys.readouterr().err

    def test_follow_streams_ledger_to_stderr(self, capsys):
        assert main(CTL) == 0
        baseline = capsys.readouterr().out
        assert main([*CTL, "--follow"]) == 0
        captured = capsys.readouterr()
        assert captured.out == baseline
        assert "--submit--> PENDING" in captured.err
        assert "| dlq=" in captured.err


class TestSessionTelemetry:
    def test_artifact_carries_metrics_and_trace(self):
        from repro.api import ExperimentSpec, ServeSpec, Session
        from repro.obs import Telemetry
        spec = ExperimentSpec(kind="serve",
                              serve=ServeSpec(tenants=2, trace="steady"))
        artifact = Session().run(spec, telemetry=Telemetry(
            metrics_interval=300.0, trace=True))
        assert artifact.metrics["schema"] == 1
        assert validate_chrome_trace(artifact.trace) > 0
        exported = artifact.to_dict()
        assert "metrics" in exported and "trace" in exported

    def test_unobserved_artifact_omits_telemetry_keys(self):
        from repro.api import ExperimentSpec, ServeSpec, Session
        spec = ExperimentSpec(kind="serve",
                              serve=ServeSpec(tenants=2, trace="steady"))
        artifact = Session().run(spec)
        assert artifact.metrics is None and artifact.trace is None
        exported = artifact.to_dict()
        assert "metrics" not in exported and "trace" not in exported

    def test_telemetry_rejected_for_profiling_kinds(self):
        from repro.api import ExperimentSpec, Session
        from repro.errors import SpecError
        from repro.obs import Telemetry
        spec = ExperimentSpec(kind="profile", pipelines=("CV",))
        with pytest.raises(SpecError):
            Session().run(spec, telemetry=Telemetry(trace=True))

    def test_telemetry_does_not_change_fingerprints(self):
        from repro.api import ExperimentSpec, ServeSpec, Session
        from repro.obs import Telemetry
        spec = ExperimentSpec(kind="serve",
                              serve=ServeSpec(tenants=2, trace="steady"))
        plain = Session().run(spec)
        observed = Session().run(spec, telemetry=Telemetry(trace=True))
        assert observed.fingerprint == plain.fingerprint
        assert observed.report == plain.report


class TestTrendCommand:
    @pytest.fixture
    def series(self, tmp_path):
        metrics = {"events": 100, "events_per_sec": 50000.0,
                   "wall_seconds": 2.0}
        regressed = dict(metrics, events_per_sec=40000.0)
        before = {"serve": {"serve64": {"policies": {"fifo": metrics}}},
                  "stream": {"stream64": metrics}, "link10k": metrics}
        after = {"serve": {"serve64": {"policies": {"fifo": regressed}}},
                 "stream": {"stream64": metrics}, "link10k": metrics}
        a, b = tmp_path / "A.json", tmp_path / "B.json"
        a.write_text(json.dumps(before))
        b.write_text(json.dumps(after))
        return [str(a), str(b)]

    def test_flags_synthetic_regression(self, series, capsys):
        assert main(["trend", *series]) == 0
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "serve/serve64/fifo" in out

    def test_fail_on_regression_exits_3(self, series, capsys):
        assert main(["trend", *series, "--fail-on-regression"]) == 3
        assert main(["trend", series[0], series[0],
                     "--fail-on-regression"]) == 0

    def test_json_output(self, series, capsys):
        assert main(["trend", *series, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressions"] == 1
        assert payload["metric"] == "events_per_sec"

    def test_bad_snapshot_is_a_clean_error(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        assert main(["trend", str(bogus), str(bogus)]) == 2
        assert "presto: error" in capsys.readouterr().err

    def test_bench_trend_tool_forwards(self, series):
        import subprocess
        import sys
        from pathlib import Path
        repo = Path(__file__).resolve().parents[2]
        proc = subprocess.run(
            [sys.executable, str(repo / "tools" / "bench_trend.py"),
             *series, "--fail-on-regression"],
            capture_output=True, text=True)
        assert proc.returncode == 3
        assert "REGRESSION" in proc.stdout
