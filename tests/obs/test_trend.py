"""Tests for bench trend analysis (repro.obs.trend)."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.trend import (METRIC_DIRECTIONS, analyze, analyze_files,
                             flatten_snapshot, load_snapshot)


def snapshot(serve_eps=50000.0, stream_eps=80000.0, link_eps=90000.0,
             events=100, wall=2.0):
    """A minimal BENCH_serve.json-shaped snapshot."""
    metrics = lambda eps: {"events": events, "events_per_sec": eps,  # noqa: E731
                           "wall_seconds": wall}
    return {
        "serve": {"serve64_hot_raw": {
            "policies": {"fifo": metrics(serve_eps)}}},
        "stream": {"stream64": metrics(stream_eps)},
        "link10k": metrics(link_eps),
    }


class TestFlatten:
    def test_scenario_keys(self):
        rows = flatten_snapshot(snapshot(), "events_per_sec")
        assert sorted(rows) == ["link10k", "serve/serve64_hot_raw/fifo",
                                "stream/stream64"]

    def test_missing_metric_rows_are_skipped(self):
        legacy = {"serve": {"old": {"policies": {"fifo": {"events": 5}}}}}
        assert flatten_snapshot(legacy, "events_per_sec") == {}


class TestAnalyze:
    def test_synthetic_throughput_regression_is_flagged(self):
        before, after = snapshot(), snapshot(serve_eps=40000.0)
        report = analyze([before, after], ["A", "B"])
        flagged = {point.scenario for point in report.regressions}
        assert flagged == {"serve/serve64_hot_raw/fifo"}
        point = report.regressions[0]
        assert point.delta_pct == pytest.approx(-20.0)

    def test_threshold_gates_small_drops(self):
        report = analyze([snapshot(), snapshot(serve_eps=49000.0)],
                         ["A", "B"], threshold_pct=5.0)
        assert not report.regressions

    def test_wall_seconds_regression_is_a_rise(self):
        before, after = snapshot(), snapshot(wall=3.0)
        report = analyze([before, after], ["A", "B"],
                         metric="wall_seconds")
        assert len(report.regressions) == 3  # every scenario slowed

    def test_event_count_metric_flags_any_drift(self):
        before, after = snapshot(), snapshot(events=101)
        report = analyze([before, after], ["A", "B"], metric="events")
        assert len(report.regressions) == 3
        assert not analyze([before, before], ["A", "B"],
                           metric="events").regressions

    def test_multi_step_series_labels_each_step(self):
        series = [snapshot(), snapshot(), snapshot(serve_eps=30000.0)]
        report = analyze(series, ["A", "B", "C"])
        scenarios = [point.scenario for point in report.regressions]
        assert scenarios == ["[B->C] serve/serve64_hot_raw/fifo"]

    def test_rejects_unknown_metric_and_short_series(self):
        with pytest.raises(ObservabilityError, match="unknown"):
            analyze([snapshot(), snapshot()], ["A", "B"], metric="p99")
        with pytest.raises(ObservabilityError, match="two"):
            analyze([snapshot()], ["A"])

    def test_known_metrics_have_directions(self):
        assert set(METRIC_DIRECTIONS.values()) <= {"down", "up", "any"}


class TestFiles:
    def test_analyze_files_defaults_labels_to_names(self, tmp_path):
        a, b = tmp_path / "A.json", tmp_path / "B.json"
        a.write_text(json.dumps(snapshot()))
        b.write_text(json.dumps(snapshot(serve_eps=40000.0)))
        report = analyze_files([a, b])
        assert report.labels == ["A.json", "B.json"]
        assert len(report.regressions) == 1
        assert "REGRESSION" in report.to_markdown()
        assert "regression(s)" in report.describe()

    def test_load_rejects_malformed_snapshots(self, tmp_path):
        missing = tmp_path / "missing.json"
        with pytest.raises(ObservabilityError, match="cannot read"):
            load_snapshot(missing)
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"unrelated": True}))
        with pytest.raises(ObservabilityError, match="BENCH_serve"):
            load_snapshot(bogus)

    def test_real_bench_baseline_loads(self):
        """The committed perf baseline is itself a valid snapshot."""
        from pathlib import Path
        baseline = Path(__file__).resolve().parents[2] \
            / "benchmarks" / "perf" / "baseline.json"
        rows = flatten_snapshot(load_snapshot(baseline), "events")
        assert rows, "baseline.json flattened to no scenarios"
