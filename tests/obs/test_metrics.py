"""Tests for the sim-clock metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter("events")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("events").inc(-1.0)

    def test_gauge_tracks_last_set(self):
        gauge = Gauge("depth")
        gauge.set(4)
        gauge.set(2)
        assert gauge.value == 2

    def test_histogram_buckets_inclusive_upper_edges(self):
        hist = Histogram("delay", bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        assert hist.counts == [2, 1, 1]     # <=1, <=10, overflow
        assert hist.count == 4
        assert hist.mean == pytest.approx(106.5 / 4)

    def test_histogram_export_shape(self):
        hist = Histogram("delay", bounds=(1.0,))
        hist.observe(0.5)
        assert hist.to_dict() == {
            "bounds": [1.0], "counts": [1, 0],
            "sum": 0.5, "count": 1, "mean": 0.5,
        }

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("delay").mean == 0.0


class TestRegistry:
    def test_instruments_create_on_first_use_and_persist(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")
        assert registry.names == ["a", "b", "c"]

    def test_snapshot_captures_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(10)
        registry.gauge("depth").set(3)
        sample = registry.snapshot(12.5)
        assert sample == {"t": 12.5, "values": {"events": 10, "depth": 3}}
        assert registry.samples == [sample]

    def test_series_follows_one_instrument(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        for t, value in ((0.0, 1), (60.0, 4), (120.0, 2)):
            gauge.set(value)
            registry.snapshot(t)
        assert registry.series("depth") == [(0.0, 1), (60.0, 4), (120.0, 2)]
        assert registry.series("missing") == []

    def test_to_dict_is_json_shaped(self):
        import json
        registry = MetricsRegistry()
        registry.counter("events").inc()
        registry.histogram("delay").observe(5.0)
        registry.snapshot(1.0)
        payload = registry.to_dict()
        assert payload["schema"] == 1
        assert len(payload["samples"]) == 1
        assert "delay" in payload["histograms"]
        json.dumps(payload)  # must serialize without custom encoders

    def test_registry_is_passive(self):
        """The registry alone never touches a simulation: snapshots are
        driven entirely by the caller's clock argument."""
        registry = MetricsRegistry()
        registry.snapshot(5.0)
        registry.snapshot(3.0)  # no monotonicity enforced here
        assert [sample["t"] for sample in registry.samples] == [5.0, 3.0]


class TestSamplerIntegration:
    def test_serve_sampler_produces_periodic_snapshots(self):
        from repro.serve.jobs import generate_trace
        from repro.serve.service import PreprocessingService
        registry = MetricsRegistry()
        service = PreprocessingService(metrics=registry,
                                       metrics_interval=300.0)
        report = service.run(generate_trace("steady", tenants=2, seed=0))
        assert registry.samples, "sampler produced no snapshots"
        times = [sample["t"] for sample in registry.samples]
        assert times == sorted(times)
        assert times[0] == pytest.approx(300.0)
        # one sample at most one interval past the makespan
        assert times[-1] <= report.makespan + 300.0
        values = registry.samples[0]["values"]
        for name in ("queue.depth", "slots.running", "link.utilization",
                     "cache.hit_rate", "kernel.events_processed",
                     "tenant.tenant-0.inflight"):
            assert name in values

    def test_serve_rejects_bad_interval(self):
        from repro.errors import ProfilingError
        from repro.serve.service import PreprocessingService
        with pytest.raises(ProfilingError):
            PreprocessingService(metrics=MetricsRegistry(),
                                 metrics_interval=0.0)
