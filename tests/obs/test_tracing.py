"""Tests for span tracing and Chrome trace export (repro.obs.tracing)."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.tracing import Span, Tracer, validate_chrome_trace


def make_trace() -> Tracer:
    tracer = Tracer()
    job = tracer.start("run tenant-0", "job", "tenant-0", 0.0)
    epoch = tracer.start("epoch 0", "epoch", "tenant-0", 1.0,
                         parent=job.id, args={"epoch": 0})
    tracer.finish(epoch, 11.0)
    tracer.finish(job, 12.0)
    tracer.add_complete("read", "transfer", "tenant-0", 2.0, 3.0,
                        parent=epoch.id)
    tracer.instant("crash", "ledger", "ledger", 5.0, args={"job": "j0"})
    return tracer


class TestRecording:
    def test_span_ids_are_unique_and_parents_link(self):
        tracer = make_trace()
        ids = [span.id for span in tracer.spans]
        assert len(ids) == len(set(ids))
        job, epoch, read = tracer.spans
        assert epoch.parent == job.id
        assert read.parent == epoch.id

    def test_durations(self):
        tracer = make_trace()
        assert tracer.spans[0].duration == pytest.approx(12.0)
        assert Span(1, "open", "job", "t", 5.0).duration == 0.0

    def test_detail_flag_defaults_off(self):
        assert Tracer().detail is False
        assert Tracer(detail=True).detail is True


class TestChromeExport:
    def test_payload_validates_and_serializes(self):
        payload = make_trace().to_chrome()
        assert validate_chrome_trace(payload) == len(payload["traceEvents"])
        json.dumps(payload)

    def test_track_becomes_thread_metadata(self):
        payload = make_trace().to_chrome()
        meta = [event for event in payload["traceEvents"]
                if event["ph"] == "M"]
        names = {event["args"]["name"] for event in meta}
        assert names == {"tenant-0", "ledger"}
        # every non-meta event lands on a declared tid
        tids = {event["tid"] for event in meta}
        for event in payload["traceEvents"]:
            assert event["tid"] in tids

    def test_seconds_export_as_microseconds(self):
        payload = make_trace().to_chrome()
        epoch = next(event for event in payload["traceEvents"]
                     if event["name"] == "epoch 0")
        assert epoch["ts"] == pytest.approx(1e6)
        assert epoch["dur"] == pytest.approx(10e6)

    def test_parent_and_span_id_ride_in_args(self):
        payload = make_trace().to_chrome()
        epoch = next(event for event in payload["traceEvents"]
                     if event["name"] == "epoch 0")
        assert epoch["args"]["parent"] == 1
        assert epoch["args"]["span_id"] == 2
        assert epoch["args"]["epoch"] == 0

    def test_unfinished_span_exports_zero_duration(self):
        tracer = Tracer()
        tracer.start("open", "job", "t", 4.0)
        payload = tracer.to_chrome()
        span = next(event for event in payload["traceEvents"]
                    if event["ph"] == "X")
        assert span["dur"] == 0.0
        validate_chrome_trace(payload)

    def test_instant_phase(self):
        payload = make_trace().to_chrome()
        inst = next(event for event in payload["traceEvents"]
                    if event["ph"] == "i")
        assert inst["s"] == "t"
        assert inst["ts"] == pytest.approx(5e6)

    def test_to_json_roundtrips(self):
        tracer = make_trace()
        assert json.loads(tracer.to_json()) == json.loads(
            json.dumps(tracer.to_chrome()))


class TestValidation:
    def test_rejects_non_object(self):
        with pytest.raises(ObservabilityError):
            validate_chrome_trace([])

    def test_rejects_missing_event_list(self):
        with pytest.raises(ObservabilityError):
            validate_chrome_trace({"displayTimeUnit": "ms"})

    def test_rejects_unknown_phase(self):
        with pytest.raises(ObservabilityError, match="phase"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "B", "pid": 1, "tid": 1, "name": "x"}]})

    def test_rejects_missing_identity(self):
        with pytest.raises(ObservabilityError, match="pid"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "tid": 1, "name": "x", "ts": 0, "dur": 0}]})

    def test_rejects_negative_timestamps(self):
        with pytest.raises(ObservabilityError, match="ts"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "pid": 1, "tid": 1, "name": "x",
                 "ts": -1.0, "dur": 0}]})
        with pytest.raises(ObservabilityError, match="dur"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "pid": 1, "tid": 1, "name": "x",
                 "ts": 0.0, "dur": None}]})
