"""The telemetry wall: observation must not change the experiment.

Two invariants, differentially enforced across serve/ctl/stream:

* **Tracing is event-free.**  A tracer (even ``detail=True``) only
  reads the simulation clock, so a traced run resolves *exactly* the
  same kernel event count and renders a byte-identical report.
* **Metrics sampling is report-free.**  The sampler is a real DES
  process (it adds timeout events by design), but it must never perturb
  the workload: the rendered report -- makespans, throughputs, per-
  tenant rows -- stays byte-identical.

Telemetry *off* costs zero extra events by construction (the hooks are
``None`` and no sampler is spawned); that side of the wall is pinned by
the goldens and ``make bench-check`` event counts, which predate this
subsystem and must never drift.
"""

import pytest

from repro.core.report import (service_summary, stream_table,
                               tenant_table)
from repro.ctl.dispatcher import Dispatcher
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.serve.jobs import generate_trace
from repro.serve.service import PreprocessingService
from repro.stream import StreamingService, generate_stream


def serve_jobs():
    return generate_trace("bursty", tenants=4, seed=0)


def ctl_jobs():
    return generate_trace("steady", tenants=4, seed=5, fault_rate=0.5)


def streams():
    return generate_stream(tenants=2, seed=0, arrival="burst", requests=8)


def render_serve(report) -> str:
    return (tenant_table(report).to_markdown() + "\n"
            + service_summary(report))


class TestTracingIsEventFree:
    def test_serve(self):
        baseline = PreprocessingService(policy="cache-aware").run(
            serve_jobs())
        tracer = Tracer(detail=True)
        traced = PreprocessingService(policy="cache-aware",
                                      tracer=tracer).run(serve_jobs())
        assert traced.events_processed == baseline.events_processed
        assert render_serve(traced) == render_serve(baseline)
        assert tracer.spans, "tracer recorded nothing"

    def test_ctl(self):
        baseline = Dispatcher().run(ctl_jobs())
        tracer = Tracer()
        traced_dispatcher = Dispatcher(tracer=tracer)
        traced = traced_dispatcher.run(ctl_jobs())
        assert traced.events_processed == baseline.events_processed
        assert traced.ledger.describe() == baseline.ledger.describe()
        assert tracer.instants, "no ledger instants recorded"

    def test_stream(self):
        baseline = StreamingService().run(streams(), seed=0)
        tracer = Tracer()
        traced = StreamingService(tracer=tracer).run(streams(), seed=0)
        assert traced.events_processed == baseline.events_processed
        assert stream_table(traced).to_markdown() \
            == stream_table(baseline).to_markdown()
        assert [span.cat for span in tracer.spans] \
            == ["request"] * len(tracer.spans)


class TestMetricsSamplingIsReportFree:
    def test_serve(self):
        baseline = PreprocessingService().run(serve_jobs())
        observed = PreprocessingService(
            metrics=MetricsRegistry(), metrics_interval=120.0).run(
                serve_jobs())
        assert render_serve(observed) == render_serve(baseline)
        assert observed.makespan == baseline.makespan

    def test_ctl(self):
        baseline = Dispatcher().run(ctl_jobs())
        observed = Dispatcher(metrics=MetricsRegistry(),
                              metrics_interval=120.0).run(ctl_jobs())
        assert observed.ledger.describe() == baseline.ledger.describe()
        assert observed.service.makespan == baseline.service.makespan

    def test_stream(self):
        baseline = StreamingService().run(streams(), seed=0)
        observed = StreamingService(metrics=MetricsRegistry(),
                                    metrics_interval=60.0).run(streams(), seed=0)
        assert stream_table(observed).to_markdown() \
            == stream_table(baseline).to_markdown()
        assert observed.p99_latency == baseline.p99_latency


class TestProvenanceStamp:
    """Satellite: every workload report carries the uniform run-cost
    stamp (events + wall seconds)."""

    @pytest.mark.parametrize("report_factory", [
        lambda: PreprocessingService().run(serve_jobs()),
        lambda: Dispatcher().run(ctl_jobs()),
        lambda: StreamingService().run(streams(), seed=0),
    ], ids=["serve", "ctl", "stream"])
    def test_reports_expose_events_and_wall(self, report_factory):
        report = report_factory()
        stamp = report.provenance()
        assert stamp["events_processed"] == report.events_processed > 0
        assert stamp["wall_seconds"] == round(report.wall_seconds, 6)
        assert report.wall_seconds > 0
