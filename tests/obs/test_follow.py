"""Tests for the live ledger follower (repro.obs.follow)."""

import io

from repro.ctl.dispatcher import Dispatcher
from repro.ctl.ledger import LedgerEntry
from repro.ctl.report import AutoscaleEvent
from repro.obs.follow import LedgerFollower
from repro.serve.jobs import generate_trace


def entry(seq, job, event, from_state, to_state, t=0.0, detail=""):
    return LedgerEntry(seq=seq, time=t, job_id=job, attempt=1,
                       event=event, from_state=from_state,
                       to_state=to_state, detail=detail)


class TestRendering:
    def test_transitions_print_as_described(self):
        out = io.StringIO()
        follower = LedgerFollower(out)
        record = entry(0, "job-000", "submit", "NEW", "PENDING",
                       detail="tenant tenant-0")
        follower.entry(record)
        assert out.getvalue().splitlines() == [record.describe()]
        assert follower.seen == 1

    def test_status_line_after_terminal_transition(self):
        out = io.StringIO()
        follower = LedgerFollower(out)
        follower.entry(entry(0, "job-000", "submit", "NEW", "PENDING"))
        follower.entry(entry(1, "job-000", "admit", "PENDING", "ADMITTED"))
        follower.entry(entry(2, "job-000", "start", "ADMITTED", "RUNNING"))
        follower.entry(entry(3, "job-000", "succeed", "RUNNING",
                             "SUCCEEDED", t=10.0))
        lines = out.getvalue().splitlines()
        assert lines[-1] == "-- SUCCEEDED=1 | dlq=0"

    def test_dlq_depth_counts_deadletters(self):
        follower = LedgerFollower(io.StringIO())
        follower.entry(entry(0, "job-000", "submit", "NEW", "PENDING"))
        follower.entry(entry(1, "job-000", "bury", "PENDING",
                             "DEADLETTER"))
        assert follower.status_line() == "-- DEADLETTER=1 | dlq=1"

    def test_autoscale_marker(self):
        out = io.StringIO()
        follower = LedgerFollower(out)
        event = AutoscaleEvent(time=600.0, old_slots=2, new_slots=4,
                               reason="queue pressure")
        follower.autoscale(event)
        assert out.getvalue() == f"** autoscale {event.describe()}\n"

    def test_idle_status_line(self):
        assert LedgerFollower(io.StringIO()).status_line() \
            == "-- idle | dlq=0"


class TestLiveDispatcherFeed:
    def test_follower_streams_a_real_run(self):
        out = io.StringIO()
        follower = LedgerFollower(out)
        dispatcher = Dispatcher()
        dispatcher.subscribe(follower.entry)
        dispatcher.subscribe_autoscale(follower.autoscale)
        report = dispatcher.run(generate_trace("steady", tenants=3, seed=0,
                                               fault_rate=0.3))
        lines = out.getvalue().splitlines()
        # every ledger entry was rendered, in order, plus status lines
        described = [line for line in lines if line.startswith("[")]
        assert described == [record.describe()
                             for record in report.ledger.entries]
        assert follower.seen == len(report.ledger.entries)
        assert lines[-1].startswith("-- ")

    def test_follower_output_does_not_change_the_run(self):
        jobs = lambda: generate_trace("steady", tenants=3, seed=0,  # noqa: E731
                                      fault_rate=0.3)
        baseline = Dispatcher().run(jobs())
        follower = LedgerFollower(io.StringIO())
        observed_dispatcher = Dispatcher()
        observed_dispatcher.subscribe(follower.entry)
        observed = observed_dispatcher.run(jobs())
        assert observed.events_processed == baseline.events_processed
        assert observed.ledger.describe() == baseline.ledger.describe()
