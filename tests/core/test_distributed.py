"""Tests for distributed preprocessing and trainer fan-out (Sec. 7)."""

import pytest

from repro.backends import RunConfig, SimulatedBackend
from repro.core import distributed
from repro.errors import ProfilingError
from repro.pipelines import get_pipeline

CONFIG = RunConfig()


class TestDistributedOffline:
    def test_cpu_bound_phase_scales_until_storage_binds(self):
        """CV2-PNG's decode-heavy offline phase is CPU-bound with one
        worker; adding workers helps until the shared storage read
        becomes the new bottleneck (the hidden wall Sec. 7 warns about)."""
        plan = get_pipeline("CV2-PNG").split_at("decoded")
        one = distributed.estimate_distributed_offline(plan, CONFIG, 1)
        four = distributed.estimate_distributed_offline(plan, CONFIG, 4)
        sixteen = distributed.estimate_distributed_offline(plan, CONFIG, 16)
        assert one.bottleneck == "worker-cpu"
        assert four.bottleneck.startswith("storage")
        assert 1.5 < one.duration / four.duration < 4.0
        # Once storage binds, more workers change nothing.
        assert sixteen.duration == pytest.approx(four.duration, rel=0.01)

    def test_storage_bound_phase_stops_scaling(self):
        """CV's offline phase is dominated by reading 1.3 M random files;
        beyond a few workers the metadata service binds."""
        plan = get_pipeline("CV").split_at("resized")
        frame = distributed.offline_scaling_frame(plan, CONFIG,
                                                  worker_counts=(1, 4, 16))
        rows = {row["workers"]: row for row in frame.rows()}
        assert rows[16]["bottleneck"] in ("metadata", "storage-read",
                                          "storage-write")
        # Speedup saturates: 16 workers nowhere near 16x.
        assert rows[16]["speedup"] < 8.0

    def test_write_bound_when_output_huge(self):
        """NILM decoded inflates 39.6 GB to 262.5 GB: with enough
        workers the write link binds (container source, so the metadata
        service stays quiet)."""
        plan = get_pipeline("NILM").split_at("decoded")
        estimate = distributed.estimate_distributed_offline(plan, CONFIG,
                                                            workers=16)
        assert estimate.bottleneck == "storage-write"

    def test_file_per_sample_source_binds_on_metadata(self):
        """NLP embedded with many workers: opening 181 K source files
        through the metadata service dominates everything else."""
        plan = get_pipeline("NLP").split_at("embedded")
        estimate = distributed.estimate_distributed_offline(plan, CONFIG,
                                                            workers=64)
        assert estimate.bottleneck == "metadata"

    def test_validation(self):
        plan = get_pipeline("CV").split_at("resized")
        with pytest.raises(ProfilingError):
            distributed.estimate_distributed_offline(plan, CONFIG, 0)
        with pytest.raises(ProfilingError):
            distributed.estimate_distributed_offline(
                get_pipeline("CV").split_at("unprocessed"), CONFIG, 2)


class TestFanOut:
    def test_small_representation_fans_out_widely(self):
        """NILM aggregated (0.012 MB/sample) serves many trainers before
        the link saturates."""
        plan = get_pipeline("NILM").split_at("aggregated")
        estimate = distributed.estimate_fan_out(plan, CONFIG, trainers=8,
                                                single_job_sps=9000)
        assert not estimate.network_is_bottleneck
        assert estimate.delivered_sps == 9000

    def test_fat_representation_hits_the_link(self):
        """CV pixel-centered (1.07 MB/sample): a handful of trainers
        saturate the 910 MB/s link (paper Sec. 7's warning)."""
        plan = get_pipeline("CV").split_at("pixel-centered")
        single = distributed.estimate_fan_out(plan, CONFIG, 1, 620)
        assert not single.network_is_bottleneck
        eight = distributed.estimate_fan_out(plan, CONFIG, 8, 620)
        assert eight.network_is_bottleneck
        assert eight.delivered_sps < 620

    def test_fan_out_frame_monotone(self):
        plan = get_pipeline("CV").split_at("pixel-centered")
        frame = distributed.fan_out_frame(plan, CONFIG, single_job_sps=620,
                                          trainer_counts=(1, 2, 4, 8, 16))
        delivered = frame["delivered_sps"]
        assert all(earlier >= later
                   for earlier, later in zip(delivered, delivered[1:]))

    def test_validation(self):
        plan = get_pipeline("CV").split_at("resized")
        with pytest.raises(ProfilingError):
            distributed.estimate_fan_out(plan, CONFIG, 0, 100)
        with pytest.raises(ProfilingError):
            distributed.estimate_fan_out(plan, CONFIG, 2, 0)


class TestCrossValidation:
    def test_fan_out_consistent_with_link_bound(self):
        """The fan-out link bound matches aggregate_bw / (bytes * J)."""
        plan = get_pipeline("MP3").split_at("spectrogram-encoded")
        estimate = distributed.estimate_fan_out(plan, CONFIG, 4, 5000)
        bytes_ps = plan.materialized.bytes_per_sample
        expected = 910e6 / (bytes_ps * 4)
        assert estimate.link_bound_sps == pytest.approx(expected, rel=1e-6)
