"""Tests for distributed preprocessing and trainer fan-out (Sec. 7)."""

import pytest

from repro.backends import RunConfig, SimulatedBackend
from repro.core import distributed
from repro.errors import ProfilingError
from repro.pipelines import get_pipeline

CONFIG = RunConfig()


class TestDistributedOffline:
    def test_cpu_bound_phase_scales_until_storage_binds(self):
        """CV2-PNG's decode-heavy offline phase is CPU-bound with one
        worker; adding workers helps until the shared storage read
        becomes the new bottleneck (the hidden wall Sec. 7 warns about)."""
        plan = get_pipeline("CV2-PNG").split_at("decoded")
        one = distributed.estimate_distributed_offline(plan, CONFIG, 1)
        four = distributed.estimate_distributed_offline(plan, CONFIG, 4)
        sixteen = distributed.estimate_distributed_offline(plan, CONFIG, 16)
        assert one.bottleneck == "worker-cpu"
        assert four.bottleneck.startswith("storage")
        assert 1.5 < one.duration / four.duration < 4.0
        # Once storage binds, more workers change nothing.
        assert sixteen.duration == pytest.approx(four.duration, rel=0.01)

    def test_storage_bound_phase_stops_scaling(self):
        """CV's offline phase is dominated by reading 1.3 M random files;
        beyond a few workers the metadata service binds."""
        plan = get_pipeline("CV").split_at("resized")
        frame = distributed.offline_scaling_frame(plan, CONFIG,
                                                  worker_counts=(1, 4, 16))
        rows = {row["workers"]: row for row in frame.rows()}
        assert rows[16]["bottleneck"] in ("metadata", "storage-read",
                                          "storage-write")
        # Speedup saturates: 16 workers nowhere near 16x.
        assert rows[16]["speedup"] < 8.0

    def test_write_bound_when_output_huge(self):
        """NILM decoded inflates 39.6 GB to 262.5 GB: with enough
        workers the write link binds (container source, so the metadata
        service stays quiet)."""
        plan = get_pipeline("NILM").split_at("decoded")
        estimate = distributed.estimate_distributed_offline(plan, CONFIG,
                                                            workers=16)
        assert estimate.bottleneck == "storage-write"

    def test_file_per_sample_source_binds_on_metadata(self):
        """NLP embedded with many workers: opening 181 K source files
        through the metadata service dominates everything else."""
        plan = get_pipeline("NLP").split_at("embedded")
        estimate = distributed.estimate_distributed_offline(plan, CONFIG,
                                                            workers=64)
        assert estimate.bottleneck == "metadata"

    def test_validation(self):
        plan = get_pipeline("CV").split_at("resized")
        with pytest.raises(ProfilingError):
            distributed.estimate_distributed_offline(plan, CONFIG, 0)
        with pytest.raises(ProfilingError):
            distributed.estimate_distributed_offline(
                get_pipeline("CV").split_at("unprocessed"), CONFIG, 2)


class TestFanOut:
    def test_small_representation_fans_out_widely(self):
        """NILM aggregated (0.012 MB/sample) serves many trainers before
        the link saturates."""
        plan = get_pipeline("NILM").split_at("aggregated")
        estimate = distributed.estimate_fan_out(plan, CONFIG, trainers=8,
                                                single_job_sps=9000)
        assert not estimate.network_is_bottleneck
        assert estimate.delivered_sps == 9000

    def test_fat_representation_hits_the_link(self):
        """CV pixel-centered (1.07 MB/sample): a handful of trainers
        saturate the 910 MB/s link (paper Sec. 7's warning)."""
        plan = get_pipeline("CV").split_at("pixel-centered")
        single = distributed.estimate_fan_out(plan, CONFIG, 1, 620)
        assert not single.network_is_bottleneck
        eight = distributed.estimate_fan_out(plan, CONFIG, 8, 620)
        assert eight.network_is_bottleneck
        assert eight.delivered_sps < 620

    def test_fan_out_frame_monotone(self):
        plan = get_pipeline("CV").split_at("pixel-centered")
        frame = distributed.fan_out_frame(plan, CONFIG, single_job_sps=620,
                                          trainer_counts=(1, 2, 4, 8, 16))
        delivered = frame["delivered_sps"]
        assert all(earlier >= later
                   for earlier, later in zip(delivered, delivered[1:]))

    def test_validation(self):
        plan = get_pipeline("CV").split_at("resized")
        with pytest.raises(ProfilingError):
            distributed.estimate_fan_out(plan, CONFIG, 0, 100)
        with pytest.raises(ProfilingError):
            distributed.estimate_fan_out(plan, CONFIG, 2, 0)


class TestEstimateProperties:
    """Direct unit tests of the estimator dataclasses themselves."""

    def test_offline_duration_is_the_binding_component(self):
        estimate = distributed.DistributedOfflineEstimate(
            workers=4, cpu_seconds=10.0, read_seconds=40.0,
            write_seconds=5.0, open_seconds=1.0)
        assert estimate.duration == 40.0
        assert estimate.bottleneck == "storage-read"

    def test_offline_bottleneck_names_every_component(self):
        cases = {
            "worker-cpu": dict(cpu_seconds=9.0, read_seconds=1.0,
                               write_seconds=1.0, open_seconds=1.0),
            "storage-read": dict(cpu_seconds=1.0, read_seconds=9.0,
                                 write_seconds=1.0, open_seconds=1.0),
            "storage-write": dict(cpu_seconds=1.0, read_seconds=1.0,
                                  write_seconds=9.0, open_seconds=1.0),
            "metadata": dict(cpu_seconds=1.0, read_seconds=1.0,
                             write_seconds=1.0, open_seconds=9.0),
        }
        for expected, parts in cases.items():
            estimate = distributed.DistributedOfflineEstimate(
                workers=1, **parts)
            assert estimate.bottleneck == expected
            assert estimate.duration == 9.0

    def test_fan_out_delivered_is_min_of_job_and_link(self):
        wide = distributed.FanOutEstimate(
            trainers=2, per_trainer_sps=100.0, link_bound_sps=500.0)
        assert wide.delivered_sps == 100.0
        assert not wide.network_is_bottleneck
        narrow = distributed.FanOutEstimate(
            trainers=8, per_trainer_sps=100.0, link_bound_sps=60.0)
        assert narrow.delivered_sps == 60.0
        assert narrow.network_is_bottleneck

    def test_offline_cpu_divides_by_workers_and_cores(self):
        """Doubling workers halves the CPU component, leaves the shared
        storage components untouched."""
        plan = get_pipeline("CV2-PNG").split_at("decoded")
        one = distributed.estimate_distributed_offline(plan, CONFIG, 1)
        two = distributed.estimate_distributed_offline(plan, CONFIG, 2)
        assert two.cpu_seconds == pytest.approx(one.cpu_seconds / 2)
        assert two.read_seconds == one.read_seconds
        assert two.write_seconds == one.write_seconds
        assert two.open_seconds == one.open_seconds


class TestFrameBuilders:
    """Direct tests of the report-frame builders."""

    def test_offline_scaling_frame_columns_and_base_speedup(self):
        plan = get_pipeline("CV2-PNG").split_at("decoded")
        frame = distributed.offline_scaling_frame(
            plan, CONFIG, worker_counts=(1, 2, 4))
        assert frame.columns == ["workers", "hours", "speedup",
                                 "bottleneck"]
        rows = list(frame.rows())
        assert [row["workers"] for row in rows] == [1, 2, 4]
        assert rows[0]["speedup"] == 1.0
        assert all(row["speedup"] >= 1.0 for row in rows)

    def test_fan_out_frame_columns_and_widths(self):
        plan = get_pipeline("MP3").split_at("spectrogram-encoded")
        frame = distributed.fan_out_frame(plan, CONFIG,
                                          single_job_sps=5000,
                                          trainer_counts=(1, 8))
        assert frame.columns == ["trainers", "delivered_sps",
                                 "network_bound"]
        rows = list(frame.rows())
        assert [row["trainers"] for row in rows] == [1, 8]
        assert rows[0]["delivered_sps"] == pytest.approx(5000)


class TestCrossValidation:
    def test_fan_out_consistent_with_link_bound(self):
        """The fan-out link bound matches aggregate_bw / (bytes * J)."""
        plan = get_pipeline("MP3").split_at("spectrogram-encoded")
        estimate = distributed.estimate_fan_out(plan, CONFIG, 4, 5000)
        bytes_ps = plan.materialized.bytes_per_sample
        expected = 910e6 / (bytes_ps * 4)
        assert estimate.link_bound_sps == pytest.approx(expected, rel=1e-6)

    def test_single_tenant_serve_converges_to_the_estimate(self):
        """ISSUE acceptance: the DES serve result matches the analytic
        fan-out estimate within 5% in the uncontended one-tenant limit
        (the serve-side twin lives in tests/serve/test_crosscheck.py)."""
        from repro.serve import simulate_fan_out
        plan = get_pipeline("FLAC").split_at("spectrogram-encoded")
        config = RunConfig(threads=8, epochs=1)
        single = SimulatedBackend().run(plan, config).throughput
        analytic = distributed.estimate_fan_out(plan, config, 1, single)
        report = simulate_fan_out(plan, config, trainers=1)
        assert report.tenants[0].throughput == pytest.approx(
            analytic.delivered_sps, rel=0.05)
