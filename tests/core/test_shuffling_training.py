"""Tests for shuffle analysis (Sec. 4.5) and training stalls (Fig. 3)."""

import pytest
from hypothesis import given, strategies as st

from repro.backends import RunConfig
from repro.core import shuffling, training
from repro.errors import PipelineError, ProfilingError
from repro.pipelines import get_pipeline
from repro.units import MB


class TestShuffling:
    def test_total_cost_linear_in_samples(self):
        small = shuffling.shuffle_overhead_seconds(1_000)
        large = shuffling.shuffle_overhead_seconds(101_000)
        delta = large - small
        per_sample = delta / 100_000
        # Constant per-sample term (the paper's core finding).
        assert per_sample == pytest.approx(
            shuffling.per_sample_shuffle_seconds(10**9), rel=0.01)

    def test_per_sample_cost_amortizes(self):
        """The paper: per-sample time falls as counts grow (buffer
        allocation amortisation)."""
        costs = [shuffling.per_sample_shuffle_seconds(count)
                 for count in (1_000, 10_000, 100_000, 1_000_000)]
        assert costs == sorted(costs, reverse=True)

    def test_zero_and_negative_counts(self):
        assert shuffling.shuffle_overhead_seconds(0) == 0.0
        with pytest.raises(PipelineError):
            shuffling.shuffle_overhead_seconds(-1)
        with pytest.raises(PipelineError):
            shuffling.per_sample_shuffle_seconds(0)

    def test_buffer_capacity(self):
        assert shuffling.buffer_capacity_samples(100 * MB, 1 * MB) == 100
        with pytest.raises(PipelineError):
            shuffling.buffer_capacity_samples(100, 0)

    def test_entropy_monotone_in_buffer_size(self):
        entropies = [shuffling.shuffle_entropy_bits(n)
                     for n in (1, 10, 1000)]
        assert entropies == sorted(entropies)
        assert entropies[0] == 0.0

    def test_recommendation_picks_smallest_representation(self):
        """Sec. 4.5: shuffle after the online step with the smallest
        output -- for the CV resized strategy that is the resized load
        point, not the float32 pixel-centered output."""
        plan = get_pipeline("CV").split_at("resized")
        placement = shuffling.recommend_shuffle_position(plan,
                                                         buffer_bytes=1e9)
        assert placement.after_step == "load"
        assert placement.buffer_samples > 3_000
        # NILM aggregated: the final features are tiny.
        plan = get_pipeline("NILM").split_at("decoded")
        placement = shuffling.recommend_shuffle_position(plan, 1e9)
        assert placement.after_step == "aggregate"

    def test_cost_frame(self):
        frame = shuffling.shuffle_cost_frame([100, 10_000])
        assert len(frame) == 2
        assert frame["per_sample_us"][0] > frame["per_sample_us"][1]

    @given(st.integers(1, 10**7))
    def test_per_sample_bounded_below_by_constant(self, count):
        per_sample = shuffling.per_sample_shuffle_seconds(count)
        assert per_sample >= 9.6e-6 - 1e-12


class TestTraining:
    def test_effective_throughput_is_min(self):
        device = training.TrainingConsumer("X", 1000)
        assert device.effective_throughput(500) == 500
        assert device.effective_throughput(2000) == 1000

    def test_stall_fraction(self):
        device = training.TrainingConsumer("X", 1000)
        assert device.stall_fraction(250) == pytest.approx(0.75)
        assert device.stall_fraction(1500) == 0.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ProfilingError):
            training.TrainingConsumer("X", 100).effective_throughput(-1)

    def test_paper_fig3_claim(self):
        """The tuned CV strategy (1789 SPS) unblocks A10/A30/V100; the
        naive strategies (107, 576 SPS) starve every accelerator."""
        unblocked = training.devices_unblocked_by(1789)
        assert set(unblocked) == {"A10", "A30", "V100"}
        assert training.devices_unblocked_by(576) == []
        assert training.devices_unblocked_by(107) == []

    def test_stall_analysis_frame(self):
        frame = training.stall_analysis({"resized, once": 1789,
                                         "all online": 107})
        assert len(frame) == 2 * len(training.RESNET50_CONSUMERS)
        v100_rows = frame.filter(
            lambda row: row["device"] == "V100")
        by_strategy = {row["strategy"]: row for row in v100_rows.rows()}
        assert not by_strategy["resized, once"]["stalled"]
        assert by_strategy["all online"]["stalled"]
        assert by_strategy["all online"]["stall_pct"] > 90
