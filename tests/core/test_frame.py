"""Tests for the mini data frame."""

import pytest
from hypothesis import given, strategies as st

from repro.core.frame import Frame
from repro.errors import FrameError


def _sample_frame():
    return Frame.from_records([
        {"name": "a", "value": 3.0, "group": "x"},
        {"name": "b", "value": 1.0, "group": "y"},
        {"name": "c", "value": 2.0, "group": "x"},
    ])


def test_from_records_and_access():
    frame = _sample_frame()
    assert len(frame) == 3
    assert frame.columns == ["name", "value", "group"]
    assert frame["value"] == [3.0, 1.0, 2.0]
    assert frame.row(1) == {"name": "b", "value": 1.0, "group": "y"}
    assert "value" in frame


def test_missing_keys_become_none():
    frame = Frame.from_records([{"a": 1}, {"b": 2}])
    assert frame["a"] == [1, None]
    assert frame["b"] == [None, 2]


def test_from_columns_validates_lengths():
    with pytest.raises(FrameError, match="ragged"):
        Frame.from_columns({"a": [1, 2], "b": [1]})


def test_append_extends_columns():
    frame = Frame(["a"])
    frame.append({"a": 1})
    frame.append({"a": 2, "b": 9})
    assert frame["b"] == [None, 9]


def test_unknown_column_raises():
    with pytest.raises(FrameError, match="no column"):
        _sample_frame()["nope"]


def test_row_out_of_range():
    with pytest.raises(FrameError):
        _sample_frame().row(5)


def test_select_and_order():
    frame = _sample_frame().select(["value", "name"])
    assert frame.columns == ["value", "name"]
    with pytest.raises(FrameError):
        _sample_frame().select(["ghost"])


def test_filter():
    frame = _sample_frame().filter(lambda row: row["group"] == "x")
    assert frame["name"] == ["a", "c"]


def test_sort_by():
    frame = _sample_frame().sort_by("value")
    assert frame["name"] == ["b", "c", "a"]
    descending = _sample_frame().sort_by("value", descending=True)
    assert descending["name"] == ["a", "c", "b"]


def test_sort_none_last():
    frame = Frame.from_records([{"v": None}, {"v": 1}])
    assert frame.sort_by("v")["v"] == [1, None]


def test_group_by():
    grouped = _sample_frame().group_by("group", {"value": sum})
    as_dict = {row["group"]: row["value"] for row in grouped.rows()}
    assert as_dict == {"x": 5.0, "y": 1.0}


def test_with_column():
    frame = _sample_frame().with_column("doubled",
                                        lambda row: row["value"] * 2)
    assert frame["doubled"] == [6.0, 2.0, 4.0]


def test_min_max():
    frame = _sample_frame()
    assert frame.column_min("value") == 1.0
    assert frame.column_max("value") == 3.0
    with pytest.raises(FrameError):
        Frame.from_records([{"v": None}]).column_min("v")


def test_normalized_range():
    frame = _sample_frame()
    normalized = frame.normalized("value")
    assert min(normalized) == 0.0
    assert max(normalized) == 1.0


def test_normalized_constant_column_is_zeros():
    frame = Frame.from_records([{"v": 5}, {"v": 5}])
    assert frame.normalized("v") == [0.0, 0.0]


def test_markdown_and_csv():
    frame = _sample_frame()
    markdown = frame.to_markdown()
    assert markdown.count("|") > 0
    assert "name" in markdown.splitlines()[0]
    csv_text = frame.to_csv()
    assert csv_text.splitlines()[0] == "name,value,group"
    assert len(csv_text.splitlines()) == 4


def test_empty_frame_renders():
    frame = Frame(["a", "b"])
    assert len(frame) == 0
    assert "a" in frame.to_markdown()


@given(st.lists(st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False), min_size=1, max_size=50))
def test_normalized_bounds_property(values):
    frame = Frame.from_records([{"v": value} for value in values])
    normalized = frame.normalized("v")
    assert all(0.0 <= value <= 1.0 for value in normalized)
