"""Tests for the cloud-cost objective (Sec. 3.1 extension)."""

import pytest

from repro.backends import RunConfig, SimulatedBackend
from repro.core.economics import (PriceSheet, cheapest_strategy, cost_frame,
                                  price_strategy)
from repro.core.profiler import StrategyProfiler
from repro.errors import ProfilingError
from repro.pipelines import get_pipeline

PROFILER = StrategyProfiler(SimulatedBackend())


@pytest.fixture(scope="module")
def cv_profiles():
    return PROFILER.profile_pipeline(get_pipeline("CV"))


@pytest.fixture(scope="module")
def nlp_profiles():
    return PROFILER.profile_pipeline(get_pipeline("NLP"))


def test_price_sheet_validation():
    with pytest.raises(ProfilingError):
        PriceSheet(trainer_per_hour=-1)
    with pytest.raises(ProfilingError):
        PriceSheet(trainer_ingest_sps=0)


def test_cost_components_positive(cv_profiles):
    cost = price_strategy(cv_profiles[3], PriceSheet(), epochs=10)
    assert cost.offline_usd > 0
    assert cost.storage_usd > 0
    assert cost.training_usd > 0
    assert cost.total_usd == pytest.approx(
        cost.offline_usd + cost.storage_usd + cost.egress_usd
        + cost.training_usd)


def test_unprocessed_has_no_offline_cost(cv_profiles):
    by_name = {p.strategy.split_name: p for p in cv_profiles}
    cost = price_strategy(by_name["unprocessed"], PriceSheet(), epochs=1)
    assert cost.offline_usd == 0.0


def test_stalls_burn_trainer_dollars(cv_profiles):
    """The slow unprocessed strategy stalls a V100 ~92%: its training
    bill dwarfs the tuned strategy's despite zero preprocessing."""
    by_name = {p.strategy.split_name: p for p in cv_profiles}
    prices = PriceSheet()
    slow = price_strategy(by_name["unprocessed"], prices, epochs=10)
    fast = price_strategy(by_name["resized"], prices, epochs=10)
    assert slow.stall_fraction > 0.9
    assert fast.stall_fraction == 0.0
    assert slow.training_usd > 5 * fast.training_usd
    assert slow.total_usd > fast.total_usd


def test_cheapest_cv_strategy_is_a_tuned_one(cv_profiles):
    winner = cheapest_strategy(cv_profiles, epochs=10)
    assert winner.strategy in ("resized", "concatenated")


def test_storage_prices_can_flip_the_winner(nlp_profiles):
    """With free storage, embedded's stall-free... actually bpe wins on
    throughput too; but with punitive storage prices embedded must never
    win and the total ordering punishes the 490 GB representation."""
    cheap_storage = PriceSheet(storage_per_gb_month=0.0)
    punitive = PriceSheet(storage_per_gb_month=5.0)
    by_name = {p.strategy.split_name: p for p in nlp_profiles}
    embedded_cheap = price_strategy(by_name["embedded"], cheap_storage, 10)
    embedded_punitive = price_strategy(by_name["embedded"], punitive, 10)
    assert embedded_punitive.total_usd > embedded_cheap.total_usd + 1000
    assert cheapest_strategy(nlp_profiles, punitive,
                             epochs=10).strategy != "embedded"


def test_egress_scales_with_epochs(cv_profiles):
    prices = PriceSheet(egress_per_gb=0.01)
    by_name = {p.strategy.split_name: p for p in cv_profiles}
    one = price_strategy(by_name["resized"], prices, epochs=1)
    ten = price_strategy(by_name["resized"], prices, epochs=10)
    assert ten.egress_usd == pytest.approx(10 * one.egress_usd)


def test_cost_frame_sorted(cv_profiles):
    frame = cost_frame(cv_profiles, PriceSheet(), epochs=10)
    totals = frame["total_usd"]
    assert totals == sorted(totals)
    assert len(frame) == len(cv_profiles)


def test_input_validation(cv_profiles):
    with pytest.raises(ProfilingError):
        price_strategy(cv_profiles[0], PriceSheet(), epochs=0)
    with pytest.raises(ProfilingError):
        price_strategy(cv_profiles[0], PriceSheet(), epochs=1,
                       project_months=-1)
    with pytest.raises(ProfilingError):
        cheapest_strategy([])
