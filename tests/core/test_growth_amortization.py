"""Tests for dataset-growth extrapolation and epoch amortisation."""

import pytest

from repro.backends import Environment, RunConfig, SimulatedBackend
from repro.core import amortization, growth
from repro.core.profiler import StrategyProfiler
from repro.errors import ProfilingError
from repro.pipelines import get_pipeline

BACKEND = SimulatedBackend()
PROFILER = StrategyProfiler(BACKEND)


@pytest.fixture(scope="module")
def cv2_profiles():
    return PROFILER.profile_pipeline(get_pipeline("CV2-JPG"))


class TestGrowth:
    def test_extrapolation_scales_linearly(self, cv2_profiles):
        env = Environment()
        profile = cv2_profiles[-1]  # pixel-centered, 5.8 GB
        estimate = growth.extrapolate_profile(profile, 4.0, env)
        assert estimate.storage_bytes == pytest.approx(
            4 * profile.storage_bytes)
        assert estimate.offline_seconds == pytest.approx(
            4 * profile.preprocessing_seconds)
        assert estimate.throughput_sps == profile.throughput

    def test_cache_loss_detected(self, cv2_profiles):
        """CV2-JPG pixel-centered (5.8 GB) fits in 80 GB RAM today but
        stops fitting somewhere around 14x growth."""
        env = Environment()
        profile = cv2_profiles[-1]
        small = growth.extrapolate_profile(profile, 2.0, env)
        big = growth.extrapolate_profile(profile, 16.0, env)
        assert not small.caching_lost
        assert big.caching_lost

    def test_bad_factor_rejected(self, cv2_profiles):
        with pytest.raises(ProfilingError):
            growth.extrapolate_profile(cv2_profiles[0], 0.0, Environment())

    def test_threshold_crossings_frame(self):
        frame = growth.find_threshold_crossings(get_pipeline("CV2-JPG"),
                                                Environment())
        rows = {row["strategy"]: row for row in frame.rows()}
        # 2.5 GB unprocessed crosses 80 GB RAM at ~31x growth.
        assert rows["unprocessed"]["ram_crossing_factor"] == pytest.approx(
            29.6, rel=0.1)
        assert rows["pixel-centered"]["cacheable_now"]
        # CV decoded already exceeds RAM (factor < 1).
        cv_frame = growth.find_threshold_crossings(get_pipeline("CV"),
                                                   Environment())
        cv_rows = {row["strategy"]: row for row in cv_frame.rows()}
        assert cv_rows["decoded"]["ram_crossing_factor"] < 1.0

    def test_growth_report_shows_cache_flip(self):
        """At 16x growth CV2-JPG's pixel-centered loses its cached-epoch
        advantage (93 GB > RAM) while resized (22 GB) keeps it."""
        pipeline = get_pipeline("CV2-JPG")
        report = growth.growth_report(BACKEND, pipeline,
                                      growth_factors=(1.0, 16.0))
        rows = {(row["growth"], row["strategy"]): row
                for row in report.rows()}
        assert (rows[(1.0, "pixel-centered")]["cached_sps"]
                > 2 * rows[(1.0, "pixel-centered")]["cold_sps"])
        grown = rows[(16.0, "pixel-centered")]
        assert grown["cached_sps"] < 1.3 * grown["cold_sps"]
        grown_resized = rows[(16.0, "resized")]
        assert grown_resized["cached_sps"] > 1.5 * grown_resized["cold_sps"]

    def test_recommendation_flips_structure(self):
        pipeline = get_pipeline("CV2-JPG")
        report = growth.growth_report(BACKEND, pipeline,
                                      growth_factors=(1.0, 16.0))
        flips = growth.recommendation_flips(report)
        assert flips[0][0] == 1.0
        assert all(isinstance(winner, str) for _, winner in flips)


class TestAmortization:
    def test_total_time_formula(self, cv2_profiles):
        profile = cv2_profiles[3]  # resized
        one = amortization.total_time(profile, 1)
        ten = amortization.total_time(profile, 10)
        per_epoch = (ten - one) / 9
        samples = profile.result.epochs[0].samples
        assert per_epoch == pytest.approx(samples / profile.throughput)

    def test_time_to_first_batch(self, cv2_profiles):
        by_name = {p.strategy.split_name: p for p in cv2_profiles}
        assert amortization.time_to_first_batch(
            by_name["unprocessed"]) == 0.0
        assert amortization.time_to_first_batch(by_name["resized"]) > 0.0

    def test_break_even_epochs(self, cv2_profiles):
        by_name = {p.strategy.split_name: p for p in cv2_profiles}
        epochs = amortization.break_even_epochs(by_name["unprocessed"],
                                                by_name["resized"])
        assert epochs is not None and epochs >= 1
        # At the break-even horizon the candidate is at least as good.
        assert (amortization.total_time(by_name["resized"], epochs)
                <= amortization.total_time(by_name["unprocessed"], epochs))
        # One epoch earlier it is not (tight break-even).
        if epochs > 1:
            assert (amortization.total_time(by_name["resized"], epochs - 1)
                    > amortization.total_time(by_name["unprocessed"],
                                              epochs - 1))

    def test_never_catches_up(self, cv2_profiles):
        """A slower-per-epoch strategy with more offline time never
        breaks even (decoded vs resized for CV2-JPG)."""
        by_name = {p.strategy.split_name: p for p in cv2_profiles}
        assert amortization.break_even_epochs(by_name["resized"],
                                              by_name["decoded"]) is None

    def test_short_runs_prefer_cheap_starts(self, cv2_profiles):
        """One-epoch runs should not pay hours of preprocessing."""
        winner_1 = amortization.best_strategy_for_epochs(cv2_profiles, 1)
        winner_100 = amortization.best_strategy_for_epochs(cv2_profiles,
                                                           1000)
        assert winner_1.preprocessing_seconds <= \
            winner_100.preprocessing_seconds
        assert winner_100.strategy.split_name == "resized"

    def test_amortization_frame(self, cv2_profiles):
        frame = amortization.amortization_frame(cv2_profiles,
                                                horizons=(1, 100))
        assert len(frame) == 2 * len(cv2_profiles)
        winners = {row["epochs"]: row["winner"] for row in frame.rows()}
        assert set(winners) == {1, 100}

    def test_validation(self, cv2_profiles):
        with pytest.raises(ProfilingError):
            amortization.total_time(cv2_profiles[0], -1)
        with pytest.raises(ProfilingError):
            amortization.best_strategy_for_epochs([], 5)
