"""Tests for Strategy, enumeration and the profiler."""

import pytest

from repro.backends import RunConfig, SimulatedBackend
from repro.core.profiler import StrategyProfiler
from repro.core.strategy import Strategy, enumerate_strategies
from repro.errors import ProfilingError
from repro.pipelines import get_pipeline

BACKEND = SimulatedBackend()


class TestStrategy:
    def test_names(self):
        plan = get_pipeline("CV").split_at("resized")
        strategy = Strategy(plan, RunConfig(threads=4, compression="GZIP"))
        assert strategy.split_name == "resized"
        assert strategy.pipeline_name == "CV"
        assert "threads=4" in strategy.name
        assert "comp=GZIP" in strategy.name

    def test_uid_stable_and_distinct(self):
        plan = get_pipeline("CV").split_at("resized")
        a = Strategy(plan, RunConfig(threads=4))
        b = Strategy(plan, RunConfig(threads=4))
        c = Strategy(plan, RunConfig(threads=8))
        assert a.uid == b.uid
        assert a.uid != c.uid


class TestEnumeration:
    def test_default_grid_is_split_points(self):
        strategies = enumerate_strategies(get_pipeline("NILM"))
        assert [s.split_name for s in strategies] == [
            "unprocessed", "decoded", "aggregated"]

    def test_compression_skips_unprocessed(self):
        strategies = enumerate_strategies(
            get_pipeline("NILM"), compressions=(None, "GZIP"))
        combos = {(s.split_name, s.config.compression) for s in strategies}
        assert ("unprocessed", "GZIP") not in combos
        assert ("decoded", "GZIP") in combos

    def test_grid_size(self):
        strategies = enumerate_strategies(
            get_pipeline("NILM"), threads=(1, 8),
            compressions=(None, "GZIP"), cache_modes=("none", "system"))
        # 3 splits x 2 threads x 2 compressions x 2 caches, minus the
        # unprocessed+GZIP combinations (1 split x 2 threads x 2 caches).
        assert len(strategies) == 3 * 2 * 2 * 2 - 4

    def test_explicit_splits(self):
        strategies = enumerate_strategies(get_pipeline("CV"),
                                          splits=["resized"])
        assert len(strategies) == 1
        assert strategies[0].split_name == "resized"


class TestProfiler:
    def test_profile_strategy_runs(self):
        profiler = StrategyProfiler(BACKEND)
        strategy = Strategy(get_pipeline("MP3").split_at("decoded"),
                            RunConfig())
        profile = profiler.profile_strategy(strategy)
        assert profile.throughput > 0
        assert profile.storage_bytes > 0
        assert len(profile.runs) == 1

    def test_runs_total_repeats(self):
        profiler = StrategyProfiler(BACKEND, runs_total=3)
        strategy = Strategy(get_pipeline("MP3").split_at("decoded"),
                            RunConfig())
        profile = profiler.profile_strategy(strategy)
        assert len(profile.runs) == 3
        assert profile.throughput_stdev == pytest.approx(0.0)  # DES

    def test_invalid_runs_total(self):
        with pytest.raises(ProfilingError):
            StrategyProfiler(BACKEND, runs_total=0)

    def test_sample_count_subsets(self):
        """The paper's sample_count knob (profile a fraction cheaply)."""
        profiler = StrategyProfiler(BACKEND)
        strategy = Strategy(get_pipeline("CV").split_at("resized"),
                            RunConfig())
        subset = profiler.profile_strategy(strategy, sample_count=8000)
        assert subset.result.epochs[0].samples == 8000
        assert subset.storage_bytes < 3e9

    def test_profile_pipeline_covers_all_splits(self):
        profiler = StrategyProfiler(BACKEND)
        profiles = profiler.profile_pipeline(get_pipeline("FLAC"))
        assert [p.strategy.split_name for p in profiles] == [
            "unprocessed", "decoded", "spectrogram-encoded"]

    def test_to_frame(self):
        profiler = StrategyProfiler(BACKEND)
        profiles = profiler.profile_pipeline(get_pipeline("FLAC"))
        frame = StrategyProfiler.to_frame(profiles)
        assert len(frame) == 3
        for column in ("throughput_sps", "storage_gb", "preprocessing_s",
                       "strategy", "uid"):
            assert column in frame.columns

    def test_subset_profiling_preserves_ranking(self):
        """Profiling 8000 samples picks the same winner as the full
        dataset for FLAC (the paper's sampling question, Sec. 2)."""
        profiler = StrategyProfiler(BACKEND)
        full = profiler.profile_pipeline(get_pipeline("FLAC"))
        subset = profiler.profile_pipeline(get_pipeline("FLAC"),
                                           sample_count=8000)
        best_full = max(full, key=lambda p: p.throughput)
        best_subset = max(subset, key=lambda p: p.throughput)
        assert (best_full.strategy.split_name
                == best_subset.strategy.split_name)
