"""Tests for the objective function and strategy ranking (Sec. 3.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.backends import RunConfig, SimulatedBackend
from repro.core.analysis import (DEADLINE, STORAGE_BUDGET, THROUGHPUT_ONLY,
                                 ObjectiveWeights, StrategyAnalysis)
from repro.core.profiler import StrategyProfiler
from repro.errors import ProfilingError
from repro.pipelines import get_pipeline

PROFILER = StrategyProfiler(SimulatedBackend())


@pytest.fixture(scope="module")
def cv_profiles():
    return PROFILER.profile_pipeline(get_pipeline("CV"))


def test_weights_validation():
    with pytest.raises(ProfilingError):
        ObjectiveWeights(-1, 0, 1)
    with pytest.raises(ProfilingError):
        ObjectiveWeights(0, 0, 0)


def test_empty_profiles_rejected():
    with pytest.raises(ProfilingError):
        StrategyAnalysis([])


def test_throughput_only_picks_fastest(cv_profiles):
    analysis = StrategyAnalysis(cv_profiles)
    assert analysis.best_strategy_name(THROUGHPUT_ONLY) == "resized"


def test_scores_in_range(cv_profiles):
    analysis = StrategyAnalysis(cv_profiles)
    weights = ObjectiveWeights(1, 1, 1)
    for score in analysis.scores(weights):
        assert 0.0 <= score <= 3.0


def test_ranked_frame_sorted(cv_profiles):
    analysis = StrategyAnalysis(cv_profiles)
    ranked = analysis.ranked(THROUGHPUT_ONLY)
    scores = ranked["score"]
    assert scores == sorted(scores, reverse=True)
    assert ranked.row(0)["strategy"] == "resized"


def test_deadline_weights_penalize_preprocessing(cv_profiles):
    """(1, 0, 1): unprocessed has zero preprocessing time, so its score
    must beat pixel-centered, which pays hours of preprocessing for
    worse throughput."""
    analysis = StrategyAnalysis(cv_profiles)
    scores = dict(zip((p.strategy.split_name for p in cv_profiles),
                      analysis.scores(DEADLINE)))
    assert scores["unprocessed"] > scores["pixel-centered"]


def test_storage_weights_change_winner():
    """On NLP, pure throughput picks bpe-encoded; a storage-heavy
    objective must never pick the 490 GB embedded strategy."""
    profiles = PROFILER.profile_pipeline(get_pipeline("NLP"))
    analysis = StrategyAnalysis(profiles)
    assert analysis.best_strategy_name(THROUGHPUT_ONLY) == "bpe-encoded"
    storage_heavy = ObjectiveWeights(0, 10, 1)
    assert analysis.best_strategy_name(storage_heavy) != "embedded"


def test_summary_mentions_recommendation(cv_profiles):
    summary = StrategyAnalysis(cv_profiles).summary()
    assert "Recommended strategy" in summary
    assert "resized" in summary


def test_presets_exist():
    assert THROUGHPUT_ONLY.throughput == 1.0
    assert DEADLINE.preprocessing == 1.0
    assert STORAGE_BUDGET.storage == 1.0


@given(wt=st.floats(0.1, 10), wp=st.floats(0, 10), ws=st.floats(0, 10))
def test_score_monotonic_in_throughput_weight(cv_profiles, wt, wp, ws):
    """Raising only the throughput weight never demotes the fastest
    strategy below its previous rank position 0 competitor."""
    analysis = StrategyAnalysis(cv_profiles)
    weights = ObjectiveWeights(wp, ws, wt)
    scores = analysis.scores(weights)
    throughputs = [p.throughput for p in cv_profiles]
    fastest = throughputs.index(max(throughputs))
    boosted = ObjectiveWeights(wp, ws, wt + 5.0)
    boosted_scores = analysis.scores(boosted)
    # The fastest strategy's score gain is the largest of all.
    gains = [b - a for a, b in zip(scores, boosted_scores)]
    assert gains[fastest] == pytest.approx(max(gains))
