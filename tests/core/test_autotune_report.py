"""Tests for the auto-tuner and report rendering."""

import pytest

from repro.backends import RunConfig, SimulatedBackend
from repro.core.analysis import ObjectiveWeights
from repro.core.autotune import AutoTuner
from repro.core.profiler import StrategyProfiler
from repro.core.report import (bottleneck_report, profile_summary,
                               storage_vs_throughput, tradeoff_table)
from repro.core.strategy import Strategy
from repro.errors import ProfilingError
from repro.pipelines import get_pipeline

BACKEND = SimulatedBackend()


class TestAutoTuner:
    def test_tune_finds_cv_resized(self):
        tuner = AutoTuner(BACKEND)
        report = tuner.tune(get_pipeline("CV"), compressions=(None,))
        assert report.best_strategy.split_name == "resized"
        assert report.candidates >= report.screened >= 2

    def test_screening_reduces_profiled_count(self):
        tuner = AutoTuner(BACKEND)
        full = tuner.tune(get_pipeline("MP3"),
                          compressions=(None, "GZIP", "ZLIB"),
                          screen_keep=1.0)
        screened = tuner.tune(get_pipeline("MP3"),
                              compressions=(None, "GZIP", "ZLIB"),
                              screen_keep=0.4)
        assert screened.screened < full.screened
        # Screening must not change the winner.
        assert (screened.best_strategy.split_name
                == full.best_strategy.split_name)

    def test_every_split_survives_screening(self):
        tuner = AutoTuner(BACKEND)
        report = tuner.tune(get_pipeline("NLP"),
                            compressions=(None, "GZIP"),
                            screen_keep=0.3)
        profiled_splits = {p.strategy.split_name for p in report.profiles}
        assert profiled_splits == set(get_pipeline("NLP").strategy_names())

    def test_weights_are_honored(self):
        tuner = AutoTuner(BACKEND)
        report = tuner.tune(get_pipeline("NLP"),
                            weights=ObjectiveWeights(0, 10, 1),
                            compressions=(None,))
        assert report.best_strategy.split_name != "embedded"

    def test_bad_screen_keep(self):
        tuner = AutoTuner(BACKEND)
        with pytest.raises(ProfilingError):
            tuner.tune(get_pipeline("MP3"), screen_keep=0.0)

    def test_describe_and_frame(self):
        tuner = AutoTuner(BACKEND)
        report = tuner.tune(get_pipeline("FLAC"), compressions=(None,))
        assert "FLAC" in report.describe()
        assert len(report.frame()) == report.screened


class TestReport:
    def test_storage_vs_throughput(self):
        profiler = StrategyProfiler(BACKEND)
        profiles = profiler.profile_pipeline(get_pipeline("NILM"))
        frame = storage_vs_throughput(profiles)
        assert frame["strategy"] == ["unprocessed", "decoded", "aggregated"]
        assert all(value > 0 for value in frame["throughput_sps"])

    def test_tradeoff_table_matches_table1_layout(self):
        profiler = StrategyProfiler(BACKEND)
        profiles = profiler.profile_pipeline(get_pipeline("CV"))
        frame = tradeoff_table(profiles)
        assert "Preprocessing strategy" in frame.columns
        assert "Throughput in samples/s" in frame.columns
        assert "Storage Consumption in GB" in frame.columns

    def test_bottleneck_report_text(self):
        text = bottleneck_report(get_pipeline("NLP"))
        assert "gil" in text
        assert "unprocessed" in text

    def test_profile_summary(self):
        profiler = StrategyProfiler(BACKEND)
        strategy = Strategy(get_pipeline("CV").split_at("resized"),
                            RunConfig(epochs=2, cache_mode="system"))
        profile = profiler.profile_strategy(strategy)
        summary = profile_summary(profile)
        assert "resized" in summary
        assert "offline preprocessing" in summary
