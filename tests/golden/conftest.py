"""Harness for the golden regression suite.

Each golden file in ``tests/golden/data/`` captures the full stdout of
one ``presto`` invocation as JSON (``{"argv": [...], "stdout": "..."}``).
The ``golden`` fixture re-runs the command and diffs byte-for-byte;
``pytest --update-golden`` regenerates the files instead (the opt-in
path for intentional output changes -- eyeball the git diff).
"""

from __future__ import annotations

import difflib
import json
from pathlib import Path

import pytest

DATA_DIR = Path(__file__).parent / "data"


class GoldenChecker:
    def __init__(self, update: bool, capsys):
        self.update = update
        self.capsys = capsys

    def check(self, name: str, argv: list[str]) -> None:
        from repro.cli import main
        self.capsys.readouterr()  # drop anything already buffered
        assert main(argv) == 0, f"presto {' '.join(argv)} failed"
        stdout = self.capsys.readouterr().out
        path = DATA_DIR / f"{name}.json"
        if self.update:
            DATA_DIR.mkdir(exist_ok=True)
            path.write_text(json.dumps(
                {"argv": argv, "stdout": stdout}, indent=2) + "\n")
            pytest.skip(f"golden {name!r} regenerated")
        if not path.exists():
            pytest.fail(
                f"golden file {path} missing; run "
                f"`pytest tests/golden --update-golden` to create it")
        recorded = json.loads(path.read_text())
        assert recorded["argv"] == argv, (
            f"golden {name!r} was recorded for {recorded['argv']}, "
            f"the test now runs {argv}; regenerate with --update-golden")
        if stdout != recorded["stdout"]:
            diff = "\n".join(difflib.unified_diff(
                recorded["stdout"].splitlines(),
                stdout.splitlines(),
                fromfile=f"golden/{name}", tofile="current", lineterm=""))
            pytest.fail(
                f"output of `presto {' '.join(argv)}` drifted from "
                f"golden {name!r}:\n{diff}\n"
                f"(intentional? regenerate with --update-golden)")


@pytest.fixture
def golden(request, capsys) -> GoldenChecker:
    return GoldenChecker(request.config.getoption("--update-golden"),
                         capsys)
