"""Golden regression tests for the ``presto`` report commands.

Covers ``sweep``/``diagnose``/``serve``/``ctl``/``stream``/``run``.

Three pipelines (MP3, FLAC, NILM) are covered by the profiling
commands, and the serving layer pins two trace/policy combinations
(the steady baseline under FIFO, and the contended bursty scenario
under the cache-aware policy).  The declarative path is pinned through
``presto run`` on a shipped example spec.  The simulated backend is a
deterministic DES, so byte-identical output is the contract -- any
drift (model changes, report format changes, ranking changes) must
show up here and be acknowledged by regenerating the goldens with
``pytest tests/golden --update-golden``.
"""

from pathlib import Path

import pytest

SWEEP_CASES = {
    "sweep_mp3": ["sweep", "--quiet", "--pipelines", "MP3"],
    "sweep_flac": ["sweep", "--quiet", "--pipelines", "FLAC"],
    "sweep_nilm": ["sweep", "--quiet", "--pipelines", "NILM"],
}

DIAGNOSE_CASES = {
    "diagnose_mp3": ["diagnose", "MP3"],
    "diagnose_flac": ["diagnose", "FLAC", "--verify-top", "2"],
    "diagnose_nilm": ["diagnose", "NILM", "--threads", "4"],
}

SERVE_CASES = {
    "serve_steady_fifo": ["serve", "--tenants", "4", "--policy", "fifo",
                          "--trace", "steady", "--seed", "0"],
    "serve_bursty_cache_aware": ["serve", "--tenants", "8", "--policy",
                                 "cache-aware", "--trace", "bursty",
                                 "--seed", "0"],
}

CTL_CASES = {
    "ctl_steady_faulty": ["ctl", "--tenants", "4", "--policy",
                          "fair-share", "--trace", "steady", "--seed",
                          "5", "--fault-rate", "0.5", "--max-attempts",
                          "2", "--backoff-base", "30"],
    # Long-horizon operations trace under the seeded chaos timeline:
    # pins the fault engine end to end (window injection, checkpoint
    # replay, SLO shedding, fault-aware doctor findings).
    "ctl_operations_chaos": ["ctl", "--tenants", "8", "--policy",
                             "cache-aware", "--trace", "operations",
                             "--seed", "1", "--slots", "4", "--faults",
                             "stragglers=1,slowdowns=1,brownouts=1,"
                             "blackouts=1,crash-windows=1,severity=0.6,"
                             "horizon=20000,checkpoint-epochs=2,"
                             "shed-slo=1"],
}

STREAM_CASES = {
    "stream_bursty": ["stream", "--tenants", "4", "--arrival", "burst",
                      "--rate", "2.0", "--requests", "16", "--batch",
                      "8", "--workers", "2", "--queue-bound", "4",
                      "--seed", "0"],
}

#: Declarative-path cases; argv paths are relative to the repo root.
RUN_CASES = {
    "run_sweep_cv": ["run", "examples/experiments/sweep_cv.json"],
}

#: Telemetry cases: the report plus the Chrome trace JSON on stdout.
#: Pins both that tracing leaves the report untouched and that the
#: span timeline itself is deterministic.
TRACE_CASES = {
    "trace_steady": ["serve", "--tenants", "2", "--trace", "steady",
                     "--seed", "0", "--trace-out", "-"],
}


@pytest.mark.parametrize("name", sorted(SWEEP_CASES))
def test_sweep_output_matches_golden(golden, name):
    golden.check(name, SWEEP_CASES[name])


@pytest.mark.parametrize("name", sorted(DIAGNOSE_CASES))
def test_diagnose_output_matches_golden(golden, name):
    golden.check(name, DIAGNOSE_CASES[name])


@pytest.mark.parametrize("name", sorted(SERVE_CASES))
def test_serve_output_matches_golden(golden, name):
    golden.check(name, SERVE_CASES[name])


@pytest.mark.parametrize("name", sorted(CTL_CASES))
def test_ctl_output_matches_golden(golden, name):
    golden.check(name, CTL_CASES[name])


@pytest.mark.parametrize("name", sorted(STREAM_CASES))
def test_stream_output_matches_golden(golden, name):
    golden.check(name, STREAM_CASES[name])


def test_stream_golden_regenerates_without_diff(capsys):
    """Running the recorded argv and rebuilding the --update-golden
    payload must reproduce the committed golden byte-for-byte, so a
    regeneration run leaves no git diff behind."""
    import json

    from repro.cli import main
    name = "stream_bursty"
    argv = STREAM_CASES[name]
    path = Path(__file__).parent / "data" / f"{name}.json"
    capsys.readouterr()
    assert main(argv) == 0
    stdout = capsys.readouterr().out
    rebuilt = json.dumps({"argv": argv, "stdout": stdout}, indent=2) + "\n"
    assert rebuilt == path.read_text()


@pytest.mark.parametrize("name", sorted(TRACE_CASES))
def test_trace_output_matches_golden(golden, name):
    golden.check(name, TRACE_CASES[name])


def test_trace_golden_report_prefix_and_payload_validate():
    """The trace golden splits into the untraced serve report (byte
    prefix) followed by a schema-valid Chrome trace payload."""
    import json

    from repro.obs.tracing import validate_chrome_trace
    path = Path(__file__).parent / "data" / "trace_steady.json"
    stdout = json.loads(path.read_text())["stdout"]
    lines = stdout.splitlines()
    payload = json.loads("\n".join(lines[lines.index("{"):]))
    assert validate_chrome_trace(payload) > 0
    categories = {event.get("cat") for event in payload["traceEvents"]
                  if event["ph"] == "X"}
    assert {"job", "queue", "epoch", "offline"} <= categories


@pytest.mark.parametrize("name", sorted(RUN_CASES))
def test_run_output_matches_golden(golden, name, monkeypatch):
    monkeypatch.chdir(Path(__file__).resolve().parents[2])
    golden.check(name, RUN_CASES[name])


def test_diagnose_attribution_is_well_formed(golden, capsys):
    """Structural gate on top of the byte diff: fractions in the
    diagnosis table parse back and sum to 1.0 +- 0.01 per strategy."""
    from repro.cli import main
    assert main(["diagnose", "MP3"]) == 0
    out = capsys.readouterr().out
    rows = [line for line in out.splitlines()
            if line.startswith("|") and "strategy" not in line
            and "---" not in line]
    assert rows, "diagnosis table missing"
    for row in rows:
        cells = [cell.strip() for cell in row.strip("|").split("|")]
        fractions = [float(value) for value in cells[2:6]]
        assert all(value >= 0 for value in fractions)
        assert sum(fractions) == pytest.approx(1.0, abs=0.01)
