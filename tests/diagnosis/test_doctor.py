"""Tests for the BottleneckDoctor (repro.diagnosis.doctor)."""

import pytest

from repro.backends.base import RunConfig
from repro.backends.simulated import SimulatedBackend
from repro.diagnosis import BottleneckDoctor, verification_report
from repro.errors import DiagnosisError
from repro.exec.engine import SweepEngine
from repro.pipelines.registry import get_pipeline, registered_names
from repro.pipelines.synthetic import (build_read_sweep_pipeline,
                                       build_rms_sweep_pipeline)


@pytest.fixture(scope="module")
def doctor():
    return BottleneckDoctor(SimulatedBackend())


class TestDiagnoseEveryRegistryPipeline:
    """The ISSUE 2 acceptance bar: every registered pipeline gets a
    well-formed attribution and at least one rewrite per strategy."""

    @pytest.fixture(scope="class")
    def diagnoses(self):
        doctor = BottleneckDoctor(SimulatedBackend())
        return {name: doctor.diagnose(get_pipeline(name))
                for name in registered_names()}

    def test_covers_the_whole_registry(self, diagnoses):
        assert set(diagnoses) == set(registered_names())

    def test_fractions_sum_to_one(self, diagnoses):
        for name, diagnosis in diagnoses.items():
            for strategy in diagnosis.strategies:
                total = sum(strategy.attribution.as_dict().values())
                assert total == pytest.approx(1.0, abs=0.01), (
                    name, strategy.strategy_name)

    def test_every_strategy_gets_a_rewrite(self, diagnoses):
        for name, diagnosis in diagnoses.items():
            for strategy in diagnosis.strategies:
                assert len(strategy.rewrites) >= 1, (
                    name, strategy.strategy_name)

    def test_report_frame_has_diagnosis_columns(self, diagnoses):
        frame = diagnoses["MP3"].frame()
        for column in ("cpu_frac", "storage_frac", "decode_frac",
                       "stall_frac", "bound", "top_rewrite",
                       "predicted_speedup"):
            assert column in frame.columns

    def test_markdown_report_renders(self, diagnoses):
        report = diagnoses["FLAC"].to_markdown()
        assert "| strategy" in report
        assert "rewrites (per strategy, best first):" in report
        assert "insert-prefetch" in report


class TestVerification:
    """Predicted speedup sign must match measurement (synthetic
    pipelines, ISSUE 2 acceptance)."""

    @pytest.mark.parametrize("pipeline,config", [
        (build_read_sweep_pipeline(10.0), RunConfig(threads=2)),
        (build_rms_sweep_pipeline(1.0, "native"), RunConfig(threads=2)),
        (build_rms_sweep_pipeline(1.0, "numpy"), RunConfig(threads=8)),
    ], ids=["read-sweep", "rms-native", "rms-numpy"])
    def test_verify_top2_sign_matches(self, doctor, pipeline, config):
        diagnosis = doctor.diagnose(pipeline, config=config)
        verified = doctor.verify(diagnosis, top=2)
        assert 1 <= len(verified) <= 2
        for item in verified:
            assert item.sign_matches, item.describe()
            assert item.measured_sps > 0

    def test_verification_runs_through_the_backend(self, doctor):
        diagnosis = doctor.diagnose(get_pipeline("MP3"))
        verified = doctor.verify(diagnosis, top=2)
        for item in verified:
            # The measured number is a fresh backend run of the
            # rewritten strategy, not the prediction echoed back.
            assert item.measured_sps != pytest.approx(
                item.rewrite.predicted_sps, rel=1e-12)
            assert item.prediction_error == pytest.approx(
                (item.rewrite.predicted_sps - item.measured_sps)
                / item.measured_sps)

    def test_verify_dedupes_identical_rewrites(self, doctor):
        diagnosis = doctor.diagnose(get_pipeline("MP3"))
        verified = doctor.verify(diagnosis, top=3)
        uids = [item.rewrite.strategy.uid for item in verified]
        assert len(uids) == len(set(uids))

    def test_verification_report_lists_each_row(self, doctor):
        diagnosis = doctor.diagnose(get_pipeline("FLAC"))
        verified = doctor.verify(diagnosis, top=2)
        report = verification_report(verified)
        assert report.count("predicted") == len(verified)

    def test_verify_rejects_nonpositive_top(self, doctor):
        diagnosis = doctor.diagnose(get_pipeline("MP3"))
        with pytest.raises(DiagnosisError):
            doctor.verify(diagnosis, top=0)


class TestFallbacksAndPlumbing:
    def test_diagnose_profiles_without_traces_uses_model(self, doctor):
        profiles = doctor.engine.profile_pipeline(get_pipeline("MP3"))
        for profile in profiles:
            for run in profile.runs:
                for epoch in run.epochs:
                    epoch.trace = None
        diagnosis = doctor.diagnose_profiles(profiles)
        for strategy in diagnosis.strategies:
            assert strategy.attribution.source == "model"
            total = sum(strategy.attribution.as_dict().values())
            assert total == pytest.approx(1.0, abs=0.01)

    def test_diagnose_profiles_rejects_empty_input(self, doctor):
        with pytest.raises(DiagnosisError):
            doctor.diagnose_profiles([])

    def test_traced_attribution_reports_trace_source(self, doctor):
        diagnosis = doctor.diagnose(get_pipeline("MP3"))
        assert all(strategy.attribution.source == "trace"
                   for strategy in diagnosis.strategies)

    def test_sample_count_diagnoses_a_subset(self, doctor):
        diagnosis = doctor.diagnose(get_pipeline("FLAC"),
                                    sample_count=500)
        sample_counts = {
            strategy.profile.result.epochs[0].samples
            for strategy in diagnosis.strategies}
        assert sample_counts == {500}

    def test_engine_trace_hook_fires_for_jobs_and_cache_hits(self):
        from repro.exec.cache import ProfileCache
        collected = []
        engine = SweepEngine(
            SimulatedBackend(), cache=ProfileCache(),
            trace_hook=lambda strategy, trace: collected.append(
                (strategy.uid, trace)))
        engine.profile_pipeline(get_pipeline("MP3"))
        executed = len(collected)
        assert executed >= 3  # one per strategy at least
        engine.profile_pipeline(get_pipeline("MP3"))  # all cache hits
        assert len(collected) == 2 * executed
        assert all(trace.duration > 0 for _, trace in collected)

    def test_best_returns_highest_throughput_strategy(self, doctor):
        diagnosis = doctor.diagnose(get_pipeline("MP3"))
        best = diagnosis.best()
        assert best.profile.throughput == max(
            strategy.profile.throughput
            for strategy in diagnosis.strategies)

    def test_core_attribution_table_on_traced_profiles(self, doctor):
        from repro.core.report import attribution_table
        profiles = doctor.engine.profile_pipeline(get_pipeline("MP3"))
        frame = attribution_table(profiles)
        assert frame.columns == ["strategy", "throughput_sps", "cpu_frac",
                                 "storage_frac", "decode_frac",
                                 "stall_frac", "bound"]
        for row in frame.rows():
            total = sum(row[column] for column in
                        ("cpu_frac", "storage_frac", "decode_frac",
                         "stall_frac"))
            assert total == pytest.approx(1.0, abs=0.01)

    def test_core_attribution_table_tolerates_traceless_profiles(
            self, doctor):
        from repro.core.report import attribution_table
        profiles = doctor.engine.profile_pipeline(get_pipeline("MP3"))
        for profile in profiles:
            for run in profile.runs:
                for epoch in run.epochs:
                    epoch.trace = None
        frame = attribution_table(profiles)
        assert frame["cpu_frac"] == [None] * len(profiles)
        assert "| strategy" in frame.to_markdown()
