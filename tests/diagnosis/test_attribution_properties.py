"""Property-based tests for diagnosis attribution.

Invariants (ISSUE 2): attribution fractions are non-negative, sum to
~1.0, are invariant under uniformly scaled traces, and respond
monotonically when one resource's share of a fixed time budget grows.

Uses hypothesis when available (derandomized, so two consecutive runs
explore identical examples); otherwise falls back to a fixed-seed
random sweep with the same checks.
"""

import random

import pytest

from repro.diagnosis.attribution import (CATEGORIES, ResourceAttribution,
                                         from_trace)
from repro.errors import DiagnosisError
from repro.sim.trace import ResourceTrace

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is optional
    HAVE_HYPOTHESIS = False

N_EXAMPLES = 80


def draw_trace(rng: random.Random) -> ResourceTrace:
    """A random trace whose budget covers its bracketed categories."""
    threads = rng.randint(1, 16)
    parts = [rng.uniform(0.0, 100.0) for _ in range(8)]
    budget = sum(parts) * rng.uniform(1.0, 1.5)  # headroom becomes stall
    return ResourceTrace(
        duration=budget / threads, threads=threads,
        open_seconds=parts[0], read_seconds=parts[1],
        memory_seconds=parts[2], decode_seconds=parts[3],
        cpu_seconds=parts[4], gil_seconds=parts[5],
        dispatch_seconds=parts[6], shuffle_seconds=parts[7])


def check_invariants(trace: ResourceTrace) -> ResourceAttribution:
    attribution = from_trace(trace)
    shares = attribution.as_dict()
    assert set(shares) == set(CATEGORIES)
    assert all(value >= 0.0 for value in shares.values()), shares
    assert sum(shares.values()) == pytest.approx(1.0, abs=1e-9)
    assert attribution.dominant in CATEGORIES
    return attribution


def check_scale_invariance(trace: ResourceTrace, factor: float) -> None:
    original = from_trace(trace).as_dict()
    scaled = from_trace(trace.scaled(factor)).as_dict()
    for category in CATEGORIES:
        assert scaled[category] == pytest.approx(
            original[category], abs=1e-9)


def check_monotone_storage(trace: ResourceTrace, extra: float) -> None:
    """More read time inside the same budget => storage share grows."""
    headroom = trace.stall_seconds
    grown = ResourceTrace(**{
        **trace.to_dict(),
        "read_seconds": trace.read_seconds + min(extra, headroom),
    })
    before = from_trace(trace)
    after = from_trace(grown)
    assert after.storage >= before.storage - 1e-12
    assert after.stall <= before.stall + 1e-12
    # The untouched shares keep their values (same total budget).
    assert after.cpu == pytest.approx(before.cpu, abs=1e-9)
    assert after.decode == pytest.approx(before.decode, abs=1e-9)


if HAVE_HYPOTHESIS:
    trace_strategy = st.builds(
        draw_trace,
        st.integers(min_value=0, max_value=2**32 - 1).map(random.Random))

    @given(trace_strategy)
    @settings(max_examples=N_EXAMPLES, derandomize=True, deadline=None)
    def test_fractions_are_a_distribution(trace):
        check_invariants(trace)

    @given(trace_strategy,
           st.floats(min_value=1e-3, max_value=1e3,
                     allow_nan=False, allow_infinity=False))
    @settings(max_examples=N_EXAMPLES, derandomize=True, deadline=None)
    def test_scaled_traces_attribute_identically(trace, factor):
        check_scale_invariance(trace, factor)

    @given(trace_strategy,
           st.floats(min_value=0.0, max_value=100.0,
                     allow_nan=False, allow_infinity=False))
    @settings(max_examples=N_EXAMPLES, derandomize=True, deadline=None)
    def test_storage_share_monotone_in_read_time(trace, extra):
        check_monotone_storage(trace, extra)

else:  # pragma: no cover - exercised only without hypothesis
    def test_fractions_are_a_distribution():
        rng = random.Random(0xD1A6)
        for _ in range(N_EXAMPLES):
            check_invariants(draw_trace(rng))

    def test_scaled_traces_attribute_identically():
        rng = random.Random(0x5CA1)
        for _ in range(N_EXAMPLES):
            check_scale_invariance(draw_trace(rng),
                                   rng.uniform(1e-3, 1e3))

    def test_storage_share_monotone_in_read_time():
        rng = random.Random(0x0401)
        for _ in range(N_EXAMPLES):
            check_monotone_storage(draw_trace(rng), rng.uniform(0, 100))


class TestValidation:
    def test_rejects_negative_fractions(self):
        with pytest.raises(DiagnosisError):
            ResourceAttribution(cpu=-0.1, storage=0.5, decode=0.3,
                                stall=0.3)

    def test_rejects_fractions_not_summing_to_one(self):
        with pytest.raises(DiagnosisError):
            ResourceAttribution(cpu=0.5, storage=0.5, decode=0.5,
                                stall=0.5)

    def test_degenerate_trace_is_all_stall(self):
        attribution = from_trace(ResourceTrace(duration=0.0, threads=1))
        assert attribution.stall == 1.0
        assert attribution.dominant == "stall"
