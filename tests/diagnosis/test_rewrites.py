"""Tests for rewrite proposal rules (repro.diagnosis.rewrites)."""

import pytest

from repro.backends.base import (CACHE_APPLICATION, CACHE_SYSTEM,
                                 Environment, RunConfig)
from repro.backends.simulated import SimulatedBackend
from repro.core.profiler import StrategyProfiler
from repro.core.strategy import Strategy
from repro.diagnosis.attribution import attribute
from repro.diagnosis.rewrites import propose_rewrites
from repro.pipelines.registry import get_pipeline
from repro.pipelines.synthetic import build_read_sweep_pipeline


def profile_of(pipeline, split, config):
    profiler = StrategyProfiler(SimulatedBackend())
    return profiler.profile_strategy(
        Strategy(pipeline.split_at(split), config))


def rewrites_for(pipeline, split="unprocessed", config=None):
    config = config or RunConfig()
    profile = profile_of(pipeline, split, config)
    return profile, propose_rewrites(profile, attribute(profile))


def kinds(rewrites):
    return [rewrite.kind for rewrite in rewrites]


class TestRuleSelection:
    def test_prefetch_is_always_proposed(self):
        for name in ("MP3", "NILM", "CV2-JPG"):
            _, rewrites = rewrites_for(get_pipeline(name))
            assert "insert-prefetch" in kinds(rewrites)

    def test_prefetch_is_graph_level_and_not_verifiable(self):
        _, rewrites = rewrites_for(get_pipeline("MP3"))
        prefetch = next(rewrite for rewrite in rewrites
                        if rewrite.kind == "insert-prefetch")
        assert prefetch.target == "graph"
        assert not prefetch.verifiable
        assert prefetch.predicted_speedup >= 1.0

    def test_raise_parallelism_only_below_core_count(self):
        pipeline = build_read_sweep_pipeline(10.0)
        _, narrow = rewrites_for(pipeline, split=0,
                                 config=RunConfig(threads=2))
        _, wide = rewrites_for(pipeline, split=0,
                               config=RunConfig(threads=8))
        assert "raise-parallelism" in kinds(narrow)
        assert "raise-parallelism" not in kinds(wide)

    def test_raise_parallelism_targets_the_core_count(self):
        _, rewrites = rewrites_for(build_read_sweep_pipeline(10.0),
                                   split=0, config=RunConfig(threads=2))
        rewrite = next(r for r in rewrites
                       if r.kind == "raise-parallelism")
        assert rewrite.strategy.config.threads == Environment().cores

    def test_codec_switch_proposed_where_the_model_predicts_a_win(self):
        # CV2-PNG 'pixel-centered' floats compress 93% and the strategy
        # is storage-bound, so a codec switch must be proposed...
        _, rewrites = rewrites_for(get_pipeline("CV2-PNG"),
                                   split="pixel-centered")
        rewrite = next(r for r in rewrites if r.kind == "switch-codec")
        assert rewrite.strategy.config.compression in ("GZIP", "ZLIB")
        assert rewrite.predicted_speedup > 1.0
        # ...while NLP 'decoded' is GIL-bound: compression would only
        # add decompression work, so the rule must stay silent.
        _, rewrites = rewrites_for(get_pipeline("NLP"), split="decoded")
        assert "switch-codec" not in kinds(rewrites)

    def test_codec_switch_never_offered_for_unprocessed(self):
        # Compression cannot fix random-access-bound strategies
        # (paper Sec. 4.3) and the backends reject the combination.
        for name in ("MP3", "NLP", "CV"):
            _, rewrites = rewrites_for(get_pipeline(name),
                                       split="unprocessed")
            assert "switch-codec" not in kinds(rewrites)

    def test_system_cache_requires_fitting_the_page_cache(self):
        # CV unprocessed is 144 GB on an 80 GB VM: no system-cache.
        _, big = rewrites_for(get_pipeline("CV"), split="unprocessed")
        assert "system-cache" not in kinds(big)
        _, small = rewrites_for(get_pipeline("MP3"),
                                split="spectrogram-encoded")
        assert "system-cache" in kinds(small)

    def test_relocate_cache_requires_tensors_to_fit_ram(self):
        # CV final tensors exceed 80 GB RAM (the paper's failed
        # app-cache runs); MP3's spectrograms fit.
        _, big = rewrites_for(get_pipeline("CV"))
        assert "relocate-cache" not in kinds(big)
        _, small = rewrites_for(get_pipeline("MP3"))
        assert "relocate-cache" in kinds(small)

    def test_materialize_further_stops_at_last_split(self):
        pipeline = get_pipeline("MP3")
        _, first = rewrites_for(pipeline, split="unprocessed")
        assert "materialize-further" in kinds(first)
        _, last = rewrites_for(pipeline, split="spectrogram-encoded")
        assert "materialize-further" not in kinds(last)


class TestRewriteShape:
    def test_ranked_by_predicted_speedup(self):
        _, rewrites = rewrites_for(get_pipeline("MP3"))
        speedups = [rewrite.predicted_speedup for rewrite in rewrites]
        assert speedups == sorted(speedups, reverse=True)

    def test_config_rewrites_carry_runnable_strategies(self):
        profile, rewrites = rewrites_for(get_pipeline("MP3"))
        backend = SimulatedBackend()
        for rewrite in rewrites:
            if not rewrite.verifiable:
                continue
            result = backend.run(rewrite.strategy.plan,
                                 rewrite.strategy.config)
            assert result.throughput > 0

    def test_cache_rewrites_run_at_least_two_epochs(self):
        _, rewrites = rewrites_for(get_pipeline("MP3"),
                                   split="spectrogram-encoded")
        for rewrite in rewrites:
            if rewrite.metric == "cached":
                assert rewrite.strategy.config.epochs >= 2
                assert rewrite.strategy.config.cache_mode in (
                    CACHE_SYSTEM, CACHE_APPLICATION)

    def test_predictions_are_anchored_to_the_measurement(self):
        profile, rewrites = rewrites_for(get_pipeline("MP3"))
        for rewrite in rewrites:
            assert rewrite.baseline_sps == pytest.approx(
                profile.throughput)
            assert rewrite.predicted_sps == pytest.approx(
                rewrite.baseline_sps * rewrite.predicted_speedup)

    def test_describe_mentions_kind_and_prediction(self):
        _, rewrites = rewrites_for(get_pipeline("MP3"))
        for rewrite in rewrites:
            text = rewrite.describe()
            assert rewrite.kind in text
            assert "predicted" in text
