"""Root pytest configuration.

Defines the ``--update-golden`` flag used by the golden regression
suite (tests/golden/): when passed, golden JSON files are regenerated
from current output instead of diffed against it.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate tests/golden/data/*.json from current output "
             "instead of diffing against it")
