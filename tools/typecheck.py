#!/usr/bin/env python
"""The mypy gate (`make typecheck`): second static pass beside simlint.

Runs mypy with the pinned configuration in ``pyproject.toml`` over the
starter subset (``repro.sim``, ``repro.faults``, ``repro.lint``).  The
tier-1 container deliberately ships no third-party tooling, so when
mypy is not importable this script *skips* with exit 0 and a notice --
the real gate runs in CI, which installs the pinned version (see
.github/workflows/ci.yml).

Exit codes: 0 clean (or skipped), 1 type errors, 2 usage/config error.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def main() -> int:
    if importlib.util.find_spec("mypy") is None:
        print("typecheck: mypy is not installed in this environment; "
              "skipping (CI runs the pinned pass)")
        return 0
    command = [sys.executable, "-m", "mypy",
               "--config-file", str(REPO / "pyproject.toml")]
    print("typecheck:", " ".join(command[2:]))
    return subprocess.call(command, cwd=REPO)


if __name__ == "__main__":
    sys.exit(main())
