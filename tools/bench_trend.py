#!/usr/bin/env python
"""Bench trend analysis across a series of ``BENCH_serve.json`` files.

Thin standalone wrapper over :mod:`repro.obs.trend` (the same engine
``presto trend`` uses) for CI jobs that keep bench snapshots as build
artifacts: feed it two or more snapshots oldest-first and it prints the
per-scenario delta table, flagging throughput drops beyond the
threshold.  ``--fail-on-regression`` exits 3 when anything is flagged,
so the job can gate on it.

Usage::

    PYTHONPATH=src python tools/bench_trend.py \
        BENCH_prev.json BENCH_serve.json [--metric events_per_sec]
        [--threshold 5.0] [--fail-on-regression]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main  # noqa: E402  (path bootstrap above)

if __name__ == "__main__":
    sys.exit(main(["trend", *sys.argv[1:]]))
