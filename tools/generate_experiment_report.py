"""Regenerate the EXPERIMENTS.md data: every table/figure, paper vs measured.

Run:  python tools/generate_experiment_report.py > /tmp/experiments_data.md
"""

from repro.backends import Environment, RunConfig, SimulatedBackend
from repro.core.frame import Frame
from repro.pipelines import get_pipeline
from repro.pipelines.synthetic import (build_read_sweep_pipeline,
                                       build_rms_sweep_pipeline)
from repro.sim.fio import run_fio
from repro.sim.storage import HDD_CEPH, SSD_CEPH
from repro.units import MB

BACKEND = SimulatedBackend()

FIG6_PAPER = {
    "CV": {"unprocessed": 107, "concatenated": 962, "decoded": 746,
           "resized": 1789, "pixel-centered": 576},
    "CV2-JPG": {"unprocessed": 88, "concatenated": 288, "decoded": 64,
                "resized": 1571, "pixel-centered": 643},
    "CV2-PNG": {"unprocessed": 15, "concatenated": 21, "decoded": 73,
                "resized": 1786, "pixel-centered": 631},
    "NLP": {"unprocessed": 6, "concatenated": 6, "decoded": 251,
            "bpe-encoded": 1726, "embedded": 131},
    "NILM": {"unprocessed": 42, "decoded": 55, "aggregated": 9053},
    "MP3": {"unprocessed": 37, "decoded": 205, "spectrogram-encoded": 5220},
    "FLAC": {"unprocessed": 15, "decoded": 47,
             "spectrogram-encoded": 1436},
}

FIG8_PAPER_E1 = {
    "CV": {"unprocessed": 126, "concatenated": 957, "decoded": 753,
           "resized": 1808, "pixel-centered": 580},
    "CV2-JPG": {"unprocessed": 302, "concatenated": 308, "decoded": 198,
                "resized": 2541, "pixel-centered": 2044},
    "CV2-PNG": {"unprocessed": 18, "concatenated": 21, "decoded": 208,
                "resized": 3285, "pixel-centered": 2201},
    "NLP": {"unprocessed": 5, "concatenated": 6, "decoded": 252,
            "bpe-encoded": 1764, "embedded": 138},
    "NILM": {"unprocessed": 43, "decoded": 55, "aggregated": 9890},
    "MP3": {"unprocessed": 188, "decoded": 210,
            "spectrogram-encoded": 8429},
    "FLAC": {"unprocessed": 38, "decoded": 47,
             "spectrogram-encoded": 5989},
}


def section(title):
    print(f"\n### {title}\n")


def main():
    section("Figure 6 / Table 1 (cold throughput, SPS)")
    rows = []
    for name, targets in FIG6_PAPER.items():
        for plan in get_pipeline(name).split_points():
            r = BACKEND.run(plan, RunConfig())
            paper = targets[plan.strategy_name]
            rows.append({
                "pipeline": name, "strategy": plan.strategy_name,
                "paper SPS": paper, "measured SPS": round(r.throughput),
                "ratio": round(r.throughput / paper, 2),
                "storage GB": round(r.storage_bytes / 1e9, 1),
                "net reads MB/s": round(r.epochs[0].avg_read_bw / MB, 1),
            })
    print(Frame.from_records(rows).to_markdown())

    section("Figure 8 (epoch-1 throughput with system caching, SPS)")
    rows = []
    for name, targets in FIG8_PAPER_E1.items():
        for plan in get_pipeline(name).split_points():
            r = BACKEND.run(plan, RunConfig(epochs=2, cache_mode="system"))
            paper = targets[plan.strategy_name]
            rows.append({
                "pipeline": name, "strategy": plan.strategy_name,
                "paper e1": paper,
                "measured e1": round(r.epochs[1].throughput),
                "ratio": round(r.epochs[1].throughput / paper, 2),
            })
    print(Frame.from_records(rows).to_markdown())

    section("Table 3 (fio)")
    paper_bw = (219.0, 910.0, 6.6, 40.4)
    rows = []
    for result, paper in zip(run_fio(HDD_CEPH), paper_bw):
        rows.append({
            "threads": result.workload.threads,
            "files/thread": result.workload.files_per_thread,
            "paper MB/s": paper,
            "measured MB/s": round(result.bandwidth / MB, 1),
            "measured IOPS": round(result.iops),
        })
    print(Frame.from_records(rows).to_markdown())

    section("Table 4 (SSD rows)")
    ssd = SimulatedBackend(Environment(storage=SSD_CEPH))
    rows = []
    for label, runner, paper_u, paper_c in (
            ("CV (HDD)", BACKEND, 107, 962), ("CV (SSD)", ssd, 588, 944),
            ("NLP (HDD)", BACKEND, 6, 6), ("NLP (SSD)", ssd, 3, 3)):
        pipeline = get_pipeline(label.split(" ")[0])
        u = runner.run(pipeline.split_at("unprocessed"), RunConfig())
        c = runner.run(pipeline.split_at("concatenated"), RunConfig())
        rows.append({"row": label, "paper unproc": paper_u,
                     "measured unproc": round(u.throughput, 1),
                     "paper concat": paper_c,
                     "measured concat": round(c.throughput, 1)})
    print(Frame.from_records(rows).to_markdown())

    section("Table 5 (caching speedups, last strategies)")
    paper = {"CV2-JPG": (3.3, 15.2), "CV2-PNG": (3.5, 14.5),
             "FLAC": (4.2, 8.0), "MP3": (1.6, 2.2), "NILM": (1.1, 1.4)}
    rows = []
    for name, (paper_sys, paper_app) in paper.items():
        plan = get_pipeline(name).split_points()[-1]
        base = BACKEND.run(plan, RunConfig(epochs=2, cache_mode="none"))
        sys_r = BACKEND.run(plan, RunConfig(epochs=2, cache_mode="system"))
        app_r = BACKEND.run(plan, RunConfig(epochs=2,
                                            cache_mode="application"))
        cold = base.epochs[1].throughput
        rows.append({
            "pipeline": name,
            "sys paper": paper_sys,
            "sys measured": round(sys_r.epochs[1].throughput / cold, 1),
            "app paper": paper_app,
            "app measured": round(app_r.epochs[1].throughput / cold, 1),
        })
    print(Frame.from_records(rows).to_markdown())

    section("Figure 9 (seconds for 15 GB, selected sizes)")
    paper9 = {20.5: (15.0, 4.8, 0.1), 0.32: (21.1, 6.0, 4.3),
              0.08: (32.6, 20.7, 17.4), 0.01: (173.5, 167.3, 138.3)}
    rows = []
    for mb, (p_none, p_sys, p_app) in paper9.items():
        plan = build_read_sweep_pipeline(mb, "float32").split_points()[0]
        measured = {}
        for mode in ("none", "system", "application"):
            r = BACKEND.run(plan, RunConfig(epochs=2, cache_mode=mode))
            epoch = r.epochs[1] if mode != "none" else r.epochs[0]
            measured[mode] = round(epoch.duration, 1)
        rows.append({"sample MB": mb,
                     "no-cache paper/measured": f"{p_none}/{measured['none']}",
                     "sys paper/measured": f"{p_sys}/{measured['system']}",
                     "app paper/measured": f"{p_app}/{measured['application']}"})
    print(Frame.from_records(rows).to_markdown())

    section("Figure 10 (GZIP throughput gain per strategy)")
    rows = []
    for name in FIG6_PAPER:
        pipeline = get_pipeline(name)
        for plan in pipeline.split_points():
            if plan.is_unprocessed:
                continue
            base = BACKEND.run(plan, RunConfig())
            comp = BACKEND.run(plan, RunConfig(compression="GZIP"))
            rows.append({
                "pipeline": name, "strategy": plan.strategy_name,
                "space saving": round(
                    1 - comp.storage_bytes / base.storage_bytes, 2),
                "throughput gain": round(
                    comp.throughput / base.throughput, 2),
                "offline inflation": round(
                    comp.offline.duration / base.offline.duration, 2),
            })
    print(Frame.from_records(rows).to_markdown())

    section("Figure 13 (RMS, 20.5 MB point)")
    rows = []
    for impl in ("numpy", "native"):
        plan = build_rms_sweep_pipeline(20.5, impl).split_points()[0]
        t1 = BACKEND.run(plan, RunConfig(threads=1)).epochs[0].duration
        t8 = BACKEND.run(plan, RunConfig(threads=8)).epochs[0].duration
        rows.append({"impl": impl, "1-thread s": round(t1, 1),
                     "8-thread s": round(t8, 1),
                     "speedup": round(t1 / t8, 2)})
    print(Frame.from_records(rows).to_markdown())
    print("\npaper: NumPy 650 s single-thread; native 1905 s on 8 threads")


if __name__ == "__main__":
    main()
