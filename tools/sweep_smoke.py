#!/usr/bin/env python
"""Determinism smoke test for the parallel sweep engine.

Runs ``presto sweep`` three times on the simulated backend -- serial
reference, parallel (``--jobs N``), and parallel against a warm profile
cache -- and fails when:

* the parallel analysis output is not byte-identical to the serial run
  (nondeterminism in the engine or an executor), or
* the cached rerun is not byte-identical, or
* the cached rerun reports a cache hit rate below 90%.

Invocation (also wired into the tier-1 suite via
``tests/exec/test_sweep_smoke.py`` and ``make smoke``)::

    PYTHONPATH=src python tools/sweep_smoke.py [--jobs 2]
        [--pipelines CV NLP ...]
"""

from __future__ import annotations

import argparse
import contextlib
import difflib
import io
import re
import sys
import tempfile
from typing import Optional, Sequence


def _run_sweep(argv: list[str]) -> tuple[str, str]:
    """Run ``presto sweep`` in-process; return (stdout, stderr)."""
    from repro.cli import main
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = main(["sweep", *argv])
    if code != 0:
        raise SystemExit(f"presto sweep {' '.join(argv)} exited {code}")
    return out.getvalue(), err.getvalue()


def _diff(expected: str, actual: str) -> str:
    return "".join(difflib.unified_diff(
        expected.splitlines(keepends=True), actual.splitlines(keepends=True),
        fromfile="serial", tofile="parallel"))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when parallel sweeps diverge from serial ones")
    parser.add_argument("--jobs", type=int, default=2,
                        help="parallel worker count (default: 2)")
    parser.add_argument("--pipelines", nargs="+", default=None,
                        help="subset of pipelines (default: all seven)")
    args = parser.parse_args(argv)

    selector = ["--pipelines", *args.pipelines] if args.pipelines else []
    serial_out, _ = _run_sweep(["--quiet", *selector])
    parallel_out, _ = _run_sweep(
        ["--quiet", "--jobs", str(args.jobs), *selector])
    if parallel_out != serial_out:
        print("FAIL: parallel sweep output diverges from serial run:",
              file=sys.stderr)
        print(_diff(serial_out, parallel_out), file=sys.stderr)
        return 1

    with tempfile.TemporaryDirectory(prefix="presto-smoke-") as cache_dir:
        _run_sweep(["--quiet", "--jobs", str(args.jobs),
                    "--cache", cache_dir, *selector])
        cached_out, cached_err = _run_sweep(
            ["--quiet", "--jobs", str(args.jobs),
             "--cache", cache_dir, *selector])
    if cached_out != serial_out:
        print("FAIL: cached sweep output diverges from serial run:",
              file=sys.stderr)
        print(_diff(serial_out, cached_out), file=sys.stderr)
        return 1
    match = re.search(r"cache: (\d+) hits / (\d+) lookups", cached_err)
    if not match:
        print("FAIL: cached sweep reported no cache statistics",
              file=sys.stderr)
        return 1
    hits, lookups = int(match.group(1)), int(match.group(2))
    if lookups == 0 or hits / lookups < 0.9:
        print(f"FAIL: cache hit rate {hits}/{lookups} below 90%",
              file=sys.stderr)
        return 1

    print(f"sweep smoke OK: --jobs {args.jobs} byte-identical to serial; "
          f"warm cache served {hits}/{lookups} lookups")
    return 0


if __name__ == "__main__":
    sys.exit(main())
