#!/usr/bin/env python
"""Trace-export smoke: generate a Chrome trace and schema-validate it.

Runs ``presto serve --trace-out`` (and a ``ctl`` run with ledger
instants) in-process, then checks the exported JSON against the Chrome
trace-event schema rules :func:`repro.obs.tracing.validate_chrome_trace`
enforces: every event carries ``ph``/``pid``/``tid``/``name``, complete
events carry non-negative ``ts``/``dur``, and the payload is exactly
what Perfetto's legacy JSON importer accepts.  Also asserts the
telemetry wall: the run's stdout report must be byte-identical to the
same run without tracing.

Invocation (wired up as ``make trace-smoke`` and a CI job)::

    PYTHONPATH=src python tools/trace_smoke.py
"""

from __future__ import annotations

import contextlib
import io
import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def _run(argv: list[str]) -> str:
    from repro.cli import main
    out = io.StringIO()
    with contextlib.redirect_stdout(out), \
            contextlib.redirect_stderr(io.StringIO()):
        code = main(argv)
    if code != 0:
        raise SystemExit(f"presto {' '.join(argv)} exited {code}")
    return out.getvalue()


def _check(argv: list[str], trace_path: Path,
           expect_cats: set) -> None:
    from repro.obs.tracing import validate_chrome_trace
    baseline = _run(argv)
    traced = _run([*argv, "--trace-out", str(trace_path)])
    if traced != baseline:
        raise SystemExit(
            f"tracing changed the report of presto {' '.join(argv)}")
    payload = json.loads(trace_path.read_text())
    count = validate_chrome_trace(payload)
    cats = {event.get("cat") for event in payload["traceEvents"]
            if event["ph"] != "M"}
    missing = expect_cats - cats
    if missing:
        raise SystemExit(f"trace of presto {' '.join(argv)} lacks "
                         f"expected span categories: {sorted(missing)}")
    print(f"presto {' '.join(argv)}: {count} trace events, "
          f"categories {sorted(cats)}")


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        _check(["serve", "--tenants", "2", "--trace", "steady",
                "--seed", "0"], tmp_path / "serve.json",
               {"job", "queue", "epoch", "offline"})
        _check(["ctl", "--tenants", "3", "--trace", "steady",
                "--seed", "0", "--fault-rate", "0.3"],
               tmp_path / "ctl.json", {"ledger"})
        _check(["stream", "--tenants", "2", "--requests", "8",
                "--seed", "0"], tmp_path / "stream.json", {"request"})
    print("trace smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
