#!/usr/bin/env python
"""Compatibility shim: the snapshot grew into ``benchmarks/perf/``.

``tools/bench_snapshot.py`` was the original two-scenario snapshot
writer.  The perf suite now lives in ``benchmarks/perf/bench_serve.py``
(scaled serve scenarios, the link microbenchmark, the pre/post kernel
comparison and the CI event-count smoke); this shim forwards so old
invocations and docs keep working.

Usage::

    PYTHONPATH=src python tools/bench_snapshot.py [--output BENCH_serve.json]
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

if __name__ == "__main__":
    driver = (Path(__file__).resolve().parent.parent
              / "benchmarks" / "perf" / "bench_serve.py")
    sys.argv[0] = str(driver)
    runpy.run_path(str(driver), run_name="__main__")
