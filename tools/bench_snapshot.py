#!/usr/bin/env python
"""Machine-readable performance trajectory snapshot (``make bench``).

Runs two pinned workloads and writes ``BENCH_serve.json``:

* **sweep** -- every legal strategy of MP3 + FLAC through the serial
  sweep engine (the profiling hot path);
* **serve** -- the contended 8-tenant bursty scenario (seed 0, 2 slots)
  under FIFO and cache-aware scheduling (the serving hot path).

Each section records host wall-clock seconds (machine-dependent; track
the trend, not the absolute) alongside the *simulated* headline metrics,
which are deterministic and must only change when the model changes.
Future PRs diff this file to see whether they made the hot paths faster
or slower and whether simulated results drifted.

Usage::

    PYTHONPATH=src python tools/bench_snapshot.py [--output BENCH_serve.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

SWEEP_PIPELINES = ("MP3", "FLAC")
SERVE_TENANTS = 8
SERVE_SEED = 0
SERVE_SLOTS = 2
SERVE_POLICIES = ("fifo", "cache-aware")


def bench_sweep() -> dict:
    from repro.backends import SimulatedBackend
    from repro.exec import SweepEngine
    from repro.pipelines import get_pipeline
    engine = SweepEngine(SimulatedBackend())
    started = time.perf_counter()
    result = engine.sweep([get_pipeline(name)
                           for name in SWEEP_PIPELINES])
    wall = time.perf_counter() - started
    throughputs = {
        f"{profile.strategy.pipeline_name}/{profile.strategy.split_name}":
            round(profile.throughput, 3)
        for profile in result.all_profiles()
    }
    return {
        "pipelines": list(SWEEP_PIPELINES),
        "strategies": result.job_count,
        "wall_seconds": round(wall, 3),
        "throughput_sps": throughputs,
    }


def bench_serve() -> dict:
    from repro.serve import PreprocessingService, bursty_trace
    trace = bursty_trace(tenants=SERVE_TENANTS, seed=SERVE_SEED)
    policies = {}
    for policy in SERVE_POLICIES:
        service = PreprocessingService(policy=policy, slots=SERVE_SLOTS)
        started = time.perf_counter()
        report = service.run(trace)
        wall = time.perf_counter() - started
        policies[policy] = {
            "wall_seconds": round(wall, 3),
            "makespan_s": round(report.makespan, 3),
            "aggregate_sps": round(report.aggregate_sps, 3),
            "p99_epoch_s": round(report.p99_epoch_seconds, 3),
            "cache_hit_ratio": round(report.cache_hit_ratio, 4),
            "offline_runs": report.offline_runs,
            "offline_deduped": report.offline_deduped,
            "slo_violations": report.total_slo_violations,
        }
    return {
        "tenants": SERVE_TENANTS,
        "trace": "bursty",
        "seed": SERVE_SEED,
        "slots": SERVE_SLOTS,
        "policies": policies,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_serve.json",
                        help="where to write the snapshot")
    args = parser.parse_args()
    snapshot = {
        "schema": 1,
        "python": platform.python_version(),
        "sweep": bench_sweep(),
        "serve": bench_serve(),
    }
    path = Path(args.output)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    serve = snapshot["serve"]["policies"]
    for policy, metrics in serve.items():
        print(f"  serve[{policy}]: {metrics['aggregate_sps']} SPS "
              f"aggregate in {metrics['wall_seconds']}s wall")
    print(f"  sweep: {snapshot['sweep']['strategies']} strategies in "
          f"{snapshot['sweep']['wall_seconds']}s wall")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
