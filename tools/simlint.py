#!/usr/bin/env python
"""Standalone launcher for simlint (stdlib only, no install needed).

Equivalent to ``presto lint``; exists so CI and pre-commit hooks can
run the analyzer without the package installed::

    python tools/simlint.py                 # src/ tools/ benchmarks/
    python tools/simlint.py src/repro/sim   # one package
    python tools/simlint.py --json          # machine-readable findings
    python tools/simlint.py --list-rules    # the rule catalog

Exit codes: 0 clean, 1 findings, 2 usage error.  The rule catalog and
the pragma syntax are documented in ``docs/lint.md``.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.lint import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
