#!/usr/bin/env python
"""Line-coverage floor for one ``repro`` subpackage (stdlib only).

The container has no ``coverage``/``pytest-cov``, so this tool measures
line coverage of a package under ``src/`` with a scoped ``sys.settrace``
hook: the global tracer only descends into frames whose code lives in
the target package, so the rest of the suite runs untraced (and
unslowed).  Executable lines come from the compiled code objects'
``co_lines`` tables.

Usage::

    PYTHONPATH=src python tools/diagnosis_coverage.py --floor 80
    PYTHONPATH=src python tools/diagnosis_coverage.py \
        --package repro.serve --floor 80

``--package`` selects the dotted package (default ``repro.diagnosis``,
the tool's original and namesake target); ``--tests`` overrides the
pytest target (default: ``tests/<last package component>``).  Exits
non-zero when total coverage falls below the floor.  Wired up as
``make coverage``, which enforces the floor on both the diagnosis and
the serve subsystems.
"""

from __future__ import annotations

import argparse
import sys
import threading
import types
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

_executed: dict[str, set[int]] = {}
_prefix = ""


def _local_tracer(frame, event, arg):
    if event == "line":
        _executed.setdefault(frame.f_code.co_filename,
                             set()).add(frame.f_lineno)
    return _local_tracer


def _global_tracer(frame, event, arg):
    if event == "call" and frame.f_code.co_filename.startswith(_prefix):
        return _local_tracer(frame, event, arg)
    return None


def executable_lines(path: Path) -> set[int]:
    """All line numbers carrying executable code, nested scopes included."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        current = stack.pop()
        for _start, _end, line in current.co_lines():
            if line is not None:
                lines.add(line)
        stack.extend(const for const in current.co_consts
                     if isinstance(const, types.CodeType))
    return lines


def run_suite(package: str, test_args: list[str]) -> int:
    """Import the package and run its tests under the scoped tracer."""
    # Drop pre-imported target modules so module-level lines
    # (imports, class bodies) execute -- and count -- under the tracer.
    for name in [name for name in sys.modules
                 if name == package or name.startswith(package + ".")]:
        del sys.modules[name]
    import importlib

    import pytest
    threading.settrace(_global_tracer)
    sys.settrace(_global_tracer)
    try:
        importlib.import_module(package)  # module-level coverage
        return pytest.main(test_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]


def report(package_dir: Path, floor: float) -> int:
    total_executable = 0
    total_covered = 0
    print(f"{'file':44s} {'lines':>6s} {'cov':>6s}")
    for path in sorted(package_dir.glob("*.py")):
        executable = executable_lines(path)
        covered = executable & _executed.get(str(path), set())
        total_executable += len(executable)
        total_covered += len(covered)
        share = len(covered) / len(executable) if executable else 1.0
        rel = path.relative_to(REPO)
        print(f"{str(rel):44s} {len(executable):6d} {share:6.1%}")
    total = total_covered / total_executable if total_executable else 1.0
    print(f"{'TOTAL':44s} {total_executable:6d} {total:6.1%}"
          f"   (floor {floor:.0%})")
    if total < floor:
        print(f"FAIL: {package_dir.name} coverage {total:.1%} is below "
              f"the {floor:.0%} floor", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--package", default="repro.diagnosis",
                        help="dotted package under src/ to measure "
                             "(default: repro.diagnosis)")
    parser.add_argument("--tests", default=None,
                        help="pytest target (default: tests/<package "
                             "tail>)")
    parser.add_argument("--floor", type=float, default=80.0,
                        help="minimum total coverage percent (default 80)")
    args = parser.parse_args()
    package_dir = REPO / "src" / Path(*args.package.split("."))
    if not package_dir.is_dir():
        print(f"FAIL: no package directory {package_dir}", file=sys.stderr)
        return 2
    tests = args.tests or f"tests/{args.package.split('.')[-1]}"
    global _prefix
    _prefix = str(package_dir)
    exit_code = run_suite(args.package, [tests, "-q", "--no-header"])
    if exit_code != 0:
        print(f"FAIL: {args.package} test suite failed", file=sys.stderr)
        return exit_code
    return report(package_dir, args.floor / 100.0)


if __name__ == "__main__":
    sys.exit(main())
