#!/usr/bin/env python
"""Line-coverage floor for the diagnosis subsystem (stdlib only).

The container has no ``coverage``/``pytest-cov``, so this tool measures
line coverage of ``src/repro/diagnosis/`` with a scoped ``sys.settrace``
hook: the global tracer only descends into frames whose code lives in
the diagnosis package, so the rest of the suite runs untraced (and
unslowed).  Executable lines come from the compiled code objects'
``co_lines`` tables.

Usage::

    PYTHONPATH=src python tools/diagnosis_coverage.py --floor 80

Exits non-zero when total coverage over the package falls below the
floor.  Wired up as ``make coverage``.
"""

from __future__ import annotations

import argparse
import sys
import threading
import types
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
PACKAGE_DIR = REPO / "src" / "repro" / "diagnosis"
TEST_ARGS = ["tests/diagnosis", "-q", "--no-header"]

_executed: dict[str, set[int]] = {}
_prefix = str(PACKAGE_DIR)


def _local_tracer(frame, event, arg):
    if event == "line":
        _executed.setdefault(frame.f_code.co_filename,
                             set()).add(frame.f_lineno)
    return _local_tracer


def _global_tracer(frame, event, arg):
    if event == "call" and frame.f_code.co_filename.startswith(_prefix):
        return _local_tracer(frame, event, arg)
    return None


def executable_lines(path: Path) -> set[int]:
    """All line numbers carrying executable code, nested scopes included."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        current = stack.pop()
        for _start, _end, line in current.co_lines():
            if line is not None:
                lines.add(line)
        stack.extend(const for const in current.co_consts
                     if isinstance(const, types.CodeType))
    return lines


def run_suite() -> int:
    """Import the package and run its tests under the scoped tracer."""
    # Drop pre-imported diagnosis modules so module-level lines
    # (imports, class bodies) execute -- and count -- under the tracer.
    for name in [name for name in sys.modules
                 if name.startswith("repro.diagnosis")]:
        del sys.modules[name]
    import pytest
    threading.settrace(_global_tracer)
    sys.settrace(_global_tracer)
    try:
        import repro.diagnosis  # noqa: F401  (module-level coverage)
        return pytest.main(TEST_ARGS)
    finally:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]


def report(floor: float) -> int:
    total_executable = 0
    total_covered = 0
    print(f"{'file':44s} {'lines':>6s} {'cov':>6s}")
    for path in sorted(PACKAGE_DIR.glob("*.py")):
        executable = executable_lines(path)
        covered = executable & _executed.get(str(path), set())
        total_executable += len(executable)
        total_covered += len(covered)
        share = len(covered) / len(executable) if executable else 1.0
        rel = path.relative_to(REPO)
        print(f"{str(rel):44s} {len(executable):6d} {share:6.1%}")
    total = total_covered / total_executable if total_executable else 1.0
    print(f"{'TOTAL':44s} {total_executable:6d} {total:6.1%}"
          f"   (floor {floor:.0%})")
    if total < floor:
        print(f"FAIL: diagnosis coverage {total:.1%} is below the "
              f"{floor:.0%} floor", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--floor", type=float, default=80.0,
                        help="minimum total coverage percent (default 80)")
    args = parser.parse_args()
    exit_code = run_suite()
    if exit_code != 0:
        print("FAIL: diagnosis test suite failed", file=sys.stderr)
        return exit_code
    return report(args.floor / 100.0)


if __name__ == "__main__":
    sys.exit(main())
