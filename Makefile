# Convenience targets for the PRESTO reproduction.
#
#   make test          tier-1 test suite (unit + benchmark harness)
#   make smoke         parallel-sweep determinism smoke (tools/sweep_smoke.py)
#   make sweep         full-catalog profile of the seven paper pipelines
#   make golden        regenerate the golden CLI outputs (eyeball the diff!)
#   make coverage      line-coverage floors (diagnosis + serve + api +
#                      ctl + stream + obs + faults)
#   make lint          simlint static analysis over src/ tools/
#                      benchmarks/ (DES discipline; docs/lint.md)
#   make typecheck     pinned mypy pass over the starter subset
#                      (skips with a notice when mypy is absent)
#   make trace-smoke   generate Chrome traces via the CLI and
#                      schema-validate them (tools/trace_smoke.py)
#   make bench         write the BENCH_serve.json performance snapshot
#   make bench-check   CI perf smoke: assert the pinned scenario's
#                      deterministic event count (never wall time)
#   make plan-examples validate every shipped experiment spec with
#                      `presto plan` (CI keeps examples/experiments/ green)

PYTHON ?= python
PYTHONPATH := src

#: Minimum line coverage (percent) of the measured subsystems.
COVERAGE_FLOOR ?= 80

.PHONY: test smoke sweep golden coverage coverage-diagnosis coverage-serve \
	coverage-api coverage-ctl coverage-stream coverage-obs \
	coverage-faults coverage-lint lint typecheck trace-smoke bench \
	bench-check plan-examples

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/sweep_smoke.py --jobs 2

sweep:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli sweep --jobs 2

golden:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/golden --update-golden -q

coverage: coverage-diagnosis coverage-serve coverage-api coverage-ctl \
	coverage-stream coverage-obs coverage-faults coverage-lint

lint:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/simlint.py

typecheck:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/typecheck.py

coverage-diagnosis:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/diagnosis_coverage.py --floor $(COVERAGE_FLOOR)

coverage-serve:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/diagnosis_coverage.py --package repro.serve --floor $(COVERAGE_FLOOR)

coverage-api:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/diagnosis_coverage.py --package repro.api --floor $(COVERAGE_FLOOR)

coverage-ctl:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/diagnosis_coverage.py --package repro.ctl --floor $(COVERAGE_FLOOR)

coverage-stream:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/diagnosis_coverage.py --package repro.stream --floor $(COVERAGE_FLOOR)

coverage-obs:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/diagnosis_coverage.py --package repro.obs --floor $(COVERAGE_FLOOR)

coverage-faults:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/diagnosis_coverage.py --package repro.faults --floor $(COVERAGE_FLOOR)

coverage-lint:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/diagnosis_coverage.py --package repro.lint --floor $(COVERAGE_FLOOR)

trace-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/trace_smoke.py

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/perf/bench_serve.py --output BENCH_serve.json

bench-check:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/perf/bench_serve.py --check

plan-examples:
	@for spec in examples/experiments/*; do \
		echo "== presto plan $$spec"; \
		PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli plan $$spec || exit 1; \
	done
