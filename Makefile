# Convenience targets for the PRESTO reproduction.
#
#   make test    tier-1 test suite (unit + benchmark harness)
#   make smoke   parallel-sweep determinism smoke (tools/sweep_smoke.py)
#   make sweep   full-catalog profile of the seven paper pipelines

PYTHON ?= python
PYTHONPATH := src

.PHONY: test smoke sweep

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/sweep_smoke.py --jobs 2

sweep:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli sweep --jobs 2
