"""Live ledger follower: the ``presto ctl --follow`` text dashboard.

Subscribes to the :class:`~repro.ctl.ledger.ExecutionLedger` push feed
and prints each transition as it happens, with a rolling status line
(state counts, DLQ depth) after every terminal transition and a marker
for each autoscale action.  Output goes to the stream the caller hands
in -- the CLI uses stderr so the golden-pinned report on stdout stays
byte-identical with ``--follow`` on.
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO

from ..ctl.ledger import DEADLETTER, TERMINAL_STATES, LedgerEntry

__all__ = ["LedgerFollower"]


class LedgerFollower:
    """Render ledger entries and autoscale events to a text stream.

    Wire it up before the run starts::

        follower = LedgerFollower(sys.stderr)
        dispatcher.subscribe(follower.entry)
        dispatcher.subscribe_autoscale(follower.autoscale)
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.seen = 0
        self._state_counts: dict = {}
        self._dlq = 0

    # -- feed callbacks -------------------------------------------------

    def entry(self, entry: LedgerEntry) -> None:
        """Ledger subscriber: print the transition, track state counts."""
        self.seen += 1
        if entry.from_state in self._state_counts:
            self._state_counts[entry.from_state] -= 1
            if self._state_counts[entry.from_state] <= 0:
                del self._state_counts[entry.from_state]
        self._state_counts[entry.to_state] = (
            self._state_counts.get(entry.to_state, 0) + 1)
        if entry.to_state == DEADLETTER:
            self._dlq += 1
        print(entry.describe(), file=self.stream)
        if entry.to_state in TERMINAL_STATES:
            print(self.status_line(), file=self.stream)

    def autoscale(self, event) -> None:
        """Autoscale subscriber (:class:`~repro.ctl.report.AutoscaleEvent`)."""
        print(f"** autoscale {event.describe()}", file=self.stream)

    # -- rendering ------------------------------------------------------

    def status_line(self) -> str:
        counts = " ".join(f"{state}={count}" for state, count
                          in sorted(self._state_counts.items()))
        return f"-- {counts or 'idle'} | dlq={self._dlq}"
