"""Sim-clock metrics: counters, gauges, histograms, periodic snapshots.

The registry is *passive*: it never schedules DES events by itself.  A
workload engine that was handed a registry spawns one sampler process
(see ``PreprocessingService._metrics_process``) which calls
:meth:`MetricsRegistry.snapshot` on the simulation clock; with no
registry attached the engines schedule **zero** extra events, which is
the invariant the differential tests in ``tests/obs`` pin.

All timestamps are simulated seconds -- the registry never reads wall
time, so snapshots are deterministic for a fixed scenario and seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


@dataclass
class Counter:
    """Monotonically increasing count (events processed, bytes moved)."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """Point-in-time level (queue depth, link utilization)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Fixed-bucket distribution (queue delays, span durations).

    ``bounds`` are inclusive upper edges; observations above the last
    bound land in the overflow bucket.  Sum/count ride along so means
    survive the export without keeping raw samples.
    """

    name: str
    bounds: tuple = (0.1, 1.0, 10.0, 60.0, 300.0, 1800.0)
    counts: List[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named counters/gauges/histograms plus a time-series of snapshots.

    ``snapshot(now)`` appends one ``{"t": now, "values": {...}}`` sample
    holding every counter and gauge value at that instant.  Histograms
    are cumulative and exported once, in :meth:`to_dict`.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.samples: List[dict] = []

    # -- instrument accessors (create on first use) --------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, bounds: Optional[tuple] = None) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            if bounds is not None:
                instrument = Histogram(name, bounds=tuple(bounds))
            else:
                instrument = Histogram(name)
            self._histograms[name] = instrument
        return instrument

    # -- sampling -------------------------------------------------------

    def snapshot(self, now: float) -> dict:
        """Record (and return) one sample of every counter and gauge."""
        values: Dict[str, float] = {}
        for name, counter in self._counters.items():
            values[name] = counter.value
        for name, gauge in self._gauges.items():
            values[name] = gauge.value
        sample = {"t": round(now, 6), "values": values}
        self.samples.append(sample)
        return sample

    def series(self, name: str) -> List[tuple]:
        """``[(t, value), ...]`` for one instrument across all samples."""
        return [(sample["t"], sample["values"][name])
                for sample in self.samples if name in sample["values"]]

    @property
    def names(self) -> List[str]:
        return sorted(set(self._counters) | set(self._gauges)
                      | set(self._histograms))

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "samples": self.samples,
            "histograms": {name: hist.to_dict()
                           for name, hist in sorted(self._histograms.items())},
        }
