"""Span tracing with Chrome trace-event (Perfetto) export.

Spans live on named *tracks* (one track becomes one Perfetto thread
row): tenants, worker lanes, the control plane.  Every span carries the
simulation timestamp at start/finish; the exporter converts simulated
seconds to microseconds, which Perfetto renders natively.

The tracer is a null-by-default hook: engines take ``tracer=None`` and
guard every emission with ``if tracer is not None``, reading only the
simulation clock inside the guard -- tracing must never schedule DES
events, so runs with tracing on and off process the *same* event count
(pinned by ``tests/obs/test_obs_differential.py``).

``detail=True`` additionally enables per-batch and per-transfer spans
inside the backend hot loop.  Default scenarios run up to
``MAX_JOBS_PER_RUN`` sample batches per epoch, so detail traces are
large; the flag keeps the default export to a handful of spans per job.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ObservabilityError

__all__ = ["Span", "Tracer", "validate_chrome_trace"]

#: Span categories used across the engines (Perfetto colour-codes them).
SPAN_CATEGORIES = ("job", "queue", "epoch", "batch", "transfer",
                   "request", "offline", "ledger")


@dataclass
class Span:
    """One open or closed interval on a track."""

    id: int
    name: str
    cat: str
    track: str
    start: float
    end: Optional[float] = None
    parent: Optional[int] = None
    args: Optional[dict] = None

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0


@dataclass
class _Instant:
    name: str
    cat: str
    track: str
    t: float
    args: Optional[dict] = None


class Tracer:
    """Collects spans/instants; exports Chrome trace-event JSON."""

    def __init__(self, detail: bool = False) -> None:
        self.detail = detail
        self.spans: List[Span] = []
        self.instants: List[_Instant] = []
        self._next_id = 1

    # -- recording ------------------------------------------------------

    def start(self, name: str, cat: str, track: str, t: float,
              parent: Optional[int] = None,
              args: Optional[dict] = None) -> Span:
        span = Span(id=self._next_id, name=name, cat=cat, track=track,
                    start=t, parent=parent, args=args)
        self._next_id += 1
        self.spans.append(span)
        return span

    def finish(self, span: Span, t: float) -> Span:
        span.end = t
        return span

    def add_complete(self, name: str, cat: str, track: str, start: float,
                     end: float, parent: Optional[int] = None,
                     args: Optional[dict] = None) -> Span:
        """One-shot closed span -- the cheap path for hot-loop leaves."""
        span = self.start(name, cat, track, start, parent=parent, args=args)
        span.end = end
        return span

    def instant(self, name: str, cat: str, track: str, t: float,
                args: Optional[dict] = None) -> None:
        self.instants.append(_Instant(name, cat, track, t, args))

    # -- export ---------------------------------------------------------

    def _track_ids(self) -> Dict[str, int]:
        tracks: Dict[str, int] = {}
        for span in self.spans:
            tracks.setdefault(span.track, len(tracks) + 1)
        for inst in self.instants:
            tracks.setdefault(inst.track, len(tracks) + 1)
        return tracks

    def to_chrome(self) -> dict:
        """Chrome trace-event payload (load via Perfetto / about:tracing).

        Simulated seconds map to trace microseconds.  Unfinished spans
        (a run that errored mid-flight) export with zero duration rather
        than being dropped, so partial traces still load.
        """
        tracks = self._track_ids()
        events: List[dict] = []
        for track, tid in tracks.items():
            events.append({"ph": "M", "pid": 1, "tid": tid,
                           "name": "thread_name",
                           "args": {"name": track}})
        for span in self.spans:
            end = span.end if span.end is not None else span.start
            event = {
                "ph": "X",
                "pid": 1,
                "tid": tracks[span.track],
                "name": span.name,
                "cat": span.cat,
                "ts": round(span.start * 1e6, 3),
                "dur": round((end - span.start) * 1e6, 3),
            }
            args = dict(span.args or {})
            if span.parent is not None:
                args["parent"] = span.parent
            args["span_id"] = span.id
            event["args"] = args
            events.append(event)
        for inst in self.instants:
            event = {
                "ph": "i",
                "pid": 1,
                "tid": tracks[inst.track],
                "name": inst.name,
                "cat": inst.cat,
                "ts": round(inst.t * 1e6, 3),
                "s": "t",
            }
            if inst.args:
                event["args"] = dict(inst.args)
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_json(self) -> str:
        return json.dumps(self.to_chrome(), indent=2, sort_keys=True)


def validate_chrome_trace(payload: dict) -> int:
    """Schema-check a Chrome trace payload; returns the event count.

    Raises :class:`ObservabilityError` with the first violation -- used
    by the CI trace-smoke job and the export tests.
    """
    if not isinstance(payload, dict):
        raise ObservabilityError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ObservabilityError("trace payload missing traceEvents list")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ObservabilityError(f"traceEvents[{index}] is not an object")
        phase = event.get("ph")
        if phase not in ("X", "i", "M"):
            raise ObservabilityError(
                f"traceEvents[{index}] has unsupported phase {phase!r}")
        for key in ("pid", "tid", "name"):
            if key not in event:
                raise ObservabilityError(
                    f"traceEvents[{index}] missing {key!r}")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ObservabilityError(
                f"traceEvents[{index}] has invalid ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ObservabilityError(
                    f"traceEvents[{index}] has invalid dur {dur!r}")
    return len(events)
