"""Unified telemetry for the simulator: metrics, tracing, follow, trends.

Everything here is a *null-by-default hook*: the workload engines accept
``metrics=None`` / ``tracer=None`` and a run with telemetry off
schedules exactly the same DES events as before this package existed
(goldens byte-identical, pinned bench event counts unchanged -- see
``tests/obs/test_obs_differential.py``).

* :mod:`repro.obs.metrics` -- sim-clock counters/gauges/histograms with
  a periodic sampler producing time-series snapshots;
* :mod:`repro.obs.tracing` -- span tracing with Chrome trace-event
  (Perfetto) export;
* :mod:`repro.obs.follow` -- live text dashboard over the execution
  ledger feed (``presto ctl --follow``);
* :mod:`repro.obs.trend` -- regression flagging across a series of
  ``BENCH_serve.json`` snapshots (``presto trend``).

:class:`Telemetry` bundles the per-run switches; the CLI builds one from
``--metrics-out``/``--trace-out``/``--trace-detail``/``--follow`` and
hands it to :meth:`repro.api.session.Session.run` *beside* the spec, so
spec fingerprints (and the profile cache keyed on them) never change
with observation settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TextIO

from .follow import LedgerFollower
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracing import Span, Tracer, validate_chrome_trace
from .trend import TrendPoint, TrendReport, analyze, analyze_files

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "Span", "Tracer", "validate_chrome_trace",
    "LedgerFollower",
    "TrendPoint", "TrendReport", "analyze", "analyze_files",
    "Telemetry",
]

#: Default sim-seconds between metrics samples.
DEFAULT_METRICS_INTERVAL = 60.0


@dataclass
class Telemetry:
    """Per-run observation settings (orthogonal to the experiment spec).

    ``metrics_interval=None`` disables the sampler entirely; ``trace``
    turns on job/epoch/request spans and ``trace_detail`` additionally
    the per-batch/per-transfer spans in the backend hot loop.
    ``follow`` is a text stream for the live ledger dashboard.
    """

    metrics_interval: Optional[float] = None
    trace: bool = False
    trace_detail: bool = False
    follow: Optional[TextIO] = None

    @property
    def enabled(self) -> bool:
        return (self.metrics_interval is not None or self.trace
                or self.follow is not None)
