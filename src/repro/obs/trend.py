"""Bench trend analysis over a series of ``BENCH_serve.json`` snapshots.

CI uploads one ``BENCH_serve.json`` per run (``make bench``); this module
flattens each snapshot into ``scenario -> metric`` rows, computes the
delta of every scenario between consecutive snapshots, and flags
regressions.  Regression direction is metric-aware:

* ``events_per_sec`` -- lower is worse (throughput drop);
* ``wall_seconds``   -- higher is worse (slowdown);
* ``events``         -- *any* change is flagged (deterministic cost
  drifted, which must be an acknowledged decision, never an accident).

Exposed as ``presto trend A.json B.json ...`` and ``tools/bench_trend.py``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..core.frame import Frame
from ..errors import ObservabilityError

__all__ = ["TrendPoint", "TrendReport", "load_snapshot", "flatten_snapshot",
           "analyze", "analyze_files"]

#: Metrics the trend tool knows how to compare, and which direction of
#: change is a regression ("down", "up", or "any").
METRIC_DIRECTIONS = {
    "events_per_sec": "down",
    "wall_seconds": "up",
    "events": "any",
}


@dataclass(frozen=True)
class TrendPoint:
    """One scenario's change between two consecutive snapshots."""

    scenario: str
    metric: str
    before: float
    after: float
    delta_pct: float
    regression: bool

    def to_dict(self) -> dict:
        return {"scenario": self.scenario, "metric": self.metric,
                "before": self.before, "after": self.after,
                "delta_pct": self.delta_pct, "regression": self.regression}


@dataclass
class TrendReport:
    """Per-step deltas across the snapshot series."""

    metric: str
    labels: List[str]
    points: List[TrendPoint] = field(default_factory=list)
    threshold_pct: float = 5.0

    @property
    def regressions(self) -> List[TrendPoint]:
        return [point for point in self.points if point.regression]

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "labels": list(self.labels),
            "threshold_pct": self.threshold_pct,
            "points": [point.to_dict() for point in self.points],
            "regressions": len(self.regressions),
        }

    def to_markdown(self) -> str:
        records = []
        for point in self.points:
            records.append({
                "scenario": point.scenario,
                "before": round(point.before, 3),
                "after": round(point.after, 3),
                "delta_%": round(point.delta_pct, 2),
                "flag": "REGRESSION" if point.regression else "",
            })
        if not records:
            return "(no comparable scenarios)"
        return Frame.from_records(records).to_markdown()

    def describe(self) -> str:
        lines = [f"bench trend: {self.metric} across "
                 f"{' -> '.join(self.labels)}",
                 self.to_markdown()]
        if self.regressions:
            lines.append(f"{len(self.regressions)} regression(s) beyond "
                         f"{self.threshold_pct:.1f}%:")
            for point in self.regressions:
                lines.append(f"  {point.scenario}: {point.before:.3f} -> "
                             f"{point.after:.3f} ({point.delta_pct:+.2f}%)")
        else:
            lines.append(f"no regressions beyond {self.threshold_pct:.1f}%")
        return "\n".join(lines)


def load_snapshot(path: Path) -> dict:
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ObservabilityError(f"cannot read bench snapshot {path}: "
                                 f"{exc}") from exc
    if not isinstance(payload, dict) or (
            "serve" not in payload and "stream" not in payload):
        raise ObservabilityError(
            f"{path} does not look like a BENCH_serve.json snapshot "
            "(missing 'serve'/'stream' sections)")
    return payload


def flatten_snapshot(snapshot: dict, metric: str) -> Dict[str, float]:
    """``scenario-key -> metric`` rows from one snapshot.

    Keys: ``serve/<name>/<policy>``, ``stream/<name>``, ``link10k``.
    Scenarios that lack the metric are skipped (older schemas).
    """
    rows: Dict[str, float] = {}
    for name, payload in sorted(snapshot.get("serve", {}).items()):
        for policy, metrics in sorted(payload.get("policies", {}).items()):
            if metric in metrics:
                rows[f"serve/{name}/{policy}"] = float(metrics[metric])
    for name, metrics in sorted(snapshot.get("stream", {}).items()):
        if metric in metrics:
            rows[f"stream/{name}"] = float(metrics[metric])
    link = snapshot.get("link10k", {})
    if metric in link:
        rows["link10k"] = float(link[metric])
    return rows


def analyze(snapshots: Sequence[dict], labels: Sequence[str],
            metric: str = "events_per_sec",
            threshold_pct: float = 5.0) -> TrendReport:
    """Compare consecutive snapshots; flag per-scenario regressions."""
    if metric not in METRIC_DIRECTIONS:
        raise ObservabilityError(
            f"unknown trend metric {metric!r}; "
            f"known: {sorted(METRIC_DIRECTIONS)}")
    if len(snapshots) < 2:
        raise ObservabilityError(
            "trend analysis needs at least two snapshots")
    direction = METRIC_DIRECTIONS[metric]
    report = TrendReport(metric=metric, labels=list(labels),
                         threshold_pct=threshold_pct)
    for index in range(1, len(snapshots)):
        before_rows = flatten_snapshot(snapshots[index - 1], metric)
        after_rows = flatten_snapshot(snapshots[index], metric)
        step = ("" if len(snapshots) == 2
                else f"[{labels[index - 1]}->{labels[index]}] ")
        for scenario in sorted(set(before_rows) & set(after_rows)):
            before = before_rows[scenario]
            after = after_rows[scenario]
            delta_pct = ((after - before) / before * 100.0
                         if before else 0.0)
            if direction == "down":
                regression = delta_pct < -threshold_pct
            elif direction == "up":
                regression = delta_pct > threshold_pct
            else:  # "any": deterministic metric, exact match required
                regression = after != before
            report.points.append(TrendPoint(
                scenario=step + scenario, metric=metric,
                before=before, after=after,
                delta_pct=round(delta_pct, 4), regression=regression))
    return report


def analyze_files(paths: Sequence[Path], metric: str = "events_per_sec",
                  threshold_pct: float = 5.0,
                  labels: Optional[Sequence[str]] = None) -> TrendReport:
    snapshots = [load_snapshot(Path(path)) for path in paths]
    if labels is None:
        labels = [Path(path).name for path in paths]
    return analyze(snapshots, labels, metric=metric,
                   threshold_pct=threshold_pct)
