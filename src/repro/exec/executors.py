"""Pluggable job executors for the sweep engine.

Three strategies for fanning profiling jobs out, all exposing the same
``map(fn, payloads) -> list`` contract with results in submission order
(so parallel sweeps stay byte-identical to serial ones):

* :class:`SerialExecutor` -- run in the calling thread; the default and
  the reference for determinism checks.
* :class:`ThreadExecutor` -- a thread pool; useful when the backend
  releases the GIL (the in-process backend's NumPy kernels) and for
  jobs that are not picklable.
* :class:`ProcessExecutor` -- a process pool; real parallelism for the
  pure-Python simulated backend.  Requires picklable ``fn``/payloads.

:func:`resolve_executor` maps user-facing specs (``--jobs N``, names) to
instances.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Optional, Sequence, Union

from repro.errors import SweepError


def default_workers() -> int:
    """A sensible pool size: physical parallelism minus one, at least 2."""
    return max(2, (os.cpu_count() or 2) - 1)


class SerialExecutor:
    """Run every job inline, in order."""

    name = "serial"
    jobs = 1

    def map(self, fn: Callable[[Any], Any],
            payloads: Sequence[Any]) -> list[Any]:
        return [fn(payload) for payload in payloads]

    def __repr__(self) -> str:
        return "SerialExecutor()"


class _PoolExecutor:
    """Shared shape of the pool-backed executors."""

    name = "pool"
    _pool_cls: type

    def __init__(self, jobs: Optional[int] = None):
        if jobs is not None and jobs < 1:
            raise SweepError(f"need at least one worker, got {jobs}")
        self.jobs = jobs or default_workers()

    def map(self, fn: Callable[[Any], Any],
            payloads: Sequence[Any]) -> list[Any]:
        if not payloads:
            return []
        workers = min(self.jobs, len(payloads))
        with self._pool_cls(max_workers=workers) as pool:
            return list(pool.map(fn, payloads))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(jobs={self.jobs})"


class ThreadExecutor(_PoolExecutor):
    """Fan out over a thread pool (shared memory, GIL-bound for pure
    Python work)."""

    name = "thread"
    _pool_cls = ThreadPoolExecutor


class ProcessExecutor(_PoolExecutor):
    """Fan out over a process pool (true parallelism; payloads must
    pickle)."""

    name = "process"
    _pool_cls = ProcessPoolExecutor


#: What callers may pass wherever an executor is expected.
ExecutorSpec = Union[None, int, str, SerialExecutor, _PoolExecutor]

_NAMED = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "threads": ThreadExecutor,
    "process": ProcessExecutor,
    "processes": ProcessExecutor,
}


def resolve_executor(spec: ExecutorSpec = None):
    """Turn a user-facing spec into an executor instance.

    ``None``/``1``/"serial" -> serial; an int N > 1 -> a process pool of
    N workers (the ``--jobs N`` path); "thread"/"process" -> the named
    pool with default sizing; executor instances pass through.
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, (SerialExecutor, _PoolExecutor)):
        return spec
    if isinstance(spec, bool):
        raise SweepError(f"invalid executor spec: {spec!r}")
    if isinstance(spec, int):
        if spec < 1:
            raise SweepError(f"need at least one job, got {spec}")
        return SerialExecutor() if spec == 1 else ProcessExecutor(spec)
    if isinstance(spec, str):
        name = spec.lower()
        if name in _NAMED:
            return _NAMED[name]()
        raise SweepError(
            f"unknown executor {spec!r}; known: {sorted(set(_NAMED))}")
    raise SweepError(f"invalid executor spec: {spec!r}")
