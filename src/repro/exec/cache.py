"""The profile cache: content-addressed memoization of profiling runs.

Exhaustive strategy sweeps re-profile identical (pipeline, strategy,
environment, backend) combinations constantly -- every ``presto`` command
that touches the same pipeline starts from scratch.  :class:`ProfileCache`
stores the raw :class:`~repro.backends.base.StrategyRunResult` records of
each job under its :func:`~repro.exec.fingerprint.job_fingerprint` key, in
memory and optionally on disk (one JSON file per entry), with hit/miss
accounting so sweeps can report how much work memoization saved.

Cached entries store *runs*, not profiles: a
:class:`~repro.core.profiler.StrategyProfile` holds a live
:class:`~repro.core.strategy.Strategy` (whose pipeline spec carries
unpicklable step callables), so on a hit the cache rebuilds the profile
around the caller's own strategy object and only the measured records are
deserialized.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

from repro.backends.base import (Environment, EpochResult, OfflineResult,
                                 RunConfig, StrategyRunResult)
from repro.core.profiler import StrategyProfile
from repro.core.strategy import Strategy
from repro.errors import CacheError
from repro.sim.storage import DeviceProfile
from repro.sim.trace import ResourceTrace

#: Bump when the on-disk payload layout changes; older files then miss.
#: v2: epochs carry optional ResourceTrace attribution payloads.
PAYLOAD_VERSION = 2

#: Monotonic suffix distinguishing concurrent temp files of one process.
_TMP_COUNTER = itertools.count()

#: Temp files older than this are crash litter, safe for clear() to
#: sweep; younger ones may belong to a live writer in another process.
STALE_TMP_SECONDS = 60.0


# -- run (de)serialization ---------------------------------------------------

def encode_run(run: StrategyRunResult) -> dict[str, Any]:
    """Flatten one run result into JSON-serializable primitives."""
    return {
        "pipeline": run.pipeline,
        "strategy": run.strategy,
        "config": {
            "threads": run.config.threads,
            "epochs": run.config.epochs,
            "compression": run.config.compression,
            "cache_mode": run.config.cache_mode,
            "shards": run.config.shards,
            "shuffle_buffer": run.config.shuffle_buffer,
            "max_jobs": run.config.max_jobs,
        },
        "environment": {
            "cores": run.environment.cores,
            "ram_bytes": run.environment.ram_bytes,
            "memory_bw": run.environment.memory_bw,
            "memory_stream_bw": run.environment.memory_stream_bw,
            "storage": {
                "name": run.environment.storage.name,
                "stream_bw": run.environment.storage.stream_bw,
                "aggregate_bw": run.environment.storage.aggregate_bw,
                "write_bw": run.environment.storage.write_bw,
                "open_latency": run.environment.storage.open_latency,
                "pipeline_open_latency":
                    run.environment.storage.pipeline_open_latency,
                "metadata_slots": run.environment.storage.metadata_slots,
                "block_latency": run.environment.storage.block_latency,
            },
        },
        "storage_bytes": run.storage_bytes,
        "offline": None if run.offline is None else {
            "duration": run.offline.duration,
            "bytes_read": run.offline.bytes_read,
            "bytes_written": run.offline.bytes_written,
            "compression_seconds": run.offline.compression_seconds,
        },
        "epochs": [
            {
                "epoch": epoch.epoch,
                "duration": epoch.duration,
                "samples": epoch.samples,
                "bytes_from_storage": epoch.bytes_from_storage,
                "bytes_from_cache": epoch.bytes_from_cache,
                "cache_hit_rate": epoch.cache_hit_rate,
                "served_from_app_cache": epoch.served_from_app_cache,
                "trace": (None if epoch.trace is None
                          else epoch.trace.to_dict()),
            }
            for epoch in run.epochs
        ],
        "app_cache_failed": run.app_cache_failed,
        "events_processed": run.events_processed,
    }


def decode_run(payload: dict[str, Any]) -> StrategyRunResult:
    """Rebuild a run result from :func:`encode_run` output."""
    env = payload["environment"]
    offline = payload["offline"]
    return StrategyRunResult(
        pipeline=payload["pipeline"],
        strategy=payload["strategy"],
        config=RunConfig(**payload["config"]),
        environment=Environment(
            storage=DeviceProfile(**env["storage"]),
            cores=env["cores"],
            ram_bytes=env["ram_bytes"],
            memory_bw=env["memory_bw"],
            memory_stream_bw=env["memory_stream_bw"],
        ),
        storage_bytes=payload["storage_bytes"],
        offline=None if offline is None else OfflineResult(**offline),
        epochs=[_decode_epoch(epoch) for epoch in payload["epochs"]],
        app_cache_failed=payload["app_cache_failed"],
        # Absent in pre-v2 payload files written before the counter
        # existed; those decode as 0 (unknown) rather than missing.
        events_processed=payload.get("events_processed", 0),
    )


def _decode_epoch(payload: dict[str, Any]) -> EpochResult:
    trace = payload.get("trace")
    rest = {key: value for key, value in payload.items() if key != "trace"}
    return EpochResult(
        **rest,
        trace=None if trace is None else ResourceTrace.from_dict(trace))


# -- the cache ---------------------------------------------------------------

@dataclass
class CacheStats:
    """Hit/miss accounting over the lifetime of one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        return (f"{self.hits} hits / {self.lookups} lookups "
                f"({self.hit_rate:.0%}), {self.stores} stored")


class ProfileCache:
    """Content-addressed store of profiling runs.

    ``directory=None`` keeps entries in memory only (one process);
    pointing it at a directory persists every entry as
    ``<fingerprint>.json`` so later invocations -- including other
    processes -- start warm.
    """

    def __init__(self, directory: Union[str, Path, None] = None):
        self._memory: dict[str, list[StrategyRunResult]] = {}
        self.stats = CacheStats()
        self.directory: Optional[Path] = None
        if directory is not None:
            self.directory = Path(directory).expanduser()
            try:
                self.directory.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise CacheError(
                    f"cannot create cache directory "
                    f"{self.directory}: {exc}") from exc

    # -- lookup / store ----------------------------------------------------

    def lookup(self, key: str,
               strategy: Strategy) -> Optional[StrategyProfile]:
        """Return the cached profile for ``key`` rebuilt around
        ``strategy``, or None on a miss (recorded in :attr:`stats`)."""
        runs = self._memory.get(key)
        if runs is None and self.directory is not None:
            runs = self._load(key)
            if runs is not None:
                self._memory[key] = runs
        if runs is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return StrategyProfile(strategy=strategy, runs=list(runs))

    def store(self, key: str, profile: StrategyProfile) -> None:
        """Memoize ``profile``'s runs under ``key`` (and on disk if
        persistent)."""
        self._memory[key] = list(profile.runs)
        self.stats.stores += 1
        if self.directory is not None:
            self._dump(key, profile.runs)

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return (self.directory is not None
                and (self.directory / f"{key}.json").exists())

    def clear(self) -> None:
        """Drop every entry (memory and disk); stats are kept.

        ``*.tmp`` files left by a writer that crashed mid-dump are
        swept too -- but only once they are old enough that no live
        writer in another process can still be about to rename them.
        """
        self._memory.clear()
        if self.directory is None:
            return
        # Host-side GC: tmp staleness is judged against the real
        # filesystem mtime, which no sim clock can stand in for.
        cutoff = time.time() - STALE_TMP_SECONDS  # simlint: allow[wall-clock] -- stale-tmp sweep ages real files by host mtime, not sim time
        for path in sorted(self.directory.glob("*.json")):
            try:
                path.unlink()
            except FileNotFoundError:
                pass  # a concurrent clear() got there first
        for path in sorted(self.directory.glob("*.tmp")):
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
            except (FileNotFoundError, OSError):
                pass

    # -- disk persistence --------------------------------------------------

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def _dump(self, key: str, runs: list[StrategyRunResult]) -> None:
        payload = {
            "version": PAYLOAD_VERSION,
            "fingerprint": key,
            "runs": [encode_run(run) for run in runs],
        }
        path = self._path(key)
        # Atomic publish: write to a temp file unique to this process
        # *and* this write, then rename over the destination.  A shared
        # temp name (the old ``<key>.tmp``) races when two processes
        # store the same fingerprint concurrently: writer A can rename
        # B's half-written file, or crash with FileNotFoundError after
        # B's rename consumed the temp they both used.  Entries are
        # content-addressed, so concurrent renames of *distinct* temp
        # files are benign -- last writer wins with identical payload.
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp")
        try:
            tmp.write_text(json.dumps(payload))
            os.replace(tmp, path)
        except OSError as exc:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise CacheError(
                f"cannot persist cache entry {key[:12]}...: {exc}") from exc

    def _load(self, key: str) -> Optional[list[StrategyRunResult]]:
        """Read one disk entry; unreadable/corrupt/stale entries are
        treated as misses (the next store overwrites them) so a damaged
        file never permanently wedges the cache."""
        path = self._path(key)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
            if payload.get("version") != PAYLOAD_VERSION:
                return None
            return [decode_run(run) for run in payload["runs"]]
        except (OSError, ValueError, KeyError, TypeError):
            return None
