"""The parallel strategy-sweep engine.

PRESTO's profiler originally walked every (pipeline, strategy) pair
serially and recomputed identical profiles on every invocation -- the
exact hidden preprocessing cost the paper warns about.  The
:class:`SweepEngine` fixes both pathologies:

* profiling jobs fan out over a pluggable executor (serial, thread pool,
  process pool -- see :mod:`repro.exec.executors`), with results always
  returned in submission order so parallel sweeps are byte-identical to
  serial ones;
* a content-addressed :class:`~repro.exec.cache.ProfileCache` keyed by
  (pipeline, strategy, environment, backend) fingerprints memoizes runs
  across calls -- and across processes when the cache is persistent;
* :class:`~repro.exec.events.SweepEvent` records stream to listeners so
  long sweeps are observable.

:class:`~repro.core.profiler.StrategyProfiler` delegates here, so every
existing caller picks up the engine transparently.

Process-pool note: pipeline specs carry step callables (lambdas,
closures) and do not pickle, so process workers rebuild their plan from
the pipeline *registry* by name.  Jobs whose pipeline is not
reconstructible that way -- mutated specs, ad-hoc pipelines -- are
detected up front and transparently run on a thread pool instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.backends.base import Backend, Environment, RunConfig, \
    StrategyRunResult
from repro.core.profiler import StrategyProfile
from repro.core.strategy import Strategy
from repro.errors import SweepError
from repro.exec.cache import ProfileCache
from repro.exec.events import (CACHE_HIT, JOB_DONE, SWEEP_END, SWEEP_START,
                               ProgressPrinter, SweepEvent, SweepListener)
from repro.exec.executors import (ExecutorSpec, ProcessExecutor,
                                  ThreadExecutor, resolve_executor)
from repro.exec.fingerprint import describe_pipeline, job_fingerprint
from repro.pipelines.base import PipelineSpec, SplitPlan


@dataclass(frozen=True)
class _JobPayload:
    """One unit of executor work: run a strategy ``runs_total`` times.

    Carries either a live ``plan`` (serial/thread execution) or a
    registry reference (``pipeline_name`` + ``sample_count`` +
    ``split_index``) that process workers rebuild locally.
    """

    backend: Backend
    config: RunConfig
    runs_total: int
    plan: Optional[SplitPlan] = None
    pipeline_name: str = ""
    sample_count: int = 0
    split_index: int = 0

    def resolve_plan(self) -> SplitPlan:
        if self.plan is not None:
            return self.plan
        from repro.pipelines.registry import get_pipeline
        pipeline = get_pipeline(self.pipeline_name)
        if pipeline.sample_count != self.sample_count:
            pipeline = pipeline.with_sample_count(self.sample_count)
        return pipeline.split_at(self.split_index)


def _execute_payload(payload: _JobPayload,
                     ) -> tuple[list[StrategyRunResult], float]:
    """Module-level worker entry point (picklable for process pools).

    Returns the run results plus the job's own wall-clock seconds, so
    progress events report true per-job durations even under pools.
    """
    started = time.perf_counter()
    plan = payload.resolve_plan()
    runs = [payload.backend.run(plan, payload.config)
            for _ in range(payload.runs_total)]
    return runs, time.perf_counter() - started


def strategies_for(pipeline: PipelineSpec,
                    config: RunConfig) -> list[Strategy]:
    """Every legal split of ``pipeline`` under ``config`` (compressing
    the unprocessed representation is meaningless -- paper Sec. 4.3)."""
    return [Strategy(plan, config)
            for plan in pipeline.split_points()
            if not (plan.is_unprocessed and config.compression)]


@dataclass
class SweepResult:
    """Outcome of one multi-pipeline sweep, in submission order."""

    profiles: dict[str, list[StrategyProfile]] = field(default_factory=dict)
    #: Wall-clock seconds of the whole sweep.
    elapsed: float = 0.0

    @property
    def pipelines(self) -> list[str]:
        return list(self.profiles)

    @property
    def job_count(self) -> int:
        return sum(len(plist) for plist in self.profiles.values())

    def all_profiles(self) -> list[StrategyProfile]:
        return [profile for plist in self.profiles.values()
                for profile in plist]


class SweepEngine:
    """Fans profiling jobs out over an executor, memoizing via a cache."""

    def __init__(self, backend: Backend,
                 executor: ExecutorSpec = None,
                 cache: Optional[ProfileCache] = None,
                 runs_total: int = 1,
                 listeners: Iterable[SweepListener] = (),
                 trace_hook=None):
        if runs_total < 1:
            raise SweepError("runs_total must be >= 1")
        self.backend = backend
        self.executor = resolve_executor(executor)
        self.cache = cache
        self.runs_total = runs_total
        self.listeners: list[SweepListener] = list(listeners)
        #: Called as ``trace_hook(strategy, epoch_trace)`` for every
        #: traced epoch a sweep produces (executed jobs *and* cache
        #: hits), so diagnosis layers can collect resource traces
        #: without re-running anything.
        self.trace_hook = trace_hook
        self.environment = getattr(backend, "environment", None) \
            or Environment()

    # -- observability -----------------------------------------------------

    def add_listener(self, listener: SweepListener) -> None:
        self.listeners.append(listener)

    def add_progress(self, stream=None) -> None:
        """Attach the stock progress printer (stderr by default)."""
        self.listeners.append(ProgressPrinter(stream)
                              if stream is not None else ProgressPrinter())

    def _emit(self, event: SweepEvent) -> None:
        for listener in self.listeners:
            listener(event)

    def _emit_traces(self, strategy: Strategy,
                     profile: StrategyProfile) -> None:
        if self.trace_hook is None:
            return
        for run in profile.runs:
            for epoch in run.epochs:
                if epoch.trace is not None:
                    self.trace_hook(strategy, epoch.trace)

    # -- profiling ---------------------------------------------------------

    def profile(self, strategies: Sequence[Strategy],
                sample_count: Optional[int] = None,
                ) -> list[StrategyProfile]:
        """Profile ``strategies``, returning profiles in input order.

        Cache hits never reach the executor; misses fan out and are
        stored back.  ``sample_count`` profiles a dataset subset, as in
        :meth:`repro.core.profiler.StrategyProfiler.profile_strategy`.
        """
        started = time.perf_counter()
        strategies = [self._resample(strategy, sample_count)
                      for strategy in strategies]
        total = len(strategies)
        self._emit(SweepEvent(kind=SWEEP_START, total=total))

        profiles: list[Optional[StrategyProfile]] = [None] * total
        pending: list[tuple[int, Strategy, Optional[str]]] = []
        for index, strategy in enumerate(strategies):
            key = self._fingerprint(strategy)
            cached = (self.cache.lookup(key, strategy)
                      if self.cache is not None and key is not None else None)
            if cached is not None:
                profiles[index] = cached
                self._emit_traces(strategy, cached)
                self._emit(SweepEvent(
                    kind=CACHE_HIT, index=index + 1, total=total,
                    pipeline=strategy.pipeline_name, strategy=strategy.name,
                    uid=strategy.uid, cached=True))
            else:
                pending.append((index, strategy, key))

        if pending:
            portability = [self._portable(strategy)
                           for _, strategy, _ in pending]
            executor = self._executor_for(portability)
            # Process workers get registry references (plans don't
            # pickle); serial/thread executors get the live plan.
            ship_by_name = isinstance(executor, ProcessExecutor)
            payloads = [self._payload(strategy, ship_by_name)
                        for _, strategy, _ in pending]
            outcomes = executor.map(_execute_payload, payloads)
            for (index, strategy, key), (runs, elapsed) in zip(pending,
                                                               outcomes):
                profile = StrategyProfile(strategy=strategy, runs=list(runs))
                if self.cache is not None and key is not None:
                    self.cache.store(key, profile)
                profiles[index] = profile
                self._emit_traces(strategy, profile)
                self._emit(SweepEvent(
                    kind=JOB_DONE, index=index + 1, total=total,
                    pipeline=strategy.pipeline_name, strategy=strategy.name,
                    uid=strategy.uid, elapsed=elapsed))

        self._emit(SweepEvent(kind=SWEEP_END, total=total,
                              elapsed=time.perf_counter() - started))
        return [profile for profile in profiles if profile is not None]

    def profile_pipeline(self, pipeline: PipelineSpec,
                         config: Optional[RunConfig] = None,
                         sample_count: Optional[int] = None,
                         ) -> list[StrategyProfile]:
        """Profile every legal split of ``pipeline`` under one config."""
        config = config or RunConfig()
        return self.profile(strategies_for(pipeline, config),
                            sample_count=sample_count)

    def sweep(self, pipelines: Optional[Sequence[PipelineSpec]] = None,
              config: Optional[RunConfig] = None,
              sample_count: Optional[int] = None) -> SweepResult:
        """Profile every legal strategy of every pipeline in one fan-out.

        Defaults to the paper's seven pipelines.  All jobs across all
        pipelines share one executor pass, so parallelism is not gated
        per pipeline.
        """
        from repro.pipelines.registry import all_pipelines
        if pipelines is None:
            pipelines = all_pipelines()
        config = config or RunConfig()
        flat: list[Strategy] = []
        counts: list[tuple[str, int]] = []
        for pipeline in pipelines:
            strategies = strategies_for(pipeline, config)
            flat.extend(strategies)
            counts.append((pipeline.name, len(strategies)))
        started = time.perf_counter()
        profiles = self.profile(flat, sample_count=sample_count)
        result = SweepResult(elapsed=time.perf_counter() - started)
        cursor = 0
        for name, count in counts:
            # setdefault+extend so a pipeline listed twice aggregates
            # instead of silently overwriting its first slice.
            result.profiles.setdefault(name, []).extend(
                profiles[cursor:cursor + count])
            cursor += count
        return result

    # -- internals ---------------------------------------------------------

    def _resample(self, strategy: Strategy,
                  sample_count: Optional[int]) -> Strategy:
        if sample_count is None:
            return strategy
        plan = strategy.plan
        pipeline = plan.pipeline.with_sample_count(sample_count)
        return Strategy(pipeline.split_at(plan.split_index), strategy.config)

    def _fingerprint(self, strategy: Strategy) -> Optional[str]:
        if self.cache is None:
            return None
        return job_fingerprint(strategy, self.environment, self.backend,
                               runs_total=self.runs_total)

    def _portable(self, strategy: Strategy) -> bool:
        """Can a process worker rebuild this job from the registry?"""
        from repro.pipelines.registry import _BUILDERS, get_pipeline
        pipeline = strategy.plan.pipeline
        if pipeline.name not in _BUILDERS:
            return False
        rebuilt = get_pipeline(pipeline.name)
        if rebuilt.sample_count != pipeline.sample_count:
            rebuilt = rebuilt.with_sample_count(pipeline.sample_count)
        return describe_pipeline(rebuilt) == describe_pipeline(pipeline)

    def _executor_for(self, portability: Sequence[bool]):
        """The configured executor, downgraded to threads when process
        workers could not rebuild every job."""
        executor = self.executor
        if isinstance(executor, ProcessExecutor) and not all(portability):
            return ThreadExecutor(executor.jobs)
        return executor

    def _payload(self, strategy: Strategy, ship_by_name: bool) -> _JobPayload:
        plan = strategy.plan
        if ship_by_name:
            return _JobPayload(
                backend=self.backend, config=strategy.config,
                runs_total=self.runs_total, plan=None,
                pipeline_name=plan.pipeline.name,
                sample_count=plan.pipeline.sample_count,
                split_index=plan.split_index)
        return _JobPayload(backend=self.backend, config=strategy.config,
                           runs_total=self.runs_total, plan=plan)
