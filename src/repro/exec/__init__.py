"""Parallel sweep execution: engine, executors, profile cache, events.

This package turns exhaustive strategy sweeps from serial-and-stateless
into parallel-and-memoized:

* :class:`repro.exec.engine.SweepEngine` -- fans profiling jobs out over
  a pluggable executor and collects deterministic, ordered results.
* :class:`repro.exec.cache.ProfileCache` -- content-addressed result
  store keyed by (pipeline, strategy, environment, backend) fingerprints,
  with hit/miss accounting and optional on-disk persistence.
* :mod:`repro.exec.executors` -- serial / thread-pool / process-pool
  execution strategies behind one ``map`` contract.
* :mod:`repro.exec.events` -- the progress event stream for long sweeps.
"""

from repro.exec.cache import CacheStats, ProfileCache
from repro.exec.engine import SweepEngine, SweepResult
from repro.exec.events import ProgressPrinter, SweepEvent
from repro.exec.executors import (ProcessExecutor, SerialExecutor,
                                  ThreadExecutor, resolve_executor)
from repro.exec.fingerprint import job_fingerprint

__all__ = [
    "CacheStats",
    "ProcessExecutor",
    "ProfileCache",
    "ProgressPrinter",
    "SerialExecutor",
    "SweepEngine",
    "SweepEvent",
    "SweepResult",
    "ThreadExecutor",
    "job_fingerprint",
    "resolve_executor",
]
