"""Progress events emitted by the sweep engine.

Long sweeps (hundreds of strategies across pipelines) need observable
progress.  The engine emits :class:`SweepEvent` records to registered
listeners -- plain callables -- at sweep start/end and per job, flagging
cache hits so callers can see memoization at work.  :class:`ProgressPrinter`
is the stock listener the CLI attaches to stderr.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable, TextIO

#: Event kinds, in emission order over a sweep's lifetime.
SWEEP_START = "sweep-start"
JOB_DONE = "job-done"
CACHE_HIT = "cache-hit"
SWEEP_END = "sweep-end"


@dataclass(frozen=True)
class SweepEvent:
    """One observable step of a sweep."""

    kind: str
    #: 1-based index of the job this event refers to (0 for sweep-level).
    index: int = 0
    #: Total job count of the sweep.
    total: int = 0
    pipeline: str = ""
    strategy: str = ""
    uid: str = ""
    #: True when the job was served from the profile cache.
    cached: bool = False
    #: Wall-clock seconds (per job, or whole sweep for ``sweep-end``).
    elapsed: float = 0.0
    message: str = ""


#: Listener signature: receives every event, returns nothing.
SweepListener = Callable[[SweepEvent], None]


class ProgressPrinter:
    """Stock listener: one human-readable line per event to a stream."""

    def __init__(self, stream: TextIO = sys.stderr):
        self.stream = stream

    def __call__(self, event: SweepEvent) -> None:
        if event.kind == SWEEP_START:
            line = f"sweep: {event.total} profiling job(s)"
        elif event.kind in (JOB_DONE, CACHE_HIT):
            tag = "cached" if event.cached else f"{event.elapsed:.2f}s"
            line = (f"[{event.index}/{event.total}] "
                    f"{event.pipeline}/{event.strategy} {tag}")
        elif event.kind == SWEEP_END:
            line = f"sweep: done in {event.elapsed:.2f}s"
        else:
            line = f"{event.kind}: {event.message}"
        if event.message and event.kind != SWEEP_END:
            line += f" ({event.message})"
        print(line, file=self.stream)
