"""Content-addressed fingerprints for profiling jobs.

A profile is a pure function of four inputs: the pipeline specification,
the strategy knobs (split point + :class:`~repro.backends.base.RunConfig`),
the hardware environment, and the backend that executes the run.  The
:class:`~repro.exec.cache.ProfileCache` therefore keys entries by a
SHA-256 digest over a canonical JSON description of exactly those four
inputs -- change any calibrated constant of a pipeline, swap the storage
device, or switch backends and the fingerprint (hence the cache entry)
changes with it.

Step callables (``StepSpec.fn``) are deliberately excluded from the
description: they carry no tunable state of their own (the calibrated
``cpu_seconds`` cost is what the simulator charges), and including
function identities would make fingerprints differ across interpreter
runs.  Only their presence is recorded, so adding or removing a real
implementation still invalidates cached in-process results.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Optional

from repro.backends.base import Backend, Environment, RunConfig
from repro.core.strategy import Strategy
from repro.pipelines.base import PipelineSpec

#: Bump when the description schema changes so stale disk caches miss.
SCHEMA_VERSION = 1


def describe_pipeline(pipeline: PipelineSpec) -> dict[str, Any]:
    """Canonical description of everything that shapes a pipeline's cost."""
    return {
        "name": pipeline.name,
        "sample_count": pipeline.sample_count,
        "representations": [
            {
                "name": rep.name,
                "bytes_per_sample": rep.bytes_per_sample,
                "dtype": rep.dtype,
                "n_files": rep.n_files,
                "record_format": rep.record_format,
                "compressibility": dict(sorted(rep.compressibility.items())),
                "deser_penalty": rep.deser_penalty,
                "open_latency_factor": rep.open_latency_factor,
            }
            for rep in pipeline.representations
        ],
        "steps": [
            {
                "name": step.name,
                "cpu_seconds": step.cpu_seconds,
                "impl": step.impl,
                "deterministic": step.deterministic,
                "has_fn": step.fn is not None,
            }
            for step in pipeline.steps
        ],
    }


def describe_config(config: RunConfig) -> dict[str, Any]:
    return {
        "threads": config.threads,
        "epochs": config.epochs,
        "compression": config.compression,
        "cache_mode": config.cache_mode,
        "shards": config.shards,
        "shuffle_buffer": config.shuffle_buffer,
        "max_jobs": config.max_jobs,
    }


def describe_environment(environment: Environment) -> dict[str, Any]:
    storage = environment.storage
    return {
        "cores": environment.cores,
        "ram_bytes": environment.ram_bytes,
        "memory_bw": environment.memory_bw,
        "memory_stream_bw": environment.memory_stream_bw,
        "storage": {
            "name": storage.name,
            "stream_bw": storage.stream_bw,
            "aggregate_bw": storage.aggregate_bw,
            "write_bw": storage.write_bw,
            "open_latency": storage.open_latency,
            "pipeline_open_latency": storage.pipeline_open_latency,
            "metadata_slots": storage.metadata_slots,
            "block_latency": storage.block_latency,
        },
    }


def describe_backend(backend: Backend) -> dict[str, Any]:
    """Backend identity: class name plus any cost-relevant knobs it carries.

    The environment is described separately, so only backend-private state
    (the in-process backend's miniature dataset size and RNG seed) appears
    here.
    """
    description: dict[str, Any] = {"type": type(backend).__name__}
    for knob in ("sample_count", "seed"):
        value = getattr(backend, knob, None)
        if value is not None:
            description[knob] = value
    return description


def job_fingerprint(strategy: Strategy,
                    environment: Environment,
                    backend: Backend,
                    runs_total: int = 1,
                    extra: Optional[dict[str, Any]] = None) -> str:
    """SHA-256 digest keying one (pipeline, strategy, environment, backend)
    profiling job.  ``extra`` folds in caller-specific knobs."""
    payload = {
        "schema": SCHEMA_VERSION,
        "pipeline": describe_pipeline(strategy.plan.pipeline),
        "split_index": strategy.plan.split_index,
        "config": describe_config(strategy.config),
        "environment": describe_environment(environment),
        "backend": describe_backend(backend),
        "runs_total": runs_total,
    }
    if extra:
        payload["extra"] = extra
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()
