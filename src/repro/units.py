"""Byte, time and rate units used throughout the reproduction.

The paper mixes decimal units (storage vendors, network links: 1 MB =
1e6 bytes) with samples-per-second throughputs.  Everything in this code
base is stored in *base units* -- bytes and seconds -- and converted only at
the edges.  These helpers make call sites read like the paper
(``10 * GB``, ``fmt_rate(bw)``).
"""

from __future__ import annotations

# Decimal byte units (as used for storage sizes and network bandwidth).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

# Binary units (page cache / RAM capacities).
KIB = 1_024
MIB = 1_024 ** 2
GIB = 1_024 ** 3

# Time units, in seconds.
US = 1e-6
MS = 1e-3
MINUTE = 60.0
HOUR = 3_600.0

#: 10 Gb/s uplink/downlink of the paper's Ceph cluster, in bytes/second.
LINK_10GBIT = 1.25 * GB


def fmt_bytes(n: float) -> str:
    """Render a byte count the way the paper does (146.9GB, 594MB, 1.39TB)."""
    if n < 0:
        return "-" + fmt_bytes(-n)
    for unit, name in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if n >= unit:
            value = n / unit
            return f"{value:.2f}{name}" if value < 10 else f"{value:.1f}{name}"
    return f"{n:.0f}B"


def fmt_rate(bytes_per_second: float) -> str:
    """Render a bandwidth, e.g. ``910.0 MB/s``."""
    return f"{bytes_per_second / MB:.1f} MB/s"


def fmt_duration(seconds: float) -> str:
    """Render a duration using the largest sensible unit."""
    if seconds >= HOUR:
        return f"{seconds / HOUR:.2f}h"
    if seconds >= MINUTE:
        return f"{seconds / MINUTE:.2f}min"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= MS:
        return f"{seconds / MS:.2f}ms"
    return f"{seconds / US:.1f}us"


def fmt_sps(samples_per_second: float) -> str:
    """Render a throughput in samples per second."""
    if samples_per_second >= 100:
        return f"{samples_per_second:,.0f} SPS"
    return f"{samples_per_second:.1f} SPS"


def space_saving(original: float, compressed: float) -> float:
    """Space-saving percentage as defined in paper Sec. 4.3.

    0.0 means no change; 0.8 means the compressed copy is 5x smaller.
    """
    if original <= 0:
        raise ValueError("original size must be positive")
    return 1.0 - compressed / original
