"""simlint: a static analyzer for the repo's own DES discipline.

Every scaling claim this reproduction makes rests on deterministic
simulation: goldens are byte-identical, bench scenarios pin exact event
counts, and chaos is a pure function of the seed.  Those invariants
used to be guarded only *dynamically* -- a stray ``time.time()``, an
unseeded ``random.Random()`` or set-ordered iteration in a report path
slipped through until a golden flaked.  simlint enforces the rules
*statically*, before runtime ever sees a violation:

* :mod:`repro.lint.framework` -- the rule registry, pragma-based
  suppression (``# simlint: allow[rule-id] -- reason``), per-path rule
  configuration, file discovery and text/JSON rendering;
* :mod:`repro.lint.rules` -- the repo-specific rule catalog (wall-clock
  bans in sim-clock code, seeded + namespaced RNG, sorted directory
  listings, no set-order iteration, no float ``==`` on sim timestamps,
  no mutable defaults in spec layers, no swallowed kernel failures,
  the telemetry null-object wall);
* :mod:`repro.lint.cli` -- the ``presto lint`` / ``tools/simlint.py``
  entry point with an exit-code gate for CI.

The analyzer is stdlib-``ast`` only (no third-party dependency), in the
same spirit as ``tools/diagnosis_coverage.py``.  See ``docs/lint.md``
for the rule catalog and the pragma syntax.
"""

from __future__ import annotations

from .framework import (
    DEFAULT_CONFIG,
    Finding,
    LintConfig,
    PathRules,
    Rule,
    RULES,
    findings_to_json,
    lint_file,
    lint_paths,
    lint_source,
    render_text,
    rule_catalog,
)
from . import rules as _rules  # noqa: F401  (registers the catalog)
from .cli import main

__all__ = [
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "PathRules",
    "Rule",
    "RULES",
    "findings_to_json",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
    "render_text",
    "rule_catalog",
]
