"""Command-line front end for simlint (``presto lint`` and
``tools/simlint.py`` both land here).

Exit codes follow the CI-gate convention: ``0`` clean, ``1`` findings,
``2`` usage errors (no such path, unknown rule id).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .framework import (
    DEFAULT_CONFIG,
    LintConfig,
    RULES,
    discover,
    findings_to_json,
    lint_paths,
    render_text,
    rule_catalog,
)

#: Directories linted when no explicit path is given (the same tree the
#: acceptance gate covers).
DEFAULT_TARGETS = ("src", "tools", "benchmarks")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description="static analyzer for the repo's DES discipline "
                    "(determinism, seeding, telemetry wall)")
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories to lint (default: "
                             + " ".join(DEFAULT_TARGETS) + ")")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as JSON (schema 1)")
    parser.add_argument("--select", metavar="RULES", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--ignore", metavar="RULES", default=None,
                        help="comma-separated rule ids to skip")
    parser.add_argument("--list-rules", action="store_true",
                        dest="list_rules",
                        help="print the rule catalog and exit")
    parser.add_argument("--root", metavar="DIR", default=None,
                        help="repo root findings are reported relative "
                             "to (default: current directory)")
    return parser


def _parse_rule_list(text: str) -> List[str]:
    rule_ids = [part.strip() for part in text.split(",") if part.strip()]
    unknown = [rule_id for rule_id in rule_ids if rule_id not in RULES]
    if unknown:
        raise SystemExit(
            f"simlint: unknown rule id(s): {', '.join(sorted(unknown))}"
            f" (known: {', '.join(sorted(RULES))})")
    return rule_ids


def _print_catalog() -> None:
    for rule in rule_catalog():
        print(f"{rule.id:18s} [{rule.severity}] {rule.title}")


def run(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_catalog()
        return 0

    root = Path(args.root) if args.root else Path.cwd()
    if args.paths:
        targets = [Path(path) for path in args.paths]
        missing = [str(path) for path in targets if not path.exists()]
        if missing:
            print(f"simlint: no such path: {', '.join(missing)}",
                  file=sys.stderr)
            return 2
    else:
        targets = [root / name for name in DEFAULT_TARGETS
                   if (root / name).is_dir()]
        if not targets:
            print("simlint: none of the default targets "
                  f"({', '.join(DEFAULT_TARGETS)}) exist under {root}",
                  file=sys.stderr)
            return 2

    config = DEFAULT_CONFIG
    if args.select or args.ignore:
        try:
            select = (tuple(_parse_rule_list(args.select))
                      if args.select else None)
            ignore = (tuple(_parse_rule_list(args.ignore))
                      if args.ignore else ())
        except SystemExit as exc:
            print(exc, file=sys.stderr)
            return 2
        config = LintConfig(select=select, ignore=ignore,
                            per_path=DEFAULT_CONFIG.per_path)

    checked = len(discover(targets))
    findings = lint_paths(targets, root=root, config=config)
    if args.as_json:
        print(json.dumps(findings_to_json(findings, checked),
                         indent=2, sort_keys=True))
    else:
        print(render_text(findings, checked))
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point shared by ``presto lint`` and ``tools/simlint.py``."""
    return run(argv)


if __name__ == "__main__":
    sys.exit(main())
