"""The simlint rule framework: registry, pragmas, config, rendering.

A :class:`Rule` inspects one parsed module and yields findings; the
framework owns everything around that -- discovering files, parsing
them once, building the parent map rules use for context, honouring
``# simlint: allow[rule-id] -- reason`` suppression pragmas, applying
the per-path rule configuration, and rendering text or JSON reports
with a deterministic ordering (path, line, column, rule id).

Suppression pragmas
-------------------

A finding is suppressed by a pragma *on the same physical line* as the
finding's anchor, or by a whole-line pragma comment *immediately
above* it::

    cutoff = time.time() - STALE  # simlint: allow[wall-clock] -- host GC

    # simlint: allow[unsorted-listing] -- order-insensitive unlink sweep
    for path in directory.glob("*.tmp"):
        ...

The reason after ``--`` is mandatory: a pragma without one (or naming
an unknown rule) is itself reported as a ``bad-pragma`` finding, so
every suppression in the tree carries a rationale.  Several rules can
share one pragma: ``allow[wall-clock, unsorted-listing]``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Pragma grammar (in a comment): ``simlint: allow[rule, ...] -- why``.
PRAGMA_RE = re.compile(
    r"#\s*simlint:\s*allow\[(?P<rules>[^\]]*)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?")

#: The synthetic rule id used to report malformed pragmas.
BAD_PRAGMA = "bad-pragma"


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} [{self.severity}] {self.message}")

    def to_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message,
                "severity": self.severity}


class FileContext:
    """Everything a rule may want to know about the file under analysis.

    Built once per file and shared by every rule: the parsed tree, a
    child->parent node map (stdlib ``ast`` has no parent links), the
    raw source lines, and the repo-relative path the finding will be
    reported under.
    """

    def __init__(self, path: str, tree: ast.Module,
                 lines: Sequence[str]) -> None:
        self.path = path
        self.tree = tree
        self.lines = lines
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    def parent_chain(self, node: ast.AST) -> Iterator[ast.AST]:
        """Ancestors of ``node``, innermost first, stopping at module."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def inside_sorted(self, node: ast.AST) -> bool:
        """True when ``node`` sits inside a ``sorted(...)`` call (so the
        non-deterministic order it produces is laundered before use)."""
        for ancestor in self.parent_chain(node):
            if isinstance(ancestor, ast.Call):
                func = ancestor.func
                if isinstance(func, ast.Name) and func.id == "sorted":
                    return True
            if isinstance(ancestor, ast.stmt):
                return False
        return False


class Rule:
    """Base class for simlint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding ``(node, message)`` pairs.  ``id`` is the stable rule
    identifier used in pragmas and config; ``rationale`` feeds the
    ``--list-rules`` catalog and ``docs/lint.md``.
    """

    id: str = ""
    title: str = ""
    severity: str = "error"
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
        raise NotImplementedError
        yield  # pragma: no cover


#: The global rule registry, id -> instance.  Populated by ``@register``.
RULES: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding a rule to :data:`RULES` (id collisions
    are programming errors and raise immediately)."""
    rule = cls()
    if not rule.id or not rule.title or not rule.rationale:
        raise ValueError(f"rule {cls.__name__} is missing metadata")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULES[rule.id] = rule
    return cls


def rule_catalog() -> List[Rule]:
    """Registered rules in stable (id) order."""
    return [RULES[rule_id] for rule_id in sorted(RULES)]


@dataclass(frozen=True)
class PathRules:
    """Disable specific rules under a path prefix (repo-relative,
    ``/``-separated; a file path matches itself)."""

    prefix: str
    disable: Tuple[str, ...]


@dataclass(frozen=True)
class LintConfig:
    """Which rules run where.

    ``select`` restricts the run to the named rules (``None`` = all
    registered); ``ignore`` drops rules globally; ``per_path`` turns
    rules off under path prefixes -- the mechanism behind e.g. letting
    ``repro/obs`` construct the tracers everyone else must receive
    through the :class:`~repro.obs.Telemetry` null-object path.
    """

    select: Optional[Tuple[str, ...]] = None
    ignore: Tuple[str, ...] = ()
    per_path: Tuple[PathRules, ...] = ()

    def enabled(self, rule_id: str, path: str) -> bool:
        if self.select is not None and rule_id not in self.select:
            return False
        if rule_id in self.ignore:
            return False
        normalized = path.replace("\\", "/")
        for entry in self.per_path:
            if (normalized.startswith(entry.prefix)
                    and rule_id in entry.disable):
                return False
        return True


#: Paths that are *allowed* to construct telemetry objects directly:
#: the telemetry package itself, and the Session facade that builds
#: tracers/registries from a ``Telemetry`` request.  Everyone else gets
#: them handed in (or ``None``) -- that wall is what keeps telemetry
#: off the hot path when it is off.
TELEMETRY_PATHS = ("src/repro/obs/", "src/repro/api/session.py")

DEFAULT_CONFIG = LintConfig(per_path=(
    PathRules(prefix="src/repro/obs/", disable=("telemetry-wall",)),
    PathRules(prefix="src/repro/api/session.py",
              disable=("telemetry-wall",)),
))


# -- pragma handling ---------------------------------------------------------

@dataclass
class Suppressions:
    """Per-file pragma table: line -> rule ids allowed on that line."""

    by_line: Dict[int, set] = field(default_factory=dict)
    bad: List[Finding] = field(default_factory=list)

    def allows(self, line: int, rule_id: str) -> bool:
        return rule_id in self.by_line.get(line, ())


def _comment_tokens(source: str) -> Iterator[Tuple[int, int, str]]:
    """``(line, col, text)`` for every comment token in ``source``.

    Tokenizing (rather than regex-scanning raw lines) keeps docstrings
    and string literals that merely *mention* the pragma syntax from
    being parsed as pragmas.
    """
    import io
    import tokenize
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return  # unparsable files are reported as syntax-error findings


def parse_pragmas(path: str, source: str) -> Suppressions:
    """Scan a file's comments for suppression pragmas.

    A pragma covers its own line; a whole-line pragma comment also
    covers the next line (so multi-clause statements can carry the
    pragma above them).  Malformed pragmas -- missing the ``-- reason``
    tail or naming an unregistered rule -- become ``bad-pragma``
    findings so suppressions cannot silently rot.
    """
    result = Suppressions()
    lines = source.splitlines()
    for lineno, start_col, text in _comment_tokens(source):
        match = PRAGMA_RE.search(text)
        if match is None:
            continue
        col = start_col + match.start() + 1
        reason = match.group("reason")
        rule_ids = [part.strip() for part in
                    match.group("rules").split(",") if part.strip()]
        if not reason:
            result.bad.append(Finding(
                rule=BAD_PRAGMA, path=path, line=lineno, col=col,
                message="suppression pragma is missing its "
                        "'-- reason' tail"))
            continue
        if not rule_ids:
            result.bad.append(Finding(
                rule=BAD_PRAGMA, path=path, line=lineno, col=col,
                message="suppression pragma names no rule ids"))
            continue
        unknown = [rule_id for rule_id in rule_ids if rule_id not in RULES]
        if unknown:
            result.bad.append(Finding(
                rule=BAD_PRAGMA, path=path, line=lineno, col=col,
                message="suppression pragma names unknown rule(s): "
                        + ", ".join(sorted(unknown))))
            continue
        covered = [lineno]
        line_text = lines[lineno - 1] if lineno <= len(lines) else ""
        if line_text[:start_col].strip() == "":  # whole-line comment
            covered.append(lineno + 1)
        for target in covered:
            result.by_line.setdefault(target, set()).update(rule_ids)
    return result


# -- linting -----------------------------------------------------------------

def lint_source(source: str, path: str,
                config: LintConfig = DEFAULT_CONFIG) -> List[Finding]:
    """Lint one source text, reporting findings under ``path``."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(rule="syntax-error", path=path,
                        line=exc.lineno or 1, col=(exc.offset or 1),
                        message=f"file does not parse: {exc.msg}")]
    lines = source.splitlines()
    suppressions = parse_pragmas(path, source)
    ctx = FileContext(path, tree, lines)
    findings = list(suppressions.bad)
    for rule in rule_catalog():
        if not config.enabled(rule.id, path):
            continue
        for node, message in rule.check(ctx):
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0) + 1
            if suppressions.allows(line, rule.id):
                continue
            findings.append(Finding(rule=rule.id, path=path, line=line,
                                    col=col, message=message,
                                    severity=rule.severity))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path: Path, root: Optional[Path] = None,
              config: LintConfig = DEFAULT_CONFIG) -> List[Finding]:
    """Lint one file; findings are reported relative to ``root``."""
    display = path
    if root is not None:
        try:
            display = path.resolve().relative_to(root.resolve())
        except ValueError:
            display = path
    return lint_source(path.read_text(encoding="utf-8"),
                       str(display).replace("\\", "/"), config)


def discover(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    result = []
    for path in paths:
        if path.is_dir():
            result.extend(
                candidate for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts)
        elif path.suffix == ".py":
            result.append(path)
    return sorted(set(result))


def lint_paths(paths: Iterable[Path], root: Optional[Path] = None,
               config: LintConfig = DEFAULT_CONFIG) -> List[Finding]:
    """Lint every ``*.py`` file under ``paths`` (deterministic order)."""
    findings: List[Finding] = []
    for path in discover(paths):
        findings.extend(lint_file(path, root=root, config=config))
    return findings


# -- rendering ---------------------------------------------------------------

def render_text(findings: Sequence[Finding], checked: int) -> str:
    """The human report: one ``path:line:col`` diagnostic per finding
    plus a summary line (empty-finding runs still get the summary)."""
    out = [finding.render() for finding in findings]
    if findings:
        by_rule: Dict[str, int] = {}
        for finding in findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        breakdown = ", ".join(f"{rule} x{count}" for rule, count
                              in sorted(by_rule.items()))
        out.append(f"simlint: {len(findings)} finding(s) in "
                   f"{checked} file(s) [{breakdown}]")
    else:
        out.append(f"simlint: clean ({checked} file(s), "
                   f"{len(RULES)} rules)")
    return "\n".join(out)


def findings_to_json(findings: Sequence[Finding], checked: int) -> dict:
    """The machine report (stable schema for CI tooling)."""
    return {
        "schema": 1,
        "files_checked": checked,
        "rules": sorted(RULES),
        "findings": [finding.to_dict() for finding in findings],
    }
