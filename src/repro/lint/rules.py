"""The simlint rule catalog: the repo's DES discipline, as checks.

Each rule encodes an invariant the test suite pins dynamically (golden
byte-identity, exact event counts, seed determinism) as a static check
that fires at the source line introducing the hazard.  Rules are
syntactic -- stdlib ``ast``, no type inference -- so they aim for the
patterns this codebase actually uses; anything cleverer than the
pattern earns a pragma with a written reason.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Tuple

from .framework import FileContext, Rule, register

Hits = Iterator[Tuple[ast.AST, str]]

#: Wall-clock callables banned outside pragma'd host-side code.
#: ``time.perf_counter`` is deliberately absent: it is the sanctioned
#: host-side timer for ``wall_seconds`` reporting and never leaks into
#: simulated state.
WALL_CLOCK = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns", "sleep"},
    "datetime": {"now", "utcnow", "today"},
}

#: Module-level ``random`` functions that mutate the shared global RNG.
GLOBAL_RNG = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "expovariate", "betavariate", "seed",
    "getrandbits", "triangular", "normalvariate", "lognormvariate",
    "paretovariate", "weibullvariate", "vonmisesvariate",
}

#: String seeds must be namespaced: ``"{namespace}-..."`` with a
#: lowercase identifier namespace, e.g. ``chaos-{seed}`` or
#: ``stream-{seed}-{tenant}``.  See docs/lint.md ("Seed namespacing").
SEED_NAMESPACE_RE = re.compile(r"^[a-z][a-z0-9_]*-")

#: Directory-listing callables whose order is filesystem-dependent.
LISTING_MODULE_CALLS = {
    ("os", "listdir"), ("os", "scandir"),
    ("glob", "glob"), ("glob", "iglob"),
}
LISTING_METHODS = {"iterdir", "glob", "rglob"}

#: Attribute / variable names that hold sim-clock timestamps.  Used by
#: ``float-time-eq`` to spot exact float comparisons on simulated time.
TIME_NAMES = {
    "now", "sim_time", "timestamp", "deadline", "arrival", "granted",
    "finish_time", "start_time", "end_time", "wake_at", "due_at",
}

#: Telemetry classes that only ``repro.obs`` and the Session facade may
#: instantiate (the null-object wall; see docs/observability.md).
TELEMETRY_CLASSES = {"Tracer", "MetricsRegistry"}


def _call_name(node: ast.Call) -> Tuple[str, str]:
    """``("module", "attr")`` for ``module.attr(...)`` calls, or
    ``("", "name")`` for bare-name calls; ``("", "")`` otherwise."""
    func = node.func
    if isinstance(func, ast.Attribute):
        if isinstance(func.value, ast.Name):
            return func.value.id, func.attr
        # datetime.datetime.now(...) -> ("datetime", "now")
        if (isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)):
            return func.value.value.id, func.attr
        return "", func.attr
    if isinstance(func, ast.Name):
        return "", func.id
    return "", ""


def _from_imports(ctx: FileContext, module: str) -> Dict[str, str]:
    """Local alias -> original name for ``from <module> import ...``."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                aliases[alias.asname or alias.name] = alias.name
    return aliases


@register
class WallClockRule(Rule):
    id = "wall-clock"
    title = "no wall-clock reads in simulator code"
    rationale = (
        "Simulated time is `sim.now`; host wall-clock reads "
        "(`time.time`, `time.monotonic`, `datetime.now`, `time.sleep`) "
        "make runs machine-dependent and break golden byte-identity. "
        "`time.perf_counter` is exempt: it is the sanctioned host-side "
        "timer for `wall_seconds` run-cost reporting.")

    def check(self, ctx: FileContext) -> Hits:
        time_aliases = _from_imports(ctx, "time")
        dt_aliases = _from_imports(ctx, "datetime")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            owner, attr = _call_name(node)
            if owner in WALL_CLOCK and attr in WALL_CLOCK[owner]:
                yield node, (f"wall-clock call {owner}.{attr}() in "
                             "simulator code; use sim.now / Timeout "
                             "(or time.perf_counter for host-side "
                             "run-cost timing)")
            elif owner == "" and attr:
                original = time_aliases.get(attr)
                if original in WALL_CLOCK["time"]:
                    yield node, (f"wall-clock call {attr}() (imported "
                                 "from time); use sim.now / Timeout")
            elif attr in WALL_CLOCK["datetime"] and owner in dt_aliases:
                yield node, (f"wall-clock call {owner}.{attr}() "
                             "(datetime); simulator output must not "
                             "depend on the host clock")


@register
class UnseededRngRule(Rule):
    id = "unseeded-rng"
    title = "every random.Random() takes an explicit seed"
    rationale = (
        "An argument-less `random.Random()` seeds from the OS and makes "
        "the run irreproducible. Every generator must take an explicit "
        "seed derived from the experiment seed.")

    def check(self, ctx: FileContext) -> Hits:
        random_aliases = _from_imports(ctx, "random")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            owner, attr = _call_name(node)
            is_random = (
                (owner == "random" and attr == "Random")
                or (owner == "" and random_aliases.get(attr) == "Random"))
            if is_random and not node.args and not node.keywords:
                yield node, ("random.Random() without a seed argument; "
                             "derive the seed from the experiment seed")


@register
class RngNamespaceRule(Rule):
    id = "rng-namespace"
    title = "string RNG seeds follow the '{namespace}-{seed}' convention"
    rationale = (
        "String seeds partition the seed space between subsystems "
        "(`chaos-{seed}`, `stream-{seed}-{tenant}`): two engines fed "
        "the same integer seed must not draw identical streams. A "
        "string seed without a `namespace-` prefix silently aliases "
        "another subsystem's stream.")

    def check(self, ctx: FileContext) -> Hits:
        random_aliases = _from_imports(ctx, "random")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            owner, attr = _call_name(node)
            is_random = (
                (owner == "random" and attr == "Random")
                or (owner == "" and random_aliases.get(attr) == "Random"))
            if not is_random or not node.args:
                continue
            seed = node.args[0]
            prefix = None
            if isinstance(seed, ast.Constant) and isinstance(seed.value,
                                                             str):
                prefix = seed.value
            elif isinstance(seed, ast.JoinedStr):
                first = seed.values[0] if seed.values else None
                prefix = (first.value
                          if isinstance(first, ast.Constant)
                          and isinstance(first.value, str) else "")
            if prefix is not None and not SEED_NAMESPACE_RE.match(prefix):
                yield node, ("string RNG seed must start with a "
                             "'{namespace}-' prefix (e.g. "
                             "f\"chaos-{seed}\"); got a seed starting "
                             f"with {prefix[:20]!r}")


@register
class GlobalRngRule(Rule):
    id = "global-rng"
    title = "no module-level random.* calls (shared global RNG)"
    rationale = (
        "`random.random()`, `random.choice()` etc. mutate interpreter-"
        "global state: any other caller perturbs the stream and the "
        "run stops being a pure function of its seed. Use a local "
        "seeded `random.Random` instance.")

    def check(self, ctx: FileContext) -> Hits:
        random_aliases = _from_imports(ctx, "random")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            owner, attr = _call_name(node)
            hit = ((owner == "random" and attr in GLOBAL_RNG)
                   or (owner == ""
                       and random_aliases.get(attr) in GLOBAL_RNG))
            if hit:
                name = attr if owner else random_aliases.get(attr, attr)
                yield node, (f"module-level random.{name}() uses the "
                             "shared global RNG; use a seeded "
                             "random.Random instance")


@register
class UnsortedListingRule(Rule):
    id = "unsorted-listing"
    title = "directory listings are sorted before use"
    rationale = (
        "`os.listdir` / `glob.glob` / `Path.iterdir` order is "
        "filesystem-dependent; feeding it into event scheduling or "
        "report output makes runs host-dependent. Wrap the listing in "
        "`sorted(...)`.")

    def check(self, ctx: FileContext) -> Hits:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            owner, attr = _call_name(node)
            is_listing = ((owner, attr) in LISTING_MODULE_CALLS
                          or (isinstance(node.func, ast.Attribute)
                              and attr in LISTING_METHODS
                              and owner not in ("glob", "os")))
            if is_listing and not ctx.inside_sorted(node):
                label = f"{owner}.{attr}" if owner else attr
                yield node, (f"{label}() order is filesystem-"
                             "dependent; wrap the listing in sorted()")


@register
class SetIterationRule(Rule):
    id = "set-iteration"
    title = "no iteration over set/frozenset expressions"
    rationale = (
        "Set iteration order depends on insertion history and hash "
        "seeds of the values; iterating one to schedule events or "
        "emit report lines produces host-dependent output. Sort the "
        "set (or keep a list/dict, which preserve insertion order).")

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            owner, attr = _call_name(node)
            return owner == "" and attr in ("set", "frozenset")
        if isinstance(node, ast.BinOp):   # union/intersection chains
            return (self._is_set_expr(node.left)
                    or self._is_set_expr(node.right))
        return False

    def check(self, ctx: FileContext) -> Hits:
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                if (self._is_set_expr(candidate)
                        and not ctx.inside_sorted(candidate)
                        and not ctx.inside_sorted(node)):
                    yield candidate, ("iteration over a set expression "
                                      "has no deterministic order; "
                                      "wrap it in sorted()")


@register
class FloatTimeEqRule(Rule):
    id = "float-time-eq"
    title = "no float ==/!= against sim timestamps"
    rationale = (
        "Sim timestamps are floats accumulated through arithmetic; "
        "exact equality is representation-dependent and breaks under "
        "any kernel rewrite that reassociates the sums. Compare with "
        "<=/>= windows or math.isclose.")

    def _mentions_time(self, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute) and sub.attr in TIME_NAMES:
                return True
            if isinstance(sub, ast.Name) and sub.id in TIME_NAMES:
                return True
        return False

    def check(self, ctx: FileContext) -> Hits:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                # `x == None` / `x == "label"` comparisons are not
                # float-time comparisons even when x is named `now`.
                sides = (left, right)
                if any(isinstance(side, ast.Constant)
                       and not isinstance(side.value, (int, float))
                       for side in sides):
                    continue
                if any(self._mentions_time(side) for side in sides):
                    yield node, ("exact float equality on a sim "
                                 "timestamp; use an ordering check or "
                                 "math.isclose")
                    break


@register
class MutableDefaultRule(Rule):
    id = "mutable-default"
    title = "no mutable default arguments"
    rationale = (
        "A `def f(x=[])` default is shared across calls: one caller's "
        "mutation leaks into the next run's spec and the fingerprint "
        "no longer describes the experiment. Use None + a local, or "
        "dataclasses.field(default_factory=...).")

    def check(self, ctx: FileContext) -> Hits:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults
                            if d is not None)
            for default in defaults:
                mutable = isinstance(default, (ast.List, ast.Dict,
                                               ast.Set, ast.ListComp,
                                               ast.DictComp, ast.SetComp))
                if isinstance(default, ast.Call):
                    owner, attr = _call_name(default)
                    mutable = (owner == ""
                               and attr in ("list", "dict", "set"))
                if mutable:
                    yield default, (f"mutable default argument in "
                                    f"{node.name}(); defaults are "
                                    "shared across calls -- use None "
                                    "or field(default_factory=...)")


@register
class SilentExceptRule(Rule):
    id = "silent-except"
    title = "no bare/blanket except around kernel code"
    rationale = (
        "A bare `except:` (or a blanket `except Exception: pass`) "
        "swallows DES process failures; the kernel's failure path "
        "exists precisely so unwatched failures re-raise instead of "
        "corrupting the event order silently. Catch the narrow "
        "exception you mean.")

    def check(self, ctx: FileContext) -> Hits:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield node, ("bare except: swallows kernel failures "
                             "(KeyboardInterrupt included); name the "
                             "exception")
                continue
            broad = (isinstance(node.type, ast.Name)
                     and node.type.id in ("Exception", "BaseException"))
            body_is_pass = (len(node.body) == 1
                            and isinstance(node.body[0], ast.Pass))
            if broad and body_is_pass:
                yield node, (f"except {node.type.id}: pass silently "
                             "swallows failures; catch the narrow "
                             "exception or re-raise")


@register
class TelemetryWallRule(Rule):
    id = "telemetry-wall"
    title = "telemetry objects are built only behind the Telemetry path"
    rationale = (
        "Tracer/MetricsRegistry are null-by-default hooks: engines "
        "receive them (or None) from the Session facade, which builds "
        "them from the per-run Telemetry request. Constructing one "
        "directly inside an engine would re-open the zero-overhead "
        "wall (telemetry off must schedule zero extra events).")

    def check(self, ctx: FileContext) -> Hits:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            owner, attr = _call_name(node)
            if attr in TELEMETRY_CLASSES:
                yield node, (f"direct {attr}() construction outside "
                             "repro.obs / the Session Telemetry path; "
                             "accept the instance as a parameter "
                             "instead")
