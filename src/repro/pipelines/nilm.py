"""The NILM pipeline (paper Fig. 5c): MEED-style event detection on CREAM.

Chain: read hourly HDF5 containers -> decode/slice into 10 s windows
(``2 x 64000`` float64) -> aggregate into ``3 x 500`` float64 features
(reactive power, current RMS, CUSUM of the RMS).

Both steps run NumPy/h5py code through ``tf.py_function`` in the paper,
so both hold the GIL -- this pipeline is the cleanest demonstration of
Sec. 4.4 obs. 2 (external libraries break thread scaling; speedups fall
*below* 1.0).  There is no concatenation step: the raw data already ships
as concatenated binary containers.

The ``aggregated`` strategy is the paper's sharpest dispatch-bound case:
0.012 MB samples pin throughput at ~9 k SPS however many threads run, and
caching buys almost nothing (1.1x).
"""

from __future__ import annotations

from repro import calibration as cal
from repro.datasets.catalog import CREAM
from repro.formats import codecs
from repro.ops import nilm as nilm_ops
from repro.pipelines.base import (EXTERNAL, PipelineSpec, Representation,
                                  StepSpec)
from repro.units import GB


def _decode(sample, rng):
    return codecs.decode_hdf5(sample)


def _aggregate(sample, rng):
    return nilm_ops.aggregate_window(sample)


def build_nilm() -> PipelineSpec:
    """NILM on CREAM X8: 268 K windows from 744 hourly files (Fig. 6e)."""
    count = CREAM.sample_count
    source_bytes = CREAM.total_bytes / count              # 0.1477 MB
    representations = [
        # The raw dataset lives in 744 sequential containers, not one file
        # per sample, so reads are already mostly sequential.
        Representation("unprocessed", source_bytes, dtype="float64",
                       n_files=CREAM.n_files, record_format=False),
        Representation("decoded", 262.5 * GB / count, dtype="float64",
                       # Fig. 10i: 262.5 GB -> 220.4 GB.
                       compressibility={"GZIP": 0.160, "ZLIB": 0.160}),
        Representation("aggregated", 3.1 * GB / count, dtype="float64",
                       # Fig. 10i: 3.1 GB -> 2.9 GB.
                       compressibility={"GZIP": 0.065, "ZLIB": 0.065}),
    ]
    steps = [
        StepSpec("decode", cpu_seconds=cal.NILM_DECODE_HDF5, impl=EXTERNAL,
                 fn=_decode),
        StepSpec("aggregate", cpu_seconds=cal.NILM_AGGREGATE, impl=EXTERNAL,
                 fn=_aggregate),
    ]
    return PipelineSpec("NILM", representations, steps, count,
                        description="MEED event-detection features on CREAM")
