"""The profiled preprocessing pipelines.

One module per paper domain builds the pipeline specifications used
throughout the reproduction:

* :mod:`repro.pipelines.cv` -- CV (ILSVRC2012), CV2-JPG and CV2-PNG
  (Cube++), paper Fig. 2.
* :mod:`repro.pipelines.nlp` -- the GPT-2/OpenWebText pipeline, Fig. 5a.
* :mod:`repro.pipelines.audio` -- MP3 (Commonvoice) and FLAC
  (Librispeech), Fig. 5b.
* :mod:`repro.pipelines.nilm` -- the CREAM event-detection pipeline,
  Fig. 5c.
* :mod:`repro.pipelines.synthetic` -- the synthetic sample-size-sweep
  pipelines behind Figs. 7, 9, 11 and 13.

Each pipeline is a :class:`repro.pipelines.base.PipelineSpec`: an ordered
chain of steps with calibrated cost models, the data representation after
every step, and bindings to real NumPy implementations for the in-process
backend.
"""

from repro.pipelines.base import PipelineSpec, Representation, StepSpec
from repro.pipelines.registry import all_pipelines, get_pipeline

__all__ = [
    "PipelineSpec",
    "Representation",
    "StepSpec",
    "all_pipelines",
    "get_pipeline",
]
