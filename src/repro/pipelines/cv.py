"""The CV pipelines (paper Fig. 2): ILSVRC2012, Cube++ JPG, Cube++ PNG.

Chain: read -> concatenate -> decode -> resize -> pixel-center ->
random-crop, where random-crop is the single non-deterministic step that
must always run online (paper Sec. 1 footnote).

Representation sizes are the paper's measured storage consumptions
(Fig. 6a-c); per-sample figures divide by the Table 2 sample counts.
Compressibility fractions are the paper's Fig. 10 space savings -- note
how the PNG-sourced pipeline compresses far better downstream than the
JPG-sourced one because lossy-decode artifacts poison DEFLATE (Sec. 4.3
obs. 1).
"""

from __future__ import annotations

import numpy as np

from repro import calibration as cal
from repro.datasets.catalog import CUBE_JPG, CUBE_PNG, ILSVRC2012
from repro.formats import codecs
from repro.formats.record import RECORD_FRAMING_BYTES
from repro.ops import image as image_ops
from repro.pipelines.base import (EXTERNAL, NATIVE, PipelineSpec,
                                  Representation, StepSpec)
from repro.units import GB

#: Model-input geometry: resize target and crop window (299x299 matches
#: the paper's measured 0.267 MB resized samples: 299*299*3 bytes).
RESIZE_HW = (299, 299)
CROP_HW = (280, 280)


def _decode_jpg(sample, rng):
    return codecs.decode_jpg(sample)


def _decode_png(sample, rng):
    return codecs.decode_png(sample)


def _to_uint8(sample: np.ndarray) -> np.ndarray:
    if sample.dtype == np.uint16:
        return (sample >> 8).astype(np.uint8)
    return sample


def _resize(sample, rng):
    return image_ops.resize_bilinear(_to_uint8(sample), *RESIZE_HW)


def _pixel_center(sample, rng):
    return image_ops.pixel_center(sample)


def _random_crop(sample, rng):
    # Adaptive window: the in-process backend runs on miniature images,
    # so the crop clamps to the actual dimensions (the simulator charges
    # the calibrated full-scale cost regardless).
    height = min(CROP_HW[0], sample.shape[0])
    width = min(CROP_HW[1], sample.shape[1])
    return image_ops.random_crop(sample, height, width, rng=rng)


def _greyscale(sample, rng):
    return image_ops.greyscale(sample)


def _cv_steps(decode_cost: float, decode_fn, resize_cost: float,
              center_cost: float, crop_cost: float) -> list[StepSpec]:
    """The shared CV step chain with per-pipeline calibrated costs."""
    return [
        StepSpec("concatenate", cpu_seconds=0.0, impl=NATIVE,
                 fn=lambda sample, rng: sample),
        StepSpec("decode", cpu_seconds=decode_cost, impl=NATIVE,
                 fn=decode_fn),
        StepSpec("resize", cpu_seconds=resize_cost, impl=NATIVE, fn=_resize),
        StepSpec("pixel-center", cpu_seconds=center_cost, impl=NATIVE,
                 fn=_pixel_center),
        StepSpec("random-crop", cpu_seconds=crop_cost, impl=NATIVE,
                 deterministic=False, fn=_random_crop),
    ]


def build_cv() -> PipelineSpec:
    """CV on ILSVRC2012: 1.3 M low-res JPGs, 146.9 GB (Fig. 6a)."""
    count = ILSVRC2012.sample_count
    source_bytes = ILSVRC2012.total_bytes / count       # 0.113 MB
    representations = [
        Representation("unprocessed", source_bytes, dtype="uint8",
                       n_files=ILSVRC2012.n_files, record_format=False),
        Representation("concatenated", source_bytes + RECORD_FRAMING_BYTES,
                       dtype="uint8",
                       # Fig. 10a: 147 GB -> 146 GB under GZIP/ZLIB.
                       compressibility={"GZIP": 0.007, "ZLIB": 0.007}),
        Representation("decoded", 842.5 * GB / count, dtype="uint8",
                       # Fig. 10a: 842.5 GB -> 598 GB.
                       compressibility={"GZIP": 0.290, "ZLIB": 0.290}),
        Representation("resized", 347.3 * GB / count, dtype="uint8",
                       # Fig. 10a: 347.3 GB -> 267 GB.
                       compressibility={"GZIP": 0.231, "ZLIB": 0.231}),
        Representation("pixel-centered", 1_390 * GB / count, dtype="float32",
                       # Fig. 10a: 1.39 TB -> 379 GB.
                       compressibility={"GZIP": 0.727, "ZLIB": 0.727}),
        Representation("random-cropped",
                       CROP_HW[0] * CROP_HW[1] * 3 * 4, dtype="float32"),
    ]
    steps = _cv_steps(cal.CV_DECODE_JPEG, _decode_jpg, cal.CV_RESIZE,
                      cal.CV_PIXEL_CENTER, cal.CV_RANDOM_CROP)
    return PipelineSpec("CV", representations, steps, count,
                        description="ResNet-style ImageNet preprocessing")


def build_cv2_jpg() -> PipelineSpec:
    """CV2-JPG on Cube++ JPGs: 4890 high-res images, 2.54 GB (Fig. 6b)."""
    count = CUBE_JPG.sample_count
    source_bytes = CUBE_JPG.total_bytes / count          # 0.52 MB
    representations = [
        Representation("unprocessed", source_bytes, dtype="uint8",
                       n_files=CUBE_JPG.n_files, record_format=False),
        Representation("concatenated", source_bytes + RECORD_FRAMING_BYTES,
                       dtype="uint8",
                       compressibility={"GZIP": 0.0, "ZLIB": 0.0}),
        Representation("decoded", 65.7 * GB / count, dtype="uint8",
                       # Fig. 10c: 65.7 GB -> 38.6 GB (artifact-limited).
                       compressibility={"GZIP": 0.4125, "ZLIB": 0.4125}),
        Representation("resized", 1.4 * GB / count, dtype="uint8",
                       # Fig. 10c: 1.4 GB -> 1.1 GB.
                       compressibility={"GZIP": 0.214, "ZLIB": 0.214}),
        Representation("pixel-centered", 5.8 * GB / count, dtype="float32",
                       # Fig. 10c: 5.8 GB -> 1.5 GB.
                       compressibility={"GZIP": 0.741, "ZLIB": 0.741}),
        Representation("random-cropped",
                       CROP_HW[0] * CROP_HW[1] * 3 * 4, dtype="float32"),
    ]
    steps = _cv_steps(cal.CV2_DECODE_JPEG, _decode_jpg, cal.CV2_RESIZE,
                      cal.CV2_PIXEL_CENTER, cal.CV2_RANDOM_CROP)
    return PipelineSpec("CV2-JPG", representations, steps, count,
                        description="high-resolution Cube++ JPG flavour")


def build_cv2_png() -> PipelineSpec:
    """CV2-PNG on Cube++ 16-bit PNGs: 4890 images, 85.17 GB (Fig. 6c)."""
    count = CUBE_PNG.sample_count
    source_bytes = CUBE_PNG.total_bytes / count          # 17.4 MB
    representations = [
        Representation("unprocessed", source_bytes, dtype="uint16",
                       n_files=CUBE_PNG.n_files, record_format=False),
        # The paper measures 87.2 GB after concatenation (record framing
        # plus shard padding on multi-MB samples).
        Representation("concatenated", 87.2 * GB / count, dtype="uint16",
                       # Fig. 10e: 87.2 GB -> 87.0 GB.
                       compressibility={"GZIP": 0.0023, "ZLIB": 0.0023}),
        Representation("decoded", 65.7 * GB / count, dtype="uint8",
                       # Fig. 10e: 65.7 GB -> 11.1 GB -- lossless source
                       # keeps decoded pixels highly compressible.
                       compressibility={"GZIP": 0.831, "ZLIB": 0.831}),
        Representation("resized", 1.4 * GB / count, dtype="uint8",
                       # Fig. 10e: 1.4 GB -> 280 MB.
                       compressibility={"GZIP": 0.800, "ZLIB": 0.800}),
        Representation("pixel-centered", 5.8 * GB / count, dtype="float32",
                       # Fig. 10e: 5.8 GB -> 402 MB.
                       compressibility={"GZIP": 0.931, "ZLIB": 0.931}),
        Representation("random-cropped",
                       CROP_HW[0] * CROP_HW[1] * 3 * 4, dtype="float32"),
    ]
    steps = _cv_steps(cal.CV2_DECODE_PNG, _decode_png, cal.CV2_RESIZE,
                      cal.CV2_PIXEL_CENTER, cal.CV2_RANDOM_CROP)
    return PipelineSpec("CV2-PNG", representations, steps, count,
                        description="16-bit PNG Cube++ flavour")


# ---------------------------------------------------------------------------
# Sec. 4.6 case study: inserting a greyscale step
# ---------------------------------------------------------------------------


def build_cv_greyscale_before_center() -> PipelineSpec:
    """Fig. 14a: greyscale between resize and pixel-center.

    Greyscale drops 3 channels to 1, so everything downstream shrinks by
    3x: 347.3 GB resized -> 115.8 GB greyscale -> 463 GB float32.
    """
    base = build_cv()
    count = base.sample_count
    grey_step = StepSpec("greyscale", cpu_seconds=cal.CV_GREYSCALE,
                         impl=NATIVE, fn=_greyscale)
    grey_rep = Representation(
        "applied-greyscale", 115.8 * GB / count, dtype="uint8",
        compressibility={"GZIP": 0.30, "ZLIB": 0.30})
    # Insert after resize (step index 3), then shrink pixel-centered 3x.
    modified = base.with_step_inserted(3, grey_step, grey_rep)
    modified = modified.with_representation(
        "pixel-centered", bytes_per_sample=463 * GB / count)
    modified = modified.with_representation(
        "random-cropped",
        bytes_per_sample=CROP_HW[0] * CROP_HW[1] * 1 * 4)
    return modified.renamed("CV+greyscale-before")


def build_cv_greyscale_after_center() -> PipelineSpec:
    """Fig. 14b: greyscale after pixel-center (1.39 TB still materialised)."""
    base = build_cv()
    count = base.sample_count
    grey_step = StepSpec("greyscale", cpu_seconds=cal.CV_GREYSCALE,
                         impl=NATIVE, fn=_greyscale)
    grey_rep = Representation(
        "applied-greyscale", 463 * GB / count, dtype="float32",
        compressibility={"GZIP": 0.72, "ZLIB": 0.72})
    modified = base.with_step_inserted(4, grey_step, grey_rep)
    modified = modified.with_representation(
        "random-cropped",
        bytes_per_sample=CROP_HW[0] * CROP_HW[1] * 1 * 4)
    return modified.renamed("CV+greyscale-after")
