"""The NLP pipeline (paper Fig. 5a): GPT-2-style OpenWebText processing.

Chain: read text files -> concatenate -> decode (HTML extraction via the
``newspaper`` library, wrapped in ``tf.py_function`` and hence GIL-bound)
-> byte-pair encode each word to int32 -> look up a 768-dim word2vec
embedding, stacking to an ``n x 768`` float32 tensor.

This pipeline carries two of the paper's headline effects:

* the 6 SPS CPU wall on ``unprocessed``/``concatenated`` that neither
  concatenation, SSDs, nor caching can move (decode holds the GIL);
* the 64x storage blow-up of ``embedded`` (647 MB -> 490.7 GB) that makes
  the *fully preprocessed* strategy 13x slower than stopping at
  ``bpe-encoded`` -- the paper's strongest argument that "preprocess
  everything once" is a trap.
"""

from __future__ import annotations

from repro import calibration as cal
from repro.datasets.catalog import OPENWEBTEXT
from repro.formats import codecs
from repro.formats.record import RECORD_FRAMING_BYTES
from repro.ops import text as text_ops
from repro.pipelines.base import (EXTERNAL, NATIVE, PipelineSpec,
                                  Representation, StepSpec)
from repro.units import GB, MB

#: Shared embedding table for the in-process step (deterministic).
_EMBEDDING = text_ops.EmbeddingTable(dim=text_ops.EMBEDDING_DIM, seed=7)

#: Small default vocabulary trained lazily on first in-process use.
_VOCAB_CACHE: dict[str, text_ops.BPEVocab] = {}


def _get_vocab() -> text_ops.BPEVocab:
    vocab = _VOCAB_CACHE.get("default")
    if vocab is None:
        corpus = [
            "the quick brown fox jumps over the lazy dog",
            "deep learning pipelines need fast preprocessing",
            "storage consumption and throughput trade off constantly",
            "reading the dataset from disk every epoch is expensive",
        ]
        vocab = text_ops.train_bpe(corpus, n_merges=120)
        _VOCAB_CACHE["default"] = vocab
    return vocab


def _decode(sample, rng):
    return codecs.decode_html(sample)


def _bpe_encode(sample, rng):
    return text_ops.bpe_encode(sample, _get_vocab())


def _embed(sample, rng):
    return _EMBEDDING.embed(sample)


def build_nlp() -> PipelineSpec:
    """NLP on OpenWebText: 181 K scraped pages, 7.71 GB (Fig. 6d)."""
    count = OPENWEBTEXT.sample_count
    source_bytes = OPENWEBTEXT.total_bytes / count       # 0.043 MB
    representations = [
        Representation("unprocessed", source_bytes, dtype="uint8",
                       n_files=OPENWEBTEXT.n_files, record_format=False),
        Representation("concatenated", source_bytes + RECORD_FRAMING_BYTES,
                       dtype="uint8",
                       # Fig. 10g: 7.7 GB -> 1.6 GB (text deflates well).
                       compressibility={"GZIP": 0.792, "ZLIB": 0.792}),
        Representation("decoded", 594 * MB / count, dtype="uint8",
                       # Fig. 10g: 594 MB -> 233 MB.
                       compressibility={"GZIP": 0.608, "ZLIB": 0.608}),
        Representation("bpe-encoded", 647 * MB / count, dtype="int32",
                       # Fig. 10g: 647 MB -> 223 MB; the paper notes ZLIB
                       # was slightly *slower* than GZIP only here.
                       compressibility={"GZIP": 0.655, "ZLIB": 0.655}),
        Representation("embedded", 490.7 * GB / count, dtype="float32",
                       # Fig. 10g: 490.7 GB -> 354 GB.
                       compressibility={"GZIP": 0.279, "ZLIB": 0.279},
                       # 2.7 MB protobuf messages of repeated floats parse
                       # ~4x slower than the byte-blob baseline (fitted to
                       # the measured 131 SPS / 315 MB/s reads).
                       deser_penalty=4.0),
    ]
    steps = [
        StepSpec("concatenate", cpu_seconds=0.0, impl=NATIVE,
                 fn=lambda sample, rng: sample),
        StepSpec("decode", cpu_seconds=cal.NLP_DECODE_HTML, impl=EXTERNAL,
                 fn=_decode),
        StepSpec("bpe-encode", cpu_seconds=cal.NLP_BPE_ENCODE, impl=EXTERNAL,
                 fn=_bpe_encode),
        StepSpec("embed", cpu_seconds=cal.NLP_EMBED, impl=NATIVE, fn=_embed),
    ]
    return PipelineSpec("NLP", representations, steps, count,
                        description="GPT-2-style OpenWebText preprocessing")
