"""Registry of the seven profiled pipelines.

Builders are re-invoked on each lookup so callers can mutate their copy
(e.g. ``with_sample_count``) without affecting others.
"""

from __future__ import annotations

from typing import Callable

from repro.pipelines.audio import build_flac, build_mp3
from repro.pipelines.base import PipelineSpec
from repro.pipelines.cv import (build_cv, build_cv2_jpg, build_cv2_png,
                                build_cv_greyscale_after_center,
                                build_cv_greyscale_before_center)
from repro.pipelines.nilm import build_nilm
from repro.pipelines.nlp import build_nlp

_BUILDERS: dict[str, Callable[[], PipelineSpec]] = {
    "CV": build_cv,
    "CV2-JPG": build_cv2_jpg,
    "CV2-PNG": build_cv2_png,
    "NLP": build_nlp,
    "NILM": build_nilm,
    "MP3": build_mp3,
    "FLAC": build_flac,
    # Sec. 4.6 variants (not part of the Fig. 6 seven).
    "CV+greyscale-before": build_cv_greyscale_before_center,
    "CV+greyscale-after": build_cv_greyscale_after_center,
}

#: The seven pipelines of the paper's Fig. 6, in presentation order.
PAPER_PIPELINES = ("CV", "CV2-JPG", "CV2-PNG", "NLP", "NILM", "MP3", "FLAC")


def registered_names() -> tuple[str, ...]:
    """Every registered pipeline name (paper seven + Sec. 4.6 variants)."""
    return tuple(_BUILDERS)


def get_pipeline(name: str) -> PipelineSpec:
    """Build a fresh spec for ``name``."""
    try:
        return _BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown pipeline {name!r}; known: {sorted(_BUILDERS)}"
        ) from None


def all_pipelines(paper_only: bool = True) -> list[PipelineSpec]:
    """Fresh specs for every pipeline (the Fig. 6 seven by default)."""
    names = PAPER_PIPELINES if paper_only else tuple(_BUILDERS)
    return [get_pipeline(name) for name in names]
