"""The audio pipelines (paper Fig. 5b): Deep-Speech-style front ends.

Chain: read compressed clip -> decode to int16 waveform -> STFT (20 ms
window, 10 ms stride) + 80-bin mel filter bank -> ``frames x 80`` float32
spectrogram.  Concatenation was "technically not feasible" for audio in
the paper, so the strategy list is unprocessed / decoded /
spectrogram-encoded.

Clip durations are derived from the paper's own storage figures and are
internally consistent: Commonvoice decodes to 0.23 MB at 48 kHz int16 =>
~2.4 s clips, whose 10 ms-stride spectrograms are 240 x 80 x 4 B =
0.077 MB (the measured 995 MB / 13 K); Librispeech decodes to 0.40 MB at
16 kHz => 12.5 s utterances with 0.4 MB spectrograms (11.6 GB / 29 K).

Per-second CPU costs are consistent across both datasets (decode
~17 ms/s, STFT+mel ~14 ms/s) -- a strong internal check on the paper's
numbers that we preserve in the calibration.
"""

from __future__ import annotations

from repro import calibration as cal
from repro.datasets.catalog import COMMONVOICE_MP3, LIBRISPEECH_FLAC
from repro.formats import codecs
from repro.ops import audio as audio_ops
from repro.pipelines.base import (NATIVE, PipelineSpec, Representation,
                                  StepSpec)
from repro.units import GB, MB

#: Average clip lengths and sampling rates (derived above).
MP3_CLIP_SECONDS = 2.4
MP3_SAMPLE_RATE = 48_000
FLAC_CLIP_SECONDS = 12.5
FLAC_SAMPLE_RATE = 16_000


def _decode_mp3(sample, rng):
    return codecs.decode_mp3(sample)


def _decode_flac(sample, rng):
    return codecs.decode_flac(sample)


def _make_spectrogram(rate: int):
    def spectrogram(sample, rng):
        return audio_ops.spectrogram_encode(sample, rate)
    return spectrogram


def build_mp3() -> PipelineSpec:
    """MP3 on Commonvoice (en): 13 K clips, 250 MB (Fig. 6f)."""
    count = COMMONVOICE_MP3.sample_count
    source_bytes = COMMONVOICE_MP3.total_bytes / count    # 0.0197 MB
    representations = [
        Representation("unprocessed", source_bytes, dtype="uint8",
                       n_files=COMMONVOICE_MP3.n_files, record_format=False,
                       # ~0.02 MB files pay container parsing + codec init
                       # on every open (fitted to the measured 37 SPS).
                       open_latency_factor=2.2),
        Representation("decoded", 3.0 * GB / count, dtype="int16",
                       # Fig. 10k: 3.0 GB -> 2.9 GB (PCM barely deflates).
                       compressibility={"GZIP": 0.033, "ZLIB": 0.033}),
        Representation("spectrogram-encoded", 995 * MB / count,
                       dtype="float32",
                       # Fig. 10k: 996 MB -> 854/855 MB.
                       compressibility={"GZIP": 0.142, "ZLIB": 0.141}),
    ]
    steps = [
        StepSpec("decode",
                 cpu_seconds=cal.AUDIO_DECODE_PER_SECOND * MP3_CLIP_SECONDS,
                 impl=NATIVE, fn=_decode_mp3),
        StepSpec("spectrogram-encode",
                 cpu_seconds=cal.AUDIO_STFT_PER_SECOND * MP3_CLIP_SECONDS,
                 impl=NATIVE, fn=_make_spectrogram(MP3_SAMPLE_RATE)),
    ]
    return PipelineSpec("MP3", representations, steps, count,
                        description="Deep-Speech front end on Commonvoice")


def build_flac() -> PipelineSpec:
    """FLAC on Librispeech: 29 K utterances, 6.61 GB (Fig. 6g)."""
    count = LIBRISPEECH_FLAC.sample_count
    source_bytes = LIBRISPEECH_FLAC.total_bytes / count   # 0.23 MB
    representations = [
        Representation("unprocessed", source_bytes, dtype="uint8",
                       n_files=LIBRISPEECH_FLAC.n_files, record_format=False),
        Representation("decoded", 11.6 * GB / count, dtype="int16",
                       # Fig. 10m: 11.6 GB -> 9.4 GB.
                       compressibility={"GZIP": 0.190, "ZLIB": 0.190}),
        Representation("spectrogram-encoded", 11.6 * GB / count,
                       dtype="float32",
                       # Fig. 10m: 11.6 GB -> 10.5 GB.
                       compressibility={"GZIP": 0.095, "ZLIB": 0.095}),
    ]
    steps = [
        StepSpec("decode",
                 cpu_seconds=cal.AUDIO_DECODE_PER_SECOND * FLAC_CLIP_SECONDS,
                 impl=NATIVE, fn=_decode_flac),
        StepSpec("spectrogram-encode",
                 cpu_seconds=cal.AUDIO_STFT_PER_SECOND * FLAC_CLIP_SECONDS,
                 impl=NATIVE, fn=_make_spectrogram(FLAC_SAMPLE_RATE)),
    ]
    return PipelineSpec("FLAC", representations, steps, count,
                        description="Deep-Speech front end on Librispeech")
