"""Pipeline specifications: representations, steps and split points.

The paper's model (Sec. 2): a preprocessing pipeline is a chain of steps
S1..Sn; a *strategy* materialises the output of S1..Sm to storage once
("offline") and re-runs Sm+1..Sn every epoch ("online").  Each strategy is
named after the representation it materialises (``unprocessed``,
``concatenated``, ``decoded``, ...).

A :class:`PipelineSpec` therefore interleaves:

* ``representations[k]`` -- the dataset representation after ``k`` steps
  (``representations[0]`` is the raw dataset on disk), and
* ``steps[k]`` -- the transformation from representation ``k`` to ``k+1``.

Every step carries a calibrated single-thread CPU cost (how the simulator
charges it), an implementation class (``native`` work scales across
threads, ``external`` work holds the GIL -- paper Sec. 4.4 obs. 2), a
determinism flag (non-deterministic steps such as random-crop can never be
moved offline, Sec. 2), and optionally a real NumPy callable used by the
in-process backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional, Sequence

from repro.errors import (NonDeterministicSplitError, PipelineError,
                          StepNotFoundError)

#: Implementation classes for steps.
NATIVE = "native"
EXTERNAL = "external"


@dataclass(frozen=True)
class Representation:
    """A materialisable dataset representation.

    ``bytes_per_sample`` is the average on-disk footprint per sample in
    this representation (TFRecord framing included for record formats).
    ``n_files`` is how many storage objects hold the representation:
    ``sample_count`` for file-per-sample raw datasets, a handful of hourly
    containers for NILM, or ``shards`` once materialised.
    ``compressibility`` maps a compression codec name to the space-saving
    fraction achieved on this representation (paper Sec. 4.3).
    """

    name: str
    bytes_per_sample: float
    dtype: str = "uint8"
    n_files: Optional[int] = None   # None => sharded record files
    record_format: bool = True      # False for raw source formats
    compressibility: dict[str, float] = field(default_factory=dict)
    #: Deserialization slowdown vs the calibrated 0.4 GB/s per-thread
    #: baseline.  Large repeated-float protobuf messages parse several
    #: times slower (the paper: encodings "are not optimized for tensor
    #: data and may perform poorly").
    deser_penalty: float = 1.0
    #: Per-file open multiplier in file-per-sample mode; tiny media files
    #: pay container/codec setup on every open.
    open_latency_factor: float = 1.0

    def total_bytes(self, sample_count: int) -> float:
        """Total storage consumption for ``sample_count`` samples."""
        return self.bytes_per_sample * sample_count

    def saving(self, codec: Optional[str]) -> float:
        """Space-saving fraction under ``codec`` (0.0 for None/unknown)."""
        if codec is None:
            return 0.0
        return self.compressibility.get(codec, 0.0)

    def compressed_bytes_per_sample(self, codec: Optional[str]) -> float:
        return self.bytes_per_sample * (1.0 - self.saving(codec))


@dataclass(frozen=True)
class StepSpec:
    """One transformation in the chain, with its calibrated cost model."""

    name: str
    #: Single-thread CPU seconds per sample at the *pipeline's average*
    #: sample size (the simulator scales this for synthetic sweeps).
    cpu_seconds: float
    #: ``native`` (scales with cores) or ``external`` (holds the GIL).
    impl: str = NATIVE
    #: Non-deterministic steps (augmentation, shuffling) must stay online.
    deterministic: bool = True
    #: Real implementation for the in-process backend:
    #: ``fn(sample, rng) -> sample``.
    fn: Optional[Callable[..., Any]] = None

    def __post_init__(self):
        if self.impl not in (NATIVE, EXTERNAL):
            raise PipelineError(
                f"step {self.name!r}: impl must be 'native' or 'external', "
                f"got {self.impl!r}")
        if self.cpu_seconds < 0:
            raise PipelineError(f"step {self.name!r}: negative CPU cost")

    @property
    def holds_gil(self) -> bool:
        return self.impl == EXTERNAL


@dataclass(frozen=True)
class SplitPlan:
    """A concrete offline/online split of a pipeline."""

    pipeline: "PipelineSpec"
    split_index: int

    @property
    def strategy_name(self) -> str:
        """Strategies are named after the representation they materialise."""
        return self.pipeline.representations[self.split_index].name

    @property
    def materialized(self) -> Representation:
        return self.pipeline.representations[self.split_index]

    @property
    def offline_steps(self) -> tuple[StepSpec, ...]:
        return tuple(self.pipeline.steps[:self.split_index])

    @property
    def online_steps(self) -> tuple[StepSpec, ...]:
        return tuple(self.pipeline.steps[self.split_index:])

    @property
    def is_unprocessed(self) -> bool:
        """True when nothing is preprocessed offline (split at source)."""
        return self.split_index == 0


class PipelineSpec:
    """An ordered preprocessing pipeline with calibrated models."""

    def __init__(self, name: str, representations: Sequence[Representation],
                 steps: Sequence[StepSpec], sample_count: int,
                 description: str = ""):
        if len(representations) != len(steps) + 1:
            raise PipelineError(
                f"pipeline {name!r}: {len(steps)} steps need "
                f"{len(steps) + 1} representations, got "
                f"{len(representations)}")
        if sample_count <= 0:
            raise PipelineError(f"pipeline {name!r}: empty dataset")
        names = [step.name for step in steps]
        if len(set(names)) != len(names):
            raise PipelineError(f"pipeline {name!r}: duplicate step names")
        self.name = name
        self.representations = tuple(representations)
        self.steps = tuple(steps)
        self.sample_count = int(sample_count)
        self.description = description

    # -- queries -----------------------------------------------------------

    @property
    def source(self) -> Representation:
        """The raw on-disk dataset representation."""
        return self.representations[0]

    def step_names(self) -> list[str]:
        return [step.name for step in self.steps]

    def step(self, name: str) -> StepSpec:
        for candidate in self.steps:
            if candidate.name == name:
                return candidate
        raise StepNotFoundError(name, self.step_names())

    def representation(self, name: str) -> Representation:
        for candidate in self.representations:
            if candidate.name == name:
                return candidate
        raise StepNotFoundError(
            name, [rep.name for rep in self.representations])

    def max_offline_index(self) -> int:
        """Largest legal split index (non-deterministic steps stay online)."""
        index = 0
        for step in self.steps:
            if not step.deterministic:
                break
            index += 1
        return index

    # -- splitting -----------------------------------------------------------

    def split_at(self, index_or_name: int | str) -> SplitPlan:
        """Build the strategy that materialises the given representation."""
        if isinstance(index_or_name, str):
            names = [rep.name for rep in self.representations]
            if index_or_name not in names:
                raise StepNotFoundError(index_or_name, names)
            index = names.index(index_or_name)
        else:
            index = index_or_name
        if not 0 <= index < len(self.representations):
            raise PipelineError(
                f"split index {index} out of range for pipeline {self.name!r}")
        if index > self.max_offline_index():
            offending = self.steps[self.max_offline_index()].name
            raise NonDeterministicSplitError(
                f"cannot materialise {self.representations[index].name!r}: "
                f"step {offending!r} is non-deterministic and must run "
                "online every epoch")
        return SplitPlan(self, index)

    def split_points(self) -> list[SplitPlan]:
        """All legal strategies, source-first (the paper's Fig. 6 x-axes)."""
        return [SplitPlan(self, index)
                for index in range(self.max_offline_index() + 1)]

    def strategy_names(self) -> list[str]:
        return [plan.strategy_name for plan in self.split_points()]

    # -- modification (paper Sec. 4.6) ----------------------------------------

    def with_step_inserted(self, position: int, step: StepSpec,
                           representation_after: Representation,
                           ) -> "PipelineSpec":
        """Return a copy with ``step`` inserted before step ``position``.

        ``representation_after`` describes the data after the new step;
        downstream representations are left to the caller to adjust via
        :meth:`with_representation` when the insertion changes their sizes
        (e.g. greyscale shrinking everything after it).
        """
        if not 0 <= position <= len(self.steps):
            raise PipelineError(f"insert position {position} out of range")
        steps = list(self.steps)
        steps.insert(position, step)
        representations = list(self.representations)
        representations.insert(position + 1, representation_after)
        return PipelineSpec(self.name, representations, steps,
                            self.sample_count, self.description)

    def with_representation(self, name: str,
                            **overrides) -> "PipelineSpec":
        """Return a copy with fields of one representation replaced."""
        found = False
        representations = []
        for rep in self.representations:
            if rep.name == name:
                representations.append(replace(rep, **overrides))
                found = True
            else:
                representations.append(rep)
        if not found:
            raise StepNotFoundError(
                name, [rep.name for rep in self.representations])
        return PipelineSpec(self.name, representations, self.steps,
                            self.sample_count, self.description)

    def with_sample_count(self, sample_count: int) -> "PipelineSpec":
        """Return a copy profiled over a subset (paper Fig. 12: 8000).

        File counts scale with the subset so per-sample access patterns
        are preserved (a 8000-sample slice of ILSVRC is 8000 files, not
        1.3 M).
        """
        ratio = sample_count / self.sample_count
        representations = [
            rep if rep.n_files is None else replace(
                rep, n_files=max(1, round(rep.n_files * ratio)))
            for rep in self.representations
        ]
        return PipelineSpec(self.name, representations, self.steps,
                            sample_count, self.description)

    def renamed(self, name: str) -> "PipelineSpec":
        return PipelineSpec(name, self.representations, self.steps,
                            self.sample_count, self.description)

    def __repr__(self) -> str:
        chain = " -> ".join(rep.name for rep in self.representations)
        return f"PipelineSpec({self.name!r}: {chain})"
