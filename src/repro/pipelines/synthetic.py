"""Synthetic sweep pipelines (paper Figs. 7, 9, 11, 13).

The paper's microbenchmarks read a fixed 15 GB dataset whose sample size
sweeps from 20.5 MB down to 0.01 MB (sample counts 732 .. 1.5 M):

* Fig. 7 -- read + deserialize, uint8 vs float32 (dtype does not matter);
* Fig. 9 -- the same sweep under no-cache / sys-cache / app-cache;
* Fig. 11 -- the same sweep across 1/2/4/8 threads;
* Fig. 13 -- an added RMS step implemented in NumPy (external/GIL) vs
  framework-native code.

Each sweep point is its own small :class:`PipelineSpec` whose single
optional step cost scales with the sample size.
"""

from __future__ import annotations

from repro import calibration as cal
from repro.datasets.catalog import SWEEP_SAMPLE_MB, synthetic_sweep_spec
from repro.ops import numeric
from repro.pipelines.base import (EXTERNAL, NATIVE, PipelineSpec,
                                  Representation, StepSpec)
from repro.units import GB, MB

#: Default total volume of every sweep dataset.
SWEEP_TOTAL_BYTES = 15 * GB


def build_read_sweep_pipeline(sample_mb: float, dtype: str = "float32",
                              total_bytes: float = SWEEP_TOTAL_BYTES,
                              ) -> PipelineSpec:
    """A no-op pipeline: materialised records are only read + deserialized.

    This isolates exactly what Figs. 7/9/11 measure.  The single
    representation is already in record format (the paper reads
    pre-serialized TFRecords for these experiments).
    """
    spec = synthetic_sweep_spec(sample_mb, total_bytes, dtype)
    representation = Representation(
        f"synthetic-{sample_mb}MB", spec.avg_sample_bytes, dtype=dtype,
        record_format=True,
        compressibility={"GZIP": 0.35, "ZLIB": 0.35})
    return PipelineSpec(
        f"SYNTH-{sample_mb}MB-{dtype}", [representation], [],
        spec.sample_count,
        description="15 GB read/deserialize sweep point")


def build_rms_sweep_pipeline(sample_mb: float, impl: str,
                             total_bytes: float = SWEEP_TOTAL_BYTES,
                             ) -> PipelineSpec:
    """Fig. 13: the read sweep plus one RMS step, NumPy vs native.

    NumPy is ~19x faster per byte but holds the GIL; the framework-native
    version scales across threads but is slow.  Costs scale linearly with
    the sample size (both implementations stream the whole sample).
    """
    if impl not in ("numpy", "native"):
        raise ValueError(f"impl must be 'numpy' or 'native', got {impl!r}")
    spec = synthetic_sweep_spec(sample_mb, total_bytes, "float32")
    source = Representation(
        f"synthetic-{sample_mb}MB", spec.avg_sample_bytes, dtype="float32",
        record_format=True)
    # RMS halves nothing: output is size/period, negligible; model the
    # output representation as the per-period means.
    out_bytes = max(spec.avg_sample_bytes / numeric.DEFAULT_PERIOD, 8.0)
    output = Representation("rms-applied", out_bytes, dtype="float64")
    if impl == "numpy":
        step = StepSpec(
            "rms", cpu_seconds=cal.RMS_NUMPY_PER_MB * sample_mb,
            impl=EXTERNAL,
            fn=lambda sample, rng: numeric.rms_vectorized(sample))
    else:
        step = StepSpec(
            "rms", cpu_seconds=cal.RMS_NATIVE_PER_MB * sample_mb,
            impl=NATIVE,
            fn=lambda sample, rng: numeric.rms_framework(sample))
    return PipelineSpec(
        f"SYNTH-RMS-{impl}-{sample_mb}MB", [source, output], [step],
        spec.sample_count,
        description="Fig. 13 RMS implementation comparison point")


def sweep_sample_sizes() -> tuple[float, ...]:
    """The paper's x-axis, in MB."""
    return SWEEP_SAMPLE_MB
