"""Audio operators for the MP3/FLAC pipelines (paper Fig. 5b).

Deep-Speech-style front end: decode the compressed clip to an int16
waveform of shape ``(duration * rate,)``, then apply a short-time Fourier
transform with a 20 ms window and 10 ms stride, followed by an 80-bin
mel-scale filter bank, yielding a ``frames x 80`` float32 spectrogram.
(The paper skips MFCCs deliberately, citing evidence they are unneeded.)
"""

from __future__ import annotations

import numpy as np

from repro.errors import PipelineError

#: Paper's STFT parameters.
WINDOW_SECONDS = 0.020
STRIDE_SECONDS = 0.010
N_MEL_BINS = 80


def synth_waveform(duration: float, rate: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Generate a speech-like int16 waveform (harmonics + noise bursts).

    Used to build synthetic Commonvoice/Librispeech stand-ins: the payload
    has realistic spectral structure so lossless compression ratios are
    plausible rather than degenerate.
    """
    if duration <= 0 or rate <= 0:
        raise PipelineError("duration and rate must be positive")
    n = int(round(duration * rate))
    t = np.arange(n, dtype=np.float32) / rate
    fundamental = float(rng.uniform(85.0, 255.0))  # speech F0 range
    signal = np.zeros(n, dtype=np.float32)
    for harmonic in range(1, 6):
        amplitude = 1.0 / harmonic
        phase = float(rng.uniform(0, 2 * np.pi))
        signal += amplitude * np.sin(
            2 * np.pi * fundamental * harmonic * t + phase)
    # Amplitude envelope: syllable-like bursts at ~4 Hz.
    envelope = 0.55 + 0.45 * np.sin(
        2 * np.pi * 4.0 * t + float(rng.uniform(0, 2 * np.pi)))
    signal *= envelope.astype(np.float32)
    signal += 0.05 * rng.standard_normal(n).astype(np.float32)
    peak = float(np.max(np.abs(signal))) or 1.0
    scaled = signal / peak * 0.8 * np.iinfo(np.int16).max
    return scaled.astype(np.int16)


def frame_count(n_samples: int, rate: int) -> int:
    """Number of STFT frames: the paper's ``(l - 20ms + 10ms) / 10ms``."""
    window = int(round(WINDOW_SECONDS * rate))
    stride = int(round(STRIDE_SECONDS * rate))
    if n_samples < window:
        return 0
    return 1 + (n_samples - window) // stride


def stft_magnitude(waveform: np.ndarray, rate: int) -> np.ndarray:
    """Hann-windowed STFT magnitudes, shape ``frames x (window/2 + 1)``."""
    if waveform.ndim != 1:
        raise PipelineError("stft expects a mono waveform")
    window = int(round(WINDOW_SECONDS * rate))
    stride = int(round(STRIDE_SECONDS * rate))
    frames = frame_count(waveform.size, rate)
    if frames == 0:
        return np.zeros((0, window // 2 + 1), dtype=np.float32)
    indices = (np.arange(frames)[:, None] * stride
               + np.arange(window)[None, :])
    segments = waveform.astype(np.float32)[indices]
    hann = 0.5 - 0.5 * np.cos(
        2 * np.pi * np.arange(window, dtype=np.float32) / window)
    spectrum = np.fft.rfft(segments * hann[None, :], axis=1)
    return np.abs(spectrum).astype(np.float32)


def hz_to_mel(frequency: np.ndarray | float) -> np.ndarray | float:
    """O'Shaughnessy mel scale."""
    return 2595.0 * np.log10(1.0 + np.asarray(frequency) / 700.0)


def mel_to_hz(mel: np.ndarray | float) -> np.ndarray | float:
    return 700.0 * (10.0 ** (np.asarray(mel) / 2595.0) - 1.0)


def mel_filterbank(n_bins: int, n_fft_bins: int, rate: int,
                   f_min: float = 0.0,
                   f_max: float | None = None) -> np.ndarray:
    """Triangular mel filter bank of shape ``n_fft_bins x n_bins``."""
    if n_bins <= 0:
        raise PipelineError("need at least one mel bin")
    f_max = f_max if f_max is not None else rate / 2.0
    mel_points = np.linspace(hz_to_mel(f_min), hz_to_mel(f_max), n_bins + 2)
    hz_points = np.asarray(mel_to_hz(mel_points))
    fft_freqs = np.linspace(0.0, rate / 2.0, n_fft_bins)
    bank = np.zeros((n_fft_bins, n_bins), dtype=np.float32)
    for bin_index in range(n_bins):
        low, centre, high = hz_points[bin_index:bin_index + 3]
        rising = (fft_freqs - low) / max(centre - low, 1e-9)
        falling = (high - fft_freqs) / max(high - centre, 1e-9)
        bank[:, bin_index] = np.clip(np.minimum(rising, falling), 0.0, None)
        if not bank[:, bin_index].any():
            # Low-frequency mel filters can be narrower than the FFT bin
            # spacing; snap such filters to their nearest FFT bin so no
            # mel bin is silent (standard practice in DSP toolkits).
            nearest = int(np.argmin(np.abs(fft_freqs - centre)))
            bank[nearest, bin_index] = 1.0
    return bank


def spectrogram_encode(waveform: np.ndarray, rate: int,
                       n_bins: int = N_MEL_BINS) -> np.ndarray:
    """The paper's ``spectrogram-encoded`` step: STFT + 80-bin mel bank.

    Output is a ``frames x 80`` float32 tensor with
    ``frames ~= duration / 10 ms``.
    """
    magnitudes = stft_magnitude(waveform, rate)
    bank = mel_filterbank(n_bins, magnitudes.shape[1], rate)
    mel_energies = magnitudes @ bank
    return np.log1p(mel_energies).astype(np.float32)
