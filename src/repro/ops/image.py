"""Image operators for the CV pipelines (paper Fig. 2).

The chain is: decode -> resize -> pixel-center -> random-crop, with the
Sec. 4.6 case-study greyscale step available for insertion.  All
operators take and return NumPy arrays; decoding lives in
:mod:`repro.formats.codecs` because it is format-specific.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PipelineError


def _require_hwc(image: np.ndarray, op: str) -> None:
    if image.ndim != 3:
        raise PipelineError(
            f"{op}: expected an HxWxC image, got shape {image.shape}")


def resize_bilinear(image: np.ndarray, height: int, width: int) -> np.ndarray:
    """Bilinear resize to ``height x width`` (the model-input resize step).

    Matches the usual align_corners=False convention: output pixel centres
    are sampled at ``(i + 0.5) * scale - 0.5`` in source coordinates.
    """
    _require_hwc(image, "resize")
    if height <= 0 or width <= 0:
        raise PipelineError(f"resize: bad target {height}x{width}")
    src_h, src_w, _channels = image.shape
    data = image.astype(np.float32)

    def sample_axis(n_out: int, n_src: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        coords = (np.arange(n_out, dtype=np.float32) + 0.5) \
            * (n_src / n_out) - 0.5
        coords = np.clip(coords, 0.0, n_src - 1.0)
        low = np.floor(coords).astype(np.int64)
        high = np.minimum(low + 1, n_src - 1)
        frac = coords - low
        return low, high, frac.astype(np.float32)

    y0, y1, fy = sample_axis(height, src_h)
    x0, x1, fx = sample_axis(width, src_w)
    top = data[y0][:, x0] * (1 - fx)[None, :, None] \
        + data[y0][:, x1] * fx[None, :, None]
    bottom = data[y1][:, x0] * (1 - fx)[None, :, None] \
        + data[y1][:, x1] * fx[None, :, None]
    blended = top * (1 - fy)[:, None, None] + bottom * fy[:, None, None]
    if np.issubdtype(image.dtype, np.integer):
        info = np.iinfo(image.dtype)
        return np.clip(np.rint(blended), info.min, info.max).astype(image.dtype)
    return blended.astype(image.dtype)


def pixel_center(image: np.ndarray) -> np.ndarray:
    """Map integer pixels into centred float32 in [-1, 1].

    This is the step whose uint8 -> float32 conversion quadruples storage
    consumption and makes the fully-preprocessed CV strategy lose
    (Sec. 4.1 obs. 2).
    """
    if not np.issubdtype(image.dtype, np.integer):
        raise PipelineError("pixel_center expects an integer image")
    info = np.iinfo(image.dtype)
    midpoint = (info.max + 1) / 2.0
    return ((image.astype(np.float32) - midpoint) / midpoint).astype(np.float32)


def random_crop(image: np.ndarray, height: int, width: int,
                rng: np.random.Generator) -> np.ndarray:
    """Crop a random ``height x width`` window (non-deterministic step).

    Because the offset is drawn fresh every epoch, this step can never be
    materialised offline -- the paper's only always-online CV step.
    """
    _require_hwc(image, "random_crop")
    src_h, src_w, _ = image.shape
    if height > src_h or width > src_w:
        raise PipelineError(
            f"random_crop: window {height}x{width} exceeds image "
            f"{src_h}x{src_w}")
    top = int(rng.integers(0, src_h - height + 1))
    left = int(rng.integers(0, src_w - width + 1))
    return image[top:top + height, left:left + width]


def greyscale(image: np.ndarray) -> np.ndarray:
    """ITU-R BT.601 luma conversion, keeping a single channel.

    The Sec. 4.6 case-study step: cuts 3-channel storage by ~3x, which is
    why inserting it *before* pixel-center raises every downstream
    strategy's throughput (Fig. 14).
    """
    _require_hwc(image, "greyscale")
    if image.shape[2] == 1:
        return image.copy()
    weights = np.array([0.299, 0.587, 0.114], dtype=np.float32)
    luma = image[..., :3].astype(np.float32) @ weights
    if np.issubdtype(image.dtype, np.integer):
        info = np.iinfo(image.dtype)
        luma = np.clip(np.rint(luma), info.min, info.max)
    return luma.astype(image.dtype)[..., np.newaxis]


def center_crop(image: np.ndarray, height: int, width: int) -> np.ndarray:
    """Deterministic companion to :func:`random_crop` (evaluation-style)."""
    _require_hwc(image, "center_crop")
    src_h, src_w, _ = image.shape
    if height > src_h or width > src_w:
        raise PipelineError("center_crop: window exceeds image")
    top = (src_h - height) // 2
    left = (src_w - width) // 2
    return image[top:top + height, left:left + width]
