"""The Fig. 13 RMS pair: an efficient-but-GIL-bound implementation vs a
scalable-but-slow framework-native one.

The paper implements a period-500 root-mean-square step twice -- in NumPy
(fast per byte, but wrapped in ``tf.py_function`` and hence serialized by
the GIL) and in TensorFlow (19x slower per byte single-threaded, but
scaling 4-8x with threads).  The punchline (Sec. 4.4 obs. 2): the
non-scaling NumPy version is *still* 2.9x faster than 8-thread TensorFlow.

Here both are real implementations with the same contract:

* :func:`rms_vectorized` -- NumPy reshape + mean, the "external" flavour.
* :func:`rms_framework` -- a deliberately graph-style evaluation (gather /
  square / segment-mean over an index tensor) mirroring how a framework
  without a fused kernel executes the op; slower per byte, releases the
  GIL in a real framework.

Both must agree bit-for-bit (tested), because PRESTO's advice only makes
sense if the implementations are interchangeable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PipelineError

#: The paper applies RMS "with a period of 500 over the entire sample".
DEFAULT_PERIOD = 500


def _validate(series: np.ndarray, period: int) -> np.ndarray:
    data = np.asarray(series, dtype=np.float64)
    if data.ndim != 1:
        raise PipelineError(f"rms expects a 1-D series, got {data.shape}")
    if period <= 0:
        raise PipelineError("period must be positive")
    if data.size == 0 or data.size % period:
        raise PipelineError(
            f"series length {data.size} not divisible by period {period}")
    return data


def rms_vectorized(series: np.ndarray,
                   period: int = DEFAULT_PERIOD) -> np.ndarray:
    """Vectorised NumPy RMS: one reshape, one reduction."""
    data = _validate(series, period)
    return np.sqrt(np.mean(data.reshape(-1, period) ** 2, axis=1))


def rms_framework(series: np.ndarray,
                  period: int = DEFAULT_PERIOD) -> np.ndarray:
    """Graph-style RMS: gather -> square -> segment-sum -> scale -> sqrt.

    Materialises the index tensor and the gathered copy like a framework
    evaluating unfused ops would, which is why it is markedly slower per
    byte than :func:`rms_vectorized` while remaining embarrassingly
    parallel across segments.
    """
    data = _validate(series, period)
    n_segments = data.size // period
    indices = np.arange(data.size, dtype=np.int64)
    segment_ids = indices // period
    gathered = np.take(data, indices)          # explicit gather
    squared = gathered * gathered              # explicit square
    sums = np.zeros(n_segments, dtype=np.float64)
    np.add.at(sums, segment_ids, squared)      # segment-sum (unfused path)
    return np.sqrt(sums / period)
