"""Real, executable preprocessing operators.

Every transformation the paper's pipelines apply exists here as a genuine
NumPy implementation: the in-process backend runs them on real bytes, and
the unit/property tests pin their semantics.  The simulator charges these
steps via calibrated cost models instead of executing them, but both
paths share the same step *definitions* (shapes in, shapes out).
"""

from repro.ops import audio, image, nilm, numeric, text

__all__ = ["audio", "image", "nilm", "numeric", "text"]
