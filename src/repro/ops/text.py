"""Text operators for the NLP pipeline (paper Fig. 5a, GPT-2 style).

The chain: extract text from scraped HTML (the paper uses the
``newspaper`` library), byte-pair-encode each word to int32 ids, and look
the ids up in a word2vec-style embedding producing an ``n x 768`` float32
tensor.

The BPE here is a real byte-pair encoder: merges are learned from a
corpus and applied greedily, and encoding round-trips through
:func:`bpe_decode`.  The embedding table is deterministic
(hash-seeded) so runs are reproducible without shipping word2vec weights.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from repro.errors import PipelineError

#: Dimension of the GPT-2-era word2vec embedding in the paper.
EMBEDDING_DIM = 768

#: Marks the end of a word inside BPE symbol sequences.
_WORD_END = "</w>"

_TAG_RE = re.compile(r"<[^>]+>")
_SCRIPT_RE = re.compile(r"<(script|style)\b.*?</\1>",
                        re.DOTALL | re.IGNORECASE)
_SPACE_RE = re.compile(r"\s+")


def extract_text(html: str) -> str:
    """Strip markup from scraped HTML, keeping visible text.

    Stands in for the ``newspaper`` article extraction the paper wraps in
    ``tf.py_function`` (the GIL-bound step that pins NLP at 6 SPS).
    """
    without_scripts = _SCRIPT_RE.sub(" ", html)
    without_tags = _TAG_RE.sub(" ", without_scripts)
    return _SPACE_RE.sub(" ", without_tags).strip()


def tokenize_words(text: str) -> list[str]:
    """Lowercased word tokens (the units BPE operates on)."""
    return re.findall(r"[a-z0-9']+", text.lower())


@dataclass
class BPEVocab:
    """A learned byte-pair-encoding vocabulary.

    ``merges`` is the ordered list of symbol pairs to fuse; ``token_ids``
    maps every final symbol to a stable int32 id.
    """

    merges: list[tuple[str, str]] = field(default_factory=list)
    token_ids: dict[str, int] = field(default_factory=dict)

    @property
    def id_tokens(self) -> dict[int, str]:
        return {token_id: token for token, token_id in self.token_ids.items()}

    @property
    def vocab_size(self) -> int:
        return len(self.token_ids)


def train_bpe(corpus: list[str], n_merges: int = 200) -> BPEVocab:
    """Learn BPE merges from a corpus (Sennrich et al., as cited).

    Words are decomposed into characters plus a word-end marker; the most
    frequent adjacent pair is merged iteratively.
    """
    word_freqs: dict[tuple[str, ...], int] = {}
    for document in corpus:
        for word in tokenize_words(document):
            symbols = tuple(word) + (_WORD_END,)
            word_freqs[symbols] = word_freqs.get(symbols, 0) + 1

    merges: list[tuple[str, str]] = []
    for _ in range(n_merges):
        pair_counts: dict[tuple[str, str], int] = {}
        for symbols, freq in word_freqs.items():
            for pair in zip(symbols, symbols[1:]):
                pair_counts[pair] = pair_counts.get(pair, 0) + freq
        if not pair_counts:
            break
        best = max(pair_counts, key=lambda p: (pair_counts[p], p))
        if pair_counts[best] < 2:
            break
        merges.append(best)
        merged_symbol = best[0] + best[1]
        updated: dict[tuple[str, ...], int] = {}
        for symbols, freq in word_freqs.items():
            new_symbols: list[str] = []
            i = 0
            while i < len(symbols):
                if (i + 1 < len(symbols)
                        and (symbols[i], symbols[i + 1]) == best):
                    new_symbols.append(merged_symbol)
                    i += 2
                else:
                    new_symbols.append(symbols[i])
                    i += 1
            key = tuple(new_symbols)
            updated[key] = updated.get(key, 0) + freq
        word_freqs = updated

    # Build a stable id space: all seen symbols, merged and atomic.
    symbols = set()
    for word in word_freqs:
        symbols.update(word)
    for left, right in merges:
        symbols.update((left, right, left + right))
    # Reserve single characters so unseen words stay encodable.
    symbols.update("abcdefghijklmnopqrstuvwxyz0123456789'")
    symbols.add(_WORD_END)
    token_ids = {token: i for i, token in enumerate(sorted(symbols))}
    return BPEVocab(merges=merges, token_ids=token_ids)


def _encode_word(word: str, vocab: BPEVocab) -> list[str]:
    symbols = list(word) + [_WORD_END]
    for left, right in vocab.merges:
        merged = left + right
        i = 0
        while i + 1 < len(symbols):
            if symbols[i] == left and symbols[i + 1] == right:
                symbols[i:i + 2] = [merged]
            else:
                i += 1
    return symbols


def bpe_encode(text: str, vocab: BPEVocab) -> np.ndarray:
    """Encode text into int32 token ids (the ``bpe-encoded`` step)."""
    ids: list[int] = []
    for word in tokenize_words(text):
        for symbol in _encode_word(word, vocab):
            token_id = vocab.token_ids.get(symbol)
            if token_id is None:
                # Fall back to character tokens for unseen symbols.
                for char in symbol.replace(_WORD_END, ""):
                    ids.append(vocab.token_ids.get(char, 0))
                ids.append(vocab.token_ids[_WORD_END])
            else:
                ids.append(token_id)
    return np.asarray(ids, dtype=np.int32)


def bpe_decode(ids: np.ndarray, vocab: BPEVocab) -> str:
    """Invert :func:`bpe_encode` back to space-joined words."""
    id_tokens = vocab.id_tokens
    pieces: list[str] = []
    for token_id in np.asarray(ids).tolist():
        try:
            pieces.append(id_tokens[int(token_id)])
        except KeyError:
            raise PipelineError(f"unknown token id {token_id}") from None
    return "".join(pieces).replace(_WORD_END, " ").strip()


class EmbeddingTable:
    """A deterministic word2vec stand-in: id -> 768-dim float32 vector.

    Vectors are generated lazily from a hash-seeded RNG, so any vocabulary
    size works without storing weights, and the same id always maps to the
    same vector (reproducibility).
    """

    def __init__(self, dim: int = EMBEDDING_DIM, seed: int = 0):
        if dim <= 0:
            raise PipelineError("embedding dim must be positive")
        self.dim = dim
        self.seed = seed
        self._cache: dict[int, np.ndarray] = {}

    def vector(self, token_id: int) -> np.ndarray:
        token_id = int(token_id)
        cached = self._cache.get(token_id)
        if cached is None:
            rng = np.random.default_rng((self.seed, token_id))
            cached = rng.standard_normal(self.dim).astype(np.float32)
            self._cache[token_id] = cached
        return cached

    def embed(self, ids: np.ndarray) -> np.ndarray:
        """Stack vectors for a token sequence: the ``embedded`` step.

        An ``n``-token input becomes an ``n x dim`` float32 tensor -- the
        64x storage blow-up that makes the fully-preprocessed NLP strategy
        lose by 13x (paper Sec. 4.1).
        """
        flat = np.asarray(ids, dtype=np.int64).ravel()
        if flat.size == 0:
            return np.zeros((0, self.dim), dtype=np.float32)
        return np.stack([self.vector(token_id) for token_id in flat])
