"""NILM operators (paper Fig. 5c, MEED-style event detection features).

CREAM ships 6.4 kHz voltage/current readings in hourly HDF5 containers.
The pipeline slices them into 10-second windows (``2 x 64000`` float64
tensors) and aggregates each window into three period-wise feature rows
(``3 x 500`` float64): reactive power, current RMS, and the cumulative
sum of the RMS -- the CUSUM-style event-detection feature the paper cites.
The period length is 128 samples, so 64000 / 128 = 500 feature columns.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PipelineError

#: CREAM X8 sampling rate.
SAMPLE_RATE_HZ = 6_400

#: Window length in seconds and resulting samples per window.
WINDOW_SECONDS = 10.0
WINDOW_SAMPLES = int(SAMPLE_RATE_HZ * WINDOW_SECONDS)

#: Aggregation period (paper: "a dataset period length of 128").
PERIOD = 128

#: Feature columns per window: 64000 / 128.
FEATURE_COLUMNS = WINDOW_SAMPLES // PERIOD


def synth_mains_window(rng: np.random.Generator,
                       n_samples: int = WINDOW_SAMPLES,
                       rate: int = SAMPLE_RATE_HZ) -> np.ndarray:
    """Generate a ``2 x n`` float64 voltage/current window.

    Voltage is a clean 50 Hz sine; current is a phase-shifted, harmonic-
    distorted waveform with appliance-like load steps, giving the
    aggregation features realistic structure.
    """
    t = np.arange(n_samples, dtype=np.float64) / rate
    voltage = 325.0 * np.sin(2 * np.pi * 50.0 * t)
    phase = float(rng.uniform(0.05, 0.45))
    base_amps = float(rng.uniform(0.5, 8.0))
    current = base_amps * np.sin(2 * np.pi * 50.0 * t - phase)
    current += 0.15 * base_amps * np.sin(2 * np.pi * 150.0 * t - 3 * phase)
    # Load step: an appliance switching mid-window.
    if rng.uniform() < 0.5:
        switch_at = int(rng.integers(n_samples // 4, 3 * n_samples // 4))
        current[switch_at:] *= float(rng.uniform(1.2, 2.5))
    current += 0.01 * rng.standard_normal(n_samples)
    return np.stack([voltage, current]).astype(np.float64)


def slice_windows(signal: np.ndarray,
                  window_samples: int = WINDOW_SAMPLES) -> np.ndarray:
    """Slice a ``2 x N`` signal into ``k x 2 x window`` windows (truncates)."""
    if signal.ndim != 2 or signal.shape[0] != 2:
        raise PipelineError(
            f"expected a 2 x N voltage/current signal, got {signal.shape}")
    n_windows = signal.shape[1] // window_samples
    trimmed = signal[:, :n_windows * window_samples]
    return trimmed.reshape(2, n_windows, window_samples).transpose(1, 0, 2)


def _period_view(series: np.ndarray, period: int) -> np.ndarray:
    if series.size % period:
        raise PipelineError(
            f"series length {series.size} not divisible by period {period}")
    return series.reshape(-1, period)


def rms(series: np.ndarray, period: int = PERIOD) -> np.ndarray:
    """Root-mean-square per period (appliance current magnitude)."""
    view = _period_view(np.asarray(series, dtype=np.float64), period)
    return np.sqrt(np.mean(view ** 2, axis=1))


def active_power(voltage: np.ndarray, current: np.ndarray,
                 period: int = PERIOD) -> np.ndarray:
    """Real power P: mean of the instantaneous v*i product per period."""
    product = _period_view(
        np.asarray(voltage, np.float64) * np.asarray(current, np.float64),
        period)
    return np.mean(product, axis=1)


def reactive_power(voltage: np.ndarray, current: np.ndarray,
                   period: int = PERIOD) -> np.ndarray:
    """Reactive power Q = sqrt(S^2 - P^2) per period (Barsim et al.)."""
    p = active_power(voltage, current, period)
    s = rms(voltage, period) * rms(current, period)
    # Numerical guard: S >= |P| mathematically (Cauchy-Schwarz), but
    # floating point can dip epsilon below.
    return np.sqrt(np.maximum(s ** 2 - p ** 2, 0.0))


def cusum(series: np.ndarray) -> np.ndarray:
    """Cumulative sum of a feature series (CUSUM event detection input)."""
    return np.cumsum(np.asarray(series, dtype=np.float64))


def aggregate_window(window: np.ndarray, period: int = PERIOD) -> np.ndarray:
    """The paper's ``aggregated`` step: ``2 x 64000`` -> ``3 x 500`` float64.

    Rows: reactive power, current RMS, cumulative sum of the current RMS.
    """
    if window.ndim != 2 or window.shape[0] != 2:
        raise PipelineError(
            f"expected a 2 x N window, got shape {window.shape}")
    voltage, current = window[0], window[1]
    current_rms = rms(current, period)
    features = np.stack([
        reactive_power(voltage, current, period),
        current_rms,
        cusum(current_rms),
    ])
    return features.astype(np.float64)
