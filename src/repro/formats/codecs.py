"""Source-format codecs: synthetic JPG/PNG/MP3/FLAC/HDF5/HTML.

The real datasets' formats (libjpeg, libpng, LAME, FLAC, HDF5) are not
available offline, so each format is substituted by a codec with the same
*performance-relevant* behaviour:

* lossy image (``JPG``) -- bit-depth quantisation + DEFLATE: small files,
  decode expands ~6-12x, artifacts reduce downstream compressibility;
* lossless image (``PNG``) -- per-row delta predictor + DEFLATE: large
  files, bit-exact round trip;
* lossy audio (``MP3``) -- mu-law companding to 8 bits + DEFLATE;
* lossless audio (``FLAC``) -- first-order delta + DEFLATE on int16 PCM;
* container float data (``HDF5``) -- raw float64 tensor block;
* scraped text (``TXT``) -- an HTML page wrapping the visible text.

All encoders produce real bytes and all decoders really invert them (up
to the documented loss), so the in-process backend exercises genuine
encode/decode CPU work and genuine size ratios.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.errors import CodecError
from repro.formats.tensor import deserialize_tensor, serialize_tensor

# ---------------------------------------------------------------------------
# Lossy image ("JPG")
# ---------------------------------------------------------------------------

#: Bits dropped per channel by the lossy image codec (quality knob).
JPG_DROPPED_BITS = 3


def encode_jpg(image: np.ndarray) -> bytes:
    """Quantise to (8 - dropped) bits, delta-predict, and DEFLATE.

    The predictor is what gives the lossy codec DCT-like ratios on
    smooth natural images: quantised gradients become runs of zeros.
    """
    if image.dtype != np.uint8:
        raise CodecError(f"jpg codec expects uint8, got {image.dtype}")
    quantised = (image >> JPG_DROPPED_BITS).astype(np.uint8)
    deltas = quantised.copy()
    deltas[:, 1:] = quantised[:, 1:] - quantised[:, :-1]  # wraps mod 256
    return b"JPGS" + zlib.compress(serialize_tensor(deltas), 6)


def decode_jpg(data: bytes) -> np.ndarray:
    """Invert :func:`encode_jpg`; reconstruction centres each bucket."""
    if not data.startswith(b"JPGS"):
        raise CodecError("not a synthetic-jpg payload")
    deltas = deserialize_tensor(zlib.decompress(data[4:]))
    quantised = (np.cumsum(deltas.astype(np.int64), axis=1)
                 % 256).astype(np.uint16)
    half_bucket = 1 << (JPG_DROPPED_BITS - 1)
    return ((quantised << JPG_DROPPED_BITS)
            + half_bucket).clip(0, 255).astype(np.uint8)


# ---------------------------------------------------------------------------
# Lossless image ("PNG")
# ---------------------------------------------------------------------------


def encode_png(image: np.ndarray) -> bytes:
    """Horizontal-delta predictor + DEFLATE (bit-exact round trip).

    Works for uint8 and uint16 (Cube++ ships 16-bit PNGs).
    """
    if image.dtype not in (np.uint8, np.uint16):
        raise CodecError(f"png codec expects uint8/uint16, got {image.dtype}")
    deltas = image.copy()
    deltas[:, 1:] = image[:, 1:] - image[:, :-1]  # wraps in unsigned space
    return b"PNGS" + zlib.compress(serialize_tensor(deltas), 6)


def decode_png(data: bytes) -> np.ndarray:
    if not data.startswith(b"PNGS"):
        raise CodecError("not a synthetic-png payload")
    deltas = deserialize_tensor(zlib.decompress(data[4:]))
    return np.cumsum(deltas.astype(np.int64), axis=1).astype(deltas.dtype)


# ---------------------------------------------------------------------------
# Lossy audio ("MP3"): mu-law companding
# ---------------------------------------------------------------------------

_MU = 255.0


def encode_mp3(waveform: np.ndarray) -> bytes:
    """Mu-law compand int16 PCM to 8 bits, then DEFLATE."""
    if waveform.dtype != np.int16:
        raise CodecError(f"mp3 codec expects int16, got {waveform.dtype}")
    normalised = waveform.astype(np.float64) / 32768.0
    companded = np.sign(normalised) * np.log1p(
        _MU * np.abs(normalised)) / np.log1p(_MU)
    quantised = np.round(companded * 127.0).astype(np.int8)
    return b"MP3S" + zlib.compress(serialize_tensor(
        quantised.view(np.uint8).reshape(quantised.shape).copy()), 6)


def decode_mp3(data: bytes) -> np.ndarray:
    if not data.startswith(b"MP3S"):
        raise CodecError("not a synthetic-mp3 payload")
    stored = deserialize_tensor(zlib.decompress(data[4:]))
    quantised = stored.view(np.int8).astype(np.float64) / 127.0
    expanded = np.sign(quantised) * (
        np.expm1(np.abs(quantised) * np.log1p(_MU)) / _MU)
    return np.clip(np.round(expanded * 32768.0), -32768, 32767).astype(np.int16)


# ---------------------------------------------------------------------------
# Lossless audio ("FLAC"): delta + DEFLATE
# ---------------------------------------------------------------------------


def encode_flac(waveform: np.ndarray) -> bytes:
    if waveform.dtype != np.int16:
        raise CodecError(f"flac codec expects int16, got {waveform.dtype}")
    # First-order delta in modular uint16 space: exact round trip, and
    # small deltas (smooth audio) deflate well.
    unsigned = waveform.view(np.uint16).astype(np.uint32)
    deltas = np.diff(unsigned, prepend=np.uint32(0)) % 65536
    return b"FLCS" + zlib.compress(
        serialize_tensor(deltas.astype(np.uint16)), 6)


def decode_flac(data: bytes) -> np.ndarray:
    if not data.startswith(b"FLCS"):
        raise CodecError("not a synthetic-flac payload")
    deltas = deserialize_tensor(zlib.decompress(data[4:]))
    unsigned = np.cumsum(deltas.astype(np.uint64)) % 65536
    return unsigned.astype(np.uint16).view(np.int16)


# ---------------------------------------------------------------------------
# HDF5-style container (NILM): raw float64 block
# ---------------------------------------------------------------------------


def encode_hdf5(signal: np.ndarray) -> bytes:
    if signal.dtype != np.float64:
        raise CodecError(f"hdf5 codec expects float64, got {signal.dtype}")
    return b"HDF5" + serialize_tensor(signal)


def decode_hdf5(data: bytes) -> np.ndarray:
    if not data.startswith(b"HDF5"):
        raise CodecError("not a synthetic-hdf5 payload")
    return deserialize_tensor(data[4:])


# ---------------------------------------------------------------------------
# Scraped HTML text (NLP)
# ---------------------------------------------------------------------------

_HTML_TEMPLATE = (
    "<!DOCTYPE html><html><head><title>{title}</title>"
    "<script>var analytics = load('tracker-{title}');</script>"
    "<style>.content {{ margin: 1em; }}</style></head>"
    "<body><nav><a href=\"/home\">home</a><a href=\"/feed\">feed</a></nav>"
    "<div class=\"content\"><p>{body}</p></div>"
    "<footer>scraped page footer</footer></body></html>"
)


def encode_html(text: str, title: str = "page") -> bytes:
    """Wrap visible text in scraped-page boilerplate (what OpenWebText
    stores before extraction)."""
    return _HTML_TEMPLATE.format(title=title, body=text).encode("utf-8")


_BODY_RE = None


def decode_html(data: bytes) -> str:
    """Extract the visible text again (the ``decoded`` NLP step).

    Like a real article extractor, only the ``<body>`` is considered
    (titles and head metadata are dropped) and navigation/footer chrome
    is removed.
    """
    import re
    from repro.ops.text import extract_text
    html = data.decode("utf-8")
    match = re.search(r"<body[^>]*>(.*)</body>", html,
                      re.DOTALL | re.IGNORECASE)
    text = extract_text(match.group(1) if match else html)
    for boilerplate in ("home feed", "scraped page footer"):
        text = text.replace(boilerplate, " ")
    return " ".join(text.split()).strip()
