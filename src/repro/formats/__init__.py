"""On-disk formats: record framing, tensor serialization, codecs.

* :mod:`repro.formats.record` -- TFRecord-like framing: length-prefixed,
  CRC-checked records that concatenate into sequential-friendly shards.
* :mod:`repro.formats.tensor` -- the protobuf stand-in: a compact tensor
  wire format (dtype, shape, payload).
* :mod:`repro.formats.compression` -- GZIP/ZLIB codecs (real zlib under
  the hood) plus the cost/ratio models used by the simulator.
* :mod:`repro.formats.codecs` -- source-file codecs (synthetic JPG, PNG,
  MP3, FLAC, HDF5, HTML/TXT) with realistic size ratios.
"""

from repro.formats.record import (RecordCorruptionError, read_records,
                                  record_overhead, write_records)
from repro.formats.tensor import deserialize_tensor, serialize_tensor

__all__ = [
    "read_records",
    "write_records",
    "record_overhead",
    "RecordCorruptionError",
    "serialize_tensor",
    "deserialize_tensor",
]
