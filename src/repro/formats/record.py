"""TFRecord-style record framing.

The paper materialises intermediate representations as TFRecord files:
length-prefixed records that concatenate into one sequential stream per
shard.  This module implements the same framing:

    [8-byte little-endian length][4-byte masked CRC of length]
    [payload bytes]              [4-byte masked CRC of payload]

so each record costs 16 bytes of framing -- which is why the paper's
``concatenated`` strategies are marginally larger than ``unprocessed``
(147.0 GB vs 146.9 GB for CV).  CRCs use the same Castagnoli masking
scheme as TFRecord so corruption is detected on read.
"""

from __future__ import annotations

import struct
import zlib
from typing import BinaryIO, Iterable, Iterator

from repro.errors import CodecError

#: Framing bytes added per record (length + 2 CRCs).
RECORD_FRAMING_BYTES = 16

_LENGTH_STRUCT = struct.Struct("<Q")
_CRC_STRUCT = struct.Struct("<I")
_CRC_MASK_DELTA = 0xA282EAD8


class RecordCorruptionError(CodecError):
    """A record failed its CRC or framing check."""


def _masked_crc(data: bytes) -> int:
    """TFRecord-style masked CRC32 (rotated and offset)."""
    crc = zlib.crc32(data) & 0xFFFFFFFF
    return (((crc >> 15) | (crc << 17)) + _CRC_MASK_DELTA) & 0xFFFFFFFF


def record_overhead(n_records: int) -> int:
    """Total framing bytes for ``n_records`` records."""
    return n_records * RECORD_FRAMING_BYTES


def write_record(stream: BinaryIO, payload: bytes) -> int:
    """Append one framed record; returns bytes written."""
    length = _LENGTH_STRUCT.pack(len(payload))
    stream.write(length)
    stream.write(_CRC_STRUCT.pack(_masked_crc(length)))
    stream.write(payload)
    stream.write(_CRC_STRUCT.pack(_masked_crc(payload)))
    return len(payload) + RECORD_FRAMING_BYTES


def write_records(stream: BinaryIO, payloads: Iterable[bytes]) -> int:
    """Append many records; returns total bytes written."""
    return sum(write_record(stream, payload) for payload in payloads)


def read_records(stream: BinaryIO) -> Iterator[bytes]:
    """Yield payloads from a framed stream, verifying CRCs.

    Raises :class:`RecordCorruptionError` on truncated or corrupt data.
    """
    while True:
        header = stream.read(_LENGTH_STRUCT.size)
        if not header:
            return
        if len(header) != _LENGTH_STRUCT.size:
            raise RecordCorruptionError("truncated record length")
        (length,) = _LENGTH_STRUCT.unpack(header)
        crc_bytes = stream.read(_CRC_STRUCT.size)
        if len(crc_bytes) != _CRC_STRUCT.size:
            raise RecordCorruptionError("truncated length CRC")
        (length_crc,) = _CRC_STRUCT.unpack(crc_bytes)
        if length_crc != _masked_crc(header):
            raise RecordCorruptionError("length CRC mismatch")
        payload = stream.read(length)
        if len(payload) != length:
            raise RecordCorruptionError("truncated payload")
        payload_crc_bytes = stream.read(_CRC_STRUCT.size)
        if len(payload_crc_bytes) != _CRC_STRUCT.size:
            raise RecordCorruptionError("truncated payload CRC")
        (payload_crc,) = _CRC_STRUCT.unpack(payload_crc_bytes)
        if payload_crc != _masked_crc(payload):
            raise RecordCorruptionError("payload CRC mismatch")
        yield payload
