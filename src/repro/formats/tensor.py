"""Tensor wire format: the protobuf/pickle stand-in.

The paper notes that neither pickle (PyTorch) nor protobuf (TensorFlow)
is optimised for tensor payloads; deserialization cost is a first-class
term in its performance model.  This module provides the equivalent for
our runtime: a compact, self-describing binary encoding for NumPy arrays.

Layout::

    magic   2 bytes  b"RT"
    version 1 byte
    dtype   1-byte code (see _DTYPE_CODES)
    ndim    1 byte
    shape   ndim x 8-byte little-endian unsigned
    payload C-order array bytes

Decoding is zero-copy on the payload (``np.frombuffer``), mirroring how a
real loader would avoid copies where possible.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import CodecError

_MAGIC = b"RT"
_VERSION = 1

#: Supported dtypes and their wire codes.
_DTYPE_CODES: dict[str, int] = {
    "uint8": 0,
    "int16": 1,
    "int32": 2,
    "int64": 3,
    "float32": 4,
    "float64": 5,
    "uint16": 6,
}
_CODE_DTYPES = {code: np.dtype(name)
                for name, code in _DTYPE_CODES.items()}

_HEADER_STRUCT = struct.Struct("<2sBBB")


def header_bytes(ndim: int) -> int:
    """Serialized header size for an ``ndim``-dimensional tensor."""
    return _HEADER_STRUCT.size + 8 * ndim


def serialize_tensor(array: np.ndarray) -> bytes:
    """Encode an array into the wire format."""
    dtype_name = array.dtype.name
    code = _DTYPE_CODES.get(dtype_name)
    if code is None:
        raise CodecError(
            f"unsupported dtype {dtype_name!r}; "
            f"supported: {sorted(_DTYPE_CODES)}")
    if array.ndim > 255:
        raise CodecError("tensor rank exceeds wire format limit")
    header = _HEADER_STRUCT.pack(_MAGIC, _VERSION, code, array.ndim)
    shape = struct.pack(f"<{array.ndim}Q", *array.shape)
    return header + shape + np.ascontiguousarray(array).tobytes()


def deserialize_tensor(data: bytes) -> np.ndarray:
    """Decode wire bytes back into an array (payload is not copied)."""
    if len(data) < _HEADER_STRUCT.size:
        raise CodecError("tensor wire data truncated (header)")
    magic, version, code, ndim = _HEADER_STRUCT.unpack_from(data)
    if magic != _MAGIC:
        raise CodecError(f"bad tensor magic {magic!r}")
    if version != _VERSION:
        raise CodecError(f"unsupported tensor wire version {version}")
    dtype = _CODE_DTYPES.get(code)
    if dtype is None:
        raise CodecError(f"unknown dtype code {code}")
    offset = _HEADER_STRUCT.size
    shape_end = offset + 8 * ndim
    if len(data) < shape_end:
        raise CodecError("tensor wire data truncated (shape)")
    shape = struct.unpack_from(f"<{ndim}Q", data, offset)
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    payload = data[shape_end:]
    if len(payload) != expected:
        raise CodecError(
            f"payload size {len(payload)} != expected {expected} "
            f"for shape {shape} {dtype}")
    return np.frombuffer(payload, dtype=dtype).reshape(shape)
