"""Compression codecs: GZIP (RFC 1952) and ZLIB (RFC 1950).

The in-process backend really compresses bytes (both formats are DEFLATE
streams, available from the standard library).  The simulator instead
charges calibrated CPU costs and uses per-representation space-saving
fractions recorded from the paper's Fig. 10 -- compressibility is a
property of the *data*, which we cannot reconstruct from synthetic
payloads alone (e.g. JPG decode artifacts hurting DEFLATE, Sec. 4.3
obs. 1, is an empirical fact of the original images).
"""

from __future__ import annotations

import gzip
import zlib
from dataclasses import dataclass
from typing import Callable, Optional

from repro.calibration import GZIP_COSTS, ZLIB_COSTS, CompressionCosts
from repro.errors import CodecError


@dataclass(frozen=True)
class CompressionCodec:
    """A compression scheme: real byte transforms plus simulator costs."""

    name: str
    compress: Callable[[bytes], bytes]
    decompress: Callable[[bytes], bytes]
    costs: CompressionCosts


def _gzip_compress(data: bytes) -> bytes:
    # mtime pinned for determinism (gzip embeds a timestamp).
    return gzip.compress(data, compresslevel=6, mtime=0)


GZIP = CompressionCodec(
    name="GZIP",
    compress=_gzip_compress,
    decompress=gzip.decompress,
    costs=GZIP_COSTS,
)

ZLIB = CompressionCodec(
    name="ZLIB",
    compress=lambda data: zlib.compress(data, 6),
    decompress=zlib.decompress,
    costs=ZLIB_COSTS,
)

#: Codec registry; ``None`` means no compression.
CODECS: dict[str, CompressionCodec] = {codec.name: codec
                                       for codec in (GZIP, ZLIB)}


def get_codec(name: Optional[str]) -> Optional[CompressionCodec]:
    """Look up a codec by name; ``None`` passes through."""
    if name is None:
        return None
    try:
        return CODECS[name.upper()]
    except KeyError:
        raise CodecError(
            f"unknown compression codec {name!r}; known: {sorted(CODECS)}"
        ) from None


def compression_names() -> list[Optional[str]]:
    """The paper's Fig. 10 sweep: none, GZIP, ZLIB."""
    return [None, "GZIP", "ZLIB"]
