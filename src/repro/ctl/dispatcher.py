"""The control plane: a dispatcher in front of the preprocessing service.

:class:`Dispatcher` extends :class:`~repro.serve.service.PreprocessingService`
with the online control loop a production deployment needs and a batch
replay does not:

* **submit / cancel / retry** -- jobs enter through an API instead of a
  fixed trace; cancellations land at the next safe point (queue removal,
  or the next epoch boundary once running); dead-lettered jobs can be
  resubmitted.
* **execution ledger** -- every lifecycle transition is validated
  against the transition table and appended to an
  :class:`~repro.ctl.ledger.ExecutionLedger` with the simulation clock;
  subscribers see each entry as it happens.
* **retry with exponential backoff** -- a crashed attempt waits
  ``backoff(n)`` simulated seconds and re-enters admission; once the
  :class:`~repro.ctl.retry.RetryPolicy` budget is exhausted the job
  moves to the dead-letter queue.
* **per-tenant admission control** -- at most ``admission_limit`` jobs
  of one tenant may hold or queue for slots at once; later submissions
  wait at the admission gate (FIFO per tenant).
* **preemption** -- when jobs wait and every slot is busy, the
  scheduler policy's ``preempt`` hook may pick a running victim; it is
  interrupted at its next epoch boundary, requeued, and later resumes
  from the interrupted epoch (the offline artifact is not redone).
* **autoscaling** -- a periodic control loop diagnoses the live run
  with ``serve.doctor`` and grows the slot pool under queue pressure
  (up to ``max_slots``) or shrinks it when capacity idles.

Everything runs co-simulated on the DES kernel: given one seed the
ledger, the report and the event count are bit-identical across runs.
With every feature disabled the dispatcher adds **zero** simulation
events, so a control run degenerates to exactly a ``presto serve`` run
-- the differential test in ``tests/ctl`` pins that equivalence
byte-for-byte.
"""

from __future__ import annotations

import time
from typing import Callable, Generator, Optional, Sequence

from dataclasses import dataclass

from repro.errors import ControlError, InjectedFaultError, SimulationError
from repro.faults.gate import slo_shed_decision
from repro.serve.doctor import diagnose_service
from repro.serve.jobs import JobSpec
from repro.serve.service import (PreprocessingService, ServiceReport,
                                 ServiceState, TenantJob)
from repro.sim.events import Event
from repro.ctl import ledger as lifecycle
from repro.ctl.ledger import (ADMITTED, DEADLETTER, PENDING, RUNNING,
                              TERMINAL_STATES, DeadLetter, ExecutionLedger,
                              LedgerEntry)
from repro.ctl.report import AutoscaleEvent, ControlReport, JobRecord
from repro.ctl.retry import RetryPolicy

#: Sentinel delivered through a queued job's grant event on cancellation.
_CANCELLED = object()


class _Interrupted(Exception):
    """Raised at an epoch boundary to interrupt a running attempt."""

    def __init__(self, kind: str, epoch: int, reason: str = ""):
        super().__init__(reason or kind)
        self.kind = kind
        self.epoch = epoch
        self.reason = reason


@dataclass(frozen=True)
class AutoscaleConfig:
    """Bounds and cadence of the slot autoscaler."""

    min_slots: int = 1
    max_slots: int = 8
    interval: float = 600.0

    def __post_init__(self):
        if self.min_slots < 1:
            raise ControlError(
                f"autoscale.min_slots must be >= 1, got {self.min_slots!r}")
        if self.max_slots < self.min_slots:
            raise ControlError(
                f"autoscale.max_slots ({self.max_slots!r}) must be >= "
                f"min_slots ({self.min_slots!r})")
        if self.interval <= 0:
            raise ControlError(
                f"autoscale.interval must be positive, "
                f"got {self.interval!r}")

    def describe(self) -> str:
        return (f"[{self.min_slots}, {self.max_slots}] slots, "
                f"tick {self.interval:g}s")


class Dispatcher(PreprocessingService):
    """Submit/cancel/retry control plane over the preprocessing service."""

    def __init__(self, policy="fifo", slots: int = 2,
                 environment=None, backend=None,
                 materialize_offline: bool = True,
                 tie_break: Optional[str] = None,
                 retry: Optional[RetryPolicy] = None,
                 admission_limit: Optional[int] = None,
                 preempt: bool = False,
                 autoscale: Optional[AutoscaleConfig] = None,
                 metrics=None, metrics_interval: float = 60.0,
                 tracer=None, faults=None,
                 checkpoint_epochs: int = 0,
                 shed_slo: bool = False):
        super().__init__(policy=policy, slots=slots,
                         environment=environment, backend=backend,
                         materialize_offline=materialize_offline,
                         tie_break=tie_break, metrics=metrics,
                         metrics_interval=metrics_interval, tracer=tracer,
                         faults=faults)
        if checkpoint_epochs < 0:
            raise ControlError(
                f"checkpoint_epochs must be >= 0 (0 = no checkpoints, "
                f"historical free resume), got {checkpoint_epochs!r}")
        #: Checkpoint interval in epochs.  ``0`` keeps the historical
        #: model: preemption resumes at the interrupted epoch for free
        #: and a crash restarts from scratch.  ``k >= 1`` charges the
        #: checkpoint-aware recovery cost instead: both interruption
        #: kinds resume from the last multiple of ``k`` and the epochs
        #: in between are replayed (counted in ``JobRecord.lost_epochs``).
        self.checkpoint_epochs = checkpoint_epochs
        #: SLO-aware admission shedding: under degraded capacity, a job
        #: whose analytic epoch bound already violates its SLO is
        #: cancelled at admission instead of burning a slot.  Needs a
        #: fault plan (the stretch comes from the chaos engine).
        self.shed_slo = bool(shed_slo)
        self.retry_policy = retry if retry is not None else RetryPolicy()
        if admission_limit is not None and admission_limit < 1:
            raise ControlError(
                f"admission_limit must be >= 1 (or None for unlimited), "
                f"got {admission_limit!r}")
        self.admission_limit = admission_limit
        self.preempt_enabled = bool(preempt)
        if autoscale is not None and not (
                autoscale.min_slots <= slots <= autoscale.max_slots):
            raise ControlError(
                f"slots ({slots}) outside autoscale bounds "
                f"{autoscale.describe()}")
        self.autoscale = autoscale
        #: Lifecycle feed; populated per run, callbacks persist.
        self.ledger: Optional[ExecutionLedger] = None
        self._subscribers: list[Callable[[LedgerEntry], None]] = []
        self._autoscale_subscribers: list[Callable[[AutoscaleEvent],
                                                   None]] = []
        self._next_index = 0
        self._pending_submissions: list[tuple[str, JobSpec]] = []
        self._pending_cancels: list[tuple[str, float]] = []
        self._pending_parents: dict[str, str] = {}
        # Per-run control state, initialised in run().
        self._records: dict[str, JobRecord] = {}
        self._by_job: dict[int, JobRecord] = {}
        self._inflight: dict[str, int] = {}
        self._admission_waiters: dict[str, list[Event]] = {}
        self._dead: list[DeadLetter] = []
        self._autoscale_log: list[AutoscaleEvent] = []
        self._active = 0

    # -- submission API ------------------------------------------------------

    def submit(self, spec: JobSpec, parent: Optional[str] = None) -> str:
        """Queue ``spec`` for the next :meth:`run`; returns its job id."""
        job_id = f"job-{self._next_index:03d}"
        self._next_index += 1
        self._pending_submissions.append((job_id, spec))
        if parent is not None:
            self._pending_parents[job_id] = parent
        return job_id

    def cancel(self, job_id: str, at: float = 0.0) -> None:
        """Request cancellation of ``job_id`` at simulated time ``at``.

        Called before :meth:`run`, the request is scheduled into the
        next run; called during a run (from a ledger subscriber), it
        takes effect at the current simulation instant.  Cancelling a
        terminal job is a no-op; a running job is interrupted at its
        next epoch boundary, so a job inside its final epoch may still
        complete.
        """
        if at < 0:
            raise ControlError(f"cancel time must be >= 0, got {at!r}")
        record = self._records.get(job_id)
        if record is not None and self._sim is not None:
            self._request_cancel(record)
            return
        self._pending_cancels.append((job_id, at))

    def retry(self, job_id: str) -> str:
        """Resubmit a dead-lettered job for the next run."""
        if self.ledger is None or self.ledger.state(job_id) != DEADLETTER:
            raise ControlError(
                f"only dead-lettered jobs can be retried; "
                f"{job_id!r} is in state "
                f"{self.ledger.state(job_id) if self.ledger else 'NEW'!r}")
        record = self._records[job_id]
        new_id = self.submit(record.spec)
        self._pending_parents[new_id] = job_id
        return new_id

    def subscribe(self, callback: Callable[[LedgerEntry], None]) -> None:
        """Receive every job-lifecycle ledger entry of future runs."""
        self._subscribers.append(callback)

    def subscribe_autoscale(self, callback: Callable[[AutoscaleEvent],
                                                     None]) -> None:
        """Receive every autoscale action as it happens (live dashboard)."""
        self._autoscale_subscribers.append(callback)

    # -- the run -------------------------------------------------------------

    def run(self, jobs: Sequence[JobSpec] = ()) -> ControlReport:
        """Simulate pending submissions plus ``jobs``; control report."""
        submissions = list(self._pending_submissions)
        self._pending_submissions = []
        for spec in jobs:
            job_id = f"job-{self._next_index:03d}"
            self._next_index += 1
            submissions.append((job_id, spec))
        if not submissions:
            raise ControlError("cannot run an empty control trace")
        records = [JobRecord(job_id=job_id,
                             job=TenantJob(spec=spec,
                                           plan=spec.resolve_plan(),
                                           config=spec.run_config()),
                             parent=self._pending_parents.pop(job_id, None))
                   for job_id, spec in submissions]
        initial_slots = self.slots
        self._reset()
        self.ledger = ExecutionLedger()
        for callback in self._subscribers:
            self.ledger.subscribe(callback)
        self.ledger.subscribe(self._on_entry)
        if self.tracer is not None:
            self.ledger.subscribe(self._trace_entry)
        self._records = {record.job_id: record for record in records}
        self._by_job = {id(record.job): record for record in records}
        self._inflight = {}
        self._admission_waiters = {}
        self._dead = []
        self._autoscale_log = []
        self._active = len(records)
        sim = self._sim
        tenant_jobs = [record.job for record in records]
        self._configure_link(tenant_jobs)
        self._set_baselines(tenant_jobs)
        self._tenants = sorted({job.spec.tenant for job in tenant_jobs})
        processes = [sim.process(self._control_process(record),
                                 name=record.job_id)
                     for record in records]
        pending_cancels, self._pending_cancels = self._pending_cancels, []
        for job_id, at in pending_cancels:
            record = self._records.get(job_id)
            if record is None:
                raise ControlError(
                    f"cancel of unknown job {job_id!r}; known: "
                    f"{sorted(self._records)}")
            sim.process(self._cancel_process(record, at),
                        name=f"cancel-{job_id}")
        if self.autoscale is not None:
            sim.process(self._autoscale_process(), name="autoscaler")
        self._start_faults()
        self._start_sampler()
        started = time.perf_counter()
        sim.run()
        wall_seconds = time.perf_counter() - started
        unfinished = [record.job_id for record, process
                      in zip(records, processes) if not process.triggered]
        if unfinished:
            raise SimulationError(
                f"control plane drained with unfinished jobs: {unfinished}")
        for process in processes:
            if process._exception is not None:
                raise process._exception
        stuck = [record.job_id for record in records
                 if self.ledger.state(record.job_id)
                 not in TERMINAL_STATES]
        if stuck:
            raise SimulationError(
                f"jobs finished outside a terminal state: {stuck}")
        service = self._report(tenant_jobs)
        service.wall_seconds = wall_seconds
        final_slots, self.slots = self.slots, initial_slots
        return ControlReport(
            service=service, ledger=self.ledger, retry=self.retry_policy,
            records=records, dead_letters=list(self._dead),
            autoscale_log=list(self._autoscale_log),
            initial_slots=initial_slots, final_slots=final_slots)

    # -- the per-job control process -----------------------------------------

    def _control_process(self, record: JobRecord
                         ) -> Generator[Event, None, None]:
        sim = self._sim
        job = record.job
        spec = job.spec
        if spec.arrival > 0:
            yield sim.timeout(spec.arrival)
        self._note(record, lifecycle.SUBMIT, detail=f"tenant {spec.tenant}")
        while True:
            if record.cancel_requested:
                self._conclude_cancel(record, "before admission")
                return
            admitted = yield from self._admission_gate(record)
            if not admitted:
                self._conclude_cancel(record, "awaiting admission")
                return
            shed_reason = self._shed_decision(record)
            if shed_reason is not None:
                record.shed = True
                job.finished = sim.now
                self._note(record, lifecycle.CANCEL, detail=shed_reason)
                return
            tenant = spec.tenant
            self._inflight[tenant] = self._inflight.get(tenant, 0) + 1
            record.attempt += 1
            self._note(record, lifecycle.ADMIT)
            job.arrival = sim.now
            self._enqueue(job)
            granted = yield job.grant_event
            if granted is _CANCELLED:
                job.finished = sim.now
                self._end_attempt(tenant)
                self._conclude_cancel(record, "in queue")
                return
            job.granted = sim.now
            self._note(record, lifecycle.START)
            interrupt: Optional[_Interrupted] = None
            try:
                yield from self._execute(job,
                                         start_epoch=record.resume_epoch)
            except _Interrupted as stop:
                interrupt = stop
            except InjectedFaultError as fault:
                # A blackout window failed this attempt's transfers; the
                # unwind lands here and becomes an ordinary crashed
                # attempt on the retry path.
                interrupt = _Interrupted(lifecycle.FAIL,
                                         record.current_epoch, str(fault))
            finally:
                job.finished = sim.now
                self._release(job)
                self._end_attempt(tenant)
            if interrupt is None:
                self._note(record, lifecycle.SUCCEED)
                return
            if interrupt.kind == lifecycle.CANCEL:
                self._note(record, lifecycle.CANCEL,
                           detail=interrupt.reason)
                return
            if interrupt.kind == lifecycle.PREEMPT:
                record.preemptions += 1
                record.preempt_requested = False
                record.resume_epoch = self._resume_epoch(
                    record, interrupt.epoch, crashed=False)
                detail = f"at epoch {interrupt.epoch}"
                if record.resume_epoch != interrupt.epoch:
                    detail += f", resume from {record.resume_epoch}"
                self._note(record, lifecycle.PREEMPT, detail=detail)
                self._note(record, lifecycle.REQUEUE)
                continue
            # A crashed attempt: retry after backoff, or dead-letter.
            record.failures += 1
            record.resume_epoch = self._resume_epoch(
                record, interrupt.epoch, crashed=True)
            self._note(record, lifecycle.FAIL, detail=interrupt.reason)
            if not self.retry_policy.should_retry(record.failures):
                self._note(record, lifecycle.EXHAUST,
                           detail=f"{record.failures} failed attempt(s)")
                self._dead.append(DeadLetter(
                    job_id=record.job_id, tenant=tenant,
                    attempts=record.failures, reason=interrupt.reason))
                return
            delay = self.retry_policy.backoff(record.failures)
            detail = f"backoff {delay:g}s"
            if self._fault_engine is not None:
                # Retrying into an active brownout burns attempts;
                # stretch the wait past the window's end instead.
                stretched = self._fault_engine.stretch_backoff(
                    sim.now, delay)
                if stretched != delay:
                    detail = (f"backoff {delay:g}s stretched to "
                              f"{stretched:g}s (brownout active)")
                    delay = stretched
            if delay > 0:
                yield sim.timeout(delay)
            record.retries += 1
            self._note(record, lifecycle.RETRY, detail=detail)

    def _admission_gate(self, record: JobRecord
                        ) -> Generator[Event, None, bool]:
        """Wait until the per-tenant in-flight limit allows admission.

        With no limit configured this neither yields nor creates events
        -- the differential guarantee.  Returns ``False`` if the job
        was cancelled while waiting.
        """
        limit = self.admission_limit
        if limit is None:
            return True
        tenant = record.job.spec.tenant
        while self._inflight.get(tenant, 0) >= limit:
            waiter = self._sim.event()
            record.admission_waiter = waiter
            self._admission_waiters.setdefault(tenant, []).append(waiter)
            yield waiter
            record.admission_waiter = None
            if record.cancel_requested:
                return False
        return True

    def _shed_decision(self, record: JobRecord) -> Optional[str]:
        """SLO-aware admission shed: reason string, or ``None`` to admit.

        Pure computation over the chaos engine's current capacity
        stretch -- never yields, so with shedding off (or no faults) the
        admission path is byte-identical to the historical one.
        """
        if not self.shed_slo or self._fault_engine is None:
            return None
        job = record.job
        slo = job.slo_seconds
        if slo is None or job.baseline_epoch_seconds is None:
            return None
        return slo_shed_decision(job.baseline_epoch_seconds, slo,
                                 self._fault_engine.capacity_stretch())

    def _resume_epoch(self, record: JobRecord, epoch: int,
                      crashed: bool) -> int:
        """Where the next attempt resumes, charging checkpoint replay.

        With ``checkpoint_epochs == 0`` this is the historical model
        (free resume at the interrupted epoch; crashes restart from 0).
        With an interval ``k`` both interruption kinds fall back to the
        last checkpoint ``(epoch // k) * k`` and the finished epochs
        past it count as lost work to be replayed.
        """
        interval = self.checkpoint_epochs
        if interval <= 0:
            return 0 if crashed else epoch
        checkpoint = (epoch // interval) * interval
        record.lost_epochs += epoch - checkpoint
        return checkpoint

    def _end_attempt(self, tenant: str) -> None:
        """Release the tenant's admission share and wake one waiter."""
        self._inflight[tenant] -= 1
        waiters = self._admission_waiters.get(tenant)
        if waiters:
            waiters.pop(0).succeed()

    # -- cancellation --------------------------------------------------------

    def _cancel_process(self, record: JobRecord, at: float
                        ) -> Generator[Event, None, None]:
        if at > 0:
            yield self._sim.timeout(at)
        self._request_cancel(record)

    def _request_cancel(self, record: JobRecord) -> None:
        state = self.ledger.state(record.job_id)
        if state in TERMINAL_STATES:
            return
        record.cancel_requested = True
        job = record.job
        if state == ADMITTED and job in self._queue:
            # Still waiting for a slot: remove and wake with the sentinel.
            self._queue.remove(job)
            job.grant_event.succeed(_CANCELLED)
        elif state == PENDING and record.admission_waiter is not None:
            waiter = record.admission_waiter
            self._admission_waiters[job.spec.tenant].remove(waiter)
            waiter.succeed()
        # Otherwise (pre-submit, running, or backing off) the flag is
        # honoured at the next control point: loop top, epoch boundary,
        # or post-backoff re-admission.

    def _conclude_cancel(self, record: JobRecord, where: str) -> None:
        record.job.finished = self._sim.now
        self._note(record, lifecycle.CANCEL, detail=where)

    # -- hooks into the service ----------------------------------------------

    def _before_epoch(self, job: TenantJob, epoch: int) -> None:
        record = self._by_job.get(id(job))
        if record is None:
            return
        record.current_epoch = epoch
        if record.cancel_requested:
            raise _Interrupted(lifecycle.CANCEL, epoch,
                               f"running, at epoch {epoch}")
        if record.preempt_requested and epoch > 0:
            # Epoch 0 is never preempted: the offline phase just ran
            # and a resume at 0 would redo nothing anyway.
            raise _Interrupted(lifecycle.PREEMPT, epoch)
        spec = job.spec
        if (spec.crash_epoch is not None and epoch == spec.crash_epoch
                and record.attempt <= spec.crash_attempts):
            raise _Interrupted(
                lifecycle.FAIL, epoch,
                f"injected crash at epoch {epoch} "
                f"(attempt {record.attempt})")
        if self.fault_plan:
            window = self.fault_plan.crash_active(self._sim.now)
            if window is not None:
                raise _Interrupted(
                    lifecycle.FAIL, epoch,
                    f"crash window [{window.start:g}s, {window.end:g}s) "
                    f"hit at epoch {epoch}")

    def _dispatch(self) -> None:
        super()._dispatch()
        if not (self.preempt_enabled and self._queue and self._running
                and self._free_slots == 0):
            return
        state = ServiceState(self)
        victim = self.policy.preempt(tuple(self._queue), state)
        if victim is None:
            return
        record = self._by_job.get(id(victim))
        if (record is None or record.preempt_requested
                or record.cancel_requested
                or self.ledger.state(record.job_id) != RUNNING):
            return
        record.preempt_requested = True

    def _on_entry(self, entry: LedgerEntry) -> None:
        if entry.to_state in TERMINAL_STATES:
            self._active -= 1

    # -- telemetry (repro.obs) -----------------------------------------------

    def _telemetry_live(self) -> bool:
        """Sampler liveness: the control plane tracks non-terminal jobs
        (a job can be live without occupying the serve-layer queue)."""
        return self._active > 0

    def _sample_metrics(self, registry) -> None:
        super()._sample_metrics(registry)
        counts = self.ledger.counts() if self.ledger is not None else {}
        for state in lifecycle.STATES:
            registry.gauge(f"ledger.{state}").set(counts.get(state, 0))
        registry.gauge("dlq.depth").set(len(self._dead))
        registry.gauge("slots.total").set(self.slots)

    def _trace_entry(self, entry: LedgerEntry) -> None:
        """Ledger subscriber: one instant trace event per transition."""
        self.tracer.instant(
            f"{entry.job_id} {entry.event}", "ledger", "ledger",
            entry.time,
            args={"job": entry.job_id, "attempt": entry.attempt,
                  "from": entry.from_state, "to": entry.to_state,
                  "detail": entry.detail})

    def _note(self, record: JobRecord, event: str,
              detail: str = "") -> None:
        self.ledger.record(record.job_id, event, self._sim.now,
                           attempt=max(record.attempt, 1), detail=detail)

    # -- autoscaling ---------------------------------------------------------

    def _autoscale_process(self) -> Generator[Event, None, None]:
        sim = self._sim
        interval = self.autoscale.interval
        while self._active > 0:
            yield sim.timeout(interval)
            if self._active == 0:
                return
            self._autoscale_tick()

    def _autoscale_tick(self) -> None:
        config = self.autoscale
        kinds = self._finding_kinds()
        pressure = ("queue-pressure" in kinds
                    or len(self._queue) >= max(self.slots, 1))
        if pressure and self.slots < config.max_slots:
            self._set_slots(self.slots + 1, "queue-pressure")
        elif (not pressure and not self._queue and self._free_slots > 0
              and self.slots > config.min_slots):
            self._set_slots(self.slots - 1, "idle-capacity")

    def _finding_kinds(self) -> set:
        """Doctor findings over the live (partial) run."""
        sampled = [record.job for record in self._records.values()
                   if record.job.granted is not None]
        if not sampled:
            return set()
        interim = ServiceReport(
            policy=self.policy.name, slots=self.slots,
            environment=self.environment, tenants=sampled,
            makespan=self._sim.now,
            offline_runs=sum(1 for job in sampled
                             if job.offline is not None),
            offline_deduped=sum(1 for job in sampled
                                if job.offline_shared),
            bytes_from_storage=sum(epoch.bytes_from_storage
                                   for job in sampled
                                   for epoch in job.epochs),
            bytes_from_cache=sum(epoch.bytes_from_cache
                                 for job in sampled
                                 for epoch in job.epochs),
            bytes_written=self._cluster.bytes_written,
            files_opened=self._cluster.files_opened,
            metadata_peak_in_use=self._cluster.metadata.peak_in_use,
            page_cache_evictions=self._machine.page_cache.evictions,
            events_processed=self._sim.events_processed)
        diagnosis = diagnose_service(interim, self.environment)
        return {finding.kind for finding in diagnosis.findings}

    def _set_slots(self, new_slots: int, reason: str) -> None:
        old = self.slots
        self._free_slots += new_slots - old
        self.slots = new_slots
        event = AutoscaleEvent(
            time=self._sim.now, old_slots=old, new_slots=new_slots,
            reason=reason)
        self._autoscale_log.append(event)
        for callback in self._autoscale_subscribers:
            callback(event)
        if new_slots > old:
            self._dispatch()
