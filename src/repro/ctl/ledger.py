"""The append-only execution ledger and the job lifecycle state machine.

Every job admitted to the control plane moves through a fixed lifecycle::

    NEW --submit--> PENDING --admit--> ADMITTED --start--> RUNNING
    RUNNING --succeed--> SUCCEEDED                    (terminal)
    RUNNING --fail-----> FAILED --retry--> PENDING    (attempts remain)
                         FAILED --exhaust--> DEADLETTER (terminal; the DLQ)
    RUNNING --preempt--> PREEMPTED --requeue--> PENDING
    PENDING | ADMITTED | RUNNING --cancel--> CANCELLED (terminal)

The single source of truth for what is legal is :data:`TRANSITIONS`, a
total map over ``(state, event)`` pairs; anything not in the table
raises :class:`~repro.errors.LedgerError`.  The exhaustive
transition-table test in ``tests/ctl`` walks every pair, so the table
cannot silently drift from the dispatcher's behaviour.

The :class:`ExecutionLedger` records each transition as an immutable
:class:`LedgerEntry` stamped with the *simulation* clock.  Appends must
be monotone in time (the DES kernel guarantees its clock never runs
backwards, so a non-monotone append means control-plane code recorded a
stale timestamp).  Subscribers registered with
:meth:`ExecutionLedger.subscribe` see every entry as it is appended --
the job-lifecycle event feed a dashboard or a test consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import LedgerError

# -- states ----------------------------------------------------------------

#: Job lifecycle states, in rough lifecycle order.
NEW = "NEW"
PENDING = "PENDING"
ADMITTED = "ADMITTED"
RUNNING = "RUNNING"
SUCCEEDED = "SUCCEEDED"
FAILED = "FAILED"
CANCELLED = "CANCELLED"
PREEMPTED = "PREEMPTED"
DEADLETTER = "DEADLETTER"

STATES = (NEW, PENDING, ADMITTED, RUNNING, SUCCEEDED, FAILED, CANCELLED,
          PREEMPTED, DEADLETTER)

#: States a job never leaves.  FAILED and PREEMPTED are *transient*:
#: the dispatcher always follows them with retry/exhaust or requeue.
TERMINAL_STATES = frozenset({SUCCEEDED, CANCELLED, DEADLETTER})

# -- events ----------------------------------------------------------------

SUBMIT = "submit"
ADMIT = "admit"
START = "start"
SUCCEED = "succeed"
FAIL = "fail"
CANCEL = "cancel"
PREEMPT = "preempt"
REQUEUE = "requeue"
RETRY = "retry"
EXHAUST = "exhaust"

EVENTS = (SUBMIT, ADMIT, START, SUCCEED, FAIL, CANCEL, PREEMPT, REQUEUE,
          RETRY, EXHAUST)

#: The lifecycle transition table: ``(state, event) -> next state``.
#: Total over the legal pairs; every other pair is illegal and raises.
TRANSITIONS = {
    (NEW, SUBMIT): PENDING,
    (PENDING, ADMIT): ADMITTED,
    (PENDING, CANCEL): CANCELLED,
    (ADMITTED, START): RUNNING,
    (ADMITTED, CANCEL): CANCELLED,
    (RUNNING, SUCCEED): SUCCEEDED,
    (RUNNING, FAIL): FAILED,
    (RUNNING, CANCEL): CANCELLED,
    (RUNNING, PREEMPT): PREEMPTED,
    (PREEMPTED, REQUEUE): PENDING,
    (FAILED, RETRY): PENDING,
    (FAILED, EXHAUST): DEADLETTER,
}


def next_state(state: str, event: str) -> str:
    """The state reached by ``event`` from ``state``; raises if illegal."""
    if state not in STATES:
        raise LedgerError(f"unknown job state {state!r}; known: {STATES}")
    if event not in EVENTS:
        raise LedgerError(f"unknown ledger event {event!r}; "
                          f"known: {EVENTS}")
    try:
        return TRANSITIONS[(state, event)]
    except KeyError:
        raise LedgerError(
            f"illegal transition: event {event!r} in state {state!r}; "
            f"legal events here: "
            f"{sorted(ev for (st, ev) in TRANSITIONS if st == state)}"
        ) from None


# -- entries ---------------------------------------------------------------

@dataclass(frozen=True)
class LedgerEntry:
    """One immutable job-state transition record."""

    seq: int                 #: position in the ledger (0-based, dense)
    time: float              #: simulation clock at the transition
    job_id: str
    attempt: int             #: 1-based execution attempt the entry belongs to
    event: str               #: the lifecycle event (see :data:`EVENTS`)
    from_state: str
    to_state: str
    detail: str = ""         #: free-form context (crash reason, backoff...)

    def describe(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        return (f"[{self.seq:04d}] t={self.time:10.1f}s {self.job_id} "
                f"attempt {self.attempt}: {self.from_state} "
                f"--{self.event}--> {self.to_state}{extra}")


class ExecutionLedger:
    """Append-only record of every job-state transition.

    The ledger owns the per-job current state: the *only* way to move a
    job through its lifecycle is :meth:`record`, which validates the
    transition against :data:`TRANSITIONS` and the monotone-time
    invariant before appending.  Entries are never mutated or removed.
    """

    def __init__(self):
        self._entries: list[LedgerEntry] = []
        self._states: dict[str, str] = {}
        self._attempts: dict[str, int] = {}
        self._subscribers: list[Callable[[LedgerEntry], None]] = []

    # -- recording ----------------------------------------------------------

    def record(self, job_id: str, event: str, time: float,
               attempt: Optional[int] = None,
               detail: str = "") -> LedgerEntry:
        """Validate and append one transition; returns the new entry."""
        state = self._states.get(job_id, NEW)
        to_state = next_state(state, event)
        if self._entries and time < self._entries[-1].time:
            raise LedgerError(
                f"non-monotone ledger append: t={time} after "
                f"t={self._entries[-1].time} ({job_id} {event!r})")
        if attempt is None:
            attempt = self._attempts.get(job_id, 0)
        if event == SUBMIT and attempt == 0:
            attempt = 1
        entry = LedgerEntry(seq=len(self._entries), time=time,
                            job_id=job_id, attempt=attempt, event=event,
                            from_state=state, to_state=to_state,
                            detail=detail)
        self._entries.append(entry)
        self._states[job_id] = to_state
        self._attempts[job_id] = attempt
        for subscriber in self._subscribers:
            subscriber(entry)
        return entry

    def subscribe(self, callback: Callable[[LedgerEntry], None]) -> None:
        """Deliver every future entry to ``callback`` as it is appended."""
        self._subscribers.append(callback)

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> tuple:
        """Every entry in append order (a defensive immutable view)."""
        return tuple(self._entries)

    def state(self, job_id: str) -> str:
        """Current lifecycle state of ``job_id`` (:data:`NEW` if unseen)."""
        return self._states.get(job_id, NEW)

    def jobs(self) -> tuple:
        """Every job id the ledger has seen, in first-appearance order."""
        return tuple(self._states)

    def entries_for(self, job_id: str) -> tuple:
        return tuple(entry for entry in self._entries
                     if entry.job_id == job_id)

    def dead_letters(self) -> tuple:
        """Job ids currently resting in the dead-letter queue."""
        return tuple(job_id for job_id, state in self._states.items()
                     if state == DEADLETTER)

    def attempts(self, job_id: str) -> int:
        """Execution attempts recorded for ``job_id`` so far."""
        return self._attempts.get(job_id, 0)

    def counts(self) -> dict:
        """Current-state histogram over every job."""
        histogram: dict[str, int] = {}
        for state in self._states.values():
            histogram[state] = histogram.get(state, 0) + 1
        return histogram

    def describe(self) -> str:
        """The full transition log, one line per entry."""
        return "\n".join(entry.describe() for entry in self._entries)


@dataclass(frozen=True)
class DeadLetter:
    """One exhausted job as surfaced in the control report's DLQ view."""

    job_id: str
    tenant: str
    attempts: int
    reason: str = ""

    def describe(self) -> str:
        return (f"{self.job_id} (tenant {self.tenant}): "
                f"{self.attempts} attempt(s) exhausted"
                + (f" -- {self.reason}" if self.reason else ""))
