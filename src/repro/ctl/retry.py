"""Retry policy: exponential backoff feeding the dead-letter queue.

A failed attempt either retries (after a deterministic exponential
backoff in *simulated* seconds) or, once ``max_attempts`` executions
have been spent, is exhausted into the dead-letter queue.  There is no
jitter by design: the control plane is co-simulated on the DES kernel
and every run must be bit-reproducible, so randomness belongs in the
seeded trace generators, never in the policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ControlError


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently a crashed job is retried.

    ``max_attempts`` counts *executions*, not retries: the default of 3
    means one initial run plus up to two retries before the job is
    dead-lettered.  The backoff before retry ``n`` (after the n-th
    failed attempt) is ``backoff_base * backoff_factor ** (n - 1)``
    simulated seconds, capped at ``backoff_cap``.
    """

    max_attempts: int = 3
    backoff_base: float = 60.0
    backoff_factor: float = 2.0
    backoff_cap: float = 3600.0

    def __post_init__(self):
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise ControlError(
                f"retry.max_attempts must be a positive integer, "
                f"got {self.max_attempts!r}")
        if self.backoff_base < 0:
            raise ControlError(
                f"retry.backoff_base must be >= 0, "
                f"got {self.backoff_base!r}")
        if self.backoff_factor < 1.0:
            raise ControlError(
                f"retry.backoff_factor must be >= 1, "
                f"got {self.backoff_factor!r}")
        if self.backoff_cap < self.backoff_base:
            raise ControlError(
                f"retry.backoff_cap ({self.backoff_cap!r}) must be >= "
                f"backoff_base ({self.backoff_base!r})")

    def should_retry(self, attempt: int) -> bool:
        """Whether another execution is allowed after ``attempt`` failed."""
        return attempt < self.max_attempts

    def backoff(self, attempt: int) -> float:
        """Simulated seconds to wait before re-running after ``attempt``."""
        if attempt < 1:
            raise ControlError(f"attempt numbers are 1-based, got {attempt}")
        delay = self.backoff_base * self.backoff_factor ** (attempt - 1)
        return min(delay, self.backoff_cap)

    def describe(self) -> str:
        return (f"max {self.max_attempts} attempt(s), backoff "
                f"{self.backoff_base:g}s x{self.backoff_factor:g} "
                f"(cap {self.backoff_cap:g}s)")
