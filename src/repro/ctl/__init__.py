"""Online serving control plane over the preprocessing service.

The :mod:`repro.serve` layer replays a fixed trace; this package puts a
production-shaped control loop in front of it: a :class:`Dispatcher`
with submit/cancel/retry, an append-only :class:`ExecutionLedger` of
every job-state transition, retry with exponential backoff feeding a
dead-letter queue, per-tenant admission control, policy-driven
preemption and doctor-driven slot autoscaling -- all co-simulated on
the deterministic DES kernel.  See ``docs/control_plane.md``.
"""

from repro.ctl.dispatcher import (AutoscaleConfig, Dispatcher)
from repro.ctl.ledger import (ADMITTED, CANCELLED, DEADLETTER, EVENTS,
                              FAILED, NEW, PENDING, PREEMPTED, RUNNING,
                              STATES, SUCCEEDED, TERMINAL_STATES,
                              TRANSITIONS, DeadLetter, ExecutionLedger,
                              LedgerEntry, next_state)
from repro.ctl.report import (AutoscaleEvent, ControlReport, JobRecord,
                              control_summary, control_table)
from repro.ctl.retry import RetryPolicy

__all__ = [
    "ADMITTED", "CANCELLED", "DEADLETTER", "EVENTS", "FAILED", "NEW",
    "PENDING", "PREEMPTED", "RUNNING", "STATES", "SUCCEEDED",
    "TERMINAL_STATES", "TRANSITIONS",
    "AutoscaleConfig", "AutoscaleEvent", "ControlReport", "DeadLetter",
    "Dispatcher", "ExecutionLedger", "JobRecord", "LedgerEntry",
    "RetryPolicy", "control_summary", "control_table", "next_state",
]
