"""Control-plane run records and report rendering.

A :class:`ControlReport` wraps the underlying
:class:`~repro.serve.service.ServiceReport` (the resource view -- what
the cluster did) with the control view: the execution ledger, per-job
outcome records, the dead-letter queue and the autoscaler's adjustment
log.  When every control feature is off the service view is *exactly*
what ``presto serve`` would have produced -- the differential test in
``tests/ctl`` holds the two byte-for-byte equal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.frame import Frame
from repro.units import fmt_duration
from repro.ctl.ledger import (CANCELLED, DEADLETTER, ExecutionLedger,
                              SUCCEEDED, DeadLetter)
from repro.ctl.retry import RetryPolicy
from repro.serve.service import ServiceReport, TenantJob


@dataclass
class JobRecord:
    """Control-plane bookkeeping for one submitted job.

    ``attempt`` counts execution attempts started (admissions),
    ``failures`` counts attempts that crashed, ``retries`` counts
    post-backoff re-executions and ``preemptions`` epoch-boundary
    interruptions.  ``job`` is the live runtime state shared with the
    underlying service simulation.
    """

    job_id: str
    job: TenantJob
    attempt: int = 0
    failures: int = 0
    retries: int = 0
    preemptions: int = 0
    resume_epoch: int = 0
    #: Epoch boundary the running attempt last reached (the blackout
    #: unwind path cannot see the epoch loop, only the record).
    current_epoch: int = 0
    #: Epochs of finished work re-run because an interruption landed
    #: past the last checkpoint (checkpoint-aware resume cost).
    lost_epochs: int = 0
    #: Cancelled by the SLO-aware admission gate under degraded
    #: capacity, before burning a slot on guaranteed-late work.
    shed: bool = False
    cancel_requested: bool = False
    preempt_requested: bool = False
    admission_waiter: Optional[object] = None
    #: Job id this record retries (set by ``Dispatcher.retry``).
    parent: Optional[str] = None

    @property
    def spec(self):
        return self.job.spec

    def to_record(self, ledger: ExecutionLedger) -> dict:
        """One per-job row of the control report frame."""
        return {
            "job": self.job_id,
            "tenant": self.spec.tenant,
            "pipeline": self.spec.pipeline,
            "strategy": self.spec.split,
            "state": ledger.state(self.job_id),
            "attempts": max(self.attempt, 1),
            "failures": self.failures,
            "retries": self.retries,
            "preempts": self.preemptions,
            "epochs_done": len(self.job.epochs),
            "finished_s": (self.job.finished
                           if self.job.finished is not None else 0.0),
        }


@dataclass(frozen=True)
class AutoscaleEvent:
    """One slot-count adjustment made by the autoscaler."""

    time: float
    old_slots: int
    new_slots: int
    reason: str

    def describe(self) -> str:
        return (f"t={self.time:.0f}s {self.old_slots}->{self.new_slots} "
                f"slot(s) ({self.reason})")


@dataclass
class ControlReport:
    """Everything one control-plane run produced.

    ``service`` is the resource view (identical to a plain
    ``PreprocessingService`` report when no control feature fired);
    ``ledger`` is the authoritative lifecycle history.
    """

    service: ServiceReport
    ledger: ExecutionLedger
    retry: RetryPolicy
    records: list[JobRecord] = field(default_factory=list)
    dead_letters: list[DeadLetter] = field(default_factory=list)
    autoscale_log: list[AutoscaleEvent] = field(default_factory=list)
    initial_slots: int = 0
    final_slots: int = 0

    @property
    def submitted(self) -> int:
        return len(self.records)

    @property
    def succeeded(self) -> int:
        return sum(1 for record in self.records
                   if self.ledger.state(record.job_id) == SUCCEEDED)

    @property
    def cancelled(self) -> int:
        return sum(1 for record in self.records
                   if self.ledger.state(record.job_id) == CANCELLED)

    @property
    def dead(self) -> int:
        return sum(1 for record in self.records
                   if self.ledger.state(record.job_id) == DEADLETTER)

    @property
    def total_retries(self) -> int:
        return sum(record.retries for record in self.records)

    @property
    def total_preemptions(self) -> int:
        return sum(record.preemptions for record in self.records)

    @property
    def total_shed(self) -> int:
        return sum(1 for record in self.records if record.shed)

    @property
    def total_lost_epochs(self) -> int:
        return sum(record.lost_epochs for record in self.records)

    @property
    def events_processed(self) -> int:
        return self.service.events_processed

    @property
    def wall_seconds(self) -> float:
        return self.service.wall_seconds

    def provenance(self) -> dict:
        """Uniform run-cost stamp shared by every workload report."""
        return self.service.provenance()

    def record(self, job_id: str) -> JobRecord:
        for candidate in self.records:
            if candidate.job_id == job_id:
                return candidate
        from repro.errors import ControlError
        raise ControlError(f"no job {job_id!r} in this control report")


def control_table(report: ControlReport) -> Frame:
    """Per-job lifecycle outcomes, one row per submitted job."""
    return Frame.from_records(
        [record.to_record(report.ledger) for record in report.records])


def control_summary(report: ControlReport) -> str:
    """Operator summary of the control view: outcomes, DLQ, autoscale."""
    lines = [
        (f"control [{report.service.policy}]: {report.submitted} job(s): "
         f"{report.succeeded} succeeded, {report.cancelled} cancelled, "
         f"{report.dead} dead-lettered; {report.total_retries} retry(s), "
         f"{report.total_preemptions} preemption(s); "
         f"ledger {len(report.ledger)} entries"),
        f"retry policy: {report.retry.describe()}",
    ]
    # Chaos lines only when something fired -- fault-free summaries are
    # byte-identical to pre-faults builds.
    if report.service.fault_events:
        lines.append(
            f"faults: {len(report.service.fault_events)} window(s) "
            f"injected, {report.service.transfers_aborted} in-flight "
            f"transfer(s) aborted")
    if report.total_shed:
        lines.append(
            f"slo-shed: {report.total_shed} job(s) cancelled at "
            f"admission under degraded capacity")
    if report.total_lost_epochs:
        lines.append(
            f"checkpoint replay: {report.total_lost_epochs} epoch(s) "
            f"of lost work re-run")
    if report.dead_letters:
        lines.append("dead-letter queue:")
        for letter in report.dead_letters:
            lines.append(f"  {letter.describe()}")
    if report.autoscale_log:
        lines.append(
            f"autoscale: {report.initial_slots} -> {report.final_slots} "
            f"slot(s) over {len(report.autoscale_log)} adjustment(s), "
            f"makespan {fmt_duration(report.service.makespan)}")
        for event in report.autoscale_log:
            lines.append(f"  {event.describe()}")
    return "\n".join(lines)
