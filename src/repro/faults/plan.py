"""Structured fault shapes and the seeded :class:`FaultPlan` timeline.

The chaos engine injects *structured* degradation, not random noise:
every fault is a window on the simulation clock with an explicit shape,
so a run's behaviour under faults is as reproducible as the fault-free
run.  Four shapes cover the failure modes the data-stall literature
measures against real clusters:

* :class:`StragglerWindow` -- a degraded worker: the window occupies a
  seeded number of CPU cores, so the effective core pool shrinks and
  every tenant's native work queues behind the straggler.  (A core
  running at rate ``1/f`` contributes ``1/f`` of a core of aggregate
  capacity; the engine models the loss by parking the equivalent whole
  cores for the window.)
* :class:`DeviceSlowdown` -- a mid-epoch device degradation: the read
  link's bandwidth ramps down to ``1/factor`` of nominal in
  ``ramp_steps`` stages, holds, and restores at window end.
* :class:`Brownout` -- a correlated, tier-wide capacity loss: read
  *and* write links scale to ``1/factor`` for the window.  With
  ``blackout=True`` the tier goes dark instead: in-flight transfers
  fail at window start and new transfers fail until the window ends
  (the control plane's retry path turns these into crashed attempts).
* :class:`CrashWindow` -- transient job crashes generalizing
  ``JobSpec.crash_epoch`` into a timeline: any controlled job reaching
  an epoch boundary inside the window fails that attempt.

**Determinism contract.**  :func:`generate_fault_plan` draws every
window from ``random.Random(f"chaos-{seed}")`` -- its own namespaced
stream, exactly like the trace generators' arrival/fault split (PR 6/7
discipline) -- so adding faults to a run never perturbs arrival or
pipeline-mix randomness, and the same seed always produces the same
timeline.  An empty plan is falsy and the engine spawns nothing for it:
faults off means zero extra simulation events.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import FaultError


def _check_window(kind: str, start: float, duration: float) -> None:
    if start < 0:
        raise FaultError(f"{kind}: negative start time {start!r}")
    if duration <= 0:
        raise FaultError(f"{kind}: duration must be positive, "
                         f"got {duration!r}")


@dataclass(frozen=True)
class StragglerWindow:
    """A degraded worker parks ``cores`` CPU cores for the window."""

    start: float
    duration: float
    cores: int = 1

    def __post_init__(self) -> None:
        _check_window("straggler", self.start, self.duration)
        if self.cores < 1:
            raise FaultError(
                f"straggler: cores must be >= 1, got {self.cores!r}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def describe(self) -> str:
        return (f"straggler [{self.start:g}s, {self.end:g}s): "
                f"{self.cores} core(s) degraded")


@dataclass(frozen=True)
class DeviceSlowdown:
    """Read-link bandwidth ramps to ``1/factor`` of nominal, then back."""

    start: float
    duration: float
    factor: float = 2.0
    #: Seconds over which capacity steps down to the full slowdown
    #: (0 = instant); the restore at window end is always instant.
    ramp: float = 0.0
    ramp_steps: int = 4

    def __post_init__(self) -> None:
        _check_window("slowdown", self.start, self.duration)
        if self.factor <= 1.0:
            raise FaultError(
                f"slowdown: factor must exceed 1, got {self.factor!r}")
        if self.ramp < 0 or self.ramp >= self.duration:
            raise FaultError(
                f"slowdown: ramp must lie within [0, duration), "
                f"got {self.ramp!r} of {self.duration!r}")
        if self.ramp_steps < 1:
            raise FaultError(
                f"slowdown: ramp_steps must be >= 1, "
                f"got {self.ramp_steps!r}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def describe(self) -> str:
        ramp = f", {self.ramp:g}s ramp" if self.ramp else ""
        return (f"slowdown [{self.start:g}s, {self.end:g}s): read link "
                f"at 1/{self.factor:g} of nominal{ramp}")


@dataclass(frozen=True)
class Brownout:
    """Tier-wide capacity loss; ``blackout=True`` fails transfers."""

    start: float
    duration: float
    factor: float = 4.0
    blackout: bool = False

    def __post_init__(self) -> None:
        _check_window("brownout", self.start, self.duration)
        if self.factor <= 1.0:
            raise FaultError(
                f"brownout: factor must exceed 1, got {self.factor!r}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def kind(self) -> str:
        return "blackout" if self.blackout else "brownout"

    def active_at(self, now: float) -> bool:
        return self.start <= now < self.end

    def describe(self) -> str:
        if self.blackout:
            return (f"blackout [{self.start:g}s, {self.end:g}s): "
                    f"storage tier dark, in-flight transfers fail")
        return (f"brownout [{self.start:g}s, {self.end:g}s): tier at "
                f"1/{self.factor:g} of nominal capacity")


@dataclass(frozen=True)
class CrashWindow:
    """Epoch boundaries inside the window crash the running attempt."""

    start: float
    duration: float

    def __post_init__(self) -> None:
        _check_window("crash window", self.start, self.duration)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active_at(self, now: float) -> bool:
        return self.start <= now < self.end

    def describe(self) -> str:
        return (f"crash window [{self.start:g}s, {self.end:g}s): epoch "
                f"boundaries fail transiently")


@dataclass(frozen=True)
class FaultPlan:
    """The full seeded fault timeline injected into one run."""

    stragglers: tuple = ()
    slowdowns: tuple = ()
    brownouts: tuple = ()
    crash_windows: tuple = ()

    @property
    def fault_count(self) -> int:
        return (len(self.stragglers) + len(self.slowdowns)
                + len(self.brownouts) + len(self.crash_windows))

    def __bool__(self) -> bool:
        return self.fault_count > 0

    @property
    def has_blackout(self) -> bool:
        return any(window.blackout for window in self.brownouts)

    def crash_active(self, now: float) -> Optional[CrashWindow]:
        """The crash window covering ``now``, if any."""
        for window in self.crash_windows:
            if window.active_at(now):
                return window
        return None

    def brownout_end(self, now: float) -> float:
        """Latest end time over brownout/blackout windows active at
        ``now``; 0.0 when none is active (the backoff-stretch query)."""
        end = 0.0
        for window in self.brownouts:
            if window.active_at(now) and window.end > end:
                end = window.end
        return end

    def describe(self) -> str:
        windows = sorted(
            self.stragglers + self.slowdowns + self.brownouts
            + self.crash_windows,
            key=lambda window: (window.start, window.describe()))
        if not windows:
            return "no faults planned"
        return "\n".join(window.describe() for window in windows)


def generate_fault_plan(seed: int, horizon: float,
                        stragglers: int = 0, slowdowns: int = 0,
                        brownouts: int = 0, blackouts: int = 0,
                        crash_windows: int = 0,
                        severity: float = 0.5,
                        cores: int = 8) -> FaultPlan:
    """Draw a seeded :class:`FaultPlan` over ``[0, horizon)``.

    ``severity`` in (0, 1] scales both window lengths and magnitudes
    (slowdown factors, straggler core counts).  All draws come from the
    namespaced ``chaos-{seed}`` stream in a fixed shape order, so the
    plan is a pure function of its arguments.
    """
    counts = (stragglers, slowdowns, brownouts, blackouts, crash_windows)
    if any(count < 0 for count in counts):
        raise FaultError(f"fault counts must be >= 0, got {counts!r}")
    if sum(counts) == 0:
        return FaultPlan()
    if horizon <= 0:
        raise FaultError(
            f"fault horizon must be positive, got {horizon!r}")
    if not 0.0 < severity <= 1.0:
        raise FaultError(
            f"severity must lie in (0, 1], got {severity!r}")
    if cores < 1:
        raise FaultError(f"cores must be >= 1, got {cores!r}")
    rng = random.Random(f"chaos-{seed}")

    def window(scale: float = 1.0) -> tuple[float, float]:
        duration = (rng.uniform(0.04, 0.12) * horizon
                    * (0.5 + severity) * scale)
        duration = min(duration, 0.5 * horizon)
        start = rng.uniform(0.0, horizon - duration)
        return start, duration

    straggler_windows = []
    for _ in range(stragglers):
        start, duration = window()
        stolen = max(1, min(cores - 1 if cores > 1 else 1,
                            round(severity * cores
                                  * rng.uniform(0.25, 0.75))))
        straggler_windows.append(StragglerWindow(
            start=start, duration=duration, cores=stolen))
    slowdown_windows = []
    for _ in range(slowdowns):
        start, duration = window()
        factor = 1.0 + severity * rng.uniform(1.5, 5.0)
        ramp = rng.uniform(0.1, 0.4) * duration
        slowdown_windows.append(DeviceSlowdown(
            start=start, duration=duration, factor=factor, ramp=ramp))
    brownout_windows = []
    for _ in range(brownouts):
        start, duration = window()
        factor = 2.0 + severity * rng.uniform(2.0, 8.0)
        brownout_windows.append(Brownout(
            start=start, duration=duration, factor=factor))
    for _ in range(blackouts):
        start, duration = window(scale=0.5)
        brownout_windows.append(Brownout(
            start=start, duration=duration, factor=100.0, blackout=True))
    crash_window_list = []
    for _ in range(crash_windows):
        start, duration = window(scale=0.5)
        crash_window_list.append(CrashWindow(start=start,
                                             duration=duration))
    return FaultPlan(
        stragglers=tuple(sorted(straggler_windows,
                                key=lambda w: w.start)),
        slowdowns=tuple(sorted(slowdown_windows, key=lambda w: w.start)),
        brownouts=tuple(sorted(brownout_windows, key=lambda w: w.start)),
        crash_windows=tuple(sorted(crash_window_list,
                                   key=lambda w: w.start)))
