"""The chaos engine: drives a :class:`FaultPlan` against a live run.

One :class:`FaultEngine` instance is wired into a serve/control/stream
run and spawns one simulation process per fault window at ``start()``.
Each process sleeps until its window opens, applies the degradation
through the kernel's public knobs, holds, and restores:

* stragglers acquire CPU cores from the machine's FIFO pool and park
  them, so tenant work queues exactly as it would behind a degraded
  worker;
* device slowdowns and brownouts rescale link capacity via
  :meth:`SharedBandwidth.set_capacity` (progress is banked first, so
  in-flight transfers keep the bytes they already moved);
* blackouts flip the links into fail-fast mode and abort in-flight
  transfers with :class:`InjectedFaultError`, which unwinds the running
  epoch and lands in the dispatcher's retry path.

Overlapping windows compose multiplicatively per link.  The engine also
answers the two queries the control plane needs for graceful
degradation: :meth:`capacity_stretch` (the factor the analytic epoch
bound must be multiplied by right now -- the SLO shed gate's input) and
:meth:`stretch_backoff` (retry delays extend past an active brownout
instead of burning attempts into a dark storage tier).

With an empty plan the engine spawns nothing and touches nothing:
faults off is byte-identical to a build without this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import InjectedFaultError
from repro.faults.plan import (Brownout, CrashWindow, DeviceSlowdown,
                               FaultPlan, StragglerWindow)


@dataclass(frozen=True)
class FaultEvent:
    """One injected window, logged at the instant it opened."""

    kind: str
    start: float
    end: float
    magnitude: float
    detail: str


class FaultEngine:
    """Injects a seeded :class:`FaultPlan` into a running simulation."""

    def __init__(self, plan: Optional[FaultPlan], sim, machine, cluster,
                 metrics=None, tracer=None):
        self.plan = plan if plan is not None else FaultPlan()
        self.sim = sim
        self.machine = machine
        self.cluster = cluster
        self.metrics = metrics
        self.tracer = tracer
        self.events: List[FaultEvent] = []
        self.transfers_aborted = 0
        self.active_count = 0
        self._read_factors: dict = {}
        self._write_factors: dict = {}
        self._stolen_cores = 0
        self._blackouts_active = 0
        self._nominal_read: Optional[tuple] = None
        self._nominal_write: Optional[tuple] = None
        self._started = False

    @property
    def enabled(self) -> bool:
        return bool(self.plan)

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Capture nominal capacities and spawn one process per window.

        Must run after the service configured the links (per-stream
        caps are rewritten at run start) and before ``sim.run()``.  A
        falsy plan spawns nothing -- zero extra kernel events.
        """
        if self._started:
            return
        self._started = True
        if not self.plan:
            return
        read = self.cluster.read_link
        write = self.cluster.write_link
        self._nominal_read = (read.aggregate_bw, read.per_stream_bw)
        self._nominal_write = (write.aggregate_bw, write.per_stream_bw)
        for index, window in enumerate(self.plan.stragglers):
            self.sim.process(self._straggler(window),
                             name=f"fault-straggler-{index}")
        for index, window in enumerate(self.plan.slowdowns):
            self.sim.process(self._slowdown(window),
                             name=f"fault-slowdown-{index}")
        for index, window in enumerate(self.plan.brownouts):
            self.sim.process(self._brownout(window),
                             name=f"fault-{window.kind}-{index}")
        # Crash windows need no process: the dispatcher polls
        # plan.crash_active() at epoch boundaries it reaches anyway.

    # -- control-plane queries -------------------------------------------

    def capacity_stretch(self) -> float:
        """Factor the analytic epoch-time bound stretches by right now.

        Composes active read-link degradation with effective core loss;
        an active blackout makes the bound unreachable (``inf``).  This
        is the input to the shared SLO shed gate.
        """
        if self._blackouts_active:
            return float("inf")
        stretch = 1.0
        for factor in self._read_factors.values():
            stretch *= factor
        if self._stolen_cores:
            available = self.machine.n_cores - self._stolen_cores
            if available <= 0:
                return float("inf")
            stretch *= self.machine.n_cores / available
        return stretch

    def stretch_backoff(self, now: float, delay: float) -> float:
        """Retry delay, extended past any brownout active at ``now``.

        Retrying into a degraded (or dark) tier burns attempts; waiting
        for the window to close first costs nothing extra once capacity
        is back.
        """
        until = self.plan.brownout_end(now)
        if until > now:
            return (until - now) + delay
        return delay

    # -- fault processes -------------------------------------------------

    def _straggler(self, window: StragglerWindow):
        yield self.sim.timeout(window.start)
        cores = min(window.cores, self.machine.n_cores)
        span = self._open("straggler", window.end, float(cores),
                          window.describe(), args={"cores": cores})
        held = 0
        for _ in range(cores):
            # FIFO behind running work, exactly like a degraded worker
            # whose slot frees and is immediately re-occupied.
            yield self.machine.cores.acquire()
            held += 1
            self._stolen_cores += 1
            self._gauge("faults.cores_stolen", self._stolen_cores)
        remaining = window.end - self.sim.now
        if remaining > 0:
            yield self.sim.timeout(remaining)
        for _ in range(held):
            self.machine.cores.release()
        self._stolen_cores -= held
        self._gauge("faults.cores_stolen", self._stolen_cores)
        self._close(span)

    def _slowdown(self, window: DeviceSlowdown):
        yield self.sim.timeout(window.start)
        span = self._open("slowdown", window.end, window.factor,
                          window.describe(),
                          args={"factor": window.factor,
                                "ramp": window.ramp})
        key = id(window)
        if window.ramp > 0.0:
            step = window.ramp / window.ramp_steps
            for stage in range(1, window.ramp_steps + 1):
                fraction = stage / window.ramp_steps
                self._read_factors[key] = (
                    1.0 + (window.factor - 1.0) * fraction)
                self._apply_read()
                yield self.sim.timeout(step)
        else:
            self._read_factors[key] = window.factor
            self._apply_read()
        remaining = window.end - self.sim.now
        if remaining > 0:
            yield self.sim.timeout(remaining)
        del self._read_factors[key]
        self._apply_read()
        self._close(span)

    def _brownout(self, window: Brownout):
        yield self.sim.timeout(window.start)
        span = self._open(window.kind, window.end, window.factor,
                          window.describe(),
                          args={"factor": window.factor,
                                "blackout": window.blackout})
        if window.blackout:
            factory = self._blackout_factory(window)
            read = self.cluster.read_link
            write = self.cluster.write_link
            self._blackouts_active += 1
            read.set_fault(factory)
            write.set_fault(factory)
            aborted = read.abort_active(factory)
            aborted += write.abort_active(factory)
            if aborted:
                self.transfers_aborted += aborted
                self._count("faults.transfers_aborted", aborted)
            yield self.sim.timeout(window.duration)
            read.clear_fault()
            write.clear_fault()
            self._blackouts_active -= 1
        else:
            key = id(window)
            self._read_factors[key] = window.factor
            self._write_factors[key] = window.factor
            self._apply_read()
            self._apply_write()
            yield self.sim.timeout(window.duration)
            del self._read_factors[key]
            del self._write_factors[key]
            self._apply_read()
            self._apply_write()
        self._close(span)

    # -- internals -------------------------------------------------------

    @staticmethod
    def _blackout_factory(window: Brownout):
        def fail(nbytes: float) -> InjectedFaultError:
            return InjectedFaultError(
                f"storage blackout [{window.start:g}s, {window.end:g}s): "
                f"{nbytes:.0f}-byte transfer failed")
        return fail

    def _apply_read(self) -> None:
        scale = 1.0
        for factor in self._read_factors.values():
            scale *= factor
        aggregate, per_stream = self._nominal_read
        self.cluster.read_link.set_capacity(aggregate / scale,
                                            per_stream / scale)

    def _apply_write(self) -> None:
        scale = 1.0
        for factor in self._write_factors.values():
            scale *= factor
        aggregate, per_stream = self._nominal_write
        self.cluster.write_link.set_capacity(aggregate / scale,
                                             per_stream / scale)

    def _open(self, kind: str, end: float, magnitude: float,
              detail: str, args: Optional[dict] = None):
        now = self.sim.now
        self.events.append(FaultEvent(kind=kind, start=now, end=end,
                                      magnitude=magnitude, detail=detail))
        self.active_count += 1
        self._gauge("faults.active", self.active_count)
        self._count(f"faults.injected.{kind}", 1)
        if self.tracer is not None:
            return self.tracer.start(kind, "fault", "faults", now,
                                     args=args)
        return None

    def _close(self, span) -> None:
        self.active_count -= 1
        self._gauge("faults.active", self.active_count)
        if span is not None:
            self.tracer.finish(span, self.sim.now)

    def _gauge(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.gauge(name).set(value)

    def _count(self, name: str, amount: float) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)
