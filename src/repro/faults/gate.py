"""SLO-aware shedding gate shared by the control plane and streaming.

Under degraded capacity the analytic epoch-time bound stretches by the
current capacity-loss factor: a job whose fault-free epoch takes
``baseline`` seconds needs at least ``baseline * stretch`` seconds while
the degradation holds.  When that bound already exceeds the job's SLO,
admitting it burns slots on work that is guaranteed late -- the gate
sheds it instead (``PENDING -> CANCELLED`` in the ledger, ``shed`` on a
stream request), which is the graceful-degradation half of the chaos
engine's contract.

The decision is a pure function of three floats so the dispatcher's
admission gate and the streaming engine's queue-bound shed point share
one predicate (and one set of tests).
"""

from __future__ import annotations

from typing import Optional


def slo_shed_decision(baseline_seconds: float, slo_seconds: float,
                      stretch: float) -> Optional[str]:
    """Reason to shed now, or ``None`` to admit.

    ``baseline_seconds`` is the analytic fault-free epoch (or request
    service) time, ``slo_seconds`` the deadline derived from it, and
    ``stretch`` the current capacity-loss factor (1.0 = healthy,
    ``inf`` = blackout).  Sheds only when the *lower bound* under the
    active degradation already violates the SLO -- the gate never sheds
    a job the degraded cluster could still finish on time.
    """
    if stretch <= 1.0:
        return None
    if baseline_seconds <= 0.0 or slo_seconds <= 0.0:
        return None
    predicted = baseline_seconds * stretch
    if predicted <= slo_seconds:
        return None
    if predicted == float("inf"):
        return (f"slo-shed: storage blackout active, SLO "
                f"{slo_seconds:.3f}s unreachable")
    return (f"slo-shed: epoch bound {predicted:.3f}s at {stretch:.2f}x "
            f"degraded capacity exceeds SLO {slo_seconds:.3f}s")
