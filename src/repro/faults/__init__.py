"""Seeded chaos engine: structured fault injection for any run.

See :mod:`repro.faults.plan` for the fault shapes and the determinism
contract, :mod:`repro.faults.engine` for the injection machinery, and
:mod:`repro.faults.gate` for the SLO-aware shedding predicate shared by
the control plane and the streaming engine.  ``docs/faults.md`` has the
narrative version.
"""

from repro.faults.engine import FaultEngine, FaultEvent
from repro.faults.gate import slo_shed_decision
from repro.faults.plan import (Brownout, CrashWindow, DeviceSlowdown,
                               FaultPlan, StragglerWindow,
                               generate_fault_plan)

__all__ = [
    "Brownout",
    "CrashWindow",
    "DeviceSlowdown",
    "FaultEngine",
    "FaultEvent",
    "FaultPlan",
    "StragglerWindow",
    "generate_fault_plan",
    "slo_shed_decision",
]
