"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError` so
callers can catch one base class.  Sub-hierarchies mirror the package layout:
simulation faults, pipeline construction faults, profiling faults and codec
faults each have their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class SimulationError(ReproError):
    """A discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting."""


class ResourceError(SimulationError):
    """Illegal use of a simulated resource (double release, bad capacity)."""


class PipelineError(ReproError):
    """A preprocessing pipeline was constructed or used incorrectly."""


class StepNotFoundError(PipelineError):
    """A referenced step name does not exist in the pipeline."""

    def __init__(self, step: str, available: list[str]):
        self.step = step
        self.available = list(available)
        super().__init__(
            f"step {step!r} not in pipeline; available steps: {available}"
        )


class NonDeterministicSplitError(PipelineError):
    """A strategy tried to move a non-deterministic step offline.

    Steps such as random-crop or shuffling must run online in every epoch
    (paper Sec. 2); caching their output would freeze the randomness.
    """


class SpecError(ReproError):
    """An experiment specification is invalid or names unknown entities.

    Raised by the declarative API (:mod:`repro.api`) with actionable
    messages: every "unknown name" error lists the valid registry names
    so a typo in a spec file or on the command line is a one-line fix,
    never a traceback.
    """


class ControlError(ReproError):
    """The serving control plane was configured or driven incorrectly."""


class LedgerError(ControlError):
    """An illegal job-state transition or a non-monotone ledger append.

    The execution ledger is append-only and every entry must follow the
    lifecycle transition table (:data:`repro.ctl.ledger.TRANSITIONS`);
    violating either invariant is a programming error in the control
    plane, never a recoverable condition.
    """


class ProfilingError(ReproError):
    """A profiling run could not be completed."""


class SweepError(ProfilingError):
    """The sweep engine was configured or used incorrectly."""


class CacheError(ReproError):
    """A profile-cache entry could not be read or written."""


class DiagnosisError(ReproError):
    """The bottleneck doctor was asked something it cannot answer."""


class CodecError(ReproError):
    """Encoding or decoding a payload failed."""


class FrameError(ReproError):
    """Invalid operation on a :class:`repro.core.frame.Frame`."""


class StorageError(ReproError):
    """A simulated storage operation failed (missing object, overflow)."""


class FaultError(ReproError):
    """The chaos engine was configured or driven incorrectly.

    Raised by :mod:`repro.faults` for malformed fault plans (negative
    windows, zero slowdown factors, blackouts on workload kinds without
    a retry path) -- configuration mistakes, never injected faults.
    """


class InjectedFaultError(FaultError):
    """A deliberately injected fault fired inside a simulation.

    Carried by failed transfer events during a storage blackout window;
    it unwinds the affected epoch and is caught by the control plane's
    retry path.  Reaching user code means the workload ran a blackout
    without a dispatcher in front of it.
    """


class ObservabilityError(ReproError):
    """Telemetry was configured incorrectly or produced an invalid export.

    Raised by :mod:`repro.obs` for malformed Chrome-trace payloads, trend
    snapshots that do not look like ``BENCH_serve.json``, and telemetry
    flags that conflict with the requested run shape.
    """
