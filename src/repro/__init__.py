"""PRESTO reproduction: preprocessing-strategy profiling and optimisation.

Reproduces "Where Is My Training Bottleneck? Hidden Trade-Offs in Deep
Learning Preprocessing Pipelines" (Isenko et al., SIGMOD 2022): the
PRESTO profiling library, the seven profiled pipelines, and the simulated
hardware substrate used to regenerate every table and figure.

Quickstart::

    from repro import (SimulatedBackend, StrategyProfiler,
                       StrategyAnalysis, get_pipeline)

    profiler = StrategyProfiler(SimulatedBackend())
    profiles = profiler.profile_pipeline(get_pipeline("CV"))
    analysis = StrategyAnalysis(profiles)
    print(analysis.summary())

Full-catalog sweeps fan out and memoize via the exec engine::

    from repro import ProfileCache, SimulatedBackend, SweepEngine

    engine = SweepEngine(SimulatedBackend(), executor=4,
                         cache=ProfileCache("~/.cache/presto"))
    result = engine.sweep()          # all seven paper pipelines

The declarative front door expresses any study as one serializable
spec and runs it through the Session facade (``presto run``)::

    from repro import ExperimentSpec, Session

    spec = ExperimentSpec(kind="sweep", pipelines=("MP3", "FLAC"))
    artifact = Session().run(spec)   # Frame + report + provenance
    print(artifact.report)
"""

from repro.backends import (AnalyticModel, Environment, InProcessBackend,
                            RunConfig, SimulatedBackend)
from repro.core import (Frame, ObjectiveWeights, Strategy, StrategyAnalysis,
                        StrategyProfiler, enumerate_strategies)
from repro.core.autotune import AutoTuner
from repro.diagnosis import BottleneckDoctor
from repro.exec import ProfileCache, SweepEngine, SweepResult
from repro.pipelines import PipelineSpec, all_pipelines, get_pipeline
from repro.serve import (JobSpec, PreprocessingService, ServiceReport,
                         generate_trace, sweep_policies)
from repro.api import (ExperimentPlan, ExperimentSpec, RunArtifact,
                       Session, load_spec)

__version__ = "1.1.0"

__all__ = [
    "AnalyticModel",
    "AutoTuner",
    "BottleneckDoctor",
    "Environment",
    "ExperimentPlan",
    "ExperimentSpec",
    "Frame",
    "InProcessBackend",
    "JobSpec",
    "ObjectiveWeights",
    "PipelineSpec",
    "PreprocessingService",
    "ProfileCache",
    "RunArtifact",
    "RunConfig",
    "ServiceReport",
    "Session",
    "SimulatedBackend",
    "Strategy",
    "StrategyAnalysis",
    "StrategyProfiler",
    "SweepEngine",
    "SweepResult",
    "all_pipelines",
    "enumerate_strategies",
    "generate_trace",
    "get_pipeline",
    "load_spec",
    "sweep_policies",
    "__version__",
]
