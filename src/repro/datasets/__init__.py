"""Dataset metadata and synthetic dataset generation.

The paper profiles seven public datasets (Table 2).  They are not
available offline, so :mod:`repro.datasets.catalog` records their exact
metadata (sample counts, sizes, formats) and
:mod:`repro.datasets.synthetic` generates seeded synthetic stand-ins whose
per-sample payloads match the recorded size distributions -- enough for
the in-process backend, since PRESTO's decisions depend on sizes and step
costs, never on semantic content.
"""

from repro.datasets.spec import DatasetSpec
from repro.datasets.catalog import (CATALOG, CREAM, CUBE_JPG, CUBE_PNG,
                                    ILSVRC2012, COMMONVOICE_MP3, LIBRISPEECH_FLAC,
                                    OPENWEBTEXT, get_dataset, table2_frame)

__all__ = [
    "DatasetSpec",
    "CATALOG",
    "ILSVRC2012",
    "CUBE_JPG",
    "CUBE_PNG",
    "OPENWEBTEXT",
    "CREAM",
    "COMMONVOICE_MP3",
    "LIBRISPEECH_FLAC",
    "get_dataset",
    "table2_frame",
]
