"""The seven profiled datasets (paper Table 2) plus synthetic sweeps.

Sizes and counts are transcribed from Table 2.  Derived per-sample sizes
used by the pipeline specs (e.g. decoded image bytes) live with the
pipeline definitions; this module only records the raw-source facts.
"""

from __future__ import annotations

from repro.datasets.spec import DatasetSpec
from repro.units import GB, MB

#: ImageNet ILSVRC2012 subset: 1.3 M low-resolution JPGs.
ILSVRC2012 = DatasetSpec(
    name="ILSVRC2012",
    pipeline="CV",
    sample_count=1_300_000,
    total_bytes=146.90 * GB,
    source_format="JPG",
    n_files=1_300_000,
    notes="low-resolution JPG subset of ImageNet",
)

#: Cube++ high-resolution JPGs (~0.52 MB, ~4.5 MP).
CUBE_JPG = DatasetSpec(
    name="Cube++ JPG",
    pipeline="CV2-JPG",
    sample_count=4_890,
    total_bytes=2.54 * GB,
    source_format="JPG",
    n_files=4_890,
    notes="high-resolution JPG flavour of Cube++",
)

#: Cube++ 16-bit PNGs (~17.4 MB each).
CUBE_PNG = DatasetSpec(
    name="Cube++ PNG",
    pipeline="CV2-PNG",
    sample_count=4_890,
    total_bytes=85.17 * GB,
    source_format="PNG",
    n_files=4_890,
    notes="16-bit PNG flavour of Cube++",
)

#: OpenWebText (early 8 GB iteration): scraped HTML in text files.
OPENWEBTEXT = DatasetSpec(
    name="OpenWebText",
    pipeline="NLP",
    sample_count=181_000,
    total_bytes=7.71 * GB,
    source_format="TXT",
    n_files=181_000,
    notes="HTML content of Reddit-upvoted URLs",
)

#: CREAM X8 coffeemaker dataset: 744 hourly HDF5 containers, 6.4 kHz
#: current+voltage; samples are 10 s windows => 744 h x 360 = 267,840.
CREAM = DatasetSpec(
    name="CREAM",
    pipeline="NILM",
    sample_count=268_000,
    total_bytes=39.56 * GB,
    source_format="HDF5",
    n_files=744,
    notes="component-level electrical measurements (X8 machine)",
)

#: Mozilla Commonvoice 5.1 English: ~2.4 s MP3 clips at 48 kHz.
COMMONVOICE_MP3 = DatasetSpec(
    name="Commonvoice (en)",
    pipeline="MP3",
    sample_count=13_000,
    total_bytes=0.25 * GB,
    source_format="MP3",
    n_files=13_000,
    notes="short spoken-sentence clips",
)

#: Librispeech: ~12.5 s FLAC utterances at 16 kHz.
LIBRISPEECH_FLAC = DatasetSpec(
    name="Librispeech",
    pipeline="FLAC",
    sample_count=29_000,
    total_bytes=6.61 * GB,
    source_format="FLAC",
    n_files=29_000,
    notes="read audiobook utterances",
)

#: All Table 2 datasets keyed by pipeline name.
CATALOG: dict[str, DatasetSpec] = {
    spec.pipeline: spec
    for spec in (ILSVRC2012, CUBE_JPG, CUBE_PNG, OPENWEBTEXT, CREAM,
                 COMMONVOICE_MP3, LIBRISPEECH_FLAC)
}


def get_dataset(pipeline: str) -> DatasetSpec:
    """Look up the Table 2 dataset backing ``pipeline``."""
    try:
        return CATALOG[pipeline]
    except KeyError:
        raise KeyError(
            f"no dataset for pipeline {pipeline!r}; "
            f"known: {sorted(CATALOG)}") from None


def table2_frame():
    """Render the catalog as the paper's Table 2 (a
    :class:`repro.core.frame.Frame`)."""
    # Imported here: repro.core pulls in the backends, which would create
    # an import cycle at module load time.
    from repro.core.frame import Frame
    return Frame.from_records(
        [spec.table2_row() for spec in CATALOG.values()])


def synthetic_sweep_spec(sample_mb: float, total_bytes: float = 15 * GB,
                         dtype: str = "float32") -> DatasetSpec:
    """A synthetic sweep dataset (paper Figs. 7/9/11): fixed total size,
    varying sample size; sample counts adapt (732 at 20.5 MB .. 1.5 M at
    0.01 MB)."""
    sample_bytes = sample_mb * MB
    count = max(1, round(total_bytes / sample_bytes))
    return DatasetSpec(
        name=f"synthetic-{sample_mb}MB-{dtype}",
        pipeline="SYNTH",
        sample_count=count,
        total_bytes=count * sample_bytes,
        source_format=dtype,
        n_files=count,
        notes="synthetic sample-size sweep dataset",
    )


#: The paper's sweep points, in MB per sample (Figs. 7, 9, 11, 13).
SWEEP_SAMPLE_MB = (20.5, 10.2, 5.1, 2.6, 1.3, 0.64, 0.32, 0.16,
                   0.08, 0.04, 0.02, 0.01)
