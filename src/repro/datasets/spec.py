"""Dataset metadata records (paper Table 2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import MB


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata of one profiled dataset, matching paper Table 2."""

    name: str
    pipeline: str
    sample_count: int
    total_bytes: float
    source_format: str
    #: Number of files holding the raw dataset (one per sample unless the
    #: source ships containers, like CREAM's hourly HDF5 files).
    n_files: int
    notes: str = ""

    @property
    def avg_sample_bytes(self) -> float:
        """Average raw sample footprint (Table 2's "Avg. Sample Size")."""
        return self.total_bytes / self.sample_count

    @property
    def avg_sample_mb(self) -> float:
        return self.avg_sample_bytes / MB

    def table2_row(self) -> dict:
        """Row in the paper's Table 2 layout."""
        return {
            "Dataset": self.name,
            "Pipeline": self.pipeline,
            "Sample Count": self.sample_count,
            "Size in GB": self.total_bytes / 1e9,
            "Avg. Sample Size in MB": self.avg_sample_mb,
            "Format": self.source_format,
        }
