"""Seeded synthetic sample generators for the in-process backend.

Each generator produces *encoded source payloads* (bytes in the dataset's
raw format) at a configurable miniature scale, so the in-process backend
can run the full decode -> transform chain on real data without the
multi-gigabyte originals.  Payload structure matches the real formats'
character: smooth images (JPG compresses them), speech-like waveforms,
mains-frequency electrical windows, and HTML-wrapped prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import PipelineError
from repro.formats import codecs
from repro.ops import audio as audio_ops
from repro.ops import nilm as nilm_ops

#: Miniature geometry used by tests and the in-process backend.
SMALL_IMAGE_HW = (96, 128)
SMALL_AUDIO_SECONDS = 0.5
SMALL_AUDIO_RATE = 16_000
SMALL_NILM_SAMPLES = 2_560  # divisible by the 128-sample period


def smooth_image(rng: np.random.Generator,
                 height: int = SMALL_IMAGE_HW[0],
                 width: int = SMALL_IMAGE_HW[1],
                 channels: int = 3,
                 dtype=np.uint8) -> np.ndarray:
    """A natural-image stand-in: low-frequency noise upsampled.

    Smoothness matters: it gives the synthetic JPG/PNG codecs realistic
    compression ratios instead of incompressible white noise.
    """
    coarse_h, coarse_w = max(2, height // 8), max(2, width // 8)
    coarse = rng.uniform(0.0, 1.0, size=(coarse_h, coarse_w, channels))
    rows = np.linspace(0, coarse_h - 1, height)
    cols = np.linspace(0, coarse_w - 1, width)
    r0 = np.floor(rows).astype(int)
    c0 = np.floor(cols).astype(int)
    r1 = np.minimum(r0 + 1, coarse_h - 1)
    c1 = np.minimum(c0 + 1, coarse_w - 1)
    fr = (rows - r0)[:, None, None]
    fc = (cols - c0)[None, :, None]
    blended = (coarse[r0][:, c0] * (1 - fr) * (1 - fc)
               + coarse[r0][:, c1] * (1 - fr) * fc
               + coarse[r1][:, c0] * fr * (1 - fc)
               + coarse[r1][:, c1] * fr * fc)
    # Sensor-noise floor of ~1 grey level: visible texture without
    # destroying the compressibility that natural images exhibit.
    blended += rng.normal(0.0, 0.004, size=blended.shape)
    info = np.iinfo(dtype)
    return np.clip(blended * info.max, 0, info.max).astype(dtype)


_WORDS = (
    "data pipeline training throughput storage bottleneck epoch tensor "
    "model preprocessing cache compress decode resize shuffle batch "
    "network cluster reader thread sample gradient feature window signal"
).split()


def prose(rng: np.random.Generator, n_words: int = 200) -> str:
    """Deterministic pseudo-prose for the NLP source documents."""
    picks = rng.integers(0, len(_WORDS), size=n_words)
    return " ".join(_WORDS[int(index)] for index in picks)


# -- per-pipeline source payload generators ---------------------------------


def cv_sample(rng: np.random.Generator) -> bytes:
    return codecs.encode_jpg(smooth_image(rng))


def cv2_jpg_sample(rng: np.random.Generator) -> bytes:
    height, width = SMALL_IMAGE_HW
    return codecs.encode_jpg(smooth_image(rng, height * 2, width * 2))


def cv2_png_sample(rng: np.random.Generator) -> bytes:
    height, width = SMALL_IMAGE_HW
    return codecs.encode_png(
        smooth_image(rng, height * 2, width * 2, dtype=np.uint16))


def nlp_sample(rng: np.random.Generator) -> bytes:
    return codecs.encode_html(prose(rng), title=f"doc-{rng.integers(1e6)}")


def nilm_sample(rng: np.random.Generator) -> bytes:
    window = nilm_ops.synth_mains_window(rng, n_samples=SMALL_NILM_SAMPLES)
    return codecs.encode_hdf5(window)


def mp3_sample(rng: np.random.Generator) -> bytes:
    waveform = audio_ops.synth_waveform(SMALL_AUDIO_SECONDS,
                                        SMALL_AUDIO_RATE, rng)
    return codecs.encode_mp3(waveform)


def flac_sample(rng: np.random.Generator) -> bytes:
    waveform = audio_ops.synth_waveform(SMALL_AUDIO_SECONDS,
                                        SMALL_AUDIO_RATE, rng)
    return codecs.encode_flac(waveform)


_GENERATORS: dict[str, Callable[[np.random.Generator], bytes]] = {
    "CV": cv_sample,
    "CV+greyscale-before": cv_sample,
    "CV+greyscale-after": cv_sample,
    "CV2-JPG": cv2_jpg_sample,
    "CV2-PNG": cv2_png_sample,
    "NLP": nlp_sample,
    "NILM": nilm_sample,
    "MP3": mp3_sample,
    "FLAC": flac_sample,
}


@dataclass(frozen=True)
class SyntheticSource:
    """A seeded, repeatable source of encoded samples for one pipeline."""

    pipeline: str
    sample_count: int
    seed: int = 0

    def __post_init__(self):
        if self.pipeline not in _GENERATORS:
            raise PipelineError(
                f"no synthetic generator for pipeline {self.pipeline!r}; "
                f"known: {sorted(_GENERATORS)}")
        if self.sample_count < 1:
            raise PipelineError("sample count must be positive")

    def generate(self):
        """Yield ``sample_count`` encoded payloads, deterministically."""
        make = _GENERATORS[self.pipeline]
        for index in range(self.sample_count):
            rng = np.random.default_rng((self.seed, index))
            yield make(rng)

    def sample_rates(self) -> int:
        """Audio decode rate for this pipeline's waveforms (Hz)."""
        return SMALL_AUDIO_RATE


def supported_pipelines() -> list[str]:
    return sorted(_GENERATORS)
