"""The multi-tenant preprocessing service simulator.

:class:`PreprocessingService` runs J tenant jobs as first-class
discrete-event processes inside **one** shared simulation: one
:class:`~repro.sim.cluster.StorageCluster`, one
:class:`~repro.sim.cpu.Machine` (CPU pool, GIL, dispatch lock and the
shared OS page cache).  This replaces the closed-form fan-out formulas
of :mod:`repro.core.distributed` with an actual co-simulation: storage
link contention, metadata-service queueing, page-cache sharing and
eviction, and CPU-pool oversubscription all emerge from the event
model instead of being asserted.

Execution model per job:

1. sleep until the trace's arrival time;
2. queue for one of ``slots`` execution slots; the active
   :class:`~repro.serve.policies.SchedulerPolicy` picks who runs next;
3. materialise the offline artifact (skipped when an identical artifact
   is already being produced or was produced by another tenant and the
   policy allows sharing);
4. run ``epochs`` training epochs through the *same* epoch process
   generator the single-job :class:`~repro.backends.SimulatedBackend`
   uses, so the uncontended single-tenant limit of the service is
   exactly a backend run.

Per-tenant metrics (p50/p99 epoch time, stall fraction from the
existing :class:`~repro.sim.trace.ResourceTrace`, cache hit ratio,
SLO violations) aggregate into a :class:`ServiceReport`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Generator, Optional, Sequence

from repro import calibration as cal
from repro.backends.base import Environment, EpochResult, OfflineResult, \
    RunConfig
from repro.backends.simulated import SimulatedBackend
from repro.errors import ProfilingError, SimulationError
from repro.pipelines.base import SplitPlan
from repro.serve.jobs import JobSpec
from repro.serve.policies import SchedulerPolicy, get_policy
from repro.sim.cluster import StorageCluster
from repro.sim.cpu import Machine
from repro.sim.events import Event, Simulation


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (deterministic, no NumPy).

    ``q`` in [0, 100].  Matches ``numpy.percentile``'s default
    behaviour for the small per-tenant epoch samples we feed it.
    """
    if not values:
        raise ProfilingError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ProfilingError(f"percentile out of range: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


@dataclass
class TenantJob:
    """Runtime state of one tenant job inside the service simulation."""

    spec: JobSpec
    plan: SplitPlan
    config: RunConfig
    enqueue_index: int = -1
    grant_event: Optional[Event] = None
    arrival: float = 0.0
    granted: Optional[float] = None
    finished: Optional[float] = None
    offline: Optional[OfflineResult] = None
    offline_shared: bool = False
    epochs: list[EpochResult] = field(default_factory=list)
    #: Uncontended analytic epoch seconds; basis of the SLO.
    baseline_epoch_seconds: Optional[float] = None

    @property
    def artifact(self) -> tuple:
        return self.spec.artifact

    @property
    def queue_delay(self) -> float:
        """Seconds spent waiting for an execution slot."""
        if self.granted is None:
            return 0.0
        return self.granted - self.arrival

    @property
    def epoch_durations(self) -> list[float]:
        return [epoch.duration for epoch in self.epochs]

    @property
    def samples_processed(self) -> int:
        return sum(epoch.samples for epoch in self.epochs)

    @property
    def throughput(self) -> float:
        """Delivered samples/second over the job's online phase."""
        online = sum(self.epoch_durations)
        return self.samples_processed / online if online > 0 else 0.0

    @property
    def stall_fraction(self) -> float:
        """Thread-time fraction stalled, from the epoch resource traces."""
        total = stalled = 0.0
        for epoch in self.epochs:
            if epoch.trace is None:
                continue
            total += epoch.trace.total_thread_seconds
            stalled += epoch.trace.stall_seconds
        return stalled / total if total > 0 else 0.0

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of online bytes served from the shared page cache."""
        storage = sum(epoch.bytes_from_storage for epoch in self.epochs)
        cache = sum(epoch.bytes_from_cache for epoch in self.epochs)
        total = storage + cache
        return cache / total if total > 0 else 0.0

    @property
    def slo_seconds(self) -> Optional[float]:
        """The per-epoch deadline: stretch x uncontended analytic time."""
        if (self.spec.slo_stretch is None
                or self.baseline_epoch_seconds is None):
            return None
        return self.spec.slo_stretch * self.baseline_epoch_seconds

    @property
    def slo_violations(self) -> int:
        slo = self.slo_seconds
        if slo is None:
            return 0
        return sum(1 for duration in self.epoch_durations
                   if duration > slo)

    def to_record(self) -> dict:
        """One per-tenant row of the service report frame."""
        durations = self.epoch_durations
        return {
            "tenant": self.spec.tenant,
            "pipeline": self.spec.pipeline,
            "strategy": self.spec.split,
            "prio": self.spec.priority,
            "arrival_s": self.arrival,
            "queue_s": self.queue_delay,
            "offline_s": (self.offline.duration if self.offline else 0.0),
            "shared": self.offline_shared,
            "p50_epoch_s": percentile(durations, 50) if durations else 0.0,
            "p99_epoch_s": percentile(durations, 99) if durations else 0.0,
            "sps": self.throughput,
            "stall_frac": self.stall_fraction,
            "cache_hit": self.cache_hit_ratio,
            "slo_viol": self.slo_violations,
        }


@dataclass
class ServiceReport:
    """Everything the service measured about one trace under one policy."""

    policy: str
    slots: int
    environment: Environment
    tenants: list[TenantJob] = field(default_factory=list)
    makespan: float = 0.0
    #: Offline materialisations actually executed vs shared (deduped).
    offline_runs: int = 0
    offline_deduped: int = 0
    #: Cluster-wide byte accounting over the whole run.
    bytes_from_storage: float = 0.0
    bytes_from_cache: float = 0.0
    bytes_written: float = 0.0
    files_opened: int = 0
    metadata_peak_in_use: int = 0
    page_cache_evictions: int = 0
    #: Kernel events resolved over the whole service simulation.  The DES
    #: is deterministic, so this is a machine-independent cost metric
    #: (the perf suite's CI smoke asserts it instead of wall seconds).
    events_processed: int = 0
    #: Wall-clock seconds the host spent running the simulation
    #: (machine-dependent; track the trend, never assert it).
    wall_seconds: float = 0.0
    #: Chaos-engine injections over the run (:mod:`repro.faults`):
    #: one :class:`~repro.faults.engine.FaultEvent` per opened window,
    #: and transfers failed by blackout windows.  Empty/zero on every
    #: fault-free run -- the doctor and renderers key off that.
    fault_events: list = field(default_factory=list)
    transfers_aborted: int = 0

    def provenance(self) -> dict:
        """Uniform run-cost stamp shared by every workload report."""
        return {"events_processed": self.events_processed,
                "wall_seconds": round(self.wall_seconds, 6)}

    @property
    def aggregate_sps(self) -> float:
        """Total delivered training samples over the service makespan."""
        samples = sum(job.samples_processed for job in self.tenants)
        return samples / self.makespan if self.makespan > 0 else 0.0

    @property
    def total_slo_violations(self) -> int:
        return sum(job.slo_violations for job in self.tenants)

    @property
    def mean_queue_delay(self) -> float:
        if not self.tenants:
            return 0.0
        return sum(job.queue_delay for job in self.tenants) \
            / len(self.tenants)

    @property
    def cache_hit_ratio(self) -> float:
        total = self.bytes_from_storage + self.bytes_from_cache
        return self.bytes_from_cache / total if total > 0 else 0.0

    @property
    def p99_epoch_seconds(self) -> float:
        durations = [duration for job in self.tenants
                     for duration in job.epoch_durations]
        return percentile(durations, 99) if durations else 0.0

    def tenant(self, name: str) -> TenantJob:
        for job in self.tenants:
            if job.spec.tenant == name:
                return job
        raise ProfilingError(f"no tenant {name!r} in this report")

    def epoch_traces(self):
        """Every measured epoch trace (the doctor's raw material)."""
        return [epoch.trace for job in self.tenants
                for epoch in job.epochs if epoch.trace is not None]


class ServiceState:
    """Read-only scheduler view over the live service simulation."""

    def __init__(self, service: "PreprocessingService"):
        self._service = service

    @property
    def now(self) -> float:
        return self._service._sim.now

    @property
    def running(self) -> Sequence[TenantJob]:
        return tuple(self._service._running)

    def tenant_busy_seconds(self, tenant: str) -> float:
        """Service seconds consumed by ``tenant`` (finished + running)."""
        busy = self._service._tenant_busy.get(tenant, 0.0)
        for job in self._service._running:
            if job.spec.tenant == tenant and job.granted is not None:
                busy += self.now - job.granted
        return busy

    def warm_artifacts(self) -> set:
        """Artifacts currently running or already materialised."""
        warm = {job.artifact for job in self._service._running}
        warm.update(self._service._materialized)
        return warm


class PreprocessingService:
    """Run a trace of tenant jobs on one shared simulated cluster."""

    def __init__(self, policy="fifo", slots: int = 2,
                 environment: Optional[Environment] = None,
                 backend: Optional[SimulatedBackend] = None,
                 materialize_offline: bool = True,
                 tie_break: Optional[str] = None,
                 metrics=None, metrics_interval: float = 60.0,
                 tracer=None, faults=None):
        if slots < 1:
            raise ProfilingError("need at least one execution slot")
        if metrics is not None and metrics_interval <= 0:
            raise ProfilingError(
                f"metrics_interval must be positive, got {metrics_interval}")
        if tie_break == "arrival":
            tie_break = None  # the CLI/spec spelling of the default
        if tie_break not in (None, "tenant"):
            raise ProfilingError(
                f"tie_break must be None, 'arrival' or 'tenant', "
                f"got {tie_break!r}")
        self.policy: SchedulerPolicy = get_policy(policy)
        self.slots = slots
        self.environment = environment or Environment()
        self.backend = backend or SimulatedBackend(self.environment)
        #: ``"tenant"`` orders mathematically simultaneous storage-link
        #: completions by (timestamp, tenant id) instead of admission
        #: order, pinning knife-edge thrash scenarios (serve64_hot_raw)
        #: to stable identities under future kernel changes.  ``None``
        #: (alias ``"arrival"``, the CLI/spec spelling) keeps the
        #: historical admission-order behaviour.
        self.tie_break = tie_break
        #: ``False`` serves pre-materialised artifacts (fan-out studies):
        #: offline phases are skipped entirely.
        self.materialize_offline = materialize_offline
        #: Telemetry hooks (:mod:`repro.obs`).  Both are null by default;
        #: with them off the service schedules zero extra events and the
        #: goldens stay byte-identical (tests/obs/test_obs_differential.py).
        self.metrics = metrics
        self.metrics_interval = metrics_interval
        self.tracer = tracer
        if tracer is not None:
            self.backend.tracer = tracer
        #: Seeded chaos timeline (:class:`repro.faults.FaultPlan`) or
        #: ``None``.  With no plan the engine is never constructed and
        #: the run schedules zero extra events -- the faults-off
        #: differential wall (tests/faults/test_differential.py).
        self.fault_plan = faults
        # Per-run state, initialised in run().
        self._sim: Simulation = None  # type: ignore[assignment]
        self._machine: Machine = None  # type: ignore[assignment]
        self._cluster: StorageCluster = None  # type: ignore[assignment]
        self._queue: list[TenantJob] = []
        self._running: list[TenantJob] = []
        self._free_slots = 0
        self._tenant_busy: dict[str, float] = {}
        self._materialized: set = set()
        self._offline_events: dict[tuple, Event] = {}
        self._enqueued = 0

    # -- public entry point --------------------------------------------------

    def run(self, jobs: Sequence[JobSpec]) -> ServiceReport:
        """Simulate the full trace; returns the service report."""
        if not jobs:
            raise ProfilingError("cannot serve an empty trace")
        tenant_jobs = [
            TenantJob(spec=spec, plan=spec.resolve_plan(),
                      config=spec.run_config())
            for spec in jobs
        ]
        self._reset()
        sim = self._sim
        self._configure_link(tenant_jobs)
        self._set_baselines(tenant_jobs)
        self._live = len(tenant_jobs)
        self._tenants = sorted({job.spec.tenant for job in tenant_jobs})
        processes = [sim.process(self._job_process(job),
                                 name=f"job-{job.spec.tenant}")
                     for job in tenant_jobs]
        self._start_faults()
        self._start_sampler()
        started = time.perf_counter()
        sim.run()
        wall_seconds = time.perf_counter() - started
        unfinished = [job.spec.tenant for job, process
                      in zip(tenant_jobs, processes)
                      if not process.triggered]
        if unfinished:
            raise SimulationError(
                f"service drained with unfinished jobs: {unfinished}")
        for process in processes:
            if process._exception is not None:
                raise process._exception
        report = self._report(tenant_jobs)
        report.wall_seconds = wall_seconds
        return report

    # -- simulation setup ----------------------------------------------------

    def _reset(self) -> None:
        environment = self.environment
        sim = Simulation()
        self._sim = sim
        self._machine = Machine(
            sim, cores=environment.cores,
            ram_bytes=environment.ram_bytes,
            page_cache_bytes=(cal.PAGE_CACHE_FRACTION
                              * environment.ram_bytes),
            memory_bw=environment.memory_bw,
            memory_stream_bw=environment.memory_stream_bw,
            dispatch_cost=cal.DISPATCH_COST,
            dispatch_convoy=cal.DISPATCH_CONVOY,
            gil_convoy=cal.GIL_CONVOY)
        self._cluster = StorageCluster(
            sim, environment.storage,
            memory_link=self._machine.memory_link,
            tie_break="tag" if self.tie_break == "tenant" else "admission")
        self._queue = []
        self._running = []
        self._free_slots = self.slots
        self._tenant_busy = {}
        self._materialized = set()
        self._offline_events = {}
        self._enqueued = 0
        self._live = 0
        self._tenants: list[str] = []
        self._fault_engine = None

    # -- chaos engine (null-by-default; see repro.faults) --------------------

    def _start_faults(self) -> None:
        """Spawn the chaos engine's window processes -- only when a
        fault plan is attached.  Must run after ``_configure_link`` (the
        engine snapshots nominal link capacity) and before the kernel
        starts draining events."""
        if not self.fault_plan:
            return
        from repro.faults.engine import FaultEngine
        self._fault_engine = FaultEngine(
            self.fault_plan, self._sim, self._machine, self._cluster,
            metrics=self.metrics, tracer=self.tracer)
        self._fault_engine.start()

    # -- telemetry (null-by-default; see repro.obs) --------------------------

    def _telemetry_live(self) -> bool:
        """Whether the metrics sampler should keep running.  The control
        plane overrides this with its own active-job counter."""
        return self._live > 0

    def _start_sampler(self) -> None:
        """Spawn the periodic metrics sampler -- only when a registry is
        attached, so telemetry off costs zero extra kernel events."""
        if self.metrics is not None:
            self._sim.process(self._metrics_process(),
                              name="metrics-sampler")

    def _metrics_process(self) -> Generator[Event, None, None]:
        sim = self._sim
        registry = self.metrics
        interval = self.metrics_interval
        while self._telemetry_live():
            yield sim.timeout(interval)
            self._sample_metrics(registry)
            registry.snapshot(sim.now)

    def _sample_metrics(self, registry) -> None:
        """Read one sample of every cluster-level gauge.  Pure reads of
        existing state -- never schedules events or mutates the model."""
        sim = self._sim
        registry.gauge("queue.depth").set(len(self._queue))
        registry.gauge("slots.running").set(len(self._running))
        registry.gauge("slots.free").set(self._free_slots)
        link = self._cluster.read_link
        registry.gauge("link.active_streams").set(link.active_streams)
        aggregate = self.environment.storage.aggregate_bw
        registry.gauge("link.utilization").set(
            link.current_throughput() / aggregate if aggregate else 0.0)
        cache = self._machine.page_cache
        registry.gauge("cache.hit_rate").set(cache.hit_rate)
        registry.gauge("cache.used_bytes").set(cache.used_bytes)
        registry.gauge("cache.evictions").set(cache.evictions)
        metadata = self._cluster.metadata
        registry.gauge("metadata.in_use").set(metadata.in_use)
        registry.gauge("metadata.queued").set(metadata.queued)
        registry.gauge("kernel.events_processed").set(sim.events_processed)
        engine = self._fault_engine
        if engine is not None:
            registry.gauge("faults.active").set(engine.active_count)
            # Blackouts make the bound unreachable; clamp for exporters.
            registry.gauge("faults.capacity_stretch").set(
                min(engine.capacity_stretch(), 1e6))
        inflight: dict[str, int] = {}
        for job in self._running:
            inflight[job.spec.tenant] = inflight.get(job.spec.tenant, 0) + 1
        for tenant in self._tenants:
            registry.gauge(f"tenant.{tenant}.inflight").set(
                inflight.get(tenant, 0))

    def _configure_link(self, jobs: Sequence[TenantJob]) -> None:
        """Pin the fair per-stream read share, as the backend does.

        Uses the widest single job's thread count so a lone tenant sees
        exactly the single-job backend's rates; under co-tenancy the
        max-min allocation divides the aggregate further anyway.
        """
        storage = self.environment.storage
        widest = max(job.config.threads for job in jobs)
        self._cluster.read_link.per_stream_bw = min(
            storage.stream_bw, storage.aggregate_bw / widest)

    def _set_baselines(self, jobs: Sequence[TenantJob]) -> None:
        """Uncontended analytic epoch time per job (the SLO anchor)."""
        from repro.backends.analytic import AnalyticModel
        model = AnalyticModel(self.environment)
        for job in jobs:
            estimate = model.estimate(job.plan, job.config)
            if estimate.throughput > 0:
                job.baseline_epoch_seconds = (
                    job.plan.pipeline.sample_count / estimate.throughput)

    # -- the per-job process -------------------------------------------------

    def _job_process(self, job: TenantJob
                     ) -> Generator[Event, None, None]:
        sim = self._sim
        tracer = self.tracer
        if job.spec.arrival > 0:
            yield sim.timeout(job.spec.arrival)
        job.arrival = sim.now
        self._enqueue(job)
        queue_span = None
        if tracer is not None:
            queue_span = tracer.start("queue", "queue", job.spec.tenant,
                                      sim.now)
        yield job.grant_event
        job.granted = sim.now
        if queue_span is not None:
            tracer.finish(queue_span, sim.now)
        if self.metrics is not None:
            self.metrics.histogram("queue.delay_s").observe(job.queue_delay)
        try:
            yield from self._execute(job)
        finally:
            job.finished = sim.now
            self._live -= 1
            self._release(job)

    def _enqueue(self, job: TenantJob) -> None:
        """Queue ``job`` for an execution slot and poke the scheduler."""
        job.grant_event = self._sim.event()
        job.enqueue_index = self._enqueued
        self._enqueued += 1
        self._queue.append(job)
        self._dispatch()

    def _execute(self, job: TenantJob, start_epoch: int = 0
                 ) -> Generator[Event, None, None]:
        """The slot-holding phase: offline materialisation + epochs.

        ``start_epoch`` lets the control plane resume a preempted job at
        the epoch boundary it was interrupted at; the offline phase only
        runs when starting from the beginning.
        """
        sim = self._sim
        tracer = self.tracer
        job_span = None
        if tracer is not None:
            job_span = tracer.start(
                f"run {job.spec.tenant}", "job", job.spec.tenant, sim.now,
                args={"pipeline": job.spec.pipeline,
                      "strategy": job.spec.split,
                      "start_epoch": start_epoch})
        parent = job_span.id if job_span is not None else None
        try:
            if (start_epoch == 0 and self.materialize_offline
                    and not job.plan.is_unprocessed):
                yield from self._offline_phase(job, trace_parent=parent)
            stored = job.plan.materialized
            if job.plan.is_unprocessed:
                stored_bytes_ps = stored.bytes_per_sample
            else:
                stored_bytes_ps = stored.compressed_bytes_per_sample(
                    job.config.compression)
            namespace = self._namespace(job)
            for epoch in range(start_epoch, job.config.epochs):
                self._before_epoch(job, epoch)
                result = yield from self.backend.epoch_process(
                    sim, self._machine, self._cluster, job.plan,
                    job.config, epoch, stored_bytes_ps=stored_bytes_ps,
                    chunk_namespace=namespace,
                    link_tag=self._link_tag(job),
                    trace_track=job.spec.tenant, trace_parent=parent)
                job.epochs.append(result)
        finally:
            if job_span is not None:
                tracer.finish(job_span, sim.now)

    def _before_epoch(self, job: TenantJob, epoch: int) -> None:
        """Epoch-boundary hook for the control plane (crash injection,
        preemption, cancellation).  Must not yield or schedule events:
        the plain service's behaviour -- and therefore every golden --
        is bit-identical with the hook in place."""

    def _offline_phase(self, job: TenantJob,
                       trace_parent: Optional[int] = None
                       ) -> Generator[Event, None, None]:
        """Materialise the artifact, deduplicating across tenants when
        the policy allows artifact sharing."""
        if job.offline is not None:
            # Already materialised by this very job on an earlier
            # control-plane attempt; nothing to redo.
            return
        key = self._dedup_key(job)
        owner = self._offline_events.get(key)
        if owner is not None:
            # Another tenant is producing (or has produced) this exact
            # artifact: wait for it instead of duplicating the work.
            job.offline_shared = True
            yield owner
            return
        event = self._sim.event()
        self._offline_events[key] = event
        try:
            result = yield from self.backend.offline_process(
                self._sim, self._machine, self._cluster, job.plan,
                job.config, link_tag=self._link_tag(job),
                trace_track=job.spec.tenant, trace_parent=trace_parent)
        except Exception as error:
            # Producer died (e.g. a storage blackout failed its
            # transfer): un-claim the key so a later attempt
            # re-materialises from scratch, and propagate the failure to
            # any tenants already waiting on the shared artifact so
            # their control-plane retries fire too.
            if self._offline_events.get(key) is event:
                del self._offline_events[key]
            if event.callbacks is not None:
                event.fail(error)
            raise
        job.offline = result
        self._materialized.add(job.artifact)
        event.succeed(result)

    def _dedup_key(self, job: TenantJob) -> tuple:
        """Offline-dedup identity: content key under sharing policies,
        tenant-private otherwise."""
        if self.policy.share_artifacts:
            return job.artifact
        return (job.spec.tenant,) + job.artifact

    def _namespace(self, job: TenantJob) -> tuple:
        """Page-cache chunk namespace; shared exactly when deduped."""
        return self._dedup_key(job)

    def _link_tag(self, job: TenantJob) -> str:
        """Storage-link transfer label under the tenant tie-break."""
        return job.spec.tenant if self.tie_break == "tenant" else ""

    # -- scheduling ----------------------------------------------------------

    def _dispatch(self) -> None:
        state = ServiceState(self)
        while self._free_slots > 0 and self._queue:
            picked = self.policy.select(tuple(self._queue), state)
            self._queue.remove(picked)
            self._free_slots -= 1
            self._running.append(picked)
            picked.grant_event.succeed()

    def _release(self, job: TenantJob) -> None:
        self._running.remove(job)
        self._free_slots += 1
        if job.granted is not None:
            self._tenant_busy[job.spec.tenant] = (
                self._tenant_busy.get(job.spec.tenant, 0.0)
                + (job.finished - job.granted))
        self._dispatch()

    # -- reporting -----------------------------------------------------------

    def _report(self, jobs: list[TenantJob]) -> ServiceReport:
        report = ServiceReport(
            policy=self.policy.name, slots=self.slots,
            environment=self.environment, tenants=jobs,
            makespan=max(job.finished for job in jobs),
            offline_runs=sum(1 for job in jobs
                             if job.offline is not None),
            offline_deduped=sum(1 for job in jobs if job.offline_shared),
            bytes_from_storage=sum(
                epoch.bytes_from_storage
                for job in jobs for epoch in job.epochs),
            bytes_from_cache=sum(
                epoch.bytes_from_cache
                for job in jobs for epoch in job.epochs),
            bytes_written=self._cluster.bytes_written,
            files_opened=self._cluster.files_opened,
            metadata_peak_in_use=self._cluster.metadata.peak_in_use,
            page_cache_evictions=self._machine.page_cache.evictions,
            events_processed=self._sim.events_processed,
        )
        if self._fault_engine is not None:
            report.fault_events = list(self._fault_engine.events)
            report.transfers_aborted = self._fault_engine.transfers_aborted
        return report
