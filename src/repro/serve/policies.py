"""Scheduler policies for the multi-tenant preprocessing service.

The service owns a fixed number of execution *slots* (concurrent jobs).
Whenever a slot frees up -- or a job arrives while slots are free -- the
active :class:`SchedulerPolicy` picks the next queued job.  Policies see
the live queue plus a read-only view of service state (running jobs,
per-tenant consumed service time, warm artifacts) and must be
deterministic: ties are always broken by enqueue order.

* :class:`FifoPolicy` -- arrival order, no tenant isolation.  Every
  tenant materialises and caches its own private artifact copy.
* :class:`FairSharePolicy` -- weighted max-min over consumed service
  seconds: the queued job of the least-served tenant (scaled by its
  priority) runs next.
* :class:`CacheAwarePolicy` -- co-locates jobs whose artifact is *warm*
  (currently running or already materialised) so they reuse shared page
  cache chunks, and enables offline dedup: identical
  ``(pipeline, split, compression)`` artifacts are materialised once and
  shared across tenants.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Union

from repro.errors import ProfilingError

if TYPE_CHECKING:   # pragma: no cover - import cycle guard
    from repro.serve.service import ServiceState, TenantJob


class SchedulerPolicy:
    """Deterministic pick-next-job policy.

    ``share_artifacts`` additionally controls whether identical
    artifacts are deduplicated (one offline materialisation, one shared
    page-cache namespace) or kept per-tenant-private.
    """

    name = "base"
    share_artifacts = False

    def select(self, queue: Sequence["TenantJob"],
               state: "ServiceState") -> "TenantJob":
        raise NotImplementedError

    def preempt(self, queue: Sequence["TenantJob"],
                state: "ServiceState") -> Optional["TenantJob"]:
        """Pick a *running* job to preempt for the waiting queue.

        Called by the control plane (never the plain service) when jobs
        are queued and every slot is busy.  Returning a member of
        ``state.running`` asks the dispatcher to interrupt that job at
        its next epoch boundary and requeue it; returning ``None``
        declines.  Must be deterministic.  The default never preempts.
        """
        return None

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FifoPolicy(SchedulerPolicy):
    """First come, first served; private artifacts."""

    name = "fifo"

    def select(self, queue, state):
        return min(queue, key=lambda job: job.enqueue_index)

    def preempt(self, queue, state):
        """Evict the youngest strictly-lower-priority running job.

        FIFO admission ignores priority, so a premium job arriving
        while every slot is busy would otherwise wait behind arbitrary
        amounts of low-priority work.  The victim is the *youngest*
        (latest-enqueued) running job of lower priority than the oldest
        waiter -- the one with the least sunk work to replay.  Equal
        priorities never preempt: plain FIFO runs are unchanged.
        """
        if not queue or not state.running:
            return None
        contender = min(queue, key=lambda job: job.enqueue_index)
        victims = [job for job in state.running
                   if job.spec.priority < contender.spec.priority]
        if not victims:
            return None
        return max(victims, key=lambda job: job.enqueue_index)


class FairSharePolicy(SchedulerPolicy):
    """Weighted fair sharing of service seconds across tenants.

    The next job belongs to the tenant with the smallest
    ``consumed_service_seconds / priority``; a premium tenant
    (priority 2) is allowed twice the service time before others take
    precedence.
    """

    name = "fair-share"

    #: A running tenant must have consumed this many times the waiting
    #: tenant's weighted service seconds before it is preempted -- a
    #: deadband that keeps the control plane from thrashing.
    preempt_ratio = 4.0

    def select(self, queue, state):
        return min(queue, key=lambda job: (
            state.tenant_busy_seconds(job.spec.tenant) / job.spec.priority,
            job.enqueue_index))

    def preempt(self, queue, state):
        if not queue or not state.running:
            return None

        def weighted(job):
            return (state.tenant_busy_seconds(job.spec.tenant)
                    / job.spec.priority)

        contender = min(queue, key=lambda job: (weighted(job),
                                                job.enqueue_index))
        victim = max(state.running, key=lambda job: (weighted(job),
                                                     -job.enqueue_index))
        if victim.spec.tenant == contender.spec.tenant:
            return None
        if weighted(victim) > self.preempt_ratio * weighted(contender) \
                and weighted(victim) > 0:
            return victim
        return None


class CacheAwarePolicy(SchedulerPolicy):
    """Artifact-affinity scheduling plus offline dedup.

    Queued jobs whose artifact is warm -- being produced or consumed by
    a running job, or already materialised this service run -- jump the
    queue (earliest-enqueued first), so shared chunks are re-read while
    they are still resident.  Cold jobs fall back to FIFO order.
    """

    name = "cache-aware"
    share_artifacts = True

    def select(self, queue, state):
        warm = state.warm_artifacts()
        hot = [job for job in queue if job.artifact in warm]
        candidates = hot or queue
        return min(candidates, key=lambda job: job.enqueue_index)

    def preempt(self, queue, state):
        """Evict a cache-loner in favour of a warm waiter.

        Fires only when a queued job could reuse currently-resident
        chunks (its artifact is warm).  The victim is the youngest
        running job whose artifact nobody else wants: not the
        contender's, not co-running, and not queued behind it.  The
        victim must also be *younger* than the contender -- a requeued
        victim re-enters with a fresh (higher) enqueue index, so it can
        never bounce the job that displaced it (no ping-pong).
        """
        if not queue or not state.running:
            return None
        warm = state.warm_artifacts()
        hot = [job for job in queue if job.artifact in warm]
        if not hot:
            return None
        contender = min(hot, key=lambda job: job.enqueue_index)
        running_counts: dict = {}
        for job in state.running:
            running_counts[job.artifact] = \
                running_counts.get(job.artifact, 0) + 1
        queued_artifacts = {job.artifact for job in queue}
        victims = [
            job for job in state.running
            if job.artifact != contender.artifact
            and running_counts[job.artifact] == 1
            and job.artifact not in queued_artifacts
            and job.enqueue_index > contender.enqueue_index
        ]
        if not victims:
            return None
        return max(victims, key=lambda job: job.enqueue_index)


#: Registry used by the CLI and the policy sweep.
POLICIES = {
    policy.name: policy
    for policy in (FifoPolicy, FairSharePolicy, CacheAwarePolicy)
}

POLICY_NAMES = tuple(POLICIES)


def get_policy(spec: Union[str, SchedulerPolicy]) -> SchedulerPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(spec, SchedulerPolicy):
        return spec
    try:
        return POLICIES[spec]()
    except KeyError:
        raise ProfilingError(
            f"unknown scheduler policy {spec!r}; "
            f"known: {sorted(POLICIES)}") from None
