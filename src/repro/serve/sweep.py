"""Policy sweeps: one trace, every scheduler, side by side.

Reuses the exec layer's executor abstraction
(:func:`repro.exec.executors.resolve_executor`) so policy runs fan out
exactly like profiling jobs do, with results always in submission
order, so a concurrent sweep renders byte-identically to a serial one.
Note the executor is a *determinism* lever, not a speed lever: service
reports carry live plans (step lambdas) that cannot pickle back from a
process pool, so process specs are downgraded to a thread pool -- and
the DES is pure Python, so threads serialize on the GIL anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.backends.base import Environment
from repro.core.frame import Frame
from repro.exec.executors import (ExecutorSpec, ProcessExecutor,
                                  ThreadExecutor, resolve_executor)
from repro.serve.doctor import diagnose_service
from repro.serve.jobs import JobSpec
from repro.serve.policies import POLICY_NAMES
from repro.serve.service import PreprocessingService, ServiceReport


@dataclass(frozen=True)
class _PolicyPayload:
    """One policy run, picklable for process pools."""

    policy: str
    jobs: tuple
    slots: int
    environment: Optional[Environment]
    tie_break: Optional[str] = None


def _run_policy(payload: _PolicyPayload) -> ServiceReport:
    service = PreprocessingService(
        policy=payload.policy, slots=payload.slots,
        environment=payload.environment, tie_break=payload.tie_break)
    return service.run(list(payload.jobs))


@dataclass
class PolicySweepResult:
    """Reports for one trace under several policies, submission order."""

    reports: list[ServiceReport] = field(default_factory=list)

    def report(self, policy: str) -> ServiceReport:
        for report in self.reports:
            if report.policy == policy:
                return report
        raise KeyError(f"no report for policy {policy!r}")

    def frame(self) -> Frame:
        """One comparison row per policy."""
        records = []
        for report in self.reports:
            diagnosis = diagnose_service(report)
            records.append({
                "policy": report.policy,
                "makespan_s": report.makespan,
                "aggregate_sps": report.aggregate_sps,
                "p99_epoch_s": report.p99_epoch_seconds,
                "mean_queue_s": report.mean_queue_delay,
                "cache_hit": report.cache_hit_ratio,
                "offline_runs": report.offline_runs,
                "deduped": report.offline_deduped,
                "slo_viol": report.total_slo_violations,
                "bound": diagnosis.dominant,
            })
        return Frame.from_records(records)

    def best_policy(self) -> str:
        """Highest aggregate throughput (ties: first submitted)."""
        return max(self.reports,
                   key=lambda report: report.aggregate_sps).policy


def sweep_policies(jobs: Sequence[JobSpec],
                   policies: Sequence[str] = POLICY_NAMES,
                   slots: int = 2,
                   environment: Optional[Environment] = None,
                   executor: ExecutorSpec = None,
                   tie_break: Optional[str] = None) -> PolicySweepResult:
    """Run ``jobs`` under every policy; results in ``policies`` order."""
    payloads = [_PolicyPayload(policy=policy, jobs=tuple(jobs),
                               slots=slots, environment=environment,
                               tie_break=tie_break)
                for policy in policies]
    resolved = resolve_executor(executor)
    if isinstance(resolved, ProcessExecutor):
        # Service reports carry live plans (step lambdas) and do not
        # pickle back across process boundaries; run on threads instead,
        # exactly like the sweep engine downgrades non-portable jobs.
        resolved = ThreadExecutor(resolved.jobs)
    reports = resolved.map(_run_policy, payloads)
    return PolicySweepResult(reports=list(reports))
