"""Multi-tenant preprocessing service: traces, schedulers, co-simulation.

The serving layer turns the single-job profiler into a cluster-level
what-if engine (paper Sec. 7 made executable): J tenant jobs run as
concurrent discrete-event processes on one shared storage cluster, page
cache and CPU pool, under a pluggable scheduler policy.

Quickstart::

    from repro.serve import PreprocessingService, bursty_trace

    trace = bursty_trace(tenants=8, seed=0)
    report = PreprocessingService(policy="cache-aware", slots=2).run(trace)
    print(report.aggregate_sps, report.total_slo_violations)

CLI surface: ``presto serve --tenants 8 --policy cache-aware --seed 0``.
"""

from repro.serve.doctor import (ServiceDiagnosis, ServiceFinding,
                                cluster_fractions, diagnose_service)
from repro.serve.fanout import (fan_out_frame_simulated, fan_out_trace,
                                simulate_fan_out)
from repro.serve.jobs import (DEFAULT_PIPELINE_MIX, TRACE_KINDS, JobSpec,
                              bursty_trace, diurnal_trace, generate_trace,
                              inject_faults, operations_trace,
                              poisson_trace, steady_trace, with_epochs)
from repro.serve.policies import (POLICIES, POLICY_NAMES, CacheAwarePolicy,
                                  FairSharePolicy, FifoPolicy,
                                  SchedulerPolicy, get_policy)
from repro.serve.service import (PreprocessingService, ServiceReport,
                                 TenantJob, percentile)
from repro.serve.sweep import PolicySweepResult, sweep_policies

__all__ = [
    "CacheAwarePolicy",
    "DEFAULT_PIPELINE_MIX",
    "FairSharePolicy",
    "FifoPolicy",
    "JobSpec",
    "POLICIES",
    "POLICY_NAMES",
    "PolicySweepResult",
    "PreprocessingService",
    "SchedulerPolicy",
    "ServiceDiagnosis",
    "ServiceFinding",
    "ServiceReport",
    "TRACE_KINDS",
    "TenantJob",
    "bursty_trace",
    "cluster_fractions",
    "diagnose_service",
    "diurnal_trace",
    "fan_out_frame_simulated",
    "fan_out_trace",
    "generate_trace",
    "get_policy",
    "inject_faults",
    "percentile",
    "operations_trace",
    "poisson_trace",
    "simulate_fan_out",
    "steady_trace",
    "sweep_policies",
    "with_epochs",
]
