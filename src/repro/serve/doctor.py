"""Cluster-level bottleneck attribution for the serving layer.

A single-job diagnosis answers "where does *this* strategy's epoch time
go?".  A service run needs the cluster-level version: across J tenants
sharing one storage cluster, page cache and CPU pool, which shared
resource is binding, and what operational levers (policy, slots,
hardware) would move it?  :func:`diagnose_service` aggregates every
tenant epoch's :class:`~repro.sim.trace.ResourceTrace` into one
cluster attribution and derives ranked findings from the service
counters -- the kind of verdicts a cluster operator acts on
("metadata service saturated by tenant churn", "duplicate offline
preprocessing", "shared read link saturated").

:class:`~repro.diagnosis.doctor.BottleneckDoctor` exposes this as
``diagnose_service(report)``, so the single-job and cluster-level
paths share one entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.backends.base import Environment
from repro.errors import DiagnosisError
from repro.serve.service import ServiceReport
from repro.sim.trace import TRACE_CATEGORIES
from repro.units import fmt_bytes


@dataclass(frozen=True)
class ServiceFinding:
    """One ranked cluster-level verdict with its supporting numbers."""

    kind: str
    severity: float          # 0..1-ish ranking score, higher is worse
    detail: str

    def describe(self) -> str:
        return f"{self.kind}: {self.detail}"

    def to_dict(self) -> dict:
        return {"kind": self.kind, "severity": self.severity,
                "detail": self.detail}


@dataclass
class ServiceDiagnosis:
    """Cluster attribution plus ranked findings for one service run."""

    policy: str
    #: Thread-time fractions over all tenant epochs; sums to 1.0.
    fractions: dict = field(default_factory=dict)
    findings: list[ServiceFinding] = field(default_factory=list)

    @property
    def dominant(self) -> str:
        return max(self.fractions, key=self.fractions.get)

    @property
    def top_finding(self) -> ServiceFinding:
        if not self.findings:
            raise DiagnosisError("no findings in this diagnosis")
        return self.findings[0]

    def describe(self) -> str:
        shares = ", ".join(f"{name} {value:.0%}"
                           for name, value in self.fractions.items())
        return f"bound on {self.dominant} ({shares})"

    def to_markdown(self) -> str:
        lines = [f"cluster diagnosis [{self.policy}]: {self.describe()}"]
        for rank, finding in enumerate(self.findings, start=1):
            lines.append(f"  {rank}. {finding.describe()}")
        if not self.findings:
            lines.append("  (no cluster-level pressure detected)")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Machine-readable export (the uniform doctor schema)."""
        return {
            "doctor": "service",
            "policy": self.policy,
            "dominant": self.dominant,
            "fractions": dict(self.fractions),
            "findings": [finding.to_dict() for finding in self.findings],
        }


def cluster_fractions(report: ServiceReport) -> dict:
    """Merge every tenant epoch trace into one attribution.

    Unlike :meth:`ResourceTrace.merged` this tolerates heterogeneous
    thread widths: each epoch contributes its own wall x threads budget.
    """
    totals = {category: 0.0 for category in TRACE_CATEGORIES}
    budget = 0.0
    for trace in report.epoch_traces():
        budget += trace.total_thread_seconds
        for category in TRACE_CATEGORIES:
            totals[category] += getattr(trace, f"{category}_seconds")
    if budget <= 0:
        return {"cpu": 0.0, "storage": 0.0, "decode": 0.0, "stall": 1.0}
    cpu = (totals["cpu"] + totals["gil"]) / budget
    storage = (totals["open"] + totals["read"] + totals["memory"]) / budget
    decode = totals["decode"] / budget
    accounted = cpu + storage + decode
    if accounted > 1.0:
        cpu, storage, decode = (value / accounted
                                for value in (cpu, storage, decode))
        accounted = 1.0
    return {"cpu": cpu, "storage": storage, "decode": decode,
            "stall": 1.0 - accounted}


def _open_fraction(report: ServiceReport) -> float:
    budget = opens = 0.0
    for trace in report.epoch_traces():
        budget += trace.total_thread_seconds
        opens += trace.open_seconds
    return opens / budget if budget > 0 else 0.0


def _gil_fraction(report: ServiceReport) -> float:
    budget = gil = 0.0
    for trace in report.epoch_traces():
        budget += trace.total_thread_seconds
        gil += trace.gil_seconds
    return gil / budget if budget > 0 else 0.0


def diagnose_service(report: ServiceReport,
                     environment: Optional[Environment] = None,
                     ) -> ServiceDiagnosis:
    """Attribute a service run's thread-time and rank shared-resource
    findings (highest severity first, ties broken by kind)."""
    if not report.tenants:
        raise DiagnosisError("cannot diagnose an empty service report")
    environment = environment or report.environment
    storage = environment.storage
    fractions = cluster_fractions(report)
    findings: list[ServiceFinding] = []

    # Scheduler queue pressure: tenants spend the service window waiting.
    if report.makespan > 0:
        queue_share = report.mean_queue_delay / report.makespan
        if queue_share > 0.15:
            findings.append(ServiceFinding(
                "queue-pressure", min(queue_share, 1.0),
                f"tenants wait {queue_share:.0%} of the service window "
                f"for one of {report.slots} slots; add slots or "
                f"rebalance the trace"))

    # Metadata service saturated by tenant churn (file-per-sample jobs).
    open_share = _open_fraction(report)
    if open_share > 0.15:
        findings.append(ServiceFinding(
            "metadata-saturation", min(open_share * 1.5, 1.0),
            f"metadata service saturated by tenant churn: "
            f"{report.files_opened:,} opens, {open_share:.0%} of "
            f"thread-time queued on {storage.metadata_slots} MDS slots"))

    # Shared read link utilisation over the whole window.
    if report.makespan > 0:
        link_util = (report.bytes_from_storage
                     / (storage.aggregate_bw * report.makespan))
        if link_util > 0.5:
            findings.append(ServiceFinding(
                "read-link-saturation", min(link_util, 1.0),
                f"shared read link at {link_util:.0%} of "
                f"{fmt_bytes(storage.aggregate_bw)}/s aggregate over the "
                f"window; co-locate cache sharers or add bandwidth"))

    # Page-cache thrash: many tenants, evictions, low hit ratio.
    if (len(report.tenants) > 1 and report.page_cache_evictions > 0
            and report.cache_hit_ratio < 0.5):
        findings.append(ServiceFinding(
            "cache-thrash", 0.6 - report.cache_hit_ratio / 2,
            f"shared page cache thrashes: {report.page_cache_evictions:,} "
            f"evictions, hit ratio {report.cache_hit_ratio:.0%}; the "
            f"tenants' combined working set exceeds RAM"))

    # Duplicate offline preprocessing under non-sharing policies.
    unique_artifacts = len({job.artifact for job in report.tenants
                            if job.offline is not None})
    duplicates = report.offline_runs - unique_artifacts
    if duplicates > 0:
        findings.append(ServiceFinding(
            "duplicate-offline", min(0.2 + duplicates * 0.1, 0.9),
            f"{duplicates} duplicate offline materialisation(s) of "
            f"identical artifacts; the cache-aware policy dedupes them"))

    # GIL-bound tenants serialize the whole pool.
    gil_share = _gil_fraction(report)
    if gil_share > 0.25:
        findings.append(ServiceFinding(
            "gil-serialization", min(gil_share, 1.0),
            f"external (GIL-holding) steps occupy {gil_share:.0%} of "
            f"thread-time across tenants; co-scheduling GIL-bound jobs "
            f"serializes the shared pool"))

    # Chaos-engine windows (repro.faults).  Gated on fault_events, so
    # fault-free diagnoses are byte-identical to pre-faults builds.
    # Each finding anchors a predicted impact to the injected magnitude
    # (the analytic stretch factor inside the window), so the operator
    # sees what the degradation *costs*, not just that it happened.
    if report.fault_events:
        window_span = report.makespan if report.makespan > 0 else None

        brownouts = [event for event in report.fault_events
                     if event.kind in ("brownout", "blackout")]
        if brownouts:
            dark = sum(event.end - event.start for event in brownouts)
            worst = max(event.magnitude for event in brownouts)
            share = dark / window_span if window_span else 0.0
            aborted = (f", {report.transfers_aborted} in-flight "
                       f"transfer(s) aborted"
                       if report.transfers_aborted else "")
            findings.append(ServiceFinding(
                "brownout-detected", min(0.3 + share, 1.0),
                f"storage tier degraded for {dark:.0f}s across "
                f"{len(brownouts)} window(s) (worst 1/{worst:g} of "
                f"nominal capacity{aborted}); storage-bound epochs "
                f"inside the windows stretch up to {worst:.1f}x -- "
                f"enable SLO-aware shedding and brownout-stretched "
                f"retry backoff"))

        stragglers = [event for event in report.fault_events
                      if event.kind == "straggler"]
        if stragglers:
            slow = sum(event.end - event.start for event in stragglers)
            worst_cores = max(int(event.magnitude)
                              for event in stragglers)
            cores = environment.cores
            remaining = max(cores - worst_cores, 1)
            stretch = cores / remaining
            share = slow / window_span if window_span else 0.0
            findings.append(ServiceFinding(
                "straggler-detected", min(0.25 + share, 1.0),
                f"straggling worker(s) park up to {worst_cores} of "
                f"{cores} cores for {slow:.0f}s; CPU-bound epochs "
                f"stretch up to {stretch:.2f}x inside the windows -- "
                f"rebalance the trace or let the autoscaler add slots"))

        slowdowns = [event for event in report.fault_events
                     if event.kind == "slowdown"]
        if slowdowns:
            degraded = sum(event.end - event.start for event in slowdowns)
            worst = max(event.magnitude for event in slowdowns)
            share = degraded / window_span if window_span else 0.0
            findings.append(ServiceFinding(
                "device-degraded", min(0.2 + share, 1.0),
                f"read-link device degraded for {degraded:.0f}s "
                f"(worst 1/{worst:g} of nominal bandwidth); I/O-bound "
                f"epochs stretch up to {worst:.1f}x inside the windows "
                f"-- prefer cache-resident tenants while degraded"))

    # CPU pool oversubscription.
    if fractions["cpu"] > 0.5 and len(report.tenants) > report.slots:
        findings.append(ServiceFinding(
            "cpu-pool-saturation", fractions["cpu"],
            f"CPU pool is the binding resource ({fractions['cpu']:.0%} "
            f"of thread-time) with {len(report.tenants)} tenants on "
            f"{environment.cores} cores; scale cores before slots"))

    findings.sort(key=lambda finding: (-finding.severity, finding.kind))
    return ServiceDiagnosis(policy=report.policy, fractions=fractions,
                            findings=findings)
