"""Fan-out via co-simulation: the DES successor of ``estimate_fan_out``.

:func:`repro.core.distributed.estimate_fan_out` answers the paper's
Sec. 7 question ("what happens when T4 is fanned out to J trainers?")
with a closed-form link bound.  The serving layer can now *simulate*
the same scenario: J identical tenants reading one pre-materialised
dataset through the shared storage cluster, each as a DES process.  The
closed form survives as the optimistic upper bound the simulation is
cross-checked against -- in the uncontended single-tenant limit the two
agree (see ``tests/serve/test_crosscheck.py``); under real fan-out the
simulation additionally charges metadata queueing and CPU-pool
contention the formula cannot see.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.backends.base import Environment, RunConfig
from repro.backends.simulated import SimulatedBackend
from repro.core.distributed import estimate_fan_out
from repro.core.frame import Frame
from repro.errors import ProfilingError
from repro.pipelines.base import SplitPlan
from repro.serve.jobs import JobSpec
from repro.serve.service import PreprocessingService, ServiceReport


def fan_out_trace(plan: SplitPlan, config: RunConfig,
                  trainers: int) -> list[JobSpec]:
    """J identical trainer jobs, all arriving at t=0."""
    if trainers < 1:
        raise ProfilingError("need at least one trainer")
    spec = JobSpec(
        tenant="trainer-0", pipeline=plan.pipeline.name,
        split=plan.strategy_name, arrival=0.0, epochs=config.epochs,
        threads=config.threads, compression=config.compression,
        slo_stretch=None)
    return [replace(spec, tenant=f"trainer-{index}")
            for index in range(trainers)]


def simulate_fan_out(plan: SplitPlan, config: RunConfig, trainers: int,
                     environment: Optional[Environment] = None,
                     ) -> ServiceReport:
    """Serve ``trainers`` concurrent copies of one strategy.

    The dataset is treated as already materialised (the paper's fan-out
    scenario serves a finished T4 representation), every trainer gets a
    slot immediately, and -- matching the closed form's "duplicated
    load" assumption -- trainers read *private* dataset copies, so no
    page-cache sharing hides the duplicated traffic.
    """
    service = PreprocessingService(
        policy="fifo", slots=trainers, environment=environment,
        materialize_offline=False)
    return service.run(fan_out_trace(plan, config, trainers))


def fan_out_frame_simulated(plan: SplitPlan, config: RunConfig,
                            trainer_counts: Sequence[int] = (1, 2, 4, 8),
                            environment: Optional[Environment] = None,
                            stats: Optional[dict] = None,
                            ) -> Frame:
    """Analytic bound vs co-simulated delivery across fan-out widths.

    One row per trainer count: the closed-form per-trainer bound
    (``analytic_sps``), the simulated mean per-trainer delivery
    (``simulated_sps``) and their ratio.  A ratio well under 1.0 is the
    contention the formula cannot see (metadata queueing, CPU pool).

    When a ``stats`` dict is supplied, ``stats["events_processed"]``
    accumulates the kernel events of every simulation this runs (the
    single-job calibration plus one service run per trainer count) --
    the declarative API's cost accounting.
    """
    single = SimulatedBackend(environment).run(plan, config)
    single_job_sps = single.throughput
    events = single.events_processed
    records = []
    for trainers in trainer_counts:
        analytic = estimate_fan_out(plan, config, trainers,
                                    single_job_sps,
                                    environment=environment)
        report = simulate_fan_out(plan, config, trainers,
                                  environment=environment)
        events += report.events_processed
        simulated = (sum(job.throughput for job in report.tenants)
                     / len(report.tenants))
        records.append({
            "trainers": trainers,
            "analytic_sps": round(analytic.delivered_sps, 1),
            "simulated_sps": round(simulated, 1),
            "ratio": round(simulated / analytic.delivered_sps, 3)
            if analytic.delivered_sps > 0 else 0.0,
            "network_bound": analytic.network_is_bottleneck,
        })
    if stats is not None:
        stats["events_processed"] = events
    return Frame.from_records(records)
