"""Job specifications and arrival-trace generators for the service.

A multi-tenant preprocessing service is driven by a *trace*: a list of
:class:`JobSpec` records, one per tenant job, each naming a pipeline, a
preprocessing strategy (the representation to materialise), an arrival
time and execution knobs.  Traces are generated deterministically from a
seed so every service simulation -- and therefore every golden output --
is reproducible bit-for-bit.

Four load shapes cover the scenarios the paper's Sec. 7 discussion and
the data-stall literature care about:

* ``steady``  -- evenly spaced arrivals, mixed pipelines; the baseline.
* ``bursty``  -- tenants arrive in tight bursts and most of a burst
  wants the *same* (pipeline, strategy) artifact, so offline dedup and
  cache co-location have something to win.
* ``diurnal`` -- arrivals follow a sinusoidal day/night intensity curve,
  producing alternating contention peaks and idle valleys.
* ``poisson`` -- memoryless arrivals with exponential inter-arrival
  gaps, the M/G/k reference shape for queueing-style studies.
* ``operations`` -- the long-horizon shape: several diurnal "days" of
  load with seeded burst mornings, the operations-review timeline the
  chaos engine (:mod:`repro.faults`) injects fault windows into.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.backends.base import CACHE_SYSTEM, RunConfig
from repro.errors import ProfilingError
from repro.pipelines.base import SplitPlan

#: Trace shapes understood by :func:`generate_trace`.
TRACE_KINDS = ("steady", "bursty", "diurnal", "poisson", "operations")

#: Default pipeline mix for generated traces (small/medium datasets so
#: service simulations stay fast; all are registry-reconstructible).
DEFAULT_PIPELINE_MIX = ("MP3", "FLAC", "CV2-JPG", "NILM")


@dataclass(frozen=True)
class JobSpec:
    """One tenant's training job as submitted to the service.

    ``split`` names the representation the job materialises offline
    (the strategy); ``priority`` weights fair-share scheduling;
    ``slo_stretch`` defines the epoch-time SLO as a multiple of the
    uncontended analytic epoch time (``None`` disables SLO tracking).
    """

    tenant: str
    pipeline: str
    split: str
    arrival: float = 0.0
    epochs: int = 2
    threads: int = 8
    compression: Optional[str] = None
    priority: float = 1.0
    slo_stretch: Optional[float] = 2.5
    #: Fault injection: crash at the start of this epoch (``None`` = never).
    #: Only the control plane (:mod:`repro.ctl`) honours these fields; the
    #: plain service ignores them, so existing traces stay byte-identical.
    crash_epoch: Optional[int] = None
    #: The crash fires on the first this-many execution attempts, after
    #: which the job runs clean -- the transient-fault shape that lets a
    #: retry policy actually rescue the job.
    crash_attempts: int = 1

    def __post_init__(self):
        if self.arrival < 0:
            raise ProfilingError(
                f"job {self.tenant!r}: negative arrival time")
        if self.priority <= 0:
            raise ProfilingError(
                f"job {self.tenant!r}: priority must be positive")
        if self.slo_stretch is not None and self.slo_stretch <= 0:
            raise ProfilingError(
                f"job {self.tenant!r}: slo_stretch must be positive")
        if self.crash_epoch is not None and self.crash_epoch < 0:
            raise ProfilingError(
                f"job {self.tenant!r}: crash_epoch must be >= 0")
        if self.crash_attempts < 1:
            raise ProfilingError(
                f"job {self.tenant!r}: crash_attempts must be >= 1")

    @property
    def artifact(self) -> tuple:
        """Content identity of the materialised dataset this job reads.

        Jobs with equal artifacts produce byte-identical offline output,
        so a cache-aware scheduler may legally deduplicate them.
        """
        return (self.pipeline, self.split, self.compression)

    def run_config(self) -> RunConfig:
        """The per-job run configuration inside the service.

        The service owns one shared page cache that persists across
        epochs and tenants, so jobs always run under system caching.
        """
        return RunConfig(threads=self.threads, epochs=self.epochs,
                         compression=self.compression,
                         cache_mode=CACHE_SYSTEM)

    def resolve_plan(self) -> SplitPlan:
        """Build the split plan from the pipeline registry."""
        from repro.pipelines.registry import get_pipeline
        plan = get_pipeline(self.pipeline).split_at(self.split)
        if plan.is_unprocessed and self.compression:
            raise ProfilingError(
                f"job {self.tenant!r}: compression on the unprocessed "
                "strategy is not meaningful (paper Sec. 4.3)")
        return plan

    def describe(self) -> str:
        return (f"{self.tenant}: {self.pipeline}/{self.split} "
                f"@{self.arrival:.0f}s x{self.epochs} epochs "
                f"(prio {self.priority:g})")


def _materialized_split(rng: random.Random, pipeline_name: str,
                        unprocessed_share: float = 0.15) -> str:
    """Pick a strategy: usually a materialised split, sometimes raw."""
    from repro.pipelines.registry import get_pipeline
    names = get_pipeline(pipeline_name).strategy_names()
    if len(names) > 1 and rng.random() >= unprocessed_share:
        return rng.choice(names[1:])
    return names[0]


def _priority(rng: random.Random) -> float:
    """Most tenants are best-effort; every fourth-ish is premium."""
    return rng.choice((1.0, 1.0, 1.0, 2.0))


def steady_trace(tenants: int, seed: int = 0,
                 pipelines: Sequence[str] = DEFAULT_PIPELINE_MIX,
                 interval: float = 120.0, epochs: int = 2,
                 threads: int = 8,
                 jobs_per_tenant: int = 1) -> list[JobSpec]:
    """Evenly spaced arrivals over a mixed pipeline population.

    ``jobs_per_tenant > 1`` makes each tenant resubmit across rounds
    (``tenant-i`` reappears every ``tenants`` arrivals) -- the repeat
    customers that give fair-share scheduling a consumed-service
    history to balance against.
    """
    _validate(tenants, pipelines, jobs_per_tenant)
    rng = random.Random(seed)
    jobs = []
    for index in range(tenants * jobs_per_tenant):
        pipeline = rng.choice(tuple(pipelines))
        jobs.append(JobSpec(
            tenant=f"tenant-{index % tenants}", pipeline=pipeline,
            split=_materialized_split(rng, pipeline),
            arrival=index * interval, epochs=epochs, threads=threads,
            priority=_priority(rng)))
    return jobs


def bursty_trace(tenants: int, seed: int = 0,
                 pipelines: Sequence[str] = DEFAULT_PIPELINE_MIX,
                 burst_size: int = 4, burst_gap: float = 900.0,
                 hot_share: float = 0.75, epochs: int = 2,
                 threads: int = 8,
                 jobs_per_tenant: int = 1,
                 hot_pipeline: Optional[str] = None,
                 hot_split: Optional[str] = None) -> list[JobSpec]:
    """Tight arrival bursts with a *hot* shared artifact.

    ``hot_share`` of every burst requests the same (pipeline, strategy)
    pair -- the many-users-one-dataset pattern where cross-tenant cache
    sharing and offline dedup pay off.  ``jobs_per_tenant > 1`` cycles
    the tenant population through later bursts.

    The hot artifact defaults to a seeded pick of the most-processed
    strategy; ``hot_pipeline``/``hot_split`` pin it instead (e.g. the
    raw CV2-PNG dataset, whose working set exceeds the page cache --
    the storage-thrashing regime the perf suite stresses at scale).
    """
    _validate(tenants, pipelines, jobs_per_tenant)
    if burst_size < 1:
        raise ProfilingError("burst_size must be >= 1")
    rng = random.Random(seed)
    rng_hot = rng.choice(tuple(pipelines))
    if hot_pipeline is None:
        hot_pipeline = rng_hot
    from repro.pipelines.registry import get_pipeline
    if hot_split is None:
        hot_split = get_pipeline(hot_pipeline).strategy_names()[-1]
    elif hot_split not in get_pipeline(hot_pipeline).strategy_names():
        raise ProfilingError(
            f"unknown strategy {hot_split!r} for pipeline {hot_pipeline!r}")
    jobs = []
    for index in range(tenants * jobs_per_tenant):
        burst = index // burst_size
        arrival = burst * burst_gap + (index % burst_size) * 1.0
        if rng.random() < hot_share:
            pipeline, split = hot_pipeline, hot_split
        else:
            pipeline = rng.choice(tuple(pipelines))
            split = _materialized_split(rng, pipeline)
        jobs.append(JobSpec(
            tenant=f"tenant-{index % tenants}", pipeline=pipeline,
            split=split, arrival=arrival, epochs=epochs, threads=threads,
            priority=_priority(rng)))
    return jobs


def diurnal_trace(tenants: int, seed: int = 0,
                  pipelines: Sequence[str] = DEFAULT_PIPELINE_MIX,
                  period: float = 7200.0, epochs: int = 2,
                  threads: int = 8,
                  jobs_per_tenant: int = 1) -> list[JobSpec]:
    """Arrivals drawn from a sinusoidal day/night intensity curve.

    The ``period`` is divided into 24 "hours" whose arrival weight is
    ``1 + sin``-shaped, peaking mid-period; tenants cluster in the peak
    hours and leave the valleys nearly idle.
    """
    _validate(tenants, pipelines, jobs_per_tenant)
    import math
    rng = random.Random(seed)
    buckets = 24
    bucket_len = period / buckets
    weights = [1.0 + math.sin(2 * math.pi * (hour + 0.5) / buckets -
                              math.pi / 2) for hour in range(buckets)]
    arrivals = sorted(
        rng.choices(range(buckets), weights=weights, k=1)[0] * bucket_len
        + rng.random() * bucket_len
        for _ in range(tenants * jobs_per_tenant))
    jobs = []
    for index, arrival in enumerate(arrivals):
        pipeline = rng.choice(tuple(pipelines))
        jobs.append(JobSpec(
            tenant=f"tenant-{index % tenants}", pipeline=pipeline,
            split=_materialized_split(rng, pipeline),
            arrival=arrival, epochs=epochs, threads=threads,
            priority=_priority(rng)))
    return jobs


def poisson_trace(tenants: int, seed: int = 0,
                  pipelines: Sequence[str] = DEFAULT_PIPELINE_MIX,
                  interval: float = 120.0, epochs: int = 2,
                  threads: int = 8,
                  jobs_per_tenant: int = 1) -> list[JobSpec]:
    """Memoryless arrivals: exponential gaps at mean ``interval``.

    Same mean load as ``steady`` but with the clumping a Poisson
    process produces -- short pile-ups and long quiet gaps, the
    canonical open-loop arrival model.  The pipeline mix is drawn from
    the same RNG stream *after* each gap, so the schedule and the mix
    are reproducible together from the seed alone.
    """
    _validate(tenants, pipelines, jobs_per_tenant)
    if interval <= 0:
        raise ProfilingError("interval must be positive")
    rng = random.Random(seed)
    arrival = 0.0
    jobs = []
    for index in range(tenants * jobs_per_tenant):
        arrival += rng.expovariate(1.0 / interval)
        pipeline = rng.choice(tuple(pipelines))
        jobs.append(JobSpec(
            tenant=f"tenant-{index % tenants}", pipeline=pipeline,
            split=_materialized_split(rng, pipeline),
            arrival=arrival, epochs=epochs, threads=threads,
            priority=_priority(rng)))
    return jobs


def operations_trace(tenants: int, seed: int = 0,
                     pipelines: Sequence[str] = DEFAULT_PIPELINE_MIX,
                     days: int = 3, day_length: float = 7200.0,
                     epochs: int = 2, threads: int = 8,
                     jobs_per_tenant: int = 2) -> list[JobSpec]:
    """Days of diurnal load with a seeded burst each "morning".

    The long-horizon operations timeline: each of ``days`` simulated
    days carries one diurnal round of arrivals (same sinusoidal
    intensity as ``diurnal``) plus a tight morning burst that re-submits
    the day's first tenants against a shared hot artifact.  Tenants
    recur across days, so fair-share history, cache warmth and -- with a
    fault plan attached -- recovery costs all accumulate over a horizon
    long enough for brownout/straggler windows to land mid-load.
    """
    _validate(tenants, pipelines, jobs_per_tenant)
    if days < 1:
        raise ProfilingError("need at least one day")
    if day_length <= 0:
        raise ProfilingError("day_length must be positive")
    import math
    rng = random.Random(seed)
    buckets = 24
    bucket_len = day_length / buckets
    weights = [1.0 + math.sin(2 * math.pi * (hour + 0.5) / buckets -
                              math.pi / 2) for hour in range(buckets)]
    hot_pipeline = rng.choice(tuple(pipelines))
    from repro.pipelines.registry import get_pipeline
    hot_split = get_pipeline(hot_pipeline).strategy_names()[-1]
    jobs = []
    index = 0
    per_day = tenants * jobs_per_tenant
    burst_size = max(1, min(per_day, tenants // 2))
    for day in range(days):
        day_start = day * day_length
        # The morning burst: a quarter into the day, burst_size tenants
        # hit the shared hot artifact within seconds of each other.
        for slot in range(burst_size):
            jobs.append(JobSpec(
                tenant=f"tenant-{index % tenants}",
                pipeline=hot_pipeline, split=hot_split,
                arrival=day_start + 0.25 * day_length + slot * 1.0,
                epochs=epochs, threads=threads,
                priority=_priority(rng)))
            index += 1
        # The diurnal background load for the rest of the day.
        arrivals = sorted(
            rng.choices(range(buckets), weights=weights, k=1)[0]
            * bucket_len + rng.random() * bucket_len
            for _ in range(per_day - burst_size))
        for arrival in arrivals:
            pipeline = rng.choice(tuple(pipelines))
            jobs.append(JobSpec(
                tenant=f"tenant-{index % tenants}", pipeline=pipeline,
                split=_materialized_split(rng, pipeline),
                arrival=day_start + arrival, epochs=epochs,
                threads=threads, priority=_priority(rng)))
            index += 1
    jobs.sort(key=lambda job: job.arrival)
    return jobs


_GENERATORS = {
    "steady": steady_trace,
    "bursty": bursty_trace,
    "diurnal": diurnal_trace,
    "poisson": poisson_trace,
    "operations": operations_trace,
}


def generate_trace(kind: str, tenants: int, seed: int = 0,
                   fault_rate: float = 0.0, fault_attempts: int = 2,
                   **kwargs) -> list[JobSpec]:
    """Generate a named trace shape (see :data:`TRACE_KINDS`).

    ``fault_rate`` marks that fraction of jobs (seeded, independent of
    the arrival randomness) with a mid-run crash via
    :func:`inject_faults`; at the default 0.0 the trace is byte-for-byte
    what it was before fault injection existed.
    """
    if kind not in _GENERATORS:
        raise ProfilingError(
            f"unknown trace kind {kind!r}; known: {sorted(_GENERATORS)}")
    jobs = _GENERATORS[kind](tenants, seed=seed, **kwargs)
    if fault_rate:
        jobs = inject_faults(jobs, fault_rate, seed=seed,
                             max_crash_attempts=fault_attempts)
    return jobs


def inject_faults(jobs: Sequence[JobSpec], fault_rate: float,
                  seed: int = 0,
                  max_crash_attempts: int = 2) -> list[JobSpec]:
    """Seed a fraction of ``jobs`` with a mid-run crash.

    Each selected job gets a ``crash_epoch`` drawn uniformly over its
    epochs and a ``crash_attempts`` count in ``[1, max_crash_attempts]``
    -- so some faults are rescued by a single retry while others burn
    through more of the retry budget.  The fault stream uses its own
    namespaced RNG: injecting at rate 0.0 < r <= 1.0 never perturbs the
    arrival/pipeline randomness of the underlying trace.
    """
    if not 0.0 <= fault_rate <= 1.0:
        raise ProfilingError(
            f"fault_rate must be within [0, 1], got {fault_rate!r}")
    if max_crash_attempts < 1:
        raise ProfilingError("max_crash_attempts must be >= 1")
    rng = random.Random(f"faults-{seed}")
    out = []
    for job in jobs:
        if rng.random() < fault_rate:
            out.append(replace(
                job, crash_epoch=rng.randrange(max(job.epochs, 1)),
                crash_attempts=rng.randint(1, max_crash_attempts)))
        else:
            out.append(job)
    return out


def with_epochs(jobs: Sequence[JobSpec], epochs: int) -> list[JobSpec]:
    """A copy of ``jobs`` with every epoch count replaced."""
    return [replace(job, epochs=epochs) for job in jobs]


def _validate(tenants: int, pipelines: Sequence[str],
              jobs_per_tenant: int = 1) -> None:
    if tenants < 1:
        raise ProfilingError("need at least one tenant")
    if not pipelines:
        raise ProfilingError("need at least one candidate pipeline")
    if jobs_per_tenant < 1:
        raise ProfilingError("need at least one job per tenant")
