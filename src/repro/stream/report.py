"""Measurement records and the report for one streaming service run.

The streaming layer is latency-shaped where the serve layer is
throughput-shaped: the unit of measurement is one *request* (a batched
inference read), and the headline metrics are per-tenant p50/p99
request latency and the deadline-miss fraction, not epoch makespans.
Latency is measured from the request's *intended* arrival time, so
backpressure delay upstream of the queue counts against the SLO --
a blocked client is a slow client.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.backends.base import Environment
from repro.errors import ProfilingError
from repro.serve.service import percentile
from repro.stream.requests import StreamTenantSpec


@dataclass
class RequestRecord:
    """Lifecycle of one request through the stream simulation.

    ``arrival`` is the scheduled (intended) arrival; ``enqueued`` is
    when the request was actually admitted (later under backpressure);
    ``started``/``completed`` bracket service.  Exactly one of
    ``completed``/``shed`` is set for every request after a run.
    """

    index: int
    arrival: float
    batch: int
    chunk: int
    pinned: Optional[int] = None   # sharded-dispatch worker affinity
    worker: int = -1               # worker that actually served it
    enqueued: Optional[float] = None
    started: Optional[float] = None
    completed: Optional[float] = None
    shed: bool = False
    deadline: Optional[float] = None   # latency budget in seconds

    @property
    def terminal(self) -> bool:
        return self.shed or self.completed is not None

    @property
    def latency(self) -> Optional[float]:
        """Intended-arrival-to-completion seconds (None until done)."""
        if self.completed is None:
            return None
        return self.completed - self.arrival

    @property
    def queue_wait(self) -> Optional[float]:
        if self.started is None:
            return None
        return self.started - self.arrival

    @property
    def service_seconds(self) -> Optional[float]:
        if self.completed is None or self.started is None:
            return None
        return self.completed - self.started

    @property
    def missed(self) -> bool:
        """Deadline violated: shed, or completed past the budget."""
        if self.shed:
            return True
        if self.deadline is None or self.latency is None:
            return False
        return self.latency > self.deadline


@dataclass
class TenantStreamResult:
    """Everything measured about one tenant's request stream."""

    spec: StreamTenantSpec
    records: list = field(default_factory=list)
    #: Records in completion order (the out-of-order evidence).
    completions: list = field(default_factory=list)
    #: Uncontended analytic seconds to serve one batch; the SLO anchor.
    baseline_batch_seconds: Optional[float] = None
    max_queue_depth: int = 0
    bytes_from_storage: float = 0.0
    bytes_from_cache: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Requests shed by the SLO-aware gate under degraded capacity
    #: (a subset of ``shed_count``; queue-overflow sheds are the rest).
    slo_shed: int = 0

    @property
    def deadline_seconds(self) -> Optional[float]:
        """The per-request latency budget at the spec's batch size."""
        if (self.spec.slo_stretch is None
                or self.baseline_batch_seconds is None):
            return None
        return self.spec.slo_stretch * self.baseline_batch_seconds

    @property
    def completed(self) -> list:
        return [record for record in self.records
                if record.completed is not None]

    @property
    def shed_count(self) -> int:
        return sum(1 for record in self.records if record.shed)

    @property
    def latencies(self) -> list:
        return [record.latency for record in self.completed]

    def latency_percentile(self, q: float) -> float:
        latencies = self.latencies
        return percentile(latencies, q) if latencies else 0.0

    @property
    def miss_fraction(self) -> float:
        """Fraction of requests that violated their deadline (shed
        requests count: they never met any SLO)."""
        if not self.records:
            return 0.0
        return sum(1 for record in self.records
                   if record.missed) / len(self.records)

    @property
    def out_of_order(self) -> int:
        """Completions that overtook an earlier-submitted request."""
        overtaken = 0
        frontier = -1
        for record in self.completions:
            if record.index < frontier:
                overtaken += 1
            else:
                frontier = record.index
        return overtaken

    @property
    def makespan(self) -> float:
        done = [record.completed for record in self.completed]
        return max(done) if done else 0.0

    @property
    def throughput_rps(self) -> float:
        """Delivered requests/second over the tenant's active window."""
        window = self.makespan - self.spec.start
        return len(self.completed) / window if window > 0 else 0.0

    @property
    def cache_hit_ratio(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def to_record(self) -> dict:
        """One per-tenant row of the stream report frame."""
        return {
            "tenant": self.spec.tenant,
            "pipeline": self.spec.pipeline,
            "strategy": self.spec.split,
            "arrival": self.spec.arrival,
            "rate_rps": self.spec.rate,
            "reqs": len(self.records),
            "batch": self.spec.batch,
            "p50_lat_s": self.latency_percentile(50),
            "p99_lat_s": self.latency_percentile(99),
            "miss_frac": self.miss_fraction,
            "shed": self.shed_count,
            "ooo": self.out_of_order,
            "max_q": self.max_queue_depth,
            "rps": self.throughput_rps,
            "cache_hit": self.cache_hit_ratio,
        }


@dataclass
class StreamReport:
    """Everything the streaming service measured about one run."""

    environment: Environment
    tenants: list = field(default_factory=list)
    #: Last request completion over the whole run.
    makespan: float = 0.0
    #: Kernel events resolved over the whole co-simulation -- the
    #: machine-independent deterministic cost metric the perf suite
    #: pins (never wall seconds).
    events_processed: int = 0
    bytes_from_storage: float = 0.0
    bytes_from_cache: float = 0.0
    metadata_peak_in_use: int = 0
    page_cache_evictions: int = 0
    #: Wall-clock seconds the host spent running the simulation
    #: (machine-dependent; track the trend, never assert it).
    wall_seconds: float = 0.0
    #: Chaos-engine injections over the run (:mod:`repro.faults`);
    #: empty/zero on every fault-free run.
    fault_events: list = field(default_factory=list)
    transfers_aborted: int = 0

    def provenance(self) -> dict:
        """Uniform run-cost stamp shared by every workload report."""
        return {"events_processed": self.events_processed,
                "wall_seconds": round(self.wall_seconds, 6)}

    @property
    def total_requests(self) -> int:
        return sum(len(tenant.records) for tenant in self.tenants)

    @property
    def total_completed(self) -> int:
        return sum(len(tenant.completed) for tenant in self.tenants)

    @property
    def total_shed(self) -> int:
        return sum(tenant.shed_count for tenant in self.tenants)

    @property
    def total_slo_shed(self) -> int:
        return sum(tenant.slo_shed for tenant in self.tenants)

    @property
    def miss_fraction(self) -> float:
        total = self.total_requests
        if not total:
            return 0.0
        missed = sum(1 for tenant in self.tenants
                     for record in tenant.records if record.missed)
        return missed / total

    @property
    def p99_latency(self) -> float:
        latencies = [latency for tenant in self.tenants
                     for latency in tenant.latencies]
        return percentile(latencies, 99) if latencies else 0.0

    @property
    def cache_hit_ratio(self) -> float:
        total = self.bytes_from_storage + self.bytes_from_cache
        return self.bytes_from_cache / total if total > 0 else 0.0

    def tenant(self, name: str) -> TenantStreamResult:
        for tenant in self.tenants:
            if tenant.spec.tenant == name:
                return tenant
        raise ProfilingError(f"no tenant stream {name!r} in this report")
