"""The streaming inference service simulator.

:class:`StreamingService` co-simulates per-tenant request/response
streams on the same DES substrate the serve layer uses: one shared
:class:`~repro.sim.cluster.StorageCluster` and one
:class:`~repro.sim.cpu.Machine` (CPU pool, GIL, dispatch lock, page
cache).  Each tenant runs an *arrival process* (replaying its seeded
schedule) feeding ``workers`` concurrent request processors through a
queue with optional depth bounds (block or shed on overflow).

Each request executes the same per-job resource sequence as one batched
job of a training epoch -- opens, page-cache-aware network read,
deserialization, online CPU/GIL work, dispatch hand-off -- with every
expression kept in the exact shape of
:meth:`~repro.backends.simulated.SimulatedBackend.epoch_process`.  That
shape is load-bearing: the differential wall replays a training epoch's
job partition (:func:`~repro.stream.requests.epoch_request_plans`)
through this engine and requires the epoch timings back to ~1e-12.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Generator, Optional, Sequence

from repro import calibration as cal
from repro.backends.base import CACHE_SYSTEM, Environment, RunConfig
from repro.backends.simulated import SimulatedBackend
from repro.errors import ProfilingError, SimulationError
from repro.faults.gate import slo_shed_decision
from repro.pipelines.base import SplitPlan
from repro.sim.cluster import StorageCluster
from repro.sim.cpu import Machine
from repro.sim.events import Event, Simulation, Timeout
from repro.stream.report import (RequestRecord, StreamReport,
                                 TenantStreamResult)
from repro.stream.requests import StreamTenantSpec, request_plans


class _Shard:
    """One dispatch queue: shared by all of a tenant's workers, or (for
    pinned differential streams) private to a single worker."""

    __slots__ = ("queue", "idle", "space")

    def __init__(self):
        self.queue: deque = deque()
        #: Events of workers parked on an empty queue (FIFO hand-off).
        self.idle: list = []
        #: Events of the arrival process blocked on a full queue.
        self.space: list = []


@dataclass
class _TenantStream:
    """Runtime state plus hot-loop bindings for one tenant stream.

    The binding fields cache every per-request constant exactly as the
    epoch worker's hot-loop bindings do, so the request body below can
    keep the epoch body's expression shapes verbatim.
    """

    spec: StreamTenantSpec
    plan: SplitPlan
    result: TenantStreamResult
    records: list = field(default_factory=list)
    shards: list = field(default_factory=list)
    pinned: bool = False
    closed: bool = False
    depth: int = 0          # requests waiting in queues (not in service)
    # -- request-body bindings (set once before simulation start) --
    namespace: tuple = ()
    stored_name: str = ""
    stored_bytes_ps: float = 0.0
    stored_bytes_ps_raw: float = 0.0
    opens_per_sample: float = 0.0
    open_latency: float = 0.0
    open_factor: float = 1.0
    overhead_ps: float = 0.0
    deser_ps: Optional[float] = None
    online_charges: tuple = ()

    def shard_for(self, record: RequestRecord) -> _Shard:
        return self.shards[record.pinned] if self.pinned else self.shards[0]


class StreamingService:
    """Run tenant request streams on one shared simulated cluster."""

    def __init__(self, environment: Optional[Environment] = None,
                 backend: Optional[SimulatedBackend] = None,
                 metrics=None, metrics_interval: float = 60.0,
                 tracer=None, faults=None):
        if metrics is not None and metrics_interval <= 0:
            raise ProfilingError(
                f"metrics_interval must be positive, got {metrics_interval}")
        self.environment = environment or Environment()
        self.backend = backend or SimulatedBackend(self.environment)
        #: Telemetry hooks (:mod:`repro.obs`); null by default, and with
        #: them off the stream schedules zero extra kernel events.
        self.metrics = metrics
        self.metrics_interval = metrics_interval
        self.tracer = tracer
        #: Seeded chaos timeline (:class:`repro.faults.FaultPlan`) or
        #: ``None``; with no plan the run schedules zero extra events.
        self.fault_plan = faults
        # Per-run state, initialised in run().
        self._sim: Simulation = None  # type: ignore[assignment]
        self._machine: Machine = None  # type: ignore[assignment]
        self._cluster: StorageCluster = None  # type: ignore[assignment]
        self._contexts: list = []
        self._live_workers = 0
        self._fault_engine = None

    # -- public entry point --------------------------------------------------

    def run(self, streams: Sequence[StreamTenantSpec], seed: int = 0,
            plans: Optional[dict] = None) -> StreamReport:
        """Simulate every tenant stream; returns the stream report.

        ``plans`` optionally overrides the seeded request expansion with
        explicit per-tenant :class:`~repro.stream.requests.RequestPlan`
        tuples (the differential wall passes an epoch's job partition).
        Plans with ``worker`` set pin requests to that worker's private
        queue -- sharded dispatch, which is incompatible with admission
        control (``queue_bound``/``shed``).
        """
        if not streams:
            raise ProfilingError("cannot stream an empty tenant set")
        names = [spec.tenant for spec in streams]
        if len(set(names)) != len(names):
            raise ProfilingError(f"duplicate tenant streams in {names}")
        contexts = [self._context(spec, seed, plans) for spec in streams]
        self._reset()
        sim = self._sim
        self._configure_link(streams)
        self._set_baselines(contexts)
        self._contexts = contexts
        self._live_workers = sum(spec.workers for spec in streams)
        processes = []
        for ctx in contexts:
            # The arrival process is created *before* the tenant's
            # workers: at t=0 a zero-jitter schedule then fully populates
            # the worker queues before any worker bootstraps, so workers
            # drain their shards in exactly the epoch worker order.
            processes.append(sim.process(
                self._arrival_process(ctx),
                name=f"arrivals-{ctx.spec.tenant}"))
            for wid in range(ctx.spec.workers):
                processes.append(sim.process(
                    self._worker_process(ctx, wid),
                    name=f"stream-{ctx.spec.tenant}-{wid}"))
        self._start_faults()
        if self.metrics is not None:
            sim.process(self._metrics_process(), name="metrics-sampler")
        started = time.perf_counter()
        sim.run()
        wall_seconds = time.perf_counter() - started
        stuck = [process.name for process in processes
                 if not process.triggered]
        if stuck:
            raise SimulationError(
                f"stream drained with live processes: {stuck}")
        for process in processes:
            if process._exception is not None:
                raise process._exception
        report = self._report(contexts)
        report.wall_seconds = wall_seconds
        return report

    # -- chaos engine (null-by-default; see repro.faults) --------------------

    def _start_faults(self) -> None:
        """Spawn the chaos engine's window processes -- only when a
        fault plan is attached (mirrors the serve layer)."""
        self._fault_engine = None
        if not self.fault_plan:
            return
        from repro.faults.engine import FaultEngine
        self._fault_engine = FaultEngine(
            self.fault_plan, self._sim, self._machine, self._cluster,
            metrics=self.metrics, tracer=self.tracer)
        self._fault_engine.start()

    # -- telemetry (null-by-default; see repro.obs) --------------------------

    def _metrics_process(self) -> Generator[Event, None, None]:
        sim = self._sim
        registry = self.metrics
        interval = self.metrics_interval
        while self._live_workers > 0:
            yield sim.timeout(interval)
            self._sample_metrics(registry)
            registry.snapshot(sim.now)

    def _sample_metrics(self, registry) -> None:
        """One sample of the stream-level gauges; pure reads only."""
        sim = self._sim
        link = self._cluster.read_link
        registry.gauge("link.active_streams").set(link.active_streams)
        aggregate = self.environment.storage.aggregate_bw
        registry.gauge("link.utilization").set(
            link.current_throughput() / aggregate if aggregate else 0.0)
        cache = self._machine.page_cache
        registry.gauge("cache.hit_rate").set(cache.hit_rate)
        registry.gauge("cache.used_bytes").set(cache.used_bytes)
        registry.gauge("cache.evictions").set(cache.evictions)
        metadata = self._cluster.metadata
        registry.gauge("metadata.in_use").set(metadata.in_use)
        registry.gauge("metadata.queued").set(metadata.queued)
        registry.gauge("kernel.events_processed").set(sim.events_processed)
        engine = self._fault_engine
        if engine is not None:
            registry.gauge("faults.active").set(engine.active_count)
            registry.gauge("faults.capacity_stretch").set(
                min(engine.capacity_stretch(), 1e6))
        for ctx in self._contexts:
            tenant = ctx.spec.tenant
            registry.gauge(f"tenant.{tenant}.queue_depth").set(ctx.depth)
            registry.gauge(f"tenant.{tenant}.completed").set(
                len(ctx.result.completions))

    # -- simulation setup ----------------------------------------------------

    def _context(self, spec: StreamTenantSpec, seed: int,
                 plans: Optional[dict]) -> _TenantStream:
        plan = spec.resolve_plan()
        if plans is not None and spec.tenant in plans:
            planned = tuple(plans[spec.tenant])
        else:
            # Stride over the artifact in batch-sized chunks: a request
            # re-reading a chunk within cache lifetime hits the shared
            # page cache, like epoch >= 1 of a training run.
            chunk_count = max(1, plan.pipeline.sample_count // spec.batch)
            planned = request_plans(spec, seed=seed,
                                    chunk_count=chunk_count)
        if not planned:
            raise ProfilingError(
                f"stream {spec.tenant!r}: empty request plan")
        pinned_flags = {request.worker is not None for request in planned}
        if len(pinned_flags) != 1:
            raise ProfilingError(
                f"stream {spec.tenant!r}: cannot mix pinned and "
                f"unpinned requests")
        pinned = pinned_flags.pop()
        if pinned:
            if spec.queue_bound or spec.shed:
                raise ProfilingError(
                    f"stream {spec.tenant!r}: pinned (sharded) requests "
                    f"bypass admission control; queue_bound/shed must "
                    f"be off")
            bad = [request.worker for request in planned
                   if not 0 <= request.worker < spec.workers]
            if bad:
                raise ProfilingError(
                    f"stream {spec.tenant!r}: pinned worker ids {bad} "
                    f"outside 0..{spec.workers - 1}")
        records = [RequestRecord(index=request.index,
                                 arrival=request.arrival,
                                 batch=request.batch,
                                 chunk=request.chunk,
                                 pinned=request.worker)
                   for request in sorted(planned,
                                         key=lambda r: (r.arrival, r.index))]
        ctx = _TenantStream(
            spec=spec, plan=plan,
            result=TenantStreamResult(spec=spec, records=records),
            records=records,
            shards=[_Shard() for _ in range(spec.workers if pinned else 1)],
            pinned=pinned)
        self._bind(ctx)
        return ctx

    def _bind(self, ctx: _TenantStream) -> None:
        """Freeze the request-body constants (epoch hot-loop bindings).

        Streams always serve the pre-materialised, uncompressed artifact
        with the page cache live -- the ``materialize_offline=False``,
        ``cache_mode="system"`` corner of the epoch model.
        """
        plan = ctx.plan
        stored = plan.materialized
        if plan.is_unprocessed:
            ctx.stored_bytes_ps = stored.bytes_per_sample
        else:
            ctx.stored_bytes_ps = stored.compressed_bytes_per_sample(None)
        ctx.stored_bytes_ps_raw = stored.bytes_per_sample
        ctx.namespace = ("stream", ctx.spec.tenant)
        ctx.stored_name = stored.name
        ctx.opens_per_sample = self.backend._opens_per_sample(
            stored, plan.pipeline.sample_count)
        ctx.open_latency = self.environment.storage.pipeline_open_latency
        ctx.open_factor = stored.open_latency_factor
        ctx.overhead_ps = cal.runtime_overhead(ctx.stored_bytes_ps_raw)
        ctx.deser_ps = (cal.DESER_FIXED + ctx.stored_bytes_ps_raw
                        * stored.deser_penalty / cal.DESER_BW_PER_THREAD
                        if stored.record_format else None)
        ctx.online_charges = tuple(
            (step.holds_gil, step.cpu_seconds)
            for step in plan.online_steps if step.cpu_seconds > 0)

    def _reset(self) -> None:
        environment = self.environment
        sim = Simulation()
        self._sim = sim
        self._machine = Machine(
            sim, cores=environment.cores,
            ram_bytes=environment.ram_bytes,
            page_cache_bytes=(cal.PAGE_CACHE_FRACTION
                              * environment.ram_bytes),
            memory_bw=environment.memory_bw,
            memory_stream_bw=environment.memory_stream_bw,
            dispatch_cost=cal.DISPATCH_COST,
            dispatch_convoy=cal.DISPATCH_CONVOY,
            gil_convoy=cal.GIL_CONVOY)
        self._cluster = StorageCluster(
            sim, environment.storage,
            memory_link=self._machine.memory_link,
            tie_break="admission")

    def _configure_link(self, streams: Sequence[StreamTenantSpec]) -> None:
        """Pin the fair per-stream read share, as the serve layer does,
        using the widest tenant's worker count (the reader analogue of
        the widest job's thread count)."""
        storage = self.environment.storage
        widest = max(spec.workers for spec in streams)
        self._cluster.read_link.per_stream_bw = min(
            storage.stream_bw, storage.aggregate_bw / widest)

    def _set_baselines(self, contexts: Sequence[_TenantStream]) -> None:
        """Uncontended analytic service time per batch (the SLO anchor),
        and from it every request's latency deadline."""
        from repro.backends.analytic import AnalyticModel
        model = AnalyticModel(self.environment)
        for ctx in contexts:
            estimate = model.estimate(
                ctx.plan, RunConfig(threads=1, epochs=1,
                                    cache_mode=CACHE_SYSTEM))
            if estimate.throughput <= 0:
                continue
            seconds_per_sample = 1.0 / estimate.throughput
            ctx.result.baseline_batch_seconds = (
                ctx.spec.batch * seconds_per_sample)
            if ctx.spec.slo_stretch is None:
                continue
            for record in ctx.records:
                record.deadline = (ctx.spec.slo_stretch
                                   * record.batch * seconds_per_sample)

    # -- the per-tenant processes --------------------------------------------

    def _arrival_process(self, ctx: _TenantStream
                         ) -> Generator[Event, None, None]:
        """Replay the arrival schedule: admit, hand off, block or shed."""
        sim = self._sim
        bound = ctx.spec.queue_bound
        engine = self._fault_engine
        for record in ctx.records:
            delay = record.arrival - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            if (engine is not None and ctx.spec.shed
                    and record.deadline is not None):
                # The SLO-aware gate shared with control-plane admission
                # (repro.faults.gate): under degraded capacity a request
                # whose service-time bound already breaks its deadline
                # is shed at arrival, not after burning a worker.
                reason = slo_shed_decision(
                    record.deadline / ctx.spec.slo_stretch,
                    record.deadline, engine.capacity_stretch())
                if reason is not None:
                    record.shed = True
                    ctx.result.slo_shed += 1
                    continue
            shard = ctx.shard_for(record)
            if shard.idle:
                # An idle worker: hand the request over directly, never
                # touching queue depth.
                record.enqueued = sim.now
                shard.idle.pop(0).succeed(record)
                continue
            if bound and ctx.depth >= bound:
                if ctx.spec.shed:
                    record.shed = True
                    continue
                # Backpressure: block the arrival source until a worker
                # frees a queue slot.
                while ctx.depth >= bound:
                    space = sim.event()
                    shard.space.append(space)
                    yield space
                if shard.idle:
                    record.enqueued = sim.now
                    shard.idle.pop(0).succeed(record)
                    continue
            record.enqueued = sim.now
            shard.queue.append(record)
            ctx.depth += 1
            if ctx.depth > ctx.result.max_queue_depth:
                ctx.result.max_queue_depth = ctx.depth
        ctx.closed = True
        for shard in ctx.shards:
            for event in shard.idle:
                event.succeed(None)   # drain sentinel
            shard.idle.clear()

    def _worker_process(self, ctx: _TenantStream, wid: int
                        ) -> Generator[Event, None, None]:
        """Pull requests until the stream closes and the queue drains."""
        sim = self._sim
        tracer = self.tracer
        lane = f"{ctx.spec.tenant}/w{wid}"
        shard = ctx.shards[wid] if ctx.pinned else ctx.shards[0]
        while True:
            if shard.queue:
                record = shard.queue.popleft()
                ctx.depth -= 1
                if shard.space:
                    shard.space.pop(0).succeed()
            elif ctx.closed:
                break
            else:
                idle = sim.event()
                shard.idle.append(idle)
                record = yield idle
                if record is None:
                    break
            record.worker = wid
            record.started = sim.now
            # The span brackets _request_body without touching it: the
            # body's expression shapes are pinned by the 1e-12
            # differential wall and the tracer only reads the clock.
            span = None
            if tracer is not None:
                span = tracer.start(
                    f"request {record.index}", "request", lane, sim.now,
                    args={"batch": record.batch, "chunk": record.chunk})
            yield from self._request_body(ctx, record)
            record.completed = sim.now
            if span is not None:
                tracer.finish(span, sim.now)
            ctx.result.completions.append(record)
        self._live_workers -= 1

    def _request_body(self, ctx: _TenantStream, record: RequestRecord
                      ) -> Generator[Event, None, None]:
        """Serve one request batch through the shared resource model.

        Expression-for-expression the per-job body of
        ``SimulatedBackend.epoch_process`` (page-cache lookup, metadata
        opens, link read, runtime overhead, deserialize, online
        CPU/GIL charges, dispatch hand-off) minus the phases a stream
        never runs (decompression, shuffle, app-cache) -- keep it that
        way or the 1e-12 differential wall breaks.
        """
        sim = self._sim
        machine = self._machine
        cluster = self._cluster
        result = ctx.result
        page_cache = machine.page_cache
        memory_link = machine.memory_link
        metadata = cluster.metadata
        read_link = cluster.read_link
        cores = machine.cores
        dispatch = machine.dispatch
        gil = machine.gil

        k = record.batch
        opens = ctx.opens_per_sample * k
        chunk_key = (ctx.namespace, ctx.stored_name, None, record.chunk)
        disk_bytes = k * ctx.stored_bytes_ps
        if page_cache.lookup(chunk_key):
            result.cache_hits += 1
            result.bytes_from_cache += disk_bytes
            cluster.cache_bytes_read += disk_bytes
            yield memory_link.transfer(disk_bytes)
        else:
            result.cache_misses += 1
            result.bytes_from_storage += disk_bytes
            if opens > 0:
                yield metadata.acquire()
                try:
                    yield Timeout(sim, opens * ctx.open_latency
                                  * ctx.open_factor)
                finally:
                    metadata.release()
            yield read_link.transfer(disk_bytes, "")
            page_cache.insert(chunk_key, disk_bytes)
        yield Timeout(sim, k * ctx.overhead_ps)
        if ctx.deser_ps is not None:
            seconds = k * ctx.deser_ps
            machine.cpu_busy_seconds += seconds
            yield cores.acquire()
            try:
                yield Timeout(sim, seconds)
            finally:
                cores.release()
        for holds_gil, cpu_seconds in ctx.online_charges:
            if holds_gil:
                yield gil.acquire()
                try:
                    waiters = len(gil._waiters)
                    if waiters > gil.max_convoy_waiters:
                        waiters = gil.max_convoy_waiters
                    per_unit = cpu_seconds + waiters * gil.convoy_overhead
                    yield Timeout(sim, k * per_unit)
                finally:
                    gil.release()
            else:
                machine.cpu_busy_seconds += k * cpu_seconds
                yield cores.acquire()
                try:
                    yield Timeout(sim, k * cpu_seconds)
                finally:
                    cores.release()
        yield dispatch.acquire()
        try:
            waiters = len(dispatch._waiters)
            if waiters > dispatch.max_convoy_waiters:
                waiters = dispatch.max_convoy_waiters
            per_unit = (machine.dispatch_cost
                        + waiters * dispatch.convoy_overhead)
            yield Timeout(sim, k * per_unit)
        finally:
            dispatch.release()

    # -- reporting -----------------------------------------------------------

    def _report(self, contexts: list) -> StreamReport:
        tenants = [ctx.result for ctx in contexts]
        completions = [record.completed for tenant in tenants
                       for record in tenant.completed]
        report = StreamReport(
            environment=self.environment,
            tenants=tenants,
            makespan=max(completions) if completions else 0.0,
            events_processed=self._sim.events_processed,
            bytes_from_storage=sum(tenant.bytes_from_storage
                                   for tenant in tenants),
            bytes_from_cache=sum(tenant.bytes_from_cache
                                 for tenant in tenants),
            metadata_peak_in_use=self._cluster.metadata.peak_in_use,
            page_cache_evictions=self._machine.page_cache.evictions,
        )
        if self._fault_engine is not None:
            report.fault_events = list(self._fault_engine.events)
            report.transfers_aborted = self._fault_engine.transfers_aborted
        return report
