"""Request workloads and seeded arrival processes for streaming serving.

A streaming tenant is described by a :class:`StreamTenantSpec`: which
pipeline/strategy its requests read, how requests arrive (a seeded
``poisson``/``burst``/``diurnal`` process), how many samples each
request batches, how many concurrent workers pull from its queue, and
its latency SLO (a stretch over the uncontended analytic batch time).

Specs expand deterministically into :class:`RequestPlan` tuples --
pre-computed arrival timestamps plus the dataset chunk each request
strides over -- so every stream simulation (and therefore every golden
output) is reproducible bit-for-bit from the seed alone.

:func:`epoch_request_plans` is the differential bridge: it converts a
training epoch's :func:`~repro.backends.simulated.partition_jobs`
partition into an equivalent zero-jitter request stream (one request
per job, pinned to its thread's worker, all arriving at t=0, every
chunk cold), which the engine must replay to the same timings as the
epoch itself.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.backends.base import RunConfig
from repro.errors import ProfilingError
from repro.pipelines.base import SplitPlan
from repro.serve.jobs import DEFAULT_PIPELINE_MIX, _materialized_split

#: Arrival-process shapes understood by :func:`arrival_schedule`.
ARRIVAL_KINDS = ("poisson", "burst", "diurnal")

#: Requests per burst of the ``burst`` arrival process.
BURST_SIZE = 4


@dataclass(frozen=True)
class StreamTenantSpec:
    """One tenant's request stream as submitted to the service.

    ``batch`` is the batch-size-vs-latency knob: larger batches
    amortize per-request overheads (higher throughput) but every
    request serves more samples (higher latency).  ``workers`` is the
    prefetch depth -- concurrent request processors sharing the
    tenant's queue.  ``queue_bound`` caps waiting requests (0 =
    unbounded); when full, arrivals block (backpressure) or, with
    ``shed=True``, are dropped and counted as deadline misses.
    ``slo_stretch`` sets each request's latency budget as a multiple
    of the uncontended analytic batch service time (``None`` disables
    deadlines).
    """

    tenant: str
    pipeline: str
    split: str
    arrival: str = "poisson"
    rate: float = 1.0            # mean requests per second
    requests: int = 32
    batch: int = 32              # samples per request
    workers: int = 2             # concurrent request processors
    queue_bound: int = 0         # max waiting requests; 0 = unbounded
    slo_stretch: Optional[float] = 3.0
    shed: bool = False
    start: float = 0.0           # stream start offset in seconds

    def __post_init__(self):
        if self.arrival not in ARRIVAL_KINDS:
            raise ProfilingError(
                f"stream {self.tenant!r}: unknown arrival kind "
                f"{self.arrival!r}; known: {sorted(ARRIVAL_KINDS)}")
        if self.rate <= 0:
            raise ProfilingError(
                f"stream {self.tenant!r}: rate must be positive")
        if self.requests < 1:
            raise ProfilingError(
                f"stream {self.tenant!r}: need at least one request")
        if self.batch < 1:
            raise ProfilingError(
                f"stream {self.tenant!r}: batch must be >= 1")
        if self.workers < 1:
            raise ProfilingError(
                f"stream {self.tenant!r}: need at least one worker")
        if self.queue_bound < 0:
            raise ProfilingError(
                f"stream {self.tenant!r}: queue_bound must be >= 0")
        if self.slo_stretch is not None and self.slo_stretch <= 0:
            raise ProfilingError(
                f"stream {self.tenant!r}: slo_stretch must be positive")
        if self.start < 0:
            raise ProfilingError(
                f"stream {self.tenant!r}: negative start time")

    def resolve_plan(self) -> SplitPlan:
        """Build the split plan from the pipeline registry."""
        from repro.pipelines.registry import get_pipeline
        return get_pipeline(self.pipeline).split_at(self.split)

    def describe(self) -> str:
        return (f"{self.tenant}: {self.pipeline}/{self.split} "
                f"{self.arrival}@{self.rate:g}/s x{self.requests} "
                f"(batch {self.batch}, {self.workers} workers)")


@dataclass(frozen=True)
class RequestPlan:
    """One planned request: when it arrives and what it reads.

    ``chunk`` identifies the dataset chunk the request strides over;
    requests re-reading a chunk hit the shared page cache.  ``worker``
    pins the request to one worker's queue (sharded dispatch, the
    differential vehicle); ``None`` means any worker may serve it.
    """

    index: int
    arrival: float
    batch: int
    chunk: int
    worker: Optional[int] = None


def _schedule_rng(spec: StreamTenantSpec, seed: int) -> random.Random:
    """Namespaced per-tenant RNG: one tenant's schedule never perturbs
    another's, and changing the arrival kind re-seeds from scratch."""
    return random.Random(f"stream-{seed}-{spec.tenant}-{spec.arrival}")


def _poisson_schedule(spec: StreamTenantSpec, seed: int) -> tuple:
    rng = _schedule_rng(spec, seed)
    now = spec.start
    times = []
    for _ in range(spec.requests):
        now += rng.expovariate(spec.rate)
        times.append(now)
    return tuple(times)


def _burst_schedule(spec: StreamTenantSpec, seed: int) -> tuple:
    """Bursts of :data:`BURST_SIZE` back-to-back requests whose burst
    gaps preserve the mean rate."""
    rng = _schedule_rng(spec, seed)
    intra = 0.05 / spec.rate
    now = spec.start
    times = []
    while len(times) < spec.requests:
        now += rng.expovariate(spec.rate / BURST_SIZE)
        for offset in range(BURST_SIZE):
            if len(times) >= spec.requests:
                break
            times.append(now + offset * intra)
    return tuple(sorted(times))


def _diurnal_schedule(spec: StreamTenantSpec, seed: int) -> tuple:
    """Arrivals over one sinusoidal day whose length is the nominal
    stream duration (requests / rate), peaking mid-period."""
    rng = _schedule_rng(spec, seed)
    period = spec.requests / spec.rate
    buckets = 24
    bucket_len = period / buckets
    weights = [1.0 + math.sin(2 * math.pi * (hour + 0.5) / buckets -
                              math.pi / 2) for hour in range(buckets)]
    times = sorted(
        rng.choices(range(buckets), weights=weights, k=1)[0] * bucket_len
        + rng.random() * bucket_len
        for _ in range(spec.requests))
    return tuple(spec.start + time for time in times)


_SCHEDULES = {
    "poisson": _poisson_schedule,
    "burst": _burst_schedule,
    "diurnal": _diurnal_schedule,
}


def arrival_schedule(spec: StreamTenantSpec, seed: int = 0) -> tuple:
    """The tenant's sorted request arrival timestamps (seconds)."""
    return _SCHEDULES[spec.arrival](spec, seed)


def request_plans(spec: StreamTenantSpec, seed: int = 0,
                  chunk_count: int = 1) -> tuple:
    """Expand ``spec`` into its planned requests.

    Requests stride round-robin over ``chunk_count`` dataset chunks,
    so a small working set re-reads warm page-cache chunks while a
    large one keeps missing -- the same hot/cold distinction the epoch
    model exhibits across epochs.
    """
    if chunk_count < 1:
        raise ProfilingError("chunk_count must be >= 1")
    return tuple(
        RequestPlan(index=index, arrival=arrival, batch=spec.batch,
                    chunk=index % chunk_count)
        for index, arrival in enumerate(arrival_schedule(spec, seed)))


def epoch_request_plans(plan: SplitPlan, config: RunConfig) -> tuple:
    """One training epoch re-expressed as a zero-jitter request stream.

    Mirrors :func:`~repro.backends.simulated.partition_jobs` exactly:
    one request per job, carrying the job's sample count, pinned to the
    worker matching its thread, all arriving at t=0.  Chunk ids are
    unique negatives so every read is a cold miss, like epoch 0 of a
    training run.  Replaying these plans through the engine must
    reproduce the epoch's timings (the differential wall pins ~1e-12).
    """
    from repro.backends.simulated import partition_jobs
    plans = []
    index = 0
    for thread_jobs in partition_jobs(plan.pipeline.sample_count,
                                      config.threads, config.max_jobs):
        for job in thread_jobs:
            plans.append(RequestPlan(
                index=index, arrival=0.0, batch=job.samples,
                chunk=-(index + 1), worker=job.thread_id))
            index += 1
    return tuple(plans)


def generate_stream(tenants: int, seed: int = 0,
                    arrival: str = "poisson", rate: float = 1.0,
                    requests: int = 32, batch: int = 32,
                    workers: int = 2, queue_bound: int = 0,
                    slo_stretch: Optional[float] = 3.0,
                    shed: bool = False,
                    pipelines: Sequence[str] = DEFAULT_PIPELINE_MIX,
                    ) -> list:
    """A seeded tenant population of request streams.

    The pipeline/strategy mix is drawn from its own namespaced RNG
    (like the serve trace generators), so the mix and each tenant's
    arrival schedule are independently reproducible.
    """
    if tenants < 1:
        raise ProfilingError("need at least one tenant stream")
    if not pipelines:
        raise ProfilingError("need at least one candidate pipeline")
    rng = random.Random(f"stream-mix-{seed}")
    streams = []
    for index in range(tenants):
        pipeline = rng.choice(tuple(pipelines))
        streams.append(StreamTenantSpec(
            tenant=f"tenant-{index}", pipeline=pipeline,
            split=_materialized_split(rng, pipeline),
            arrival=arrival, rate=rate, requests=requests, batch=batch,
            workers=workers, queue_bound=queue_bound,
            slo_stretch=slo_stretch, shed=shed))
    return streams
