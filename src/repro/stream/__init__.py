"""Streaming inference serving: request streams, SLOs, co-simulation.

Where :mod:`repro.serve` models bulk training tenants (epoch-shaped,
throughput-ranked), this package models *latency-shaped* load: seeded
request arrival processes per tenant, per-request max-latency budgets,
batching knobs, queue-depth backpressure and out-of-order completion
accounting, all co-simulated on the same DES substrate.

Quickstart::

    from repro.stream import StreamingService, generate_stream

    streams = generate_stream(tenants=4, seed=0, arrival="burst")
    report = StreamingService().run(streams, seed=0)
    print(report.p99_latency, report.miss_fraction)

CLI surface: ``presto stream --tenants 4 --arrival burst --seed 0``.
"""

from repro.stream.doctor import (StreamDiagnosis, StreamFinding,
                                 diagnose_stream)
from repro.stream.engine import StreamingService
from repro.stream.report import (RequestRecord, StreamReport,
                                 TenantStreamResult)
from repro.stream.requests import (ARRIVAL_KINDS, RequestPlan,
                                   StreamTenantSpec, arrival_schedule,
                                   epoch_request_plans, generate_stream,
                                   request_plans)

__all__ = [
    "ARRIVAL_KINDS",
    "RequestPlan",
    "RequestRecord",
    "StreamDiagnosis",
    "StreamFinding",
    "StreamReport",
    "StreamTenantSpec",
    "StreamingService",
    "TenantStreamResult",
    "arrival_schedule",
    "diagnose_stream",
    "epoch_request_plans",
    "generate_stream",
    "request_plans",
]
