"""Latency-regime bottleneck rewrites for streaming runs.

The serve doctor thinks in throughput: thread-time fractions, shared
resource saturation.  Under request/response load the operative
question changes to "where does the *p99 request latency* go, and which
knob moves it?"  The answer decomposes per tenant into queue wait vs
service time, and each finding is a concrete rewrite -- shrink the
batch, raise the prefetch width, bound-and-shed admission -- anchored
by the p99 the rewrite predicts, computed from the same wait/service
split the simulation measured.

:class:`~repro.diagnosis.doctor.BottleneckDoctor` exposes this as
``diagnose_stream(report)`` next to its single-job and cluster-level
entry points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Optional

from repro.errors import DiagnosisError
from repro.serve.service import percentile
from repro.stream.report import StreamReport, TenantStreamResult
from repro.units import fmt_bytes, fmt_duration

#: Tenant miss fraction above which latency rewrites fire.
MISS_THRESHOLD = 0.05


@dataclass(frozen=True)
class StreamFinding:
    """One ranked latency verdict with its predicted-p99 anchor."""

    kind: str
    severity: float              # 0..1-ish ranking score, higher is worse
    tenant: Optional[str]        # None for cluster-wide findings
    detail: str
    #: p99 request latency the rewrite predicts (None when the finding
    #: is informational rather than a rewrite).
    predicted_p99: Optional[float] = None

    def describe(self) -> str:
        scope = self.tenant if self.tenant is not None else "cluster"
        text = f"{self.kind}[{scope}]: {self.detail}"
        if self.predicted_p99 is not None:
            text += f" -> predicted p99 ~{fmt_duration(self.predicted_p99)}"
        return text

    def to_dict(self) -> dict:
        return {"kind": self.kind, "severity": self.severity,
                "tenant": self.tenant, "detail": self.detail,
                "predicted_p99": self.predicted_p99}


@dataclass
class StreamDiagnosis:
    """Latency attribution plus ranked rewrites for one stream run."""

    p99_latency: float
    miss_fraction: float
    findings: list[StreamFinding] = field(default_factory=list)

    @property
    def top_finding(self) -> StreamFinding:
        if not self.findings:
            raise DiagnosisError("no findings in this diagnosis")
        return self.findings[0]

    def describe(self) -> str:
        return (f"p99 request latency {fmt_duration(self.p99_latency)}, "
                f"deadline misses {self.miss_fraction:.0%}")

    def to_markdown(self) -> str:
        lines = [f"stream diagnosis: {self.describe()}"]
        for rank, finding in enumerate(self.findings, start=1):
            lines.append(f"  {rank}. {finding.describe()}")
        if not self.findings:
            lines.append("  (no latency pressure detected)")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Machine-readable export (the uniform doctor schema)."""
        return {
            "doctor": "stream",
            "p99_latency": self.p99_latency,
            "miss_fraction": self.miss_fraction,
            "findings": [finding.to_dict() for finding in self.findings],
        }


def _wait_service_p99(tenant: TenantStreamResult) -> tuple:
    """The tenant's (queue-wait p99, service-time p99) split."""
    waits = [record.queue_wait for record in tenant.completed]
    services = [record.service_seconds for record in tenant.completed]
    return (percentile(waits, 99) if waits else 0.0,
            percentile(services, 99) if services else 0.0)


def diagnose_stream(report: StreamReport) -> StreamDiagnosis:
    """Rank latency rewrites for a stream run (highest severity first,
    ties broken by kind then tenant)."""
    if not report.tenants:
        raise DiagnosisError("cannot diagnose an empty stream report")
    findings: list[StreamFinding] = []

    for tenant in report.tenants:
        if not tenant.completed:
            continue
        if tenant.miss_fraction <= MISS_THRESHOLD:
            continue
        spec = tenant.spec
        wait_p99, service_p99 = _wait_service_p99(tenant)

        if service_p99 >= wait_p99 and spec.batch > 1:
            # Service-time bound: each request carries too many samples.
            # Halving the batch scales the service leg by ceil(b/2)/b
            # (per-sample costs dominate the body), leaving waits as-is.
            half = ceil(spec.batch / 2)
            predicted = wait_p99 + service_p99 * half / spec.batch
            findings.append(StreamFinding(
                "shrink-batch", min(0.3 + tenant.miss_fraction, 1.0),
                spec.tenant,
                f"service time dominates p99 "
                f"({fmt_duration(service_p99)} of "
                f"{fmt_duration(wait_p99 + service_p99)}); halve the "
                f"batch from {spec.batch} to {half}",
                predicted_p99=predicted))

        if wait_p99 > service_p99:
            # Queue-wait bound: requests outpace the workers.  Doubling
            # the prefetch width roughly halves the queueing leg
            # (M/M/c wait shrinks superlinearly; halving is the
            # conservative anchor) without touching service time.
            predicted = service_p99 + wait_p99 / 2
            findings.append(StreamFinding(
                "raise-prefetch",
                min(0.2 + wait_p99 / (wait_p99 + service_p99), 1.0),
                spec.tenant,
                f"queue wait dominates p99 ({fmt_duration(wait_p99)} of "
                f"{fmt_duration(wait_p99 + service_p99)}); raise "
                f"workers from {spec.workers} to {2 * spec.workers}",
                predicted_p99=predicted))

        if spec.queue_bound == 0 and not spec.shed:
            # Unbounded admission: every overload turns into tail
            # latency.  Bounding the queue at 2x the worker width caps
            # p99 near service + bound/workers service times; excess
            # load becomes explicit sheds instead of silent misses.
            bound = 2 * spec.workers
            predicted = service_p99 * (1.0 + bound / spec.workers)
            findings.append(StreamFinding(
                "shed-admission", min(0.4 + tenant.miss_fraction, 1.0),
                spec.tenant,
                f"{tenant.miss_fraction:.0%} deadline misses with an "
                f"unbounded queue (depth peaked at "
                f"{tenant.max_queue_depth}); bound the queue at "
                f"{bound} and shed on overflow",
                predicted_p99=predicted))

    # Shared read link saturation over the whole window (cluster-wide).
    storage = report.environment.storage
    if report.makespan > 0:
        link_util = (report.bytes_from_storage
                     / (storage.aggregate_bw * report.makespan))
        if link_util > 0.5:
            findings.append(StreamFinding(
                "read-link-saturation", min(link_util, 1.0), None,
                f"shared read link at {link_util:.0%} of "
                f"{fmt_bytes(storage.aggregate_bw)}/s aggregate over the "
                f"window; shrink request working sets or add bandwidth"))

    findings.sort(key=lambda finding: (-finding.severity, finding.kind,
                                       finding.tenant or ""))
    return StreamDiagnosis(p99_latency=report.p99_latency,
                           miss_fraction=report.miss_fraction,
                           findings=findings)
