"""The ``presto`` command-line interface.

Subcommands::

    presto run experiment.json        run a declarative experiment spec
    presto plan experiment.json       inspect a spec without running it
    presto pipelines                  list the profiled pipelines
    presto datasets                   Table 2 dataset metadata
    presto profile CV                 profile all strategies of a pipeline
    presto sweep --jobs 4             profile every paper pipeline at once
    presto tune CV --wp 1 --wt 1      auto-tune with objective weights
    presto bottleneck NLP             per-strategy bottleneck report
    presto diagnose CV --verify-top 2 resource attribution + rewrites
    presto fio                        Table 3 storage probe
    presto cost CV                    dollar cost per strategy
    presto amortize CV                offline-time break-even horizons
    presto fanout CV                  per-trainer throughput under fan-out
    presto serve --tenants 8          multi-tenant service co-simulation
    presto ctl --fault-rate 0.2       serving control plane (retry/DLQ,
                                      admission, preemption, autoscaling)
    presto stream --arrival burst     streaming inference with per-request
                                      latency SLOs and backpressure
    presto lint [PATH]                simlint static analysis: the DES
                                      discipline rules (docs/lint.md)
    presto trend A.json B.json        events/s deltas across bench
                                      snapshots, flagging regressions

Every workload subcommand (profile/sweep/tune/diagnose/serve/fanout) is
a thin shim: it builds an :class:`~repro.api.spec.ExperimentSpec` from
its flags and hands it to the :class:`~repro.api.session.Session`
facade, so ``presto profile CV --threads 16`` and a spec file with the
same contents are the *same experiment* -- same engines, same cache
keys, same fingerprint, byte-identical report.  ``presto run`` executes
a saved spec (JSON or the YAML subset), ``presto plan`` prints its
resolved plan without executing anything.

Unknown pipeline / policy / trace / storage names exit with status 2
and the list of valid registry names (shared resolvers in
:mod:`repro.api.resolve`), never a traceback.

The simulation workloads (serve/ctl/stream) accept telemetry flags
(``--metrics-out``, ``--trace-out``, ``--trace-detail``; ``ctl`` also
``--follow``) that observe a run without changing it: the report on
stdout stays byte-identical, and exports go to files, stdout (``-``)
or stderr (``--follow``).  See ``docs/observability.md``.

All commands run on the simulated backend (deterministic, full scale);
``profile --backend inprocess`` switches to real miniature execution.
``profile``, ``tune``, ``diagnose`` and ``sweep`` accept ``--jobs N``
to fan profiling out over a worker pool and ``--cache DIR`` to memoize
profiles on disk; progress and cache statistics go to stderr, results
to stdout.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.api import (ControlSpec, DiagnoseSpec, EnvironmentSpec,
                       ExecSpec, ExperimentSpec, FanoutSpec, FaultsSpec,
                       RunSpec, ServeSpec, Session, StreamSpec, TuneSpec,
                       load_spec)
from repro.core.report import bottleneck_report
from repro.datasets.catalog import table2_frame
from repro.errors import ReproError
from repro.obs.trend import METRIC_DIRECTIONS
from repro.pipelines.registry import PAPER_PIPELINES, get_pipeline
from repro.sim.fio import run_fio
from repro.units import MB


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="presto",
        description="PRESTO: preprocessing strategy profiling & tuning")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run a declarative experiment spec file (JSON/YAML)")
    run.add_argument("spec", metavar="SPEC_FILE",
                     help="path to an experiment spec (.json/.yaml/.yml)")

    plan = sub.add_parser(
        "plan", help="resolve and print a spec's plan without running it")
    plan.add_argument("spec", metavar="SPEC_FILE",
                      help="path to an experiment spec (.json/.yaml/.yml)")

    sub.add_parser("pipelines", help="list profiled pipelines")
    sub.add_parser("datasets", help="print Table 2 dataset metadata")

    profile = sub.add_parser("profile", help="profile a pipeline")
    profile.add_argument("pipeline", metavar="PIPELINE")
    profile.add_argument("--threads", type=int, default=8)
    profile.add_argument("--epochs", type=int, default=1)
    profile.add_argument("--compression", choices=["GZIP", "ZLIB"],
                         default=None)
    profile.add_argument("--cache-mode",
                         choices=["none", "system", "application"],
                         default="none",
                         help="epoch-to-epoch data caching behaviour")
    profile.add_argument("--storage", metavar="DEVICE", default="ceph-hdd")
    profile.add_argument("--backend", choices=["simulated", "inprocess"],
                         default="simulated")
    _add_engine_options(profile)

    sweep = sub.add_parser(
        "sweep", help="profile every paper pipeline in one parallel run")
    sweep.add_argument("--pipelines", nargs="+", metavar="PIPELINE",
                       default=list(PAPER_PIPELINES),
                       help="subset of pipelines (default: all seven)")
    sweep.add_argument("--threads", type=int, default=8)
    sweep.add_argument("--epochs", type=int, default=1)
    sweep.add_argument("--storage", metavar="DEVICE", default="ceph-hdd")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-job progress on stderr")
    _add_engine_options(sweep)

    tune = sub.add_parser("tune", help="auto-tune a pipeline")
    tune.add_argument("pipeline", metavar="PIPELINE")
    tune.add_argument("--wp", type=float, default=0.0,
                      help="preprocessing-time weight")
    tune.add_argument("--ws", type=float, default=0.0,
                      help="storage weight")
    tune.add_argument("--wt", type=float, default=1.0,
                      help="throughput weight")
    tune.add_argument("--threads", type=int, nargs="+", default=[8])
    _add_engine_options(tune)

    bottleneck = sub.add_parser("bottleneck",
                                help="per-strategy bottleneck report")
    bottleneck.add_argument("pipeline", metavar="PIPELINE")
    bottleneck.add_argument("--threads", type=int, default=8)

    diagnose = sub.add_parser(
        "diagnose",
        help="attribute epoch time to resources and recommend rewrites")
    diagnose.add_argument("pipeline", metavar="PIPELINE")
    diagnose.add_argument("--threads", type=int, default=8)
    diagnose.add_argument("--epochs", type=int, default=1)
    diagnose.add_argument("--storage", metavar="DEVICE", default="ceph-hdd")
    diagnose.add_argument("--sample-count", type=int, default=None,
                          metavar="N",
                          help="diagnose an N-sample subset (cheap look)")
    diagnose.add_argument("--verify-top", type=int, default=0, metavar="N",
                          help="re-run the top N verifiable rewrites and "
                               "report predicted-vs-measured error")
    _add_engine_options(diagnose)

    fio = sub.add_parser("fio", help="run the Table 3 storage probe")
    fio.add_argument("--storage", metavar="DEVICE", default="ceph-hdd")

    cost = sub.add_parser("cost", help="dollar cost per strategy")
    cost.add_argument("pipeline", metavar="PIPELINE")
    cost.add_argument("--epochs", type=int, default=10)
    cost.add_argument("--months", type=float, default=1.0,
                      help="storage retention in months")

    amortize = sub.add_parser(
        "amortize", help="offline-time break-even across epoch horizons")
    amortize.add_argument("pipeline", metavar="PIPELINE")
    amortize.add_argument("--horizons", type=int, nargs="+",
                          default=[1, 5, 20, 100])

    fanout = sub.add_parser(
        "fanout", help="per-trainer throughput when serving many jobs")
    fanout.add_argument("pipeline", metavar="PIPELINE")
    fanout.add_argument("--strategy", default=None,
                        help="split name (default: last strategy)")
    fanout.add_argument("--trainers", type=int, nargs="+",
                        default=[1, 2, 4, 8, 16])
    fanout.add_argument("--simulate", action="store_true",
                        help="co-simulate the trainers through the serve "
                             "layer instead of the closed-form link bound")

    serve = sub.add_parser(
        "serve",
        help="simulate a multi-tenant preprocessing service on one "
             "shared cluster")
    serve.add_argument("--tenants", type=int, default=8, metavar="J")
    serve.add_argument("--policy", metavar="POLICY", default="fifo",
                       help="scheduler policy ('all' compares every one)")
    serve.add_argument("--trace", metavar="KIND", default="steady",
                       help="arrival-trace shape")
    serve.add_argument("--seed", type=int, default=0,
                       help="trace-generator seed (runs are deterministic)")
    serve.add_argument("--slots", type=int, default=2,
                       help="concurrent execution slots")
    serve.add_argument("--epochs", type=int, default=2)
    serve.add_argument("--threads", type=int, default=8,
                       help="reader threads per tenant job")
    serve.add_argument("--storage", metavar="DEVICE", default="ceph-hdd")
    serve.add_argument("--tie-break", choices=["arrival", "tenant"],
                       default="arrival", dest="tie_break",
                       help="ordering of simultaneous storage-link "
                            "completions (tenant = deterministic "
                            "(timestamp, tenant id) order)")
    _add_obs_options(serve)

    ctl = sub.add_parser(
        "ctl",
        help="run the serving control plane: dispatcher, execution "
             "ledger, retry/DLQ, admission, preemption, autoscaling")
    ctl.add_argument("--tenants", type=int, default=8, metavar="J")
    ctl.add_argument("--policy", metavar="POLICY", default="fifo",
                     help="scheduler policy (fifo/fair-share/cache-aware)")
    ctl.add_argument("--trace", metavar="KIND", default="steady",
                     help="arrival-trace shape")
    ctl.add_argument("--seed", type=int, default=0,
                     help="trace-generator seed (runs are deterministic)")
    ctl.add_argument("--slots", type=int, default=2,
                     help="initial concurrent execution slots")
    ctl.add_argument("--epochs", type=int, default=2)
    ctl.add_argument("--threads", type=int, default=8,
                     help="reader threads per tenant job")
    ctl.add_argument("--storage", metavar="DEVICE", default="ceph-hdd")
    ctl.add_argument("--tie-break", choices=["arrival", "tenant"],
                     default="arrival", dest="tie_break")
    ctl.add_argument("--max-attempts", type=int, default=3, metavar="N",
                     dest="max_attempts",
                     help="executions before a crashing job dead-letters")
    ctl.add_argument("--backoff-base", type=float, default=60.0,
                     metavar="S", dest="backoff_base",
                     help="retry backoff base in simulated seconds")
    ctl.add_argument("--backoff-factor", type=float, default=2.0,
                     metavar="F", dest="backoff_factor",
                     help="exponential retry backoff factor")
    ctl.add_argument("--fault-rate", type=float, default=0.0, metavar="R",
                     dest="fault_rate",
                     help="seeded fraction of jobs that crash mid-run")
    ctl.add_argument("--admission-limit", type=int, default=None,
                     metavar="N", dest="admission_limit",
                     help="max in-flight jobs per tenant (default: "
                          "unlimited)")
    ctl.add_argument("--preempt", action="store_true",
                     help="let the policy preempt running jobs at epoch "
                          "boundaries")
    ctl.add_argument("--autoscale", action="store_true",
                     help="autoscale slots from serve.doctor findings")
    ctl.add_argument("--max-slots", type=int, default=0, metavar="N",
                     dest="max_slots",
                     help="autoscale ceiling (default: 2x --slots)")
    ctl.add_argument("--autoscale-interval", type=float, default=600.0,
                     metavar="S", dest="autoscale_interval",
                     help="autoscaler tick in simulated seconds")
    ctl.add_argument("--faults", metavar="SPEC", default=None,
                     help="seeded chaos timeline, e.g. "
                          "'stragglers=1,brownouts=2,blackouts=1,"
                          "crash-windows=1,severity=0.6,horizon=20000,"
                          "checkpoint-epochs=2,shed-slo=1' "
                          "(see docs/faults.md)")
    _add_obs_options(ctl, follow=True)

    stream = sub.add_parser(
        "stream",
        help="simulate streaming inference: per-request latency SLOs, "
             "batching, backpressure")
    stream.add_argument("--tenants", type=int, default=4, metavar="J")
    stream.add_argument("--arrival", metavar="KIND", default="poisson",
                        help="arrival-process shape "
                             "(poisson/burst/diurnal)")
    stream.add_argument("--rate", type=float, default=1.0, metavar="R",
                        help="mean request arrival rate per tenant "
                             "(requests/s)")
    stream.add_argument("--requests", type=int, default=32, metavar="N",
                        help="requests per tenant stream")
    stream.add_argument("--batch", type=int, default=32, metavar="K",
                        help="samples per request batch (latency knob)")
    stream.add_argument("--workers", type=int, default=2, metavar="W",
                        help="concurrent request workers per tenant")
    stream.add_argument("--queue-bound", type=int, default=0, metavar="Q",
                        dest="queue_bound",
                        help="backpressure queue depth per tenant "
                             "(0 = unbounded)")
    stream.add_argument("--slo-stretch", type=float, default=3.0,
                        metavar="F", dest="slo_stretch",
                        help="latency budget as a multiple of the "
                             "analytic batch service time (0 disables "
                             "deadlines)")
    stream.add_argument("--shed", action="store_true",
                        help="shed requests arriving at a full queue "
                             "instead of blocking the arrival process")
    stream.add_argument("--seed", type=int, default=0,
                        help="arrival-schedule seed (runs are "
                             "deterministic)")
    stream.add_argument("--storage", metavar="DEVICE", default="ceph-hdd")
    stream.add_argument("--faults", metavar="SPEC", default=None,
                        help="seeded chaos timeline, e.g. "
                             "'stragglers=1,slowdowns=1,severity=0.5' "
                             "(no blackouts/crash-windows: those need "
                             "the control plane; see docs/faults.md)")
    _add_obs_options(stream)

    lint = sub.add_parser(
        "lint",
        help="static analysis for DES discipline (simlint): wall-clock "
             "bans, seeded+namespaced RNG, sorted listings, the "
             "telemetry wall")
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to lint "
                           "(default: src tools benchmarks)")
    lint.add_argument("--json", action="store_true", dest="as_json",
                      help="emit findings as JSON (schema 1)")
    lint.add_argument("--select", metavar="RULES", default=None,
                      help="comma-separated rule ids to run")
    lint.add_argument("--ignore", metavar="RULES", default=None,
                      help="comma-separated rule ids to skip")
    lint.add_argument("--list-rules", action="store_true",
                      dest="list_rules",
                      help="print the rule catalog and exit")
    lint.add_argument("--root", metavar="DIR", default=None,
                      help="repo root findings are reported relative "
                           "to (default: current directory)")

    trend = sub.add_parser(
        "trend",
        help="compare bench snapshots (BENCH_serve.json) and flag "
             "per-scenario regressions")
    trend.add_argument("snapshots", nargs="+", metavar="BENCH_JSON",
                       help="two or more snapshots, oldest first")
    trend.add_argument("--metric", choices=sorted(METRIC_DIRECTIONS),
                       default="events_per_sec",
                       help="which scenario metric to compare")
    trend.add_argument("--threshold", type=float, default=5.0,
                       metavar="PCT",
                       help="regression threshold in percent")
    trend.add_argument("--labels", nargs="+", default=None,
                       metavar="LABEL",
                       help="snapshot labels (default: file names)")
    trend.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the trend report as JSON")
    trend.add_argument("--fail-on-regression", action="store_true",
                       dest="fail_on_regression",
                       help="exit 3 when any regression is flagged")
    return parser


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    """The sweep-engine knobs shared by profile/tune/diagnose/sweep."""
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parallel profiling workers (default: 1)")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="persist memoized profiles in DIR")


def _add_obs_options(parser: argparse.ArgumentParser,
                     follow: bool = False) -> None:
    """The telemetry knobs shared by serve/ctl/stream."""
    obs = parser.add_argument_group("telemetry")
    obs.add_argument("--metrics-out", metavar="FILE", default=None,
                     dest="metrics_out",
                     help="sample sim-time metrics and write the "
                          "time-series JSON to FILE ('-' = stdout)")
    obs.add_argument("--metrics-interval", type=float, default=60.0,
                     metavar="S", dest="metrics_interval",
                     help="sim-seconds between metrics samples "
                          "(default: 60)")
    obs.add_argument("--trace-out", metavar="FILE", default=None,
                     dest="trace_out",
                     help="record spans and write a Chrome trace-event "
                          "(Perfetto) JSON to FILE ('-' = stdout)")
    obs.add_argument("--trace-detail", action="store_true",
                     dest="trace_detail",
                     help="also record per-batch / per-transfer spans "
                          "(large traces)")
    if follow:
        obs.add_argument("--follow", action="store_true",
                         help="stream ledger transitions live to stderr")


def _telemetry_from(args):
    """Build a :class:`repro.obs.Telemetry` from CLI flags, or ``None``
    when every telemetry flag is off (the zero-cost default)."""
    follow = getattr(args, "follow", False)
    if args.metrics_out is None and args.trace_out is None and not follow:
        return None
    from repro.obs import Telemetry
    return Telemetry(
        metrics_interval=(args.metrics_interval
                          if args.metrics_out is not None else None),
        trace=args.trace_out is not None,
        trace_detail=args.trace_detail,
        follow=sys.stderr if follow else None)


def _write_export(payload: dict, dest: str, what: str) -> None:
    import json
    text = json.dumps(payload, indent=2, sort_keys=True)
    if dest == "-":
        print(text)
    else:
        with open(dest, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {what} to {dest}", file=sys.stderr)


def _run_observed(spec: ExperimentSpec, args) -> int:
    """Run a simulation workload with the telemetry flags applied.

    The report stays on stdout exactly as without telemetry; metrics
    and trace exports follow it (``-``) or land in files.
    """
    telemetry = _telemetry_from(args)
    if telemetry is None:
        return _print_artifact(spec)
    artifact = Session().run(spec, telemetry=telemetry)
    print(artifact.report)
    if artifact.metrics is not None:
        _write_export(artifact.metrics, args.metrics_out, "metrics")
    if artifact.trace is not None:
        _write_export(artifact.trace, args.trace_out, "trace")
    return 0


def _exec_spec(args, progress: bool = False) -> ExecSpec:
    if args.cache in ("none", "system", "application"):
        # ``--cache`` used to select the epoch caching behaviour; that
        # knob is now ``--cache-mode``.  Its old values double as
        # plausible directory names, so reject them loudly instead of
        # silently memoizing profiles into a directory called
        # "application".
        raise ReproError(
            f"--cache now names a profile-cache directory; use "
            f"--cache-mode {args.cache} for epoch caching behaviour")
    return ExecSpec(jobs=args.jobs, cache_dir=args.cache,
                    progress=progress)


def _print_artifact(spec: ExperimentSpec) -> int:
    artifact = Session().run(spec)
    print(artifact.report)
    return 0


def _cmd_run(args) -> int:
    spec = load_spec(args.spec)
    session = Session()
    artifact = session.run(spec)
    print(artifact.report)
    print(f"run: {artifact.provenance.describe()}, "
          f"{artifact.events_processed:,} kernel events",
          file=sys.stderr)
    return 0


def _cmd_plan(args) -> int:
    spec = load_spec(args.spec)
    print(Session().plan(spec).describe())
    return 0


def _cmd_pipelines() -> int:
    for name in PAPER_PIPELINES:
        pipeline = get_pipeline(name)
        chain = " -> ".join(rep.name for rep in pipeline.representations)
        print(f"{name:8s} {pipeline.sample_count:>9,} samples  {chain}")
    return 0


def _cmd_datasets() -> int:
    print(table2_frame().to_markdown())
    return 0


def _cmd_profile(args) -> int:
    return _print_artifact(ExperimentSpec(
        kind="profile",
        pipelines=(args.pipeline,),
        run=RunSpec(threads=args.threads, epochs=args.epochs,
                    compression=args.compression,
                    cache_mode=args.cache_mode),
        environment=EnvironmentSpec(storage=args.storage,
                                    backend=args.backend),
        executor=_exec_spec(args)))


def _cmd_sweep(args) -> int:
    return _print_artifact(ExperimentSpec(
        kind="sweep",
        pipelines=tuple(args.pipelines),
        run=RunSpec(threads=args.threads, epochs=args.epochs),
        environment=EnvironmentSpec(storage=args.storage),
        executor=_exec_spec(args, progress=not args.quiet)))


def _cmd_tune(args) -> int:
    return _print_artifact(ExperimentSpec(
        kind="tune",
        pipelines=(args.pipeline,),
        tune=TuneSpec(preprocessing_weight=args.wp,
                      storage_weight=args.ws,
                      throughput_weight=args.wt,
                      threads=tuple(args.threads)),
        executor=_exec_spec(args)))


def _cmd_bottleneck(args) -> int:
    from repro.api import resolve_pipeline
    from repro.backends import RunConfig
    config = RunConfig(threads=args.threads)
    print(bottleneck_report(resolve_pipeline(args.pipeline), config=config))
    return 0


def _cmd_diagnose(args) -> int:
    return _print_artifact(ExperimentSpec(
        kind="diagnose",
        pipelines=(args.pipeline,),
        run=RunSpec(threads=args.threads, epochs=args.epochs),
        environment=EnvironmentSpec(storage=args.storage),
        diagnose=DiagnoseSpec(verify_top=args.verify_top,
                              sample_count=args.sample_count),
        executor=_exec_spec(args)))


def _cmd_fio(args) -> int:
    from repro.api import resolve_storage
    profile = resolve_storage(args.storage)
    print(f"fio profile of {profile.name}:")
    header = (f"{'Threads':>8s} {'Files/Thread':>13s} {'Bandwidth':>12s} "
              f"{'IOPS':>9s}")
    print(header)
    for result in run_fio(profile):
        workload = result.workload
        print(f"{workload.threads:>8d} {workload.files_per_thread:>13d} "
              f"{result.bandwidth / MB:>9.1f} MB/s {result.iops:>9.0f}")
    return 0


def _cmd_cost(args) -> int:
    from repro.api import resolve_pipeline
    from repro.backends import SimulatedBackend
    from repro.core.economics import PriceSheet, cost_frame
    from repro.core.profiler import StrategyProfiler
    profiler = StrategyProfiler(SimulatedBackend())
    profiles = profiler.profile_pipeline(resolve_pipeline(args.pipeline))
    frame = cost_frame(profiles, PriceSheet(), epochs=args.epochs,
                       project_months=args.months)
    print(f"dollar cost for {args.epochs} epochs, "
          f"{args.months:g} month(s) of storage (cheapest first):")
    print(frame.to_markdown())
    return 0


def _cmd_amortize(args) -> int:
    from repro.api import resolve_pipeline
    from repro.backends import SimulatedBackend
    from repro.core.amortization import amortization_frame
    from repro.core.profiler import StrategyProfiler
    profiler = StrategyProfiler(SimulatedBackend())
    profiles = profiler.profile_pipeline(resolve_pipeline(args.pipeline))
    frame = amortization_frame(profiles, horizons=tuple(args.horizons))
    print(frame.to_markdown())
    return 0


def _cmd_fanout(args) -> int:
    return _print_artifact(ExperimentSpec(
        kind="fanout",
        pipelines=(args.pipeline,),
        fanout=FanoutSpec(strategy=args.strategy,
                          trainers=tuple(args.trainers),
                          simulate=args.simulate)))


#: ``--faults`` keys -> (FaultsSpec field, coercion).  Dashes are
#: accepted in place of underscores on the command line.
_FAULT_KEYS = {
    "stragglers": int,
    "slowdowns": int,
    "brownouts": int,
    "blackouts": int,
    "crash_windows": int,
    "severity": float,
    "horizon": float,
    "checkpoint_epochs": int,
    "shed_slo": lambda text: text.lower() in ("1", "true", "yes", "on"),
}


def _parse_faults(text: Optional[str]) -> FaultsSpec:
    """Parse a ``--faults 'k=v,k=v'`` chaos spec (None -> disabled)."""
    if not text:
        return FaultsSpec()
    kwargs = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        key = key.strip().replace("-", "_")
        if not sep or key not in _FAULT_KEYS:
            raise ReproError(
                f"bad --faults entry {item!r}; expected key=value with "
                f"keys: {', '.join(k.replace('_', '-') for k in _FAULT_KEYS)}")
        try:
            kwargs[key] = _FAULT_KEYS[key](value.strip())
        except ValueError:
            raise ReproError(
                f"bad --faults value for {key.replace('_', '-')}: "
                f"{value.strip()!r}") from None
    return FaultsSpec(**kwargs)


def _cmd_serve(args) -> int:
    return _run_observed(ExperimentSpec(
        kind="serve",
        run=RunSpec(threads=args.threads, epochs=args.epochs),
        environment=EnvironmentSpec(storage=args.storage),
        serve=ServeSpec(tenants=args.tenants, trace=args.trace,
                        policy=args.policy, slots=args.slots,
                        tie_break=args.tie_break),
        seed=args.seed), args)


def _cmd_ctl(args) -> int:
    return _run_observed(ExperimentSpec(
        kind="control",
        run=RunSpec(threads=args.threads, epochs=args.epochs),
        environment=EnvironmentSpec(storage=args.storage),
        control=ControlSpec(tenants=args.tenants, trace=args.trace,
                            policy=args.policy, slots=args.slots,
                            tie_break=args.tie_break,
                            max_attempts=args.max_attempts,
                            backoff_base=args.backoff_base,
                            backoff_factor=args.backoff_factor,
                            fault_rate=args.fault_rate,
                            admission_limit=args.admission_limit,
                            preempt=args.preempt,
                            autoscale=args.autoscale,
                            max_slots=args.max_slots,
                            autoscale_interval=args.autoscale_interval),
        faults=_parse_faults(args.faults),
        seed=args.seed), args)


def _cmd_stream(args) -> int:
    return _run_observed(ExperimentSpec(
        kind="stream",
        environment=EnvironmentSpec(storage=args.storage),
        stream=StreamSpec(tenants=args.tenants, arrival=args.arrival,
                          rate=args.rate, requests=args.requests,
                          batch=args.batch, workers=args.workers,
                          queue_bound=args.queue_bound,
                          slo_stretch=args.slo_stretch or None,
                          shed=args.shed),
        faults=_parse_faults(args.faults),
        seed=args.seed), args)


def _cmd_lint(args) -> int:
    from repro.lint import cli as lint_cli
    argv = list(args.paths)
    if args.as_json:
        argv.append("--json")
    if args.select:
        argv.extend(["--select", args.select])
    if args.ignore:
        argv.extend(["--ignore", args.ignore])
    if args.list_rules:
        argv.append("--list-rules")
    if args.root:
        argv.extend(["--root", args.root])
    return lint_cli.run(argv)


def _cmd_trend(args) -> int:
    import json
    from repro.obs.trend import analyze_files
    report = analyze_files(args.snapshots, metric=args.metric,
                           threshold_pct=args.threshold,
                           labels=args.labels)
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.describe())
    if args.fail_on_regression and report.regressions:
        return 3
    return 0


def main_entry() -> None:
    """Console-script entry point (``presto`` after installation)."""
    sys.exit(main())


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as error:
        print(f"presto: error: {error}", file=sys.stderr)
        return 2


def _dispatch(args) -> int:
    handlers = {
        "run": lambda: _cmd_run(args),
        "plan": lambda: _cmd_plan(args),
        "pipelines": lambda: _cmd_pipelines(),
        "datasets": lambda: _cmd_datasets(),
        "profile": lambda: _cmd_profile(args),
        "sweep": lambda: _cmd_sweep(args),
        "tune": lambda: _cmd_tune(args),
        "bottleneck": lambda: _cmd_bottleneck(args),
        "diagnose": lambda: _cmd_diagnose(args),
        "fio": lambda: _cmd_fio(args),
        "cost": lambda: _cmd_cost(args),
        "amortize": lambda: _cmd_amortize(args),
        "fanout": lambda: _cmd_fanout(args),
        "serve": lambda: _cmd_serve(args),
        "ctl": lambda: _cmd_ctl(args),
        "stream": lambda: _cmd_stream(args),
        "lint": lambda: _cmd_lint(args),
        "trend": lambda: _cmd_trend(args),
    }
    return handlers[args.command]()


if __name__ == "__main__":
    sys.exit(main())
