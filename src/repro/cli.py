"""The ``presto`` command-line interface.

Subcommands::

    presto pipelines                  list the profiled pipelines
    presto datasets                   Table 2 dataset metadata
    presto profile CV                 profile all strategies of a pipeline
    presto sweep --jobs 4             profile every paper pipeline at once
    presto tune CV --wp 1 --wt 1      auto-tune with objective weights
    presto bottleneck NLP             per-strategy bottleneck report
    presto diagnose CV --verify-top 2 resource attribution + rewrites
    presto fio                        Table 3 storage probe
    presto cost CV                    dollar cost per strategy
    presto amortize CV                offline-time break-even horizons
    presto fanout CV                  per-trainer throughput under fan-out
    presto serve --tenants 8          multi-tenant service co-simulation

All commands run on the simulated backend (deterministic, full scale);
``profile --backend inprocess`` switches to real miniature execution.
``profile``, ``tune`` and ``sweep`` accept ``--jobs N`` to fan profiling
out over a worker pool and ``--cache DIR`` to memoize profiles on disk;
progress and cache statistics go to stderr, results to stdout.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.backends import (Environment, InProcessBackend, RunConfig,
                            SimulatedBackend)
from repro.core.analysis import ObjectiveWeights, StrategyAnalysis
from repro.core.autotune import AutoTuner
from repro.core.profiler import StrategyProfiler
from repro.core.report import bottleneck_report
from repro.datasets.catalog import table2_frame
from repro.diagnosis import BottleneckDoctor, verification_report
from repro.errors import ReproError
from repro.exec import ProfileCache, ProgressPrinter, SweepEngine
from repro.pipelines.registry import (PAPER_PIPELINES, get_pipeline,
                                      registered_names)
from repro.serve import POLICY_NAMES, TRACE_KINDS
from repro.sim.fio import run_fio
from repro.sim.storage import DEVICE_PROFILES
from repro.units import MB


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="presto",
        description="PRESTO: preprocessing strategy profiling & tuning")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("pipelines", help="list profiled pipelines")
    sub.add_parser("datasets", help="print Table 2 dataset metadata")

    profile = sub.add_parser("profile", help="profile a pipeline")
    profile.add_argument("pipeline", choices=sorted(PAPER_PIPELINES))
    profile.add_argument("--threads", type=int, default=8)
    profile.add_argument("--epochs", type=int, default=1)
    profile.add_argument("--compression", choices=["GZIP", "ZLIB"],
                         default=None)
    profile.add_argument("--cache-mode",
                         choices=["none", "system", "application"],
                         default="none",
                         help="epoch-to-epoch data caching behaviour")
    profile.add_argument("--storage", choices=sorted(DEVICE_PROFILES),
                         default="ceph-hdd")
    profile.add_argument("--backend", choices=["simulated", "inprocess"],
                         default="simulated")
    _add_engine_options(profile)

    sweep = sub.add_parser(
        "sweep", help="profile every paper pipeline in one parallel run")
    sweep.add_argument("--pipelines", nargs="+",
                       choices=sorted(PAPER_PIPELINES),
                       default=list(PAPER_PIPELINES),
                       help="subset of pipelines (default: all seven)")
    sweep.add_argument("--threads", type=int, default=8)
    sweep.add_argument("--epochs", type=int, default=1)
    sweep.add_argument("--storage", choices=sorted(DEVICE_PROFILES),
                       default="ceph-hdd")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-job progress on stderr")
    _add_engine_options(sweep)

    tune = sub.add_parser("tune", help="auto-tune a pipeline")
    tune.add_argument("pipeline", choices=sorted(PAPER_PIPELINES))
    tune.add_argument("--wp", type=float, default=0.0,
                      help="preprocessing-time weight")
    tune.add_argument("--ws", type=float, default=0.0,
                      help="storage weight")
    tune.add_argument("--wt", type=float, default=1.0,
                      help="throughput weight")
    tune.add_argument("--threads", type=int, nargs="+", default=[8])
    _add_engine_options(tune)

    bottleneck = sub.add_parser("bottleneck",
                                help="per-strategy bottleneck report")
    bottleneck.add_argument("pipeline", choices=sorted(PAPER_PIPELINES))
    bottleneck.add_argument("--threads", type=int, default=8)

    diagnose = sub.add_parser(
        "diagnose",
        help="attribute epoch time to resources and recommend rewrites")
    diagnose.add_argument("pipeline", choices=sorted(registered_names()))
    diagnose.add_argument("--threads", type=int, default=8)
    diagnose.add_argument("--epochs", type=int, default=1)
    diagnose.add_argument("--storage", choices=sorted(DEVICE_PROFILES),
                          default="ceph-hdd")
    diagnose.add_argument("--sample-count", type=int, default=None,
                          metavar="N",
                          help="diagnose an N-sample subset (cheap look)")
    diagnose.add_argument("--verify-top", type=int, default=0, metavar="N",
                          help="re-run the top N verifiable rewrites and "
                               "report predicted-vs-measured error")
    _add_engine_options(diagnose)

    fio = sub.add_parser("fio", help="run the Table 3 storage probe")
    fio.add_argument("--storage", choices=sorted(DEVICE_PROFILES),
                     default="ceph-hdd")

    cost = sub.add_parser("cost", help="dollar cost per strategy")
    cost.add_argument("pipeline", choices=sorted(PAPER_PIPELINES))
    cost.add_argument("--epochs", type=int, default=10)
    cost.add_argument("--months", type=float, default=1.0,
                      help="storage retention in months")

    amortize = sub.add_parser(
        "amortize", help="offline-time break-even across epoch horizons")
    amortize.add_argument("pipeline", choices=sorted(PAPER_PIPELINES))
    amortize.add_argument("--horizons", type=int, nargs="+",
                          default=[1, 5, 20, 100])

    fanout = sub.add_parser(
        "fanout", help="per-trainer throughput when serving many jobs")
    fanout.add_argument("pipeline", choices=sorted(PAPER_PIPELINES))
    fanout.add_argument("--strategy", default=None,
                        help="split name (default: last strategy)")
    fanout.add_argument("--trainers", type=int, nargs="+",
                        default=[1, 2, 4, 8, 16])
    fanout.add_argument("--simulate", action="store_true",
                        help="co-simulate the trainers through the serve "
                             "layer instead of the closed-form link bound")

    serve = sub.add_parser(
        "serve",
        help="simulate a multi-tenant preprocessing service on one "
             "shared cluster")
    serve.add_argument("--tenants", type=int, default=8, metavar="J")
    serve.add_argument("--policy", choices=[*POLICY_NAMES, "all"],
                       default="fifo",
                       help="scheduler policy ('all' compares every one)")
    serve.add_argument("--trace", choices=sorted(TRACE_KINDS),
                       default="steady",
                       help="arrival-trace shape")
    serve.add_argument("--seed", type=int, default=0,
                       help="trace-generator seed (runs are deterministic)")
    serve.add_argument("--slots", type=int, default=2,
                       help="concurrent execution slots")
    serve.add_argument("--epochs", type=int, default=2)
    serve.add_argument("--threads", type=int, default=8,
                       help="reader threads per tenant job")
    serve.add_argument("--storage", choices=sorted(DEVICE_PROFILES),
                       default="ceph-hdd")
    return parser


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    """The sweep-engine knobs shared by profile/tune/sweep."""
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parallel profiling workers (default: 1)")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="persist memoized profiles in DIR")


def _profile_cache(args) -> Optional[ProfileCache]:
    if not args.cache:
        return None
    # ``--cache`` used to select the epoch caching behaviour; that knob
    # is now ``--cache-mode``.  Its old values double as plausible
    # directory names, so reject them loudly instead of silently
    # memoizing profiles into a directory called "application".
    if args.cache in ("none", "system", "application"):
        raise ReproError(
            f"--cache now names a profile-cache directory; use "
            f"--cache-mode {args.cache} for epoch caching behaviour")
    return ProfileCache(args.cache)


def _report_cache(cache: Optional[ProfileCache]) -> None:
    if cache is not None:
        print(f"cache: {cache.stats.describe()}", file=sys.stderr)


def _cmd_pipelines() -> int:
    for name in PAPER_PIPELINES:
        pipeline = get_pipeline(name)
        chain = " -> ".join(rep.name for rep in pipeline.representations)
        print(f"{name:8s} {pipeline.sample_count:>9,} samples  {chain}")
    return 0


def _cmd_datasets() -> int:
    print(table2_frame().to_markdown())
    return 0


def _cmd_profile(args) -> int:
    environment = Environment(storage=DEVICE_PROFILES[args.storage])
    if args.backend == "inprocess":
        backend = InProcessBackend(environment=environment)
    else:
        backend = SimulatedBackend(environment)
    config = RunConfig(threads=args.threads, epochs=args.epochs,
                       compression=args.compression,
                       cache_mode=args.cache_mode)
    cache = _profile_cache(args)
    profiler = StrategyProfiler(backend, jobs=args.jobs, cache=cache)
    profiles = profiler.profile_pipeline(get_pipeline(args.pipeline),
                                         config=config)
    analysis = StrategyAnalysis(profiles)
    print(analysis.summary())
    _report_cache(cache)
    return 0


def _cmd_sweep(args) -> int:
    environment = Environment(storage=DEVICE_PROFILES[args.storage])
    cache = _profile_cache(args)
    engine = SweepEngine(SimulatedBackend(environment), executor=args.jobs,
                         cache=cache)
    if not args.quiet:
        engine.add_listener(ProgressPrinter(sys.stderr))
    config = RunConfig(threads=args.threads, epochs=args.epochs)
    result = engine.sweep([get_pipeline(name) for name in args.pipelines],
                          config=config)
    first = True
    for name, profiles in result.profiles.items():
        if not first:
            print()
        first = False
        print(f"## {name}")
        print(StrategyAnalysis(profiles).summary())
    print(f"sweep: {result.job_count} strategies across "
          f"{len(result.pipelines)} pipeline(s) in {result.elapsed:.2f}s",
          file=sys.stderr)
    _report_cache(cache)
    return 0


def _cmd_tune(args) -> int:
    weights = ObjectiveWeights(preprocessing=args.wp, storage=args.ws,
                               throughput=args.wt)
    cache = _profile_cache(args)
    tuner = AutoTuner(SimulatedBackend(), jobs=args.jobs, cache=cache)
    report = tuner.tune(get_pipeline(args.pipeline), weights=weights,
                        threads=tuple(args.threads))
    print(report.frame().to_markdown())
    print()
    print(report.describe())
    _report_cache(cache)
    return 0


def _cmd_bottleneck(args) -> int:
    config = RunConfig(threads=args.threads)
    print(bottleneck_report(get_pipeline(args.pipeline), config=config))
    return 0


def _cmd_diagnose(args) -> int:
    environment = Environment(storage=DEVICE_PROFILES[args.storage])
    cache = _profile_cache(args)
    doctor = BottleneckDoctor(SimulatedBackend(environment),
                              jobs=args.jobs, cache=cache)
    config = RunConfig(threads=args.threads, epochs=args.epochs)
    diagnosis = doctor.diagnose(get_pipeline(args.pipeline), config=config,
                                sample_count=args.sample_count)
    print(f"## diagnosis: {args.pipeline} ({args.threads} threads, "
          f"{args.storage})")
    print(diagnosis.to_markdown())
    if args.verify_top:
        verified = doctor.verify(diagnosis, top=args.verify_top)
        print()
        print(verification_report(verified))
    _report_cache(cache)
    return 0


def _cmd_fio(args) -> int:
    profile = DEVICE_PROFILES[args.storage]
    print(f"fio profile of {profile.name}:")
    header = (f"{'Threads':>8s} {'Files/Thread':>13s} {'Bandwidth':>12s} "
              f"{'IOPS':>9s}")
    print(header)
    for result in run_fio(profile):
        workload = result.workload
        print(f"{workload.threads:>8d} {workload.files_per_thread:>13d} "
              f"{result.bandwidth / MB:>9.1f} MB/s {result.iops:>9.0f}")
    return 0


def _cmd_cost(args) -> int:
    from repro.core.economics import PriceSheet, cost_frame
    profiler = StrategyProfiler(SimulatedBackend())
    profiles = profiler.profile_pipeline(get_pipeline(args.pipeline))
    frame = cost_frame(profiles, PriceSheet(), epochs=args.epochs,
                       project_months=args.months)
    print(f"dollar cost for {args.epochs} epochs, "
          f"{args.months:g} month(s) of storage (cheapest first):")
    print(frame.to_markdown())
    return 0


def _cmd_amortize(args) -> int:
    from repro.core.amortization import amortization_frame
    profiler = StrategyProfiler(SimulatedBackend())
    profiles = profiler.profile_pipeline(get_pipeline(args.pipeline))
    frame = amortization_frame(profiles, horizons=tuple(args.horizons))
    print(frame.to_markdown())
    return 0


def _cmd_fanout(args) -> int:
    from repro.core.distributed import fan_out_frame
    pipeline = get_pipeline(args.pipeline)
    strategy = args.strategy or pipeline.strategy_names()[-1]
    plan = pipeline.split_at(strategy)
    config = RunConfig()
    if args.simulate:
        from repro.serve import fan_out_frame_simulated
        frame = fan_out_frame_simulated(
            plan, config, trainer_counts=tuple(args.trainers))
        print(f"co-simulating fan-out of {args.pipeline}/{strategy} "
              f"(analytic bound vs DES delivery):")
        print(frame.to_markdown())
        return 0
    single = SimulatedBackend().run(plan, config).throughput
    frame = fan_out_frame(plan, config, single_job_sps=single,
                          trainer_counts=tuple(args.trainers))
    print(f"fanning out {args.pipeline}/{strategy} "
          f"(single-trainer T4 = {single:.0f} SPS):")
    print(frame.to_markdown())
    return 0


def _cmd_serve(args) -> int:
    from repro.core.report import service_summary, tenant_table
    from repro.serve import (PreprocessingService, diagnose_service,
                             generate_trace, sweep_policies)
    environment = Environment(storage=DEVICE_PROFILES[args.storage])
    trace = generate_trace(args.trace, args.tenants, seed=args.seed,
                           epochs=args.epochs, threads=args.threads)
    header = (f"{args.tenants} tenants, trace={args.trace}(seed "
              f"{args.seed}), slots={args.slots}, {args.storage}")
    if args.policy == "all":
        result = sweep_policies(trace, slots=args.slots,
                                environment=environment)
        print(f"## serve: {header}, policies compared")
        print(result.frame().to_markdown())
        print()
        print(f"best policy by aggregate throughput: "
              f"{result.best_policy()}")
        for report in result.reports:
            print()
            print(diagnose_service(report).to_markdown())
        return 0
    service = PreprocessingService(policy=args.policy, slots=args.slots,
                                   environment=environment)
    report = service.run(trace)
    print(f"## serve: {header}, policy={args.policy}")
    print(tenant_table(report).to_markdown())
    print()
    print(service_summary(report))
    print()
    print(diagnose_service(report).to_markdown())
    return 0


def main_entry() -> None:
    """Console-script entry point (``presto`` after installation)."""
    sys.exit(main())


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as error:
        print(f"presto: error: {error}", file=sys.stderr)
        return 2


def _dispatch(args) -> int:
    handlers = {
        "pipelines": lambda: _cmd_pipelines(),
        "datasets": lambda: _cmd_datasets(),
        "profile": lambda: _cmd_profile(args),
        "sweep": lambda: _cmd_sweep(args),
        "tune": lambda: _cmd_tune(args),
        "bottleneck": lambda: _cmd_bottleneck(args),
        "diagnose": lambda: _cmd_diagnose(args),
        "fio": lambda: _cmd_fio(args),
        "cost": lambda: _cmd_cost(args),
        "amortize": lambda: _cmd_amortize(args),
        "fanout": lambda: _cmd_fanout(args),
        "serve": lambda: _cmd_serve(args),
    }
    return handlers[args.command]()


if __name__ == "__main__":
    sys.exit(main())
